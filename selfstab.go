// Package selfstab is a Go implementation of the self-stabilizing
// protocols for maximal matching (Algorithm SMM) and maximal independent
// sets (Algorithm SMI) for ad hoc networks of Goddard, Hedetniemi, Jacobs
// and Srimani (IPDPS 2003), together with the full substrate the paper's
// system model assumes: the synchronous beacon-round executor, a
// discrete-event beacon/link-layer simulator, a goroutine-per-node
// concurrent runtime, mobility models, classical daemon schedulers, the
// Hsu–Huang baseline, and the verification oracles for every predicate.
//
// # Quick start
//
//	g := selfstab.RandomConnected(64, 0.1, rng)
//	res, matching := selfstab.RunSMM(g, seed)      // stabilizes in ≤ n+1 rounds
//	res, mis := selfstab.RunSMI(g, seed)           // stabilizes in O(n) rounds
//
// The executors all consume the same Protocol interface, so a protocol
// written once runs on the deterministic lockstep simulator, under the
// asynchronous beacon layer, on real goroutines, or under a classical
// central/distributed daemon.
//
// This package is a curated facade over the implementation packages; the
// names it exports are aliases, so values flow freely between the facade
// and the internal packages in this module's tests and examples.
package selfstab

import (
	"math/rand"

	"selfstab/internal/adversary"
	"selfstab/internal/beacon"
	"selfstab/internal/core"
	"selfstab/internal/daemon"
	"selfstab/internal/graph"
	"selfstab/internal/harness"
	"selfstab/internal/mobility"
	"selfstab/internal/modelcheck"
	"selfstab/internal/protocols"
	"selfstab/internal/runtime"
	"selfstab/internal/sim"
	"selfstab/internal/verify"
)

// Graph types and generators.
type (
	// Graph is an undirected simple graph on nodes 0..n-1.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Edge is an undirected edge with U < V.
	Edge = graph.Edge
	// Point is a position in the unit square (geometric graphs).
	Point = graph.Point
)

// Graph constructors and analysis, re-exported from internal/graph.
var (
	NewGraph          = graph.New
	NewEdge           = graph.NewEdge
	Path              = graph.Path
	Cycle             = graph.Cycle
	Complete          = graph.Complete
	Star              = graph.Star
	CompleteBipartite = graph.CompleteBipartite
	Grid              = graph.Grid
	Torus             = graph.Torus
	Hypercube         = graph.Hypercube
	RandomTree        = graph.RandomTree
	RandomGNP         = graph.RandomGNP
	RandomConnected   = graph.RandomConnected
	RandomUnitDisk    = graph.RandomUnitDisk
	UnitDisk          = graph.UnitDisk
	IsConnected       = graph.IsConnected
	Diameter          = graph.Diameter
	WriteDOT          = graph.WriteDOT
)

// DOTOptions controls WriteDOT rendering.
type DOTOptions = graph.DOTOptions

// Protocol framework.
type (
	// View is the local information a node consults when moving.
	View[S comparable] = core.View[S]
	// Config is a topology plus one state per node.
	Config[S comparable] = core.Config[S]
	// Pointer is SMM's per-node variable: Null or a neighbor ID.
	Pointer = core.Pointer
	// SMM is Algorithm SMM (synchronous maximal matching).
	SMM = core.SMM
	// SMI is Algorithm SMI (synchronous maximal independent set).
	SMI = core.SMI
	// SMMType is the paper's node-type classification (M, A°, A', PA, PM, PP).
	SMMType = core.SMMType
	// Census counts nodes per SMMType.
	Census = core.Census
)

// Protocol is a self-stabilizing protocol in the synchronous beacon
// model. See core.Protocol for the full contract.
type Protocol[S comparable] interface {
	Name() string
	Random(id NodeID, nbrs []NodeID, rng *rand.Rand) S
	Move(v View[S]) (next S, moved bool)
}

// Null is SMM's null pointer (i → Λ).
const Null = core.Null

// Core protocol constructors and helpers.
var (
	NewSMM          = core.NewSMM
	NewSMMArbitrary = core.NewSMMArbitrary
	NewSMI          = core.NewSMI
	PointAt         = core.PointAt
	MatchingOf      = core.MatchingOf
	SetOf           = core.SetOf
	ClassifySMM     = core.ClassifySMM
	CensusOf        = core.CensusOf
	NormalizeSMM    = core.NormalizeSMM
)

// Baselines and extensions.
var (
	NewHsuHuang     = protocols.NewHsuHuang
	NewColoring     = protocols.NewColoring
	NewRandMIS      = protocols.NewRandMIS
	NewSpanningTree = protocols.NewSpanningTree
	VerifyTree      = protocols.VerifyTree
	TreeEdges       = protocols.TreeEdges
	LeaderOf        = protocols.LeaderOf
)

// TreeState is the spanning-tree protocol's per-node state.
type TreeState = protocols.TreeState

// Hierarchical composition: a base protocol plus a layer that reads its
// outputs (collateral composition).
type (
	// LayerState pairs the base and layer states.
	LayerState[SA, SB comparable] = protocols.LayerState[SA, SB]
	// ClusterState is the clustering protocol's composed state: SMI
	// membership plus the head-assignment pointer.
	ClusterState = protocols.LayerState[bool, Pointer]
)

// Clustering composition: SMI heads plus per-node head assignment.
var (
	NewClustering    = protocols.NewClustering
	VerifyClustering = protocols.VerifyClustering
)

// RefState is the state of a daemon-refined protocol.
type RefState[S comparable] = protocols.RefState[S]

// Refine converts a central-daemon protocol to the synchronous model via
// randomized local mutual exclusion.
func Refine[S comparable](inner Protocol[S], n int, seed int64) Protocol[RefState[S]] {
	return protocols.Refine[S](inner, n, seed)
}

// Executors.
type (
	// Result summarizes a lockstep run.
	Result = sim.Result
	// BeaconParams configures the discrete-event link layer.
	BeaconParams = beacon.Params
	// BeaconResult summarizes a beacon-model run.
	BeaconResult = beacon.Result
)

// Lockstep is the reference synchronous executor.
type Lockstep[S comparable] = sim.Lockstep[S]

// NewLockstep wraps a protocol over a configuration.
func NewLockstep[S comparable](p Protocol[S], cfg Config[S]) *Lockstep[S] {
	return sim.NewLockstep[S](p, cfg)
}

// ParallelLockstep is the data-parallel lockstep executor: identical
// semantics to Lockstep, rounds evaluated across a worker pool.
type ParallelLockstep[S comparable] = sim.Parallel[S]

// NewParallelLockstep wraps a protocol with the given worker count
// (<= 0 selects GOMAXPROCS).
func NewParallelLockstep[S comparable](p Protocol[S], cfg Config[S], workers int) *ParallelLockstep[S] {
	return sim.NewParallel[S](p, cfg, workers)
}

// StaleLockstep executes with bounded-staleness views (see
// sim.StaleLockstep) — the E12 robustness probe.
type StaleLockstep[S comparable] = sim.StaleLockstep[S]

// NewStaleLockstep wraps a protocol with views up to maxLag rounds old.
func NewStaleLockstep[S comparable](p Protocol[S], cfg Config[S], maxLag int, rng *rand.Rand) *StaleLockstep[S] {
	return sim.NewStaleLockstep[S](p, cfg, maxLag, rng)
}

// BeaconNetwork is the discrete-event beacon simulator.
type BeaconNetwork[S comparable] = beacon.Network[S]

// NewBeaconNetwork builds a beacon network with empty neighbor tables.
func NewBeaconNetwork[S comparable](p Protocol[S], g *Graph, states []S, prm BeaconParams, rng *rand.Rand) *BeaconNetwork[S] {
	return beacon.NewNetwork[S](p, g, states, prm, rng)
}

// DefaultBeaconParams returns a loss-free low-delay link layer.
var DefaultBeaconParams = beacon.DefaultParams

// ConcurrentNetwork runs one goroutine per node with channels as links.
type ConcurrentNetwork[S comparable] = runtime.Network[S]

// NewConcurrentNetwork starts the node goroutines; callers must Close it.
func NewConcurrentNetwork[S comparable](p Protocol[S], g *Graph, states []S) *ConcurrentNetwork[S] {
	return runtime.New[S](p, g, states)
}

// Daemon scheduling (classical execution models).
type (
	// Pick selects the central daemon's strategy.
	Pick = daemon.Pick
	// DaemonResult summarizes a daemon-driven run.
	DaemonResult = daemon.Result
)

// Central daemon strategies.
const (
	PickRandom      = daemon.PickRandom
	PickMin         = daemon.PickMin
	PickMax         = daemon.PickMax
	PickAdversarial = daemon.PickAdversarial
)

// NewCentralRunner executes p on cfg under a central daemon.
func NewCentralRunner[S comparable](p Protocol[S], cfg Config[S], strategy Pick, rng *rand.Rand) *daemon.Runner[S] {
	return daemon.NewRunner[S](p, cfg, daemon.NewCentral[S](strategy, rng))
}

// Mobility.
type (
	// MobilityEvent is a link created or destroyed by movement.
	MobilityEvent = mobility.Event
	// Waypoint is the random-waypoint mobility model.
	Waypoint = mobility.Waypoint
	// Churn applies connectivity-preserving random edge events.
	Churn = mobility.Churn
)

// Mobility constructors.
var (
	NewWaypoint = mobility.NewWaypoint
	NewChurn    = mobility.NewChurn
)

// Verification oracles.
var (
	IsMatching              = verify.IsMatching
	IsMaximalMatching       = verify.IsMaximalMatching
	IsIndependentSet        = verify.IsIndependentSet
	IsMaximalIndependentSet = verify.IsMaximalIndependentSet
	IsDominatingSet         = verify.IsDominatingSet
	IsMinimalDominatingSet  = verify.IsMinimalDominatingSet
	IsProperColoring        = verify.IsProperColoring
	MaxMatchingSize         = verify.MaxMatchingSize
	MaxIndependentSetSize   = verify.MaxIndependentSetSize
)

// Experiments (the paper's reproduction tables).
type (
	// ExperimentOptions scopes an experiment sweep.
	ExperimentOptions = harness.Options
	// ExperimentTable is one rendered result table.
	ExperimentTable = harness.Table
)

// Experiment runners.
var (
	Experiments              = harness.All
	ExperimentByID           = harness.ByID
	RunAllExperiments        = harness.RunAll
	DefaultExperimentOptions = harness.DefaultOptions
	QuickExperimentOptions   = harness.QuickOptions
)

// Exhaustive model checking (small instances).
type (
	// ExhaustiveReport is the result of exploring every configuration.
	ExhaustiveReport[S comparable] = modelcheck.Report[S]
)

// Model-checking domains and runner.
var (
	SMMDomain      = modelcheck.SMMDomain
	SMIDomain      = modelcheck.SMIDomain
	ColoringDomain = modelcheck.ColoringDomain
)

// ExploreAll enumerates every configuration of a deterministic protocol
// on g, following the synchronous successor to a fixed point or cycle.
// See modelcheck.Explore.
func ExploreAll[S comparable](p Protocol[S], g *Graph, domain modelcheck.DomainFunc[S],
	maxConfigs uint64, checkFixed func([]S) error) (*ExhaustiveReport[S], error) {
	return modelcheck.Explore[S](p, g, domain, maxConfigs, checkFixed)
}

// Adversarial-start search (hill climbing for slow initial states).
type (
	// AdversaryOptions tunes the search budget.
	AdversaryOptions = adversary.Options
	// AdversaryResult reports the slowest start found.
	AdversaryResult = adversary.Result
)

// SearchWorstStart hill-climbs for initial configurations that maximize
// stabilization time. See adversary.Search.
func SearchWorstStart[S comparable](p Protocol[S], g *Graph, opt AdversaryOptions, rng *rand.Rand) AdversaryResult {
	return adversary.Search[S](p, g, opt, rng)
}

// DefaultAdversaryOptions returns the standard search budget.
var DefaultAdversaryOptions = adversary.DefaultOptions

// RunSMM runs Algorithm SMM on g from a random initial state derived
// from seed and returns the run result plus the resulting maximal
// matching. It is the one-call entry point for library users.
func RunSMM(g *Graph, seed int64) (Result, []Edge) {
	p := core.NewSMM()
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[core.Pointer](p, cfg)
	res := l.Run(g.N() + 2)
	return res, core.MatchingOf(l.Config())
}

// RunSMI runs Algorithm SMI on g from a random initial state derived
// from seed and returns the run result plus the resulting maximal
// independent set.
func RunSMI(g *Graph, seed int64) (Result, []NodeID) {
	p := core.NewSMI()
	cfg := core.NewConfig[bool](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[bool](p, cfg)
	res := l.Run(g.N() + 2)
	return res, core.SetOf(l.Config())
}

// NewSMMConfig allocates an SMM configuration with all pointers Null (the
// canonical cold start).
func NewSMMConfig(g *Graph) Config[Pointer] {
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	return cfg
}

// NewSMIConfig allocates an SMI configuration with all bits zero.
func NewSMIConfig(g *Graph) Config[bool] {
	return core.NewConfig[bool](g)
}

// RandomizeConfig draws an arbitrary initial state for every node.
func RandomizeConfig[S comparable](cfg Config[S], p Protocol[S], rng *rand.Rand) {
	cfg.Randomize(p, rng)
}
