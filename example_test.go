package selfstab_test

import (
	"fmt"
	"math/rand"
	"os"

	"selfstab"
)

// ExampleRunSMM runs Algorithm SMM on a path and prints the verified
// maximal matching.
func ExampleRunSMM() {
	g := selfstab.Path(6)
	res, matching := selfstab.RunSMM(g, 1)
	fmt.Println("stable:", res.Stable, "within bound:", res.Rounds <= g.N()+1)
	fmt.Println("matching valid:", selfstab.IsMaximalMatching(g, matching) == nil)
	fmt.Println("pairs:", len(matching))
	// Output:
	// stable: true within bound: true
	// matching valid: true
	// pairs: 3
}

// ExampleRunSMI runs Algorithm SMI on a star: the center is dominated by
// any leaf, and the leaves are mutually non-adjacent, so the MIS is all
// leaves.
func ExampleRunSMI() {
	g := selfstab.Star(5) // center 0, leaves 1..4
	res, mis := selfstab.RunSMI(g, 1)
	fmt.Println("stable:", res.Stable)
	fmt.Println("set:", mis)
	// Output:
	// stable: true
	// set: [1 2 3 4]
}

// ExampleNewSMMArbitrary reproduces the paper's Section 3 counterexample:
// on a four-cycle with all pointers null, proposing to the clockwise
// neighbor instead of the minimum-ID one oscillates forever.
func ExampleNewSMMArbitrary() {
	g := selfstab.Cycle(4)
	cfg := selfstab.NewSMMConfig(g) // all pointers Λ
	l := selfstab.NewLockstep[selfstab.Pointer](selfstab.NewSMMArbitrary(), cfg)
	res := l.Run(1000)
	fmt.Println("stable:", res.Stable, "after", res.Rounds, "rounds")

	// The published rule stabilizes from the very same state.
	cfg2 := selfstab.NewSMMConfig(g)
	l2 := selfstab.NewLockstep[selfstab.Pointer](selfstab.NewSMM(), cfg2)
	res2 := l2.Run(g.N() + 1)
	fmt.Println("min-id stable:", res2.Stable, "pairs:", len(selfstab.MatchingOf(cfg2)))
	// Output:
	// stable: false after 1000 rounds
	// min-id stable: true pairs: 2
}

// ExampleClassifySMM shows the paper's Figure 2 node-type census on a
// hand-built configuration exhibiting a matched pair, a pointing node,
// and an aloof node.
func ExampleClassifySMM() {
	g := selfstab.Path(4)
	cfg := selfstab.NewSMMConfig(g)
	cfg.States[0] = selfstab.PointAt(1) // 0 ↔ 1 matched
	cfg.States[1] = selfstab.PointAt(0)
	cfg.States[2] = selfstab.PointAt(1) // 2 → matched node: PM
	// 3 stays Λ with nobody pointing at it: A°
	fmt.Println(selfstab.CensusOf(selfstab.ClassifySMM(cfg)))
	// Output:
	// M=2 A°=1 A'=0 PA=0 PM=1 PP=0
}

// ExampleNewBeaconNetwork runs SMM under the discrete-event beacon link
// layer — timers, delays, neighbor discovery — and verifies the result.
func ExampleNewBeaconNetwork() {
	rng := rand.New(rand.NewSource(1))
	g := selfstab.Cycle(6)
	states := selfstab.NewSMMConfig(g).States
	net := selfstab.NewBeaconNetwork[selfstab.Pointer](selfstab.NewSMM(), g, states, selfstab.DefaultBeaconParams(), rng)
	res := net.Run(200, 5)
	fmt.Println("stable:", res.Stable)
	fmt.Println("maximal:", selfstab.IsMaximalMatching(g, selfstab.MatchingOf(net.Config())) == nil)
	// Output:
	// stable: true
	// maximal: true
}

// ExampleNewConcurrentNetwork runs SMI with one goroutine per node and
// channels as links.
func ExampleNewConcurrentNetwork() {
	g := selfstab.Grid(3, 3)
	net := selfstab.NewConcurrentNetwork[bool](selfstab.NewSMI(), g, make([]bool, g.N()))
	defer net.Close()
	_, _, stable := net.Run(g.N() + 1)
	mis := selfstab.SetOf(net.Config())
	fmt.Println("stable:", stable)
	fmt.Println("independent & dominating:", selfstab.IsMaximalIndependentSet(g, mis) == nil)
	// Output:
	// stable: true
	// independent & dominating: true
}

// ExampleWriteDOT renders a matching as Graphviz DOT.
func ExampleWriteDOT() {
	g := selfstab.Path(3)
	_, matching := selfstab.RunSMM(g, 1)
	highlight := map[selfstab.Edge]bool{}
	for _, e := range matching {
		highlight[e] = true
	}
	selfstab.WriteDOT(os.Stdout, g, selfstab.DOTOptions{Name: "M", Highlight: highlight})
	// Output:
	// graph M {
	//   0;
	//   1;
	//   2;
	//   0 -- 1 [style=bold, penwidth=2];
	//   1 -- 2;
	// }
}

// ExampleNewChurn applies connectivity-preserving topology changes and
// lets SMM re-stabilize — the paper's fault-tolerance scenario.
func ExampleNewChurn() {
	rng := rand.New(rand.NewSource(3))
	g := selfstab.Cycle(8)
	cfg := selfstab.NewSMMConfig(g)
	l := selfstab.NewLockstep[selfstab.Pointer](selfstab.NewSMM(), cfg)
	l.Run(g.N() + 1)

	selfstab.NewChurn(g, rng).Apply(3) // 3 link events, graph stays connected
	selfstab.NormalizeSMM(cfg)         // drop dangling pointers (link layer repair)
	res := l.Run(g.N() + 1)
	fmt.Println("re-stabilized:", res.Stable)
	fmt.Println("still maximal:", selfstab.IsMaximalMatching(g, selfstab.MatchingOf(cfg)) == nil)
	fmt.Println("still connected:", selfstab.IsConnected(g))
	// Output:
	// re-stabilized: true
	// still maximal: true
	// still connected: true
}
