// Package soak drives randomized fault-injection campaigns over the
// protocol/executor matrix: for every (protocol, model, size, trial)
// cell it generates a topology, an arbitrary initial configuration and
// a fault schedule from seeds derived off the campaign seed, replays
// the schedule under the recovery monitor, and — when a cell fails —
// shrinks the schedule to a minimal replayable repro and writes it out
// as a JSON artifact.
//
// The campaign is deterministic end to end: cells write only to
// per-index result slots and the report is rendered sequentially
// afterwards, so a fixed seed yields byte-identical reports for any
// worker count.
package soak

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strings"
	"sync"

	"selfstab/internal/beacon"
	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
	"selfstab/internal/harness"
	"selfstab/internal/runtime"
	"selfstab/internal/sim"
)

// Protocol and model names accepted by Options.
var (
	AllProtocols = []string{"SMM", "SMI"}
	AllModels    = []string{"lockstep", "runtime", "beacon"}
)

// Options scopes a campaign.
type Options struct {
	// Seed is the campaign seed; every cell derives its own graph,
	// state, schedule and beacon streams from it.
	Seed int64
	// Protocols and Models select the matrix axes (defaults: all).
	Protocols []string
	Models    []string
	// Sizes lists the node counts swept (default {8, 12}).
	Sizes []int
	// Trials is the number of campaigns per (protocol, model, size)
	// cell (default 2).
	Trials int
	// Events is the number of fault events per schedule (default 6).
	Events int
	// EdgeP is the extra-edge probability of the random connected
	// topologies (default 0.3).
	EdgeP float64
	// Workers sizes the cell pool; 0 or negative selects all CPUs. The
	// report bytes do not depend on it.
	Workers int
	// OutDir, when non-empty, receives one JSON artifact per failing
	// cell holding the topology, initial states, original and minimized
	// schedules, and the violations.
	OutDir string
	// ShrinkRuns budgets schedule replays per failing cell during
	// minimization (default 256).
	ShrinkRuns int
}

func (o Options) withDefaults() Options {
	if len(o.Protocols) == 0 {
		o.Protocols = AllProtocols
	}
	if len(o.Models) == 0 {
		o.Models = AllModels
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{8, 12}
	}
	if o.Trials <= 0 {
		o.Trials = 2
	}
	if o.Events <= 0 {
		o.Events = 6
	}
	if o.EdgeP <= 0 {
		o.EdgeP = 0.3
	}
	if o.Workers <= 0 {
		o.Workers = goruntime.NumCPU()
	}
	if o.ShrinkRuns <= 0 {
		o.ShrinkRuns = 256
	}
	return o
}

// cellKey names one campaign cell.
type cellKey struct {
	proto, model string
	n, trial     int
}

// cells enumerates the matrix in canonical order: protocol, model,
// size, trial.
func (o Options) cells() []cellKey {
	var keys []cellKey
	for _, p := range o.Protocols {
		for _, m := range o.Models {
			for _, n := range o.Sizes {
				for t := 0; t < o.Trials; t++ {
					keys = append(keys, cellKey{proto: p, model: m, n: n, trial: t})
				}
			}
		}
	}
	return keys
}

// cellResult is one cell's outcome, written to a per-index slot.
type cellResult struct {
	key      cellKey
	report   faults.Report
	sched    faults.Schedule
	min      *faults.Schedule // non-nil when the cell failed and was shrunk
	artifact string           // path of the written repro artifact
	err      string           // infrastructure error (artifact write, …)
}

func (c cellResult) failed() bool { return c.report.Failed() || c.err != "" }

// runner is the shared campaign state.
type runner struct {
	opt Options

	mu sync.Mutex
	// shrinkRuns counts schedule replays spent minimizing failing
	// schedules, summed across all workers. // guarded by mu
	shrinkRuns int
}

func (r *runner) addShrinkRuns(n int) {
	r.mu.Lock()
	r.shrinkRuns += n
	r.mu.Unlock()
}

func (r *runner) totalShrinkRuns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shrinkRuns
}

// Run executes the campaign and renders its report to out, returning
// the number of failing cells. The report contains no wall-clock data
// and cell results are gathered in index order, so for a fixed seed the
// bytes written to out are identical across runs and worker counts.
func Run(opt Options, out io.Writer) (int, error) {
	opt = opt.withDefaults()
	for _, p := range opt.Protocols {
		if p != "SMM" && p != "SMI" {
			return 0, fmt.Errorf("soak: unknown protocol %q (have SMM, SMI)", p)
		}
	}
	for _, m := range opt.Models {
		switch m {
		case "lockstep", "runtime", "beacon":
		default:
			return 0, fmt.Errorf("soak: unknown model %q (have lockstep, runtime, beacon)", m)
		}
	}
	for _, n := range opt.Sizes {
		if n < 2 {
			return 0, fmt.Errorf("soak: size %d too small", n)
		}
	}
	if opt.OutDir != "" {
		if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
			return 0, fmt.Errorf("soak: %w", err)
		}
	}
	r := &runner{opt: opt}
	keys := opt.cells()
	results := make([]cellResult, len(keys))
	harness.ForEachCell(opt.Workers, len(keys), func(i int) {
		results[i] = r.runCell(keys[i])
	})
	failures := render(out, opt, results, r.totalShrinkRuns())
	return failures, nil
}

// runCell dispatches on the protocol's state type.
func (r *runner) runCell(k cellKey) cellResult {
	switch k.proto {
	case "SMM":
		return runTyped[core.Pointer](r, k,
			func() core.Protocol[core.Pointer] { return core.NewSMM() },
			faults.SMMChecker, faults.Options{BoundFactor: 1, BoundSlack: 1})
	case "SMI":
		return runTyped[bool](r, k,
			func() core.Protocol[bool] { return core.NewSMI() },
			faults.SMIChecker, faults.Options{BoundFactor: 2, BoundSlack: 2})
	}
	return cellResult{key: k, err: fmt.Sprintf("unknown protocol %q", k.proto)}
}

// runTyped runs one cell: generate, replay, and on failure shrink and
// write the repro artifact.
func runTyped[S comparable](r *runner, k cellKey, mk func() core.Protocol[S],
	check faults.Checker[S], mopt faults.Options) cellResult {

	opt := r.opt
	seedFor := func(stream string) int64 {
		return harness.DeriveSeed(opt.Seed, "soak", k.proto+"/"+k.model+"/"+stream, k.n, k.trial)
	}
	g := graph.RandomConnected(k.n, opt.EdgeP, rand.New(rand.NewSource(seedFor("graph"))))
	sched := faults.Generate(seedFor("sched"), g, faults.GenParams{Events: opt.Events, Start: k.n + 2})
	stateSeed, beaconSeed := seedFor("state"), seedFor("beacon")

	runOnce := func(s faults.Schedule) faults.Report {
		p := mk()
		states := arbitraryStates(p, g, stateSeed)
		t := newTarget(k.model, p, g.Clone(), states, beaconSeed)
		defer t.Close()
		return faults.RunSchedule(p, t, s, check, mopt)
	}

	res := cellResult{key: k, sched: sched, report: runOnce(sched)}
	if !res.report.Failed() {
		return res
	}
	runs := 0
	min := faults.Shrink(sched, func(c faults.Schedule) bool {
		runs++
		return runOnce(c).Failed()
	}, opt.ShrinkRuns)
	r.addShrinkRuns(runs)
	res.min = &min
	if opt.OutDir != "" {
		path, err := writeArtifact(opt.OutDir, k, g, arbitraryStates(mk(), g, stateSeed), res.report, sched, min, mopt)
		if err != nil {
			res.err = err.Error()
		} else {
			res.artifact = path
		}
	}
	return res
}

// arbitraryStates draws the cell's arbitrary initial configuration from
// its own seed stream, one protocol-random state per node.
func arbitraryStates[S comparable](p core.Protocol[S], g *graph.Graph, stateSeed int64) []S {
	rng := rand.New(rand.NewSource(stateSeed))
	states := make([]S, g.N())
	for v := range states {
		states[v] = p.Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), rng)
	}
	return states
}

// newTarget builds the cell's executor over its own topology clone (the
// engine mutates the topology, and shrinking replays the cell many
// times).
func newTarget[S comparable](model string, p core.Protocol[S], g *graph.Graph, states []S, beaconSeed int64) faults.Target[S] {
	switch model {
	case "lockstep":
		cfg := core.NewConfig[S](g)
		copy(cfg.States, states)
		return sim.NewFaultLockstep(p, cfg)
	case "runtime":
		return runtime.NewFaultNetwork(p, g, states)
	case "beacon":
		rng := rand.New(rand.NewSource(beaconSeed))
		return beacon.NewFaultNetwork(p, g, states, beacon.DefaultParams(), rng)
	}
	panic("soak: unknown model " + model) // validated in Run
}

// Artifact is the JSON repro written for a failing cell: everything
// needed to replay the failure by hand.
type Artifact[S comparable] struct {
	Protocol    string          `json:"protocol"`
	Model       string          `json:"model"`
	N           int             `json:"n"`
	Trial       int             `json:"trial"`
	Graph       *graph.Graph    `json:"graph"`
	States      []S             `json:"states"`
	BoundFactor float64         `json:"bound_factor"`
	BoundSlack  int             `json:"bound_slack"`
	Schedule    faults.Schedule `json:"schedule"`
	Minimized   faults.Schedule `json:"minimized"`
	Failures    []string        `json:"failures"`
}

func writeArtifact[S comparable](dir string, k cellKey, g *graph.Graph, states []S,
	rep faults.Report, sched, min faults.Schedule, mopt faults.Options) (string, error) {

	a := Artifact[S]{
		Protocol: k.proto, Model: k.model, N: k.n, Trial: k.trial,
		Graph: g, States: states,
		BoundFactor: mopt.BoundFactor, BoundSlack: mopt.BoundSlack,
		Schedule: sched, Minimized: min, Failures: rep.Failures,
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", fmt.Errorf("artifact %s/%s n=%d t=%d: %w", k.proto, k.model, k.n, k.trial, err)
	}
	name := fmt.Sprintf("fail-%s-%s-n%d-t%d.json",
		strings.ToLower(k.proto), k.model, k.n, k.trial)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("artifact %s: %w", path, err)
	}
	return path, nil
}

// render writes the campaign report sequentially, in cell order, and
// returns the failing-cell count.
func render(out io.Writer, opt Options, results []cellResult, shrinkRuns int) int {
	fmt.Fprintf(out, "soak seed=%d cells=%d protocols=%s models=%s sizes=%s trials=%d events=%d\n",
		opt.Seed, len(results),
		strings.Join(opt.Protocols, ","), strings.Join(opt.Models, ","),
		joinInts(opt.Sizes), opt.Trials, opt.Events)
	fmt.Fprintf(out, "%-5s %-9s %4s %6s %7s %7s %9s %5s %s\n",
		"PROTO", "MODEL", "N", "TRIAL", "EPOCHS", "ROUNDS", "MAXRECOV", "VIOL", "STATUS")
	failures := 0
	for _, res := range results {
		status := "ok"
		if res.failed() {
			failures++
			status = "FAIL"
		}
		fmt.Fprintf(out, "%-5s %-9s %4d %6d %7d %7d %9d %5d %s\n",
			res.key.proto, res.key.model, res.key.n, res.key.trial,
			len(res.report.Epochs), res.report.Rounds,
			res.report.MaxEpochRounds(), res.report.ClosureViolations, status)
	}
	for _, res := range results {
		if !res.failed() {
			continue
		}
		fmt.Fprintf(out, "\nFAIL %s/%s n=%d trial=%d:\n",
			res.key.proto, res.key.model, res.key.n, res.key.trial)
		for _, f := range res.report.Failures {
			fmt.Fprintf(out, "  violation: %s\n", f)
		}
		if res.err != "" {
			fmt.Fprintf(out, "  error: %s\n", res.err)
		}
		if res.min != nil {
			fmt.Fprintf(out, "  minimized to %d event(s):\n", len(res.min.Events))
			for _, ev := range res.min.Events {
				fmt.Fprintf(out, "    %s\n", ev)
			}
		}
		if res.artifact != "" {
			fmt.Fprintf(out, "  artifact: %s\n", res.artifact)
		}
	}
	fmt.Fprintf(out, "\nfailures: %d of %d cells", failures, len(results))
	if shrinkRuns > 0 {
		fmt.Fprintf(out, " (%d shrink replays)", shrinkRuns)
	}
	fmt.Fprintln(out)
	return failures
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}
