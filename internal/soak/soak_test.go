package soak

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
)

// quickOptions is a CI-sized campaign covering the whole matrix.
func quickOptions(seed int64) Options {
	return Options{
		Seed:   seed,
		Sizes:  []int{6},
		Trials: 1,
		Events: 4,
	}
}

// TestCampaignDeterministicAcrossWorkers is the determinism acceptance
// check: a fixed seed yields byte-identical reports for any worker
// count, and the healthy protocols pass every cell.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	var want bytes.Buffer
	opt := quickOptions(3)
	opt.Workers = 1
	failures, err := Run(opt, &want)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("healthy campaign failed %d cells:\n%s", failures, want.String())
	}
	for _, workers := range []int{2, 5} {
		var got bytes.Buffer
		opt.Workers = workers
		if _, err := Run(opt, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("workers=%d report differs:\n--- workers=1\n%s--- workers=%d\n%s",
				workers, want.String(), workers, got.String())
		}
	}
}

func TestCampaignSeedChangesReport(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := Run(quickOptions(3), &a); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(quickOptions(4), &b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	var buf bytes.Buffer
	for _, opt := range []Options{
		{Protocols: []string{"SMX"}},
		{Models: []string{"quantum"}},
		{Sizes: []int{1}},
	} {
		if _, err := Run(opt, &buf); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
}

// noRepairSMM is SMM with its dangling-pointer self-repair removed — the
// broken variant the shrinking pipeline must minimize against.
type noRepairSMM struct{ smm *core.SMM }

func (b *noRepairSMM) Name() string { return "SMM-norepair" }

func (b *noRepairSMM) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) core.Pointer {
	return b.smm.Random(id, nbrs, rng)
}

func (b *noRepairSMM) Move(v core.View[core.Pointer]) (core.Pointer, bool) {
	if !v.Self.IsNull() {
		present := false
		for _, j := range v.Nbrs {
			if j == v.Self.Node() {
				present = true
				break
			}
		}
		if !present {
			return v.Self, false
		}
	}
	return b.smm.Move(v)
}

// TestFailingCellShrinksAndWritesArtifact drives one cell with the
// broken protocol through the full failure pipeline: detect, shrink,
// write the repro artifact, and verify the artifact's minimized
// schedule still fails on replay.
func TestFailingCellShrinksAndWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	r := &runner{opt: Options{Seed: 11, Events: 6, OutDir: dir, ShrinkRuns: 256, EdgeP: 0.3}}
	k := cellKey{proto: "SMM", model: "lockstep", n: 8, trial: 0}
	res := runTyped[core.Pointer](r, k,
		func() core.Protocol[core.Pointer] { return &noRepairSMM{smm: core.NewSMM()} },
		faults.SMMChecker, faults.Options{BoundFactor: 1, BoundSlack: 1})

	if !res.report.Failed() {
		t.Fatalf("broken protocol passed the campaign cell: %v", res.report)
	}
	if res.min == nil {
		t.Fatal("failing cell was not shrunk")
	}
	if len(res.min.Events) == 0 || len(res.min.Events) > len(res.sched.Events) {
		t.Fatalf("minimized schedule has %d events (original %d)",
			len(res.min.Events), len(res.sched.Events))
	}
	if res.err != "" {
		t.Fatalf("artifact error: %s", res.err)
	}
	want := filepath.Join(dir, "fail-smm-lockstep-n8-t0.json")
	if res.artifact != want {
		t.Fatalf("artifact path %q, want %q", res.artifact, want)
	}
	data, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	var a Artifact[core.Pointer]
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if a.Protocol != "SMM" || a.Model != "lockstep" || a.N != 8 || a.Graph == nil ||
		len(a.States) != 8 || len(a.Failures) == 0 {
		t.Fatalf("artifact incomplete: %+v", a)
	}

	// The minimized schedule must still fail when replayed from the
	// artifact's own topology and states.
	p := &noRepairSMM{smm: core.NewSMM()}
	tgt := newTarget[core.Pointer]("lockstep", p, a.Graph.Clone(), a.States, 0)
	defer tgt.Close()
	rep := faults.RunSchedule[core.Pointer](p, tgt, a.Minimized, faults.SMMChecker,
		faults.Options{BoundFactor: a.BoundFactor, BoundSlack: a.BoundSlack})
	if !rep.Failed() {
		t.Fatalf("minimized schedule no longer fails on replay:\n%s", a.Minimized)
	}
	if r.shrinkRuns == 0 {
		t.Fatal("shrink replay counter not advanced")
	}
}

// TestReportMentionsArtifacts pins the failure rendering: a failing
// campaign's report names the minimized events and the artifact path.
func TestReportMentionsArtifacts(t *testing.T) {
	dir := t.TempDir()
	k := cellKey{proto: "SMM", model: "lockstep", n: 8, trial: 0}
	r := &runner{opt: Options{Seed: 11, Events: 6, OutDir: dir, ShrinkRuns: 256, EdgeP: 0.3}}
	res := runTyped[core.Pointer](r, k,
		func() core.Protocol[core.Pointer] { return &noRepairSMM{smm: core.NewSMM()} },
		faults.SMMChecker, faults.Options{BoundFactor: 1, BoundSlack: 1})
	var buf bytes.Buffer
	if got := render(&buf, r.opt.withDefaults(), []cellResult{res}, r.shrinkRuns); got != 1 {
		t.Fatalf("render counted %d failures, want 1", got)
	}
	out := buf.String()
	for _, want := range []string{"FAIL SMM/lockstep n=8 trial=0:", "minimized to", "artifact: ", "failures: 1 of 1 cells"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
