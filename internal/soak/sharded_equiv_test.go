package soak

import (
	"strings"
	"testing"

	"selfstab/internal/sim"
)

// A soak campaign's report must be byte-identical when every sim-package
// executor under test runs sharded — fault injection, recovery
// verification, and bound checking all ride on the same observables the
// sharded engine promises not to change.
func TestSoakReportByteIdenticalSharded(t *testing.T) {
	opt := Options{Seed: 42, Sizes: []int{8, 10}, Trials: 1, Events: 6, Workers: 2}
	campaign := func() string {
		var sb strings.Builder
		if _, err := Run(opt, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	frontier := campaign()

	sim.SetShards(3)
	defer sim.SetShards(1)
	sharded := campaign()

	if frontier != sharded {
		t.Fatalf("soak reports diverged under sharding:\nfrontier:\n%s\nsharded:\n%s", frontier, sharded)
	}
}
