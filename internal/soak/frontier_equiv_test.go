package soak

import (
	"strings"
	"testing"

	"selfstab/internal/beacon"
	"selfstab/internal/runtime"
	"selfstab/internal/sim"
)

// A soak campaign's report must be byte-identical whether the executors
// under test schedule with the active frontier or with the full-scan
// reference engine, across the whole (protocol, model) matrix and with
// faults in flight.
func TestSoakReportByteIdenticalAcrossEngines(t *testing.T) {
	opt := Options{Seed: 42, Sizes: []int{8, 10}, Trials: 1, Events: 6, Workers: 2}
	campaign := func() string {
		var sb strings.Builder
		if _, err := Run(opt, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	frontier := campaign()

	sim.SetReferenceScan(true)
	runtime.SetReferenceScan(true)
	beacon.SetReferenceScan(true)
	defer func() {
		sim.SetReferenceScan(false)
		runtime.SetReferenceScan(false)
		beacon.SetReferenceScan(false)
	}()
	reference := campaign()

	if frontier != reference {
		t.Fatalf("soak reports diverged between engines:\nfrontier:\n%s\nreference:\n%s", frontier, reference)
	}
}
