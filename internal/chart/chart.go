// Package chart renders line charts as ASCII for terminal-first
// inspection of the experiment series — the "figures" of EXPERIMENTS.md
// (rounds versus n, slowdown versus topology, rounds versus staleness)
// without leaving the shell.
package chart

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"selfstab/internal/harness"
)

// Series is one named polyline.
type Series struct {
	Name string
	X, Y []float64
}

// markers are assigned to series in order, cycling.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render plots the series onto a width×height character grid with
// axes and a legend. Width and height are the plot area; the rendered
// block is slightly larger. Series with no points are skipped.
func Render(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 8 || height < 4 {
		return fmt.Errorf("chart: plot area %dx%d too small", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	nonEmpty := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("chart: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			continue
		}
		nonEmpty++
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if nonEmpty == 0 {
		return fmt.Errorf("chart: no data")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
		return clamp(height-1-r, 0, height-1)
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			grid[row(s.Y[i])][col(s.X[i])] = m
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	yTop := trimFloat(maxY)
	yBot := trimFloat(minY)
	labelW := max(len(yTop), len(yBot))
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yTop, labelW)
		case height - 1:
			label = pad(yBot, labelW)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	lo, hi := trimFloat(minX), trimFloat(maxX)
	gap := width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s%s\n",
		strings.Repeat(" ", labelW), lo, strings.Repeat(" ", gap), hi); err != nil {
		return err
	}
	for si, s := range series {
		if len(s.X) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %c %s\n", markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

// SeriesFromTable extracts one series per distinct value of groupCol,
// using xCol and yCol as coordinates. Cells that do not parse as numbers
// (after stripping a trailing '%' or 'x') are skipped.
func SeriesFromTable(t *harness.Table, groupCol, xCol, yCol string) ([]Series, error) {
	gi, xi, yi := colIndex(t, groupCol), colIndex(t, xCol), colIndex(t, yCol)
	if gi < 0 || xi < 0 || yi < 0 {
		return nil, fmt.Errorf("chart: columns %q/%q/%q not all present in %v", groupCol, xCol, yCol, t.Cols)
	}
	order := []string{}
	byName := map[string]*Series{}
	for _, row := range t.Rows {
		x, okX := parseCell(row[xi])
		y, okY := parseCell(row[yi])
		if !okX || !okY {
			continue
		}
		name := row[gi]
		s, ok := byName[name]
		if !ok {
			s = &Series{Name: name}
			byName[name] = s
			order = append(order, name)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	out := make([]Series, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chart: no numeric rows for %q vs %q", xCol, yCol)
	}
	return out, nil
}

func colIndex(t *harness.Table, name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

func parseCell(cell string) (float64, bool) {
	cell = strings.TrimSpace(cell)
	cell = strings.TrimSuffix(cell, "%")
	cell = strings.TrimSuffix(cell, "x")
	v, err := strconv.ParseFloat(cell, 64)
	return v, err == nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}
