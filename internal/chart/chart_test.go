package chart

import (
	"strings"
	"testing"

	"selfstab/internal/harness"
)

func TestRenderBasic(t *testing.T) {
	var sb strings.Builder
	err := Render(&sb, "rounds vs n", 40, 10,
		Series{Name: "path", X: []float64{8, 16, 32}, Y: []float64{2, 3, 4}},
		Series{Name: "complete", X: []float64{8, 16, 32}, Y: []float64{6, 14, 30}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rounds vs n", "* path", "o complete", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Marker counts: all points plotted (possibly overlapping; at least one each).
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, "t", 4, 2); err == nil {
		t.Error("tiny plot accepted")
	}
	if err := Render(&sb, "t", 40, 10); err == nil {
		t.Error("no data accepted")
	}
	if err := Render(&sb, "t", 40, 10, Series{Name: "bad", X: []float64{1}, Y: nil}); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var sb strings.Builder
	err := Render(&sb, "flat", 20, 5, Series{Name: "s", X: []float64{1, 1}, Y: []float64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("point not plotted")
	}
}

func TestSeriesFromTable(t *testing.T) {
	tbl := &harness.Table{Cols: []string{"topology", "n", "rounds mean"}}
	tbl.AddRow("path", "8", "2.0")
	tbl.AddRow("path", "16", "2.8")
	tbl.AddRow("cycle", "8", "2.3")
	tbl.AddRow("cycle", "16", "3.0")
	tbl.AddRow("cycle", "32", "not-a-number") // skipped
	series, err := SeriesFromTable(tbl, "topology", "n", "rounds mean")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	if series[0].Name != "path" || len(series[0].X) != 2 || series[0].Y[1] != 2.8 {
		t.Fatalf("path series = %+v", series[0])
	}
	if len(series[1].X) != 2 {
		t.Fatalf("cycle series kept bad row: %+v", series[1])
	}
}

func TestSeriesFromTableSuffixes(t *testing.T) {
	tbl := &harness.Table{Cols: []string{"g", "x", "y"}}
	tbl.AddRow("a", "1", "50%")
	tbl.AddRow("a", "2", "1.5x")
	series, err := SeriesFromTable(tbl, "g", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Y[0] != 50 || series[0].Y[1] != 1.5 {
		t.Fatalf("suffix parsing: %+v", series[0])
	}
}

func TestSeriesFromTableErrors(t *testing.T) {
	tbl := &harness.Table{Cols: []string{"a", "b"}}
	if _, err := SeriesFromTable(tbl, "a", "b", "missing"); err == nil {
		t.Error("missing column accepted")
	}
	tbl.AddRow("g", "nope")
	if _, err := SeriesFromTable(tbl, "a", "a", "b"); err == nil {
		t.Error("all-unparsable table accepted")
	}
}
