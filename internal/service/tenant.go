package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"selfstab/internal/graph"
)

// dedupWindow bounds the idempotency-key memory per tenant: the oldest
// keys are evicted in arrival order once the window fills, matching the
// at-most-once guarantee clients get for retries within the window.
const dedupWindow = 4096

var (
	errQuarantined = errors.New("tenant quarantined")
	errClosed      = errors.New("tenant closed")
)

// command is one unit of work for a tenant's event loop. The reply
// channel is buffered (capacity 1) so the loop never blocks on a
// handler that gave up waiting.
type command struct {
	mut Mutation
	// ctx is the request context; it bounds OpConverge execution only.
	// Ordinary mutations always run their full deterministic epoch —
	// a client deadline must not change where the state lands.
	ctx   context.Context
	reply chan cmdResult
}

type cmdResult struct {
	Seq       int64
	Duplicate bool
	Rounds    int
	Converged bool
	Legit     bool
	CheckErr  string
	Err       error
}

// TenantStatus is the read model served by GET /v1/tenants/{id}.
type TenantStatus struct {
	ID              string `json:"id"`
	Protocol        string `json:"protocol"`
	N               int    `json:"n"`
	M               int    `json:"m"`
	Seq             int64  `json:"seq"`
	Rounds          int    `json:"rounds"`
	Moves           int    `json:"moves"`
	Converged       bool   `json:"converged"`
	Legit           bool   `json:"legit"`
	CheckError      string `json:"check_error,omitempty"`
	Bound           int    `json:"bound"`
	LastEpochRounds int    `json:"last_epoch_rounds"`
	MaxEpochRounds  int    `json:"max_epoch_rounds"`
	EpochsOverBound int    `json:"epochs_over_bound"`
	Quarantined     string `json:"quarantined,omitempty"`
	QueueLen        int    `json:"queue_len"`
	QueueCap        int    `json:"queue_cap"`
}

// SnapshotView is the read model served by GET .../snapshot: the same
// deterministic content a checkpoint file holds, read at a consistent
// point under the tenant lock.
type SnapshotView struct {
	ID              string          `json:"id"`
	Protocol        string          `json:"protocol"`
	Seq             int64           `json:"seq"`
	Converged       bool            `json:"converged"`
	Edges           [][2]int        `json:"edges"`
	States          json.RawMessage `json:"states"`
	Rounds          int             `json:"rounds"`
	Moves           int             `json:"moves"`
	MaxEpochRounds  int             `json:"max_epoch_rounds"`
	EpochsOverBound int             `json:"epochs_over_bound"`
}

// tenant hosts one graph instance behind a single-writer event loop:
// the loop goroutine is the only writer of engine state and the
// journal, handlers are readers via mu, and the bounded cmds channel is
// the backpressure boundary the HTTP layer surfaces as 503.
type tenant struct {
	id        string
	meta      tenantMeta
	dir       string
	bound     int
	slice     int
	snapEvery int64
	// commitEvery is the group-commit window: after the first command of
	// a batch arrives, the loop waits up to this long for more before
	// the single fsync. Zero disables the wait (drain-only batching).
	commitEvery time.Duration
	// fsyncEach forces the pre-group-commit discipline of one fsync per
	// journaled mutation; kept as the benchmark baseline.
	fsyncEach bool

	limiter *tokenBucket

	cmds     chan *command
	quit     chan struct{}
	quitOnce sync.Once
	// dead is closed when the event loop has exited (gracefully or by
	// quarantine); handlers select on it to fail fast instead of waiting
	// for a reply that will never come.
	dead chan struct{}

	// svcCtx is the service's kill context: canceling it stops
	// convergence between rounds and makes the loop exit without
	// flushing, simulating a crash for the recovery tier.
	svcCtx context.Context

	mu sync.RWMutex
	// guarded by mu
	eng tenantEngine
	// guarded by mu
	jr *journal
	// guarded by mu
	//selfstab:durable
	//selfstab:owner loop
	seq int64
	// guarded by mu
	//selfstab:owner loop
	roundsTotal int
	// guarded by mu
	//selfstab:owner loop
	movesTotal int
	// guarded by mu
	//selfstab:owner loop
	converged bool
	// guarded by mu
	//selfstab:owner loop
	legit bool
	// guarded by mu
	//selfstab:owner loop
	checkErr string
	// guarded by mu
	//selfstab:owner loop
	lastEpochRounds int
	// guarded by mu
	//selfstab:owner loop
	maxEpochRounds int
	// guarded by mu
	//selfstab:owner loop
	epochsOverBound int
	// guarded by mu
	//selfstab:owner loop
	quarantined string
	// guarded by mu
	//selfstab:durable
	//selfstab:owner loop
	dedup map[string]int64
	// guarded by mu
	//selfstab:durable
	//selfstab:owner loop
	dedupR dedupRing
	// guarded by mu
	//selfstab:owner loop
	batchHist [8]int64
}

type tenantOptions struct {
	queueDepth  int
	slice       int
	snapEvery   int64
	shards      int
	ratePerSec  float64
	burst       int
	commitEvery time.Duration
	segBytes    int64
	fsyncEach   bool
	now         func() time.Time
}

// newTenant builds (or recovers) a tenant from its directory and starts
// its event loop. Recovery is replay: engine from meta, then either the
// latest snapshot or the deterministic init epoch, then every journal
// entry past the snapshot — each with its full deterministic
// convergence budget, landing byte-identical to the uninterrupted run.
//
// Runs strictly before `go t.loop()` spawns the event loop, so it (and
// the recovery helpers it calls) owns the loop's fields pre-spawn.
//
//selfstab:ownedby tenant.loop
func newTenant(svcCtx context.Context, dir string, meta tenantMeta, opts tenantOptions) (*tenant, error) {
	eng, err := newEngine(meta.Protocol, meta.N, meta.Edges, opts.shards)
	if err != nil {
		return nil, err
	}
	jr, entries, err := openJournal(dir, opts.segBytes)
	if err != nil {
		eng.close()
		return nil, err
	}
	t := &tenant{
		id:          meta.ID,
		meta:        meta,
		dir:         dir,
		bound:       protocolBound(meta.Protocol, meta.N),
		slice:       opts.slice,
		snapEvery:   opts.snapEvery,
		commitEvery: opts.commitEvery,
		fsyncEach:   opts.fsyncEach,
		limiter:     newTokenBucket(opts.ratePerSec, opts.burst, opts.now),
		cmds:        make(chan *command, opts.queueDepth),
		quit:        make(chan struct{}),
		dead:        make(chan struct{}),
		svcCtx:      svcCtx,
		eng:         eng,
		jr:          jr,
		dedup:       make(map[string]int64),
	}
	if err := t.recoverFrom(entries); err != nil {
		t.closeResources()
		return nil, err
	}
	go t.loop()
	return t, nil
}

// recoverFrom replays the tenant to its last acknowledged state. It
// runs before the event loop starts, so there is no contention; the
// helpers it calls still lock, keeping the guarded-field discipline
// uniform.
func (t *tenant) recoverFrom(entries []Mutation) error {
	snap, haveSnap, err := latestSnapshot(t.dir)
	if err != nil {
		return err
	}
	var last int64
	if haveSnap {
		if err := t.restore(snap); err != nil {
			return fmt.Errorf("restore snapshot seq %d: %w", snap.Seq, err)
		}
		last = snap.Seq
	} else {
		// Init epoch: converge the clean starting configuration. This is
		// seq 0 of the deterministic derivation, so it runs the same
		// bounded budget mutations do.
		rounds, moves, stable, err := t.runEpoch(t.svcCtx, t.bound+1)
		if err != nil {
			return err
		}
		t.noteEpoch(rounds, moves, stable, true)
	}
	for _, m := range entries {
		if m.Seq <= last {
			continue
		}
		last = m.Seq
		if err := t.replayEntry(m); err != nil {
			return fmt.Errorf("replay seq %d: %w", m.Seq, err)
		}
		budget, counted := t.bound+1, true
		if m.Op == OpConverge {
			budget, counted = m.Rounds, false
		}
		rounds, moves, stable, err := t.runEpoch(t.svcCtx, budget)
		if err != nil {
			return fmt.Errorf("replay seq %d: %w", m.Seq, err)
		}
		if m.Op == OpConverge {
			// The journaled outcome is authoritative: replay executes the
			// recorded rounds and reproduces the states, but cannot see
			// the stability probe the original run performed.
			stable = m.Stable
		}
		t.noteEpoch(rounds, moves, stable, counted)
	}
	return nil
}

// restore reconciles the engine (built from meta's topology and clean
// states) to a checkpoint.
//
//selfstab:replay
func (t *tenant) restore(snap tenantSnapshot) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	want := make(map[[2]int]bool, len(snap.Edges))
	for _, e := range snap.Edges {
		want[e] = true
	}
	for _, e := range t.eng.edges() {
		if !want[e] {
			t.eng.setLink(graph.NewEdge(graph.NodeID(e[0]), graph.NodeID(e[1])), false)
		}
	}
	for _, e := range snap.Edges {
		t.eng.setLink(graph.NewEdge(graph.NodeID(e[0]), graph.NodeID(e[1])), true)
	}
	if err := t.eng.decodeStates(snap.States); err != nil {
		return err
	}
	t.seq = snap.Seq
	t.roundsTotal = snap.Rounds
	t.movesTotal = snap.Moves
	t.converged = snap.Converged
	t.maxEpochRounds = snap.MaxEpochRounds
	t.epochsOverBound = snap.EpochsOverBound
	for _, de := range snap.DedupKeys {
		remember(t.dedup, &t.dedupR, de.Key, de.Seq)
	}
	if snap.Converged {
		if err := t.eng.check(); err != nil {
			t.checkErr = err.Error()
		} else {
			t.legit = true
		}
	}
	return nil
}

// replayEntry re-applies one journaled mutation during recovery: seq,
// idempotency key, and the topology/state change (convergence follows
// in recoverFrom).
//
//selfstab:replay
func (t *tenant) replayEntry(m Mutation) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// A journal line can be complete, well-formed JSON and still encode a
	// mutation the live path would have rejected — a corrupted byte can
	// land inside a JSON string or number without breaking the line
	// framing. Re-validate so a poisoned entry fails recovery with an
	// error instead of panicking mid-replay.
	if err := validateMutation(m, t.eng.n()); err != nil {
		return err
	}
	t.seq = m.Seq
	if m.Key != "" {
		remember(t.dedup, &t.dedupR, m.Key, m.Seq)
	}
	return applyMutation(t.eng, m)
}

// loop is the single writer. Each wakeup gathers a batch from the
// bounded queue and processes it with one group commit per contiguous
// run of journalable mutations. It exits on graceful quit (drain queue,
// flush a final checkpoint), service kill (immediately, no flush — the
// journal is already durable), or quarantine after a panic.
func (t *tenant) loop() {
	defer close(t.dead)
	defer t.closeResources()
	for {
		select {
		case <-t.svcCtx.Done():
			return
		case <-t.quit:
			for {
				batch := t.drainQueued()
				if len(batch) == 0 {
					t.flush()
					return
				}
				if !t.handleBatch(batch) {
					return
				}
			}
		case cmd := <-t.cmds:
			if !t.handleBatch(t.gather(cmd)) {
				return
			}
		}
	}
}

// drainQueued empties the bounded queue without blocking.
func (t *tenant) drainQueued() []*command {
	var batch []*command
	for {
		select {
		case cmd := <-t.cmds:
			batch = append(batch, cmd)
		default:
			return batch
		}
	}
}

// gather builds one batch: the command that woke the loop, everything
// already queued behind it, and — when a commit window is configured —
// whatever else arrives within commitEvery. The window is how a
// sustained stream amortizes one fsync over many mutations; its length
// caps the extra latency a lone request can pay.
func (t *tenant) gather(first *command) []*command {
	batch := append([]*command{first}, t.drainQueued()...)
	if t.commitEvery <= 0 {
		return batch
	}
	limit := cap(t.cmds) + 1
	if len(batch) >= limit {
		return batch
	}
	timer := time.NewTimer(t.commitEvery)
	defer timer.Stop()
	for len(batch) < limit {
		select {
		case cmd := <-t.cmds:
			batch = append(batch, cmd)
		case <-timer.C:
			return batch
		case <-t.quit:
			// Shutting down: stop collecting and let the loop drain.
			return batch
		case <-t.svcCtx.Done():
			return batch
		}
	}
	return batch
}

// isBarrier reports whether an op cannot join a group commit: converge
// journals post-hoc (its entry records the rounds actually executed,
// unknowable before running) and chaos panics never journal at all.
// Batching either with write-ahead mutations would let a later seq
// reach the journal before an earlier one, breaking the strictly
// ascending order recovery depends on.
func isBarrier(op string) bool { return op == OpConverge || op == OpChaosPanic }

// handleBatch splits a batch into contiguous runs of journalable
// mutations (group-committed by handleRun) separated by barrier ops
// (processed singly by handle). Commands are replied to strictly in
// arrival order. Returns false when the loop must exit; commands not
// yet replied to are then covered by the closed dead channel.
func (t *tenant) handleBatch(batch []*command) bool {
	for len(batch) > 0 {
		if isBarrier(batch[0].mut.Op) {
			if !t.handle(batch[0]) {
				return false
			}
			batch = batch[1:]
			continue
		}
		n := 1
		if !t.fsyncEach {
			for n < len(batch) && !isBarrier(batch[n].mut.Op) {
				n++
			}
		}
		if !t.handleRun(batch[:n]) {
			return false
		}
		batch = batch[n:]
	}
	return true
}

// pendingCmd is one command of a group-commit run between its prepare
// (seq assigned, entry buffered) and its apply+reply.
type pendingCmd struct {
	cmd *command
	mut Mutation
	res cmdResult
	// done marks commands resolved at prepare time (duplicates and
	// validation failures): nothing was journaled, reply res as-is.
	done bool
}

// handleRun processes one contiguous run of journalable mutations as a
// group commit: every entry is prepared (seq assigned, buffered
// append), then a single fsync makes the whole run durable, and only
// then is anything applied. That keeps the write-ahead invariant
// batch-wide — no mutation's effect exists in memory before its entry
// is durable — at one fsync per run instead of one per entry. A panic
// anywhere quarantines the tenant; a commit failure does too, because a
// partially flushed buffer would corrupt every later append.
func (t *tenant) handleRun(run []*command) (ok bool) {
	var current *command
	defer func() {
		if r := recover(); r != nil {
			t.setQuarantined(fmt.Sprintf("%v", r))
			if current != nil {
				current.reply <- cmdResult{Err: fmt.Errorf("%w: %v", errQuarantined, r)}
			}
			ok = false
		}
	}()
	pend := make([]pendingCmd, 0, len(run))
	for _, cmd := range run {
		current = cmd
		m := cmd.mut
		res, done := t.prepare(&m)
		pend = append(pend, pendingCmd{cmd: cmd, mut: m, res: res, done: done})
	}
	current = nil
	if err := t.commitBatch(); err != nil {
		t.setQuarantined(fmt.Sprintf("journal commit: %v", err))
		for _, p := range pend {
			p.cmd.reply <- cmdResult{Err: fmt.Errorf("%w: journal commit: %v", errQuarantined, err)}
		}
		return false
	}
	for i := range pend {
		p := &pend[i]
		current = p.cmd
		if p.done {
			p.cmd.reply <- p.res
			continue
		}
		t.applyLocked(p.mut)
		rounds, moves, stable, cerr := t.runEpoch(t.svcCtx, t.bound+1)
		if t.svcCtx.Err() != nil {
			// Killed mid-epoch: the in-memory state is off the
			// deterministic trajectory and will be discarded; recovery
			// replays the journal. Do not checkpoint.
			p.cmd.reply <- cmdResult{Seq: p.mut.Seq, Err: t.svcCtx.Err()}
			return false
		}
		p.cmd.reply <- t.finish(p.mut, rounds, moves, stable, true, cerr)
	}
	return true
}

// handle processes one barrier command (converge or chaos panic). A
// panic anywhere in the pipeline quarantines the tenant: the panic
// value is recorded, the waiting client gets an error, and the loop
// exits — the daemon keeps serving every other tenant.
func (t *tenant) handle(cmd *command) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			t.setQuarantined(fmt.Sprintf("%v", r))
			cmd.reply <- cmdResult{Err: fmt.Errorf("%w: %v", errQuarantined, r)}
			ok = false
		}
	}()
	m := cmd.mut
	if m.Op == OpChaosPanic {
		// Deliberate crash for the chaos tier. Never journaled: a replay
		// must recover the tenant, not re-crash it.
		panic("chaos: injected panic via API")
	}
	res, done := t.prepare(&m)
	if done {
		cmd.reply <- res
		return true
	}

	ctx := t.svcCtx
	if cmd.ctx != nil {
		// A converge request honors its deadline (unlike mutations):
		// truncation is journaled with the rounds actually executed,
		// so replay reproduces it.
		mctx, cancel := context.WithCancel(cmd.ctx)
		defer cancel()
		stop := context.AfterFunc(t.svcCtx, cancel)
		defer stop()
		ctx = mctx
	}
	rounds, moves, stable, cerr := t.runEpoch(ctx, m.Rounds)
	if t.svcCtx.Err() != nil {
		// Killed mid-epoch: see handleRun.
		cmd.reply <- cmdResult{Seq: m.Seq, Err: t.svcCtx.Err()}
		return false
	}
	// Journal the converge entry post-hoc with the outcome it actually
	// had, committed (fsynced) before the client is acknowledged.
	m.Rounds, m.Stable = rounds, stable
	if err := t.journalAppend(m); err != nil {
		t.setQuarantined(fmt.Sprintf("journal commit: %v", err))
		cmd.reply <- cmdResult{Seq: m.Seq, Err: fmt.Errorf("%w: journal commit: %v", errQuarantined, err)}
		return false
	}
	cmd.reply <- t.finish(m, rounds, moves, stable, false, cerr)
	return true
}

// prepare assigns the sequence number and buffers the journal entry for
// the mutation (write-ahead: the caller must commit — fsync — before
// applying it). Converge entries skip the append here and are journaled
// post-hoc in handle with the rounds they actually executed.
func (t *tenant) prepare(m *Mutation) (cmdResult, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m.Key != "" {
		if s, dup := t.dedup[m.Key]; dup {
			return cmdResult{Seq: s, Duplicate: true, Converged: t.converged, Legit: t.legit, CheckErr: t.checkErr}, true
		}
	}
	if err := validateMutation(*m, t.eng.n()); err != nil {
		return cmdResult{Err: err}, true
	}
	//lint:ignore walorder seq is assigned before the buffered append so the entry carries it; the append-failure path rolls it back, and commitBatch fsyncs the run before the first apply
	t.seq++
	m.Seq = t.seq
	if m.Op == OpCorrupt {
		// Per-mutation corruption stream: a function of (tenant seed,
		// seq), so replaying the journal redraws identical states.
		m.Seed = deriveSeed(t.meta.Seed, "mutation", int(m.Seq))
	}
	if m.Op != OpConverge {
		if err := t.jr.append(*m); err != nil {
			t.seq--
			return cmdResult{Err: err}, true
		}
	}
	if m.Key != "" {
		remember(t.dedup, &t.dedupR, m.Key, m.Seq)
	}
	return cmdResult{Seq: m.Seq}, false
}

// commitBatch makes every entry buffered by the run's prepares durable
// with one fsync — the batch-wide write-ahead point — and folds the
// realized batch size into the histogram. A clean journal commits for
// free, so runs of pure duplicates/rejects cost nothing.
//
//selfstab:journal
func (t *tenant) commitBatch() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.jr.pendingEntries()
	if err := t.jr.commit(); err != nil {
		return err
	}
	if n > 0 {
		t.batchHist[batchBucket(n)]++
	}
	return nil
}

// batchBucket maps a realized batch size onto the varz histogram
// buckets 1, 2, ≤4, ≤8, ≤16, ≤32, ≤64, >64.
func batchBucket(n int) int {
	b := 0
	for limit := 1; b < 7 && n > limit; b++ {
		limit <<= 1
	}
	return b
}

// applyLocked applies one prepared entry's topology/state change.
// Callers invoke it strictly after commitBatch has fsynced the run —
// the entry is durable before its effect exists in memory. prepare
// validated the mutation, so a failure here means the engine and the
// journal have diverged; quarantine via panic rather than ack.
//
//selfstab:applies
func (t *tenant) applyLocked(m Mutation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := applyMutation(t.eng, m); err != nil {
		panic(fmt.Sprintf("apply journaled mutation seq %d: %v", m.Seq, err))
	}
}

// runEpoch drives convergence in short slices, releasing the lock
// between slices so reads stay responsive during long epochs. The
// sliced trajectory is pinned byte-identical to a one-shot run by
// TestConvergeCtxChunkedMatchesOneShot in internal/sim.
func (t *tenant) runEpoch(ctx context.Context, budget int) (rounds, moves int, stable bool, err error) {
	for rounds < budget {
		sl := t.slice
		if sl > budget-rounds {
			sl = budget - rounds
		}
		t.mu.Lock()
		r, mv, st, cerr := t.eng.converge(ctx, sl)
		t.mu.Unlock()
		rounds += r
		moves += mv
		if st {
			return rounds, moves, true, nil
		}
		if cerr != nil {
			return rounds, moves, false, cerr
		}
	}
	return rounds, moves, false, nil
}

// finish updates epoch accounting and checkpoints at the snapshot
// cadence. Only the event-loop goroutine calls it, so the lock/unlock
// seams between the steps admit readers but never writers.
func (t *tenant) finish(m Mutation, rounds, moves int, stable, counted bool, cerr error) cmdResult {
	t.noteEpoch(rounds, moves, stable, counted)
	res := t.epochResult(m.Seq, rounds)
	if cerr != nil {
		res.Err = cerr
		return res
	}
	if t.snapEvery > 0 && m.Seq%t.snapEvery == 0 {
		if err := t.checkpoint(); err != nil {
			res.Err = err
		}
	}
	return res
}

// journalAppend is the locked append+commit seam for post-hoc
// (OpConverge) journal entries: one entry, one fsync, durable before
// the acknowledgement.
//
//selfstab:journal
func (t *tenant) journalAppend(m Mutation) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.jr.append(m); err != nil {
		return err
	}
	return t.jr.commit()
}

// noteEpoch folds one epoch's outcome into the tenant counters.
// counted=false for explicit converge requests, whose budget is
// client-chosen and therefore says nothing about the paper's bound.
func (t *tenant) noteEpoch(rounds, moves int, stable, counted bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roundsTotal += rounds
	t.movesTotal += moves
	t.lastEpochRounds = rounds
	t.converged = stable
	if counted {
		if rounds > t.maxEpochRounds {
			t.maxEpochRounds = rounds
		}
		if !stable {
			t.epochsOverBound++
		}
	}
	t.legit = false
	t.checkErr = ""
	if stable {
		if err := t.eng.check(); err != nil {
			t.checkErr = err.Error()
		} else {
			t.legit = true
		}
	}
}

func (t *tenant) epochResult(seq int64, rounds int) cmdResult {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return cmdResult{Seq: seq, Rounds: rounds, Converged: t.converged, Legit: t.legit, CheckErr: t.checkErr}
}

// checkpoint writes a deterministic snapshot of the current
// (mutation-boundary) state, then retires every journal segment the
// snapshot wholly covers.
func (t *tenant) checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quarantined != "" {
		return nil
	}
	// The ring yields the window oldest-first, i.e. ascending seq: live
	// inserts follow seq assignment and restore re-inserts in stored
	// order.
	keys := t.dedupR.entries()
	if err := writeSnapshot(t.dir, tenantSnapshot{
		Seq:             t.seq,
		Rounds:          t.roundsTotal,
		Moves:           t.movesTotal,
		Converged:       t.converged,
		EpochsOverBound: t.epochsOverBound,
		MaxEpochRounds:  t.maxEpochRounds,
		Edges:           t.eng.edges(),
		States:          t.eng.encodeStates(),
		DedupKeys:       keys,
	}); err != nil {
		return err
	}
	// Replay now starts from this snapshot: segments whose entries all
	// fall at or before it can never be read again.
	return t.jr.compact(t.seq)
}

// flush writes a final checkpoint on graceful shutdown, unless a kill
// raced in (a killed tenant's state is mid-epoch and must not be
// checkpointed; the journal already has everything).
func (t *tenant) flush() {
	if t.svcCtx.Err() != nil {
		return
	}
	t.checkpoint()
}

func (t *tenant) closeResources() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jr.close()
	t.eng.close()
}

func (t *tenant) setQuarantined(reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.quarantined = reason
}

// close asks the event loop to drain and exit; safe to call repeatedly.
func (t *tenant) close() {
	t.quitOnce.Do(func() { close(t.quit) })
}

// --- reads (any goroutine) ---

func (t *tenant) status() TenantStatus {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return TenantStatus{
		ID:              t.id,
		Protocol:        t.eng.protocol(),
		N:               t.eng.n(),
		M:               t.eng.m(),
		Seq:             t.seq,
		Rounds:          t.roundsTotal,
		Moves:           t.movesTotal,
		Converged:       t.converged,
		Legit:           t.legit,
		CheckError:      t.checkErr,
		Bound:           t.bound,
		LastEpochRounds: t.lastEpochRounds,
		MaxEpochRounds:  t.maxEpochRounds,
		EpochsOverBound: t.epochsOverBound,
		Quarantined:     t.quarantined,
		QueueLen:        len(t.cmds),
		QueueCap:        cap(t.cmds),
	}
}

func (t *tenant) snapshotView() SnapshotView {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return SnapshotView{
		ID:              t.id,
		Protocol:        t.eng.protocol(),
		Seq:             t.seq,
		Converged:       t.converged,
		Edges:           t.eng.edges(),
		States:          t.eng.encodeStates(),
		Rounds:          t.roundsTotal,
		Moves:           t.movesTotal,
		MaxEpochRounds:  t.maxEpochRounds,
		EpochsOverBound: t.epochsOverBound,
	}
}

func (t *tenant) membershipView() json.RawMessage {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.eng.membership()
}

func (t *tenant) node(v int) (NodeInfo, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if v < 0 || v >= t.eng.n() {
		return NodeInfo{}, fmt.Errorf("node %d out of range [0, %d)", v, t.eng.n())
	}
	return t.eng.nodeInfo(graph.NodeID(v)), nil
}

// journalVars snapshots the tenant's journal observability counters for
// varz.
func (t *tenant) journalVars() TenantJournalVars {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := t.jr.stats()
	return TenantJournalVars{
		Appends:           st.appends,
		Fsyncs:            st.fsyncs,
		Batches:           st.commits,
		Segments:          st.segments,
		ReplaySuffixBytes: st.liveBytes,
		BatchSizes:        t.batchHist,
	}
}

// --- mutation mechanics shared by the live path and replay ---

// dedupRing is the fixed-capacity idempotency window: a circular buffer
// that overwrites the oldest entry in place once full, so sustained
// streams reuse one backing array instead of the previous
// evict-front+append slice, which reallocated and kept evicted keys
// reachable through the old backing array.
type dedupRing struct {
	buf []dedupEntry
	// head indexes the oldest entry; entries occupy head..head+n-1 mod
	// len(buf).
	head int
	n    int
}

// push records e, returning the entry it displaced when the window was
// already full.
func (r *dedupRing) push(e dedupEntry) (evicted dedupEntry, full bool) {
	if r.buf == nil {
		r.buf = make([]dedupEntry, dedupWindow)
	}
	if r.n == len(r.buf) {
		evicted = r.buf[r.head]
		r.buf[r.head] = e
		r.head = (r.head + 1) % len(r.buf)
		return evicted, true
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
	return dedupEntry{}, false
}

// entries returns the window oldest-first.
func (r *dedupRing) entries() []dedupEntry {
	out := make([]dedupEntry, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// remember records key→seq in the dedup window, evicting the oldest
// key in place when the ring is full. The caller owns the lock guarding
// both structures and passes them in explicitly.
func remember(dedup map[string]int64, r *dedupRing, key string, seq int64) {
	if old, full := r.push(dedupEntry{Key: key, Seq: seq}); full {
		delete(dedup, old.Key)
	}
	dedup[key] = seq
}

func validateMutation(m Mutation, n int) error {
	inRange := func(v *int) bool { return v != nil && *v >= 0 && *v < n }
	switch m.Op {
	case OpAddEdge, OpRemoveEdge:
		if !inRange(m.U) || !inRange(m.V) || *m.U == *m.V {
			return fmt.Errorf("%s needs distinct u, v in [0, %d)", m.Op, n)
		}
	case OpAddNode:
		if !inRange(m.U) {
			return fmt.Errorf("%s needs u in [0, %d)", m.Op, n)
		}
		for _, w := range m.Nodes {
			if w < 0 || w >= n || w == *m.U {
				return fmt.Errorf("%s neighbor %d out of range", m.Op, w)
			}
		}
	case OpRemoveNode:
		if !inRange(m.U) {
			return fmt.Errorf("%s needs u in [0, %d)", m.Op, n)
		}
	case OpCorrupt:
		if len(m.Nodes) == 0 {
			return fmt.Errorf("%s needs a non-empty node list", m.Op)
		}
		for _, w := range m.Nodes {
			if w < 0 || w >= n {
				return fmt.Errorf("%s node %d out of range [0, %d)", m.Op, w, n)
			}
		}
	case OpConverge:
		if m.Rounds < 0 {
			return fmt.Errorf("%s rounds must be >= 0", m.Op)
		}
	case OpChaosPanic:
		// handled before prepare; listed for exhaustiveness
	default:
		return fmt.Errorf("unknown op %q", m.Op)
	}
	return nil
}

// applyMutation performs the topology/state change for one journal
// entry. Node removal in the fixed-universe graph model means cutting
// every incident link (the node keeps evaluating but sees no
// neighbors); addition re-attaches explicit links.
//
//selfstab:applies
func applyMutation(eng tenantEngine, m Mutation) error {
	switch m.Op {
	case OpAddEdge:
		eng.setLink(graph.NewEdge(graph.NodeID(*m.U), graph.NodeID(*m.V)), true)
	case OpRemoveEdge:
		eng.setLink(graph.NewEdge(graph.NodeID(*m.U), graph.NodeID(*m.V)), false)
	case OpAddNode:
		u := graph.NodeID(*m.U)
		for _, w := range m.Nodes {
			eng.setLink(graph.NewEdge(u, graph.NodeID(w)), true)
		}
	case OpRemoveNode:
		u := graph.NodeID(*m.U)
		nbrs := append([]graph.NodeID(nil), eng.neighbors(u)...)
		for _, w := range nbrs {
			eng.setLink(graph.NewEdge(u, w), false)
		}
	case OpCorrupt:
		nodes := make([]graph.NodeID, len(m.Nodes))
		for i, w := range m.Nodes {
			nodes[i] = graph.NodeID(w)
		}
		eng.corrupt(nodes, m.Seed)
	case OpConverge:
		// no topology/state change; the epoch itself is the effect
	case OpChaosPanic:
		// never journaled, never applied; listed for exhaustiveness
	default:
		return fmt.Errorf("unknown op %q", m.Op)
	}
	return nil
}
