package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"selfstab/internal/faults"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
)

// chaosClient drives the API through a ChaosTransport, retrying dropped
// sends with the same idempotency key, the way a well-behaved client
// rides out a lossy network.
type chaosClient struct {
	t      *testing.T
	client *http.Client
	base   func() string
}

func (c *chaosClient) post(path string, body any, out any) int {
	c.t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	for attempt := 0; attempt < 100; attempt++ {
		resp, err := c.client.Post(c.base()+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			continue // dropped by chaos; retry with the same key
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Degradation, not failure: back off and retry. During the
			// mid-schedule kill window this is the expected answer.
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if out != nil && len(data) > 0 {
			if err := json.Unmarshal(data, out); err != nil {
				c.t.Fatalf("POST %s: decode %q: %v", path, data, err)
			}
		}
		return resp.StatusCode
	}
	c.t.Fatalf("POST %s: no success after 100 attempts", path)
	return 0
}

func (c *chaosClient) get(path string, out any) int {
	c.t.Helper()
	for attempt := 0; attempt < 100; attempt++ {
		resp, err := c.client.Get(c.base() + path)
		if err != nil {
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		if out != nil && len(data) > 0 {
			if err := json.Unmarshal(data, out); err != nil {
				c.t.Fatalf("GET %s: decode %q: %v", path, data, err)
			}
		}
		return resp.StatusCode
	}
	c.t.Fatalf("GET %s: no success after 100 attempts", path)
	return 0
}

// mutate sends one mutation with a unique idempotency key and asserts
// the epoch honored the paper's bound.
func (c *chaosClient) mutate(tenant string, m Mutation, key string, bound int) MutationResult {
	c.t.Helper()
	m.Key = key
	var res MutationResult
	code := c.post("/v1/tenants/"+tenant+"/mutations", m, &res)
	if code != http.StatusOK {
		c.t.Fatalf("mutation %s on %s: status %d", m.Op, tenant, code)
	}
	if !res.Duplicate && res.Rounds > bound {
		c.t.Fatalf("tenant %s epoch for %s took %d rounds, bound %d", tenant, m.Op, res.Rounds, bound)
	}
	if !res.Converged {
		c.t.Fatalf("tenant %s did not re-converge after %s: %+v", tenant, m.Op, res)
	}
	return res
}

// TestChaosTierEndToEnd is the resilience acceptance test: a generated
// fault schedule (crash/resurrect, corruption, mobility churn) is
// delivered through the HTTP API over a faulty network (drops,
// duplicates, reordered late duplicates), with one daemon kill/restart
// mid-schedule. Every tenant must re-converge within the paper's bound
// after every event, and snapshot+journal replay must reproduce the
// exact pre-kill state. CI runs this under -race.
func TestChaosTierEndToEnd(t *testing.T) {
	const (
		n     = 10
		seed  = 2026
		burst = 2
	)
	dir := t.TempDir()
	opts := Options{DataDir: dir, RatePerSec: 100000, Burst: 10000, SnapshotEvery: 4}
	svc, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	// The server survives daemon restarts via a swappable handler, like
	// a port that outlives the process behind it.
	var handler atomic.Value
	handler.Store(svc.Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	chaos := NewChaosTransport(http.DefaultTransport, seed, 0.15, 0.15)
	cc := &chaosClient{t: t, client: &http.Client{Transport: chaos}, base: func() string { return srv.URL }}

	// Two tenants, one per protocol, over the same ring topology (a
	// ring stays connected under single node crashes, which the churn
	// generator requires of its graph).
	ring := make([][2]int, n)
	for v := 0; v < n; v++ {
		ring[v] = [2]int{v, (v + 1) % n}
	}
	tenants := map[string]string{"smm-ring": ProtocolSMM, "smi-ring": ProtocolSMI}
	bounds := map[string]int{}
	for id, proto := range tenants {
		var st TenantStatus
		code := cc.post("/v1/tenants", createRequest{ID: id, Protocol: proto, N: n, Seed: seed, Edges: ring}, &st)
		if code != http.StatusCreated && code != http.StatusConflict {
			t.Fatalf("create %s: status %d", id, code)
		}
		if code == http.StatusConflict {
			// A duplicated create beat us; read the status instead.
			cc.get("/v1/tenants/"+id, &st)
		}
		bounds[id] = st.Bound
	}

	// A concrete, replayable fault campaign over a mirror of the shared
	// topology. The mirror tracks what the daemon's graphs look like so
	// churn stays connectivity-preserving.
	mirror := graph.New(n)
	for _, e := range ring {
		mirror.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	sched := faults.Generate(seed, mirror, faults.GenParams{
		Events:   10,
		MaxBurst: burst,
		Kinds:    []faults.Kind{faults.Crash, faults.Corrupt, faults.Churn},
	})

	killAt := len(sched.Events) / 2
	for i, ev := range sched.Events {
		if i == killAt {
			// Mid-schedule daemon crash: abrupt kill, then restart from
			// the same data dir. The journal is the only survivor.
			preKill := map[string]string{}
			for id := range tenants {
				var view SnapshotView
				cc.get("/v1/tenants/"+id+"/snapshot", &view)
				raw, _ := json.Marshal(view)
				preKill[id] = string(raw)
			}
			svc.Kill()
			svc2, err := Open(opts)
			if err != nil {
				t.Fatalf("reopen after kill: %v", err)
			}
			svc = svc2
			handler.Store(svc.Handler())
			for id, want := range preKill {
				var view SnapshotView
				if code := cc.get("/v1/tenants/"+id+"/snapshot", &view); code != http.StatusOK {
					t.Fatalf("tenant %s missing after restart: %d", id, code)
				}
				raw, _ := json.Marshal(view)
				if string(raw) != want {
					t.Fatalf("tenant %s state after kill+replay diverged:\npre:  %s\npost: %s", id, want, raw)
				}
			}
		}
		applyChaosEvent(t, cc, mirror, ev, i, seed, tenants, bounds)
	}
	chaos.Flush()

	// Final verdict: every tenant converged, legitimate, and never over
	// bound across the whole campaign.
	for id := range tenants {
		var st TenantStatus
		if code := cc.get("/v1/tenants/"+id, &st); code != http.StatusOK {
			t.Fatalf("final status %s: %d", id, code)
		}
		if !st.Converged || !st.Legit || st.EpochsOverBound != 0 {
			t.Fatalf("tenant %s final state violates recovery bounds: %+v", id, st)
		}
		if st.MaxEpochRounds > st.Bound {
			t.Fatalf("tenant %s worst epoch %d exceeded bound %d", id, st.MaxEpochRounds, st.Bound)
		}
	}

	// The chaos was real: the transport must have injected faults.
	drops, dups, replays := chaos.Stats()
	if drops == 0 || dups == 0 {
		t.Fatalf("chaos transport injected nothing: drops=%d dups=%d replays=%d", drops, dups, replays)
	}

	// And one last crash: the final state survives a kill+reopen too.
	final := map[string]string{}
	for id := range tenants {
		var view SnapshotView
		cc.get("/v1/tenants/"+id+"/snapshot", &view)
		raw, _ := json.Marshal(view)
		final[id] = string(raw)
	}
	svc.Kill()
	svc3, err := Open(opts)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	handler.Store(svc3.Handler())
	defer svc3.Kill()
	for id, want := range final {
		var view SnapshotView
		cc.get("/v1/tenants/"+id+"/snapshot", &view)
		raw, _ := json.Marshal(view)
		if string(raw) != want {
			t.Fatalf("tenant %s final replay diverged:\nwant %s\ngot  %s", id, want, raw)
		}
	}
}

// applyChaosEvent translates one schedule event into API mutations for
// every tenant, keeping the client-side topology mirror in sync.
func applyChaosEvent(t *testing.T, cc *chaosClient, mirror *graph.Graph, ev faults.Event, idx int, seed int64, tenants map[string]string, bounds map[string]int) {
	t.Helper()
	key := func(id, step string) string { return fmt.Sprintf("ev%d-%s-%s", idx, id, step) }
	switch ev.Kind {
	case faults.Crash:
		// Crash = cut every incident link; resurrect = restore them and
		// wake with an arbitrary state. The service sees the same net
		// effect as the in-process fault engine's crash/resurrect pair.
		recorded := map[graph.NodeID][]int{}
		for _, v := range ev.Nodes {
			nbrs := append([]graph.NodeID(nil), mirror.Neighbors(v)...)
			ints := make([]int, len(nbrs))
			for i, w := range nbrs {
				ints[i] = int(w)
			}
			recorded[v] = ints
		}
		for id := range tenants {
			for _, v := range ev.Nodes {
				cc.mutate(id, Mutation{Op: OpRemoveNode, U: intp(int(v))}, key(id, fmt.Sprintf("down%d", v)), bounds[id])
			}
			for _, v := range ev.Nodes {
				cc.mutate(id, Mutation{Op: OpAddNode, U: intp(int(v)), Nodes: recorded[v]}, key(id, fmt.Sprintf("up%d", v)), bounds[id])
			}
			nodes := make([]int, len(ev.Nodes))
			for i, v := range ev.Nodes {
				nodes[i] = int(v)
			}
			cc.mutate(id, Mutation{Op: OpCorrupt, Nodes: nodes}, key(id, "resurrect"), bounds[id])
		}
		// The mirror is unchanged: every link came back.
	case faults.Corrupt:
		nodes := make([]int, len(ev.Nodes))
		for i, v := range ev.Nodes {
			nodes[i] = int(v)
		}
		for id := range tenants {
			cc.mutate(id, Mutation{Op: OpCorrupt, Nodes: nodes}, key(id, "corrupt"), bounds[id])
		}
	case faults.Churn:
		// Connectivity-preserving link churn, drawn deterministically
		// from the schedule seed and applied to the mirror first, then
		// echoed to every tenant.
		rng := rand.New(rand.NewSource(deriveSeed(seed, "chaos-churn", idx)))
		events := mobility.NewChurn(mirror, rng).Apply(ev.K)
		for id := range tenants {
			for j, me := range events {
				op := OpRemoveEdge
				if me.Add {
					op = OpAddEdge
				}
				cc.mutate(id, Mutation{Op: op, U: intp(int(me.Edge.U)), V: intp(int(me.Edge.V))}, key(id, fmt.Sprintf("churn%d", j)), bounds[id])
			}
		}
	default:
		t.Fatalf("schedule produced unrequested kind %v", ev.Kind)
	}
}
