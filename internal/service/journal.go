package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// tenantMeta is the immutable identity of a tenant, written once at
// creation as meta.json. Everything else about the tenant is a pure
// function of (meta, journal prefix), which is the whole recovery
// story: replay = snapshot + journal suffix.
type tenantMeta struct {
	ID       string   `json:"id"`
	Protocol string   `json:"protocol"`
	N        int      `json:"n"`
	Seed     int64    `json:"seed"`
	Edges    [][2]int `json:"edges"`
}

// Mutation is one journaled topology/state event. Exactly the fields a
// replay needs: the operation, its operands, and the idempotency key
// clients may attach. Rounds is filled in post-hoc for converge entries
// (the one op whose effect depends on how many rounds actually ran —
// a deadline can truncate it, so the journal records the truth).
type Mutation struct {
	Seq   int64  `json:"seq"`
	Op    string `json:"op"`
	U     *int   `json:"u,omitempty"`
	V     *int   `json:"v,omitempty"`
	Nodes []int  `json:"nodes,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Rounds is the active-round budget a converge entry executed
	// (recorded after the fact); zero for ordinary mutations, whose
	// budget is always the deterministic per-protocol bound.
	Rounds int `json:"rounds,omitempty"`
	// Stable records whether a converge entry reached a fixed point.
	// Replay re-runs exactly Rounds active rounds, which reproduces the
	// states but not the stability discovery (that took one extra
	// zero-move probe round the recorded budget doesn't cover).
	Stable bool   `json:"stable,omitempty"`
	Key    string `json:"key,omitempty"`
}

// Mutation operations accepted by the API and understood by replay.
const (
	OpAddEdge    = "add_edge"
	OpRemoveEdge = "remove_edge"
	OpAddNode    = "add_node"
	OpRemoveNode = "remove_node"
	OpCorrupt    = "corrupt"
	OpConverge   = "converge"
	// OpChaosPanic deliberately crashes the tenant event loop (chaos
	// testing only; never journaled — replaying a panic would make
	// recovery re-crash forever).
	OpChaosPanic = "chaos_panic"
)

// tenantSnapshot is a deterministic checkpoint: full state vector plus
// every counter a restarted tenant must resume with. Written at
// mutation-sequence boundaries only, so (snapshot, journal entries with
// seq > Snapshot.Seq) replays to the exact live state.
type tenantSnapshot struct {
	Seq            int64           `json:"seq"`
	Rounds         int             `json:"rounds"`
	Moves          int             `json:"moves"`
	Converged      bool            `json:"converged"`
	EpochsOverBound int            `json:"epochs_over_bound"`
	MaxEpochRounds int             `json:"max_epoch_rounds"`
	Edges          [][2]int        `json:"edges"`
	States         json.RawMessage `json:"states"`
	// DedupKeys persists the idempotency window (ascending seq) so a
	// recovered tenant still rejects duplicates of pre-crash requests.
	DedupKeys []dedupEntry `json:"dedup_keys,omitempty"`
}

type dedupEntry struct {
	Key string `json:"key"`
	Seq int64  `json:"seq"`
}

// journal is the append-only write-ahead log for one tenant. Entries
// are JSON lines, fsynced before the mutation is applied, so every
// applied mutation is durable and a torn final line (crash mid-write)
// is detected and discarded on open.
type journal struct {
	f *os.File
}

func openJournal(path string) (*journal, []Mutation, error) {
	entries, good, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Drop any torn tail so the next append starts on a clean line.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f}, entries, nil
}

// readJournal parses the journal, returning the decoded entries and the
// byte offset of the end of the last complete, well-formed line.
//
//selfstab:journal-read
func readJournal(path string) ([]Mutation, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var (
		entries []Mutation
		good    int64
	)
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// A final fragment without a newline is a torn write from a
			// crash: the mutation was never acknowledged, drop it.
			break
		}
		var m Mutation
		if jerr := json.Unmarshal(line, &m); jerr != nil {
			// A complete but corrupt line also ends the valid prefix.
			break
		}
		good += int64(len(line))
		entries = append(entries, m)
	}
	return entries, good, nil
}

// append durably writes one entry: the line is written and fsynced
// before the caller applies the mutation.
//
//selfstab:journal
func (j *journal) append(m Mutation) error {
	line, err := json.Marshal(m)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() error { return j.f.Close() }

func tenantDir(dataDir, id string) string {
	return filepath.Join(dataDir, "tenants", id)
}

func writeMeta(dir string, meta tenantMeta) error {
	raw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, "meta.json"), raw)
}

//selfstab:journal-read
func readMeta(dir string) (tenantMeta, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return tenantMeta{}, err
	}
	var meta tenantMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return tenantMeta{}, fmt.Errorf("meta.json: %w", err)
	}
	return meta, nil
}

func snapshotPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%012d.json", seq))
}

func writeSnapshot(dir string, snap tenantSnapshot) error {
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	if err := atomicWrite(snapshotPath(dir, snap.Seq), raw); err != nil {
		return err
	}
	// Retire older checkpoints; the newest is self-sufficient.
	names, err := snapshotSeqs(dir)
	if err != nil {
		return err
	}
	for _, s := range names {
		if s < snap.Seq {
			os.Remove(snapshotPath(dir, s))
		}
	}
	return nil
}

// latestSnapshot loads the newest complete checkpoint, or ok=false when
// the tenant has never snapshotted (replay then starts from meta).
//
//selfstab:journal-read
func latestSnapshot(dir string) (tenantSnapshot, bool, error) {
	seqs, err := snapshotSeqs(dir)
	if err != nil || len(seqs) == 0 {
		return tenantSnapshot{}, false, err
	}
	// Newest first; fall back on a corrupt file (a crash can interleave
	// with retirement of the previous snapshot only after the new one is
	// fully on disk, but stay defensive).
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs {
		raw, err := os.ReadFile(snapshotPath(dir, s))
		if err != nil {
			continue
		}
		var snap tenantSnapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			continue
		}
		return snap, true, nil
	}
	return tenantSnapshot{}, false, nil
}

func snapshotSeqs(dir string) ([]int64, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		s, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".json"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, s)
	}
	return seqs, nil
}

// atomicWrite lands content via rename so readers (and crash recovery)
// never observe a half-written file.
//
//selfstab:snapshot
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
