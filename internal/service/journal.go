package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// tenantMeta is the immutable identity of a tenant, written once at
// creation as meta.json. Everything else about the tenant is a pure
// function of (meta, journal prefix), which is the whole recovery
// story: replay = snapshot + journal suffix.
type tenantMeta struct {
	ID       string   `json:"id"`
	Protocol string   `json:"protocol"`
	N        int      `json:"n"`
	Seed     int64    `json:"seed"`
	Edges    [][2]int `json:"edges"`
}

// Mutation is one journaled topology/state event. Exactly the fields a
// replay needs: the operation, its operands, and the idempotency key
// clients may attach. Rounds is filled in post-hoc for converge entries
// (the one op whose effect depends on how many rounds actually ran —
// a deadline can truncate it, so the journal records the truth).
type Mutation struct {
	Seq   int64  `json:"seq"`
	Op    string `json:"op"`
	U     *int   `json:"u,omitempty"`
	V     *int   `json:"v,omitempty"`
	Nodes []int  `json:"nodes,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Rounds is the active-round budget a converge entry executed
	// (recorded after the fact); zero for ordinary mutations, whose
	// budget is always the deterministic per-protocol bound.
	Rounds int `json:"rounds,omitempty"`
	// Stable records whether a converge entry reached a fixed point.
	// Replay re-runs exactly Rounds active rounds, which reproduces the
	// states but not the stability discovery (that took one extra
	// zero-move probe round the recorded budget doesn't cover).
	Stable bool   `json:"stable,omitempty"`
	Key    string `json:"key,omitempty"`
}

// Mutation operations accepted by the API and understood by replay.
const (
	OpAddEdge    = "add_edge"
	OpRemoveEdge = "remove_edge"
	OpAddNode    = "add_node"
	OpRemoveNode = "remove_node"
	OpCorrupt    = "corrupt"
	OpConverge   = "converge"
	// OpChaosPanic deliberately crashes the tenant event loop (chaos
	// testing only; never journaled — replaying a panic would make
	// recovery re-crash forever).
	OpChaosPanic = "chaos_panic"
)

// tenantSnapshot is a deterministic checkpoint: full state vector plus
// every counter a restarted tenant must resume with. Written at
// mutation-sequence boundaries only, so (snapshot, journal entries with
// seq > Snapshot.Seq) replays to the exact live state.
type tenantSnapshot struct {
	Seq             int64           `json:"seq"`
	Rounds          int             `json:"rounds"`
	Moves           int             `json:"moves"`
	Converged       bool            `json:"converged"`
	EpochsOverBound int             `json:"epochs_over_bound"`
	MaxEpochRounds  int             `json:"max_epoch_rounds"`
	Edges           [][2]int        `json:"edges"`
	States          json.RawMessage `json:"states"`
	// DedupKeys persists the idempotency window (ascending seq) so a
	// recovered tenant still rejects duplicates of pre-crash requests.
	DedupKeys []dedupEntry `json:"dedup_keys,omitempty"`
}

type dedupEntry struct {
	Key string `json:"key"`
	Seq int64  `json:"seq"`
}

// defaultSegmentBytes rotates the journal to a fresh segment once the
// active one passes this size; checkpoints then retire covered
// segments, bounding replay to snapshot + live suffix.
const defaultSegmentBytes = 4 << 20

// segment is one on-disk journal file. size is the validated byte
// length (buffered-but-unflushed appends included for the active
// segment); last is the seq of the segment's final entry, 0 when empty.
type segment struct {
	num  int64
	size int64
	last int64
}

// journal is the append-only write-ahead log for one tenant, split into
// numbered JSONL segment files. Entries are buffered by append and made
// durable in groups by commit (one fsync per batch, issued before any
// entry of the batch is applied), so every acknowledged mutation is
// durable and a torn final line (crash mid-write) is detected and
// discarded on open. Rotation happens only at commit boundaries, so
// every segment except the last ends on a complete, fsynced line.
type journal struct {
	dir      string
	segBytes int64
	f        *os.File // active (last) segment
	w        *bufio.Writer
	segs     []segment
	// pendingN counts entries buffered since the last commit — appended
	// but not yet durable, so not yet applicable.
	pendingN int
	appends  int64
	fsyncs   int64
	commits  int64
}

// journalStats is the observability snapshot behind the varz journal
// block.
type journalStats struct {
	appends   int64
	fsyncs    int64
	commits   int64
	segments  int
	liveBytes int64
}

func segmentPath(dir string, num int64) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%012d.jsonl", num))
}

// segmentNums lists the journal segment numbers present in dir,
// ascending. Non-segment files are ignored.
func segmentNums(dir string) ([]int64, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var nums []int64
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".jsonl"), 10, 64)
		if err != nil || v <= 0 {
			continue
		}
		nums = append(nums, v)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums, nil
}

// openJournal opens (or creates) a tenant's segmented journal and
// returns every entry, concatenated across segments in order. Non-final
// segments were sealed by a successful commit, so any damage there is
// corruption and fails loudly; torn-tail truncation applies only to the
// last segment, the only one a crash can tear.
func openJournal(dir string, segBytes int64) (*journal, []Mutation, error) {
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	nums, err := segmentNums(dir)
	if err != nil {
		return nil, nil, err
	}
	// Migrate a pre-segmentation journal in place: the single file
	// becomes segment 1.
	legacy := filepath.Join(dir, "journal.jsonl")
	if len(nums) == 0 {
		if _, serr := os.Stat(legacy); serr == nil {
			if err := os.Rename(legacy, segmentPath(dir, 1)); err != nil {
				return nil, nil, err
			}
			nums = []int64{1}
		}
	}
	created := len(nums) == 0
	if created {
		nums = []int64{1}
	}
	for i := 1; i < len(nums); i++ {
		if nums[i] != nums[i-1]+1 {
			return nil, nil, fmt.Errorf("journal segment gap: segment %d follows segment %d (a middle segment was deleted or misnumbered)", nums[i], nums[i-1])
		}
	}
	var (
		entries []Mutation
		segs    []segment
		lastSeq int64
	)
	for _, num := range nums[:len(nums)-1] {
		es, size, err := readSegmentStrict(segmentPath(dir, num), num, lastSeq)
		if err != nil {
			return nil, nil, err
		}
		seg := segment{num: num, size: size}
		if len(es) > 0 {
			seg.last = es[len(es)-1].Seq
			lastSeq = seg.last
		}
		entries = append(entries, es...)
		segs = append(segs, seg)
	}
	lastNum := nums[len(nums)-1]
	lastPath := segmentPath(dir, lastNum)
	lastEntries, good, err := readJournal(lastPath)
	if err != nil {
		return nil, nil, err
	}
	if len(lastEntries) > 0 && lastEntries[0].Seq <= lastSeq {
		return nil, nil, fmt.Errorf("journal segment %d: entry seq %d not after seq %d (segments out of order)", lastNum, lastEntries[0].Seq, lastSeq)
	}
	f, err := os.OpenFile(lastPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Drop any torn tail so the next append starts on a clean line.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if created {
		// The brand-new segment's directory entry must be durable before
		// any acknowledged entry lands in it: fsync on the file alone
		// does not persist the name.
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	seg := segment{num: lastNum, size: good}
	if len(lastEntries) > 0 {
		seg.last = lastEntries[len(lastEntries)-1].Seq
	}
	segs = append(segs, seg)
	entries = append(entries, lastEntries...)
	j := &journal{
		dir:      dir,
		segBytes: segBytes,
		f:        f,
		w:        bufio.NewWriterSize(f, 64<<10),
		segs:     segs,
	}
	return j, entries, nil
}

// readSegmentStrict parses a sealed (non-final) segment. Rotation only
// happens after a successful commit, so a crash cannot tear these
// files: every line must be complete, well-formed, and in ascending
// sequence after prevSeq. Damage here is corruption or tampering, and
// recovery fails loudly instead of silently dropping entries.
//
//selfstab:journal-read
func readSegmentStrict(path string, num, prevSeq int64) ([]Mutation, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var (
		entries []Mutation
		size    int64
	)
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, 0, err
		}
		if len(line) > 0 && err != nil {
			return nil, 0, fmt.Errorf("journal segment %d: torn final line in a sealed segment", num)
		}
		if err != nil {
			break
		}
		var m Mutation
		if jerr := json.Unmarshal(line, &m); jerr != nil {
			return nil, 0, fmt.Errorf("journal segment %d: corrupt entry: %v", num, jerr)
		}
		if m.Seq <= prevSeq {
			return nil, 0, fmt.Errorf("journal segment %d: entry seq %d not after seq %d (segments out of order)", num, m.Seq, prevSeq)
		}
		prevSeq = m.Seq
		size += int64(len(line))
		entries = append(entries, m)
	}
	return entries, size, nil
}

// readJournal parses the final (active) segment, returning the decoded
// entries and the byte offset of the end of the last complete,
// well-formed line.
//
//selfstab:journal-read
func readJournal(path string) ([]Mutation, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var (
		entries []Mutation
		good    int64
	)
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// A final fragment without a newline is a torn write from a
			// crash: the mutation was never acknowledged, drop it.
			break
		}
		var m Mutation
		if jerr := json.Unmarshal(line, &m); jerr != nil {
			// A complete but corrupt line also ends the valid prefix.
			break
		}
		good += int64(len(line))
		entries = append(entries, m)
	}
	return entries, good, nil
}

// append buffers one entry onto the active segment. The entry is NOT
// durable until the next commit; callers must commit (one fsync for the
// whole batch) before applying or acknowledging it.
//
//selfstab:journal
func (j *journal) append(m Mutation) error {
	line, err := json.Marshal(m)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		return err
	}
	active := &j.segs[len(j.segs)-1]
	active.size += int64(len(line))
	active.last = m.Seq
	j.pendingN++
	j.appends++
	return nil
}

// commit makes every buffered entry durable with a single fsync, then
// rotates to a fresh segment if the active one is full. A clean journal
// (nothing buffered) commits for free, so callers can invoke it
// unconditionally per batch.
//
//selfstab:journal
func (j *journal) commit() error {
	if j.pendingN == 0 {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.fsyncs++
	j.commits++
	j.pendingN = 0
	if j.segs[len(j.segs)-1].size >= j.segBytes {
		return j.rotate()
	}
	return nil
}

// rotate seals the active segment and opens the next numbered one. Only
// called from commit, so sealed segments always end on a complete,
// fsynced line.
func (j *journal) rotate() error {
	if err := j.f.Close(); err != nil {
		return err
	}
	next := j.segs[len(j.segs)-1].num + 1
	f, err := os.OpenFile(segmentPath(j.dir, next), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Persist the new segment's directory entry before anything
	// acknowledged lands in it: a post-crash recovery that cannot see
	// the file would silently lose every entry fsynced into it.
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.w.Reset(f)
	j.segs = append(j.segs, segment{num: next})
	return nil
}

// compact retires every sealed segment whose entries are all covered by
// the snapshot at snapSeq, bounding replay to snapshot + live suffix.
// Deletion runs oldest-first so a crash mid-compaction still leaves a
// contiguous segment range.
func (j *journal) compact(snapSeq int64) error {
	for len(j.segs) > 1 {
		s := j.segs[0]
		if s.last == 0 || s.last > snapSeq {
			return nil
		}
		if err := os.Remove(segmentPath(j.dir, s.num)); err != nil {
			return err
		}
		j.segs = j.segs[1:]
	}
	return nil
}

// pendingEntries reports how many appends are buffered awaiting the
// next commit.
func (j *journal) pendingEntries() int { return j.pendingN }

func (j *journal) stats() journalStats {
	var bytes int64
	for _, s := range j.segs {
		bytes += s.size
	}
	return journalStats{
		appends:   j.appends,
		fsyncs:    j.fsyncs,
		commits:   j.commits,
		segments:  len(j.segs),
		liveBytes: bytes,
	}
}

// close releases the active segment. Buffered entries that were never
// committed are dropped deliberately: they were never acknowledged, and
// on the kill path recovery replays only what commit made durable.
func (j *journal) close() error { return j.f.Close() }

// syncDir fsyncs a directory so freshly created entries (new journal
// segments) survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

func tenantDir(dataDir, id string) string {
	return filepath.Join(dataDir, "tenants", id)
}

func writeMeta(dir string, meta tenantMeta) error {
	raw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, "meta.json"), raw)
}

//selfstab:journal-read
func readMeta(dir string) (tenantMeta, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return tenantMeta{}, err
	}
	var meta tenantMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return tenantMeta{}, fmt.Errorf("meta.json: %w", err)
	}
	return meta, nil
}

func snapshotPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%012d.json", seq))
}

func writeSnapshot(dir string, snap tenantSnapshot) error {
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	if err := atomicWrite(snapshotPath(dir, snap.Seq), raw); err != nil {
		return err
	}
	// Retire older checkpoints; the newest is self-sufficient.
	names, err := snapshotSeqs(dir)
	if err != nil {
		return err
	}
	for _, s := range names {
		if s < snap.Seq {
			os.Remove(snapshotPath(dir, s))
		}
	}
	return nil
}

// latestSnapshot loads the newest complete checkpoint, or ok=false when
// the tenant has never snapshotted (replay then starts from meta).
//
//selfstab:journal-read
func latestSnapshot(dir string) (tenantSnapshot, bool, error) {
	seqs, err := snapshotSeqs(dir)
	if err != nil || len(seqs) == 0 {
		return tenantSnapshot{}, false, err
	}
	// Newest first; fall back on a corrupt file (a crash can interleave
	// with retirement of the previous snapshot only after the new one is
	// fully on disk, but stay defensive).
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs {
		raw, err := os.ReadFile(snapshotPath(dir, s))
		if err != nil {
			continue
		}
		var snap tenantSnapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			continue
		}
		return snap, true, nil
	}
	return tenantSnapshot{}, false, nil
}

func snapshotSeqs(dir string) ([]int64, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		s, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".json"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, s)
	}
	return seqs, nil
}

// atomicWrite lands content via rename so readers (and crash recovery)
// never observe a half-written file.
//
//selfstab:snapshot
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
