package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestService opens a service over a temp dir with test-friendly
// options and registers cleanup.
func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	svc, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return svc
}

// doJSON performs one request against a handler and decodes the JSON
// response body into out (when non-nil), returning the status code.
func doJSON(t *testing.T, h http.Handler, method, path string, body any, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode response %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code, w.Result().Header
}

// pathTenant creates a path-graph tenant and waits for its init epoch.
func pathTenant(t *testing.T, h http.Handler, id, protocol string, n int) TenantStatus {
	t.Helper()
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v - 1, v})
	}
	var st TenantStatus
	code, _ := doJSON(t, h, "POST", "/v1/tenants", createRequest{
		ID: id, Protocol: protocol, N: n, Seed: 42, Edges: edges,
	}, &st)
	if code != http.StatusCreated {
		t.Fatalf("create tenant %s: status %d", id, code)
	}
	return st
}

func TestCreateMutateRead(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()

	st := pathTenant(t, h, "alpha", ProtocolSMM, 8)
	if !st.Converged || !st.Legit {
		t.Fatalf("init epoch did not converge legitimately: %+v", st)
	}
	if st.Bound != 9 {
		t.Fatalf("SMM bound for n=8 = %d, want 9", st.Bound)
	}

	var res MutationResult
	code, _ := doJSON(t, h, "POST", "/v1/tenants/alpha/mutations",
		Mutation{Op: OpAddEdge, U: intp(0), V: intp(7)}, &res)
	if code != http.StatusOK || !res.Converged || !res.Legit {
		t.Fatalf("add_edge: code %d res %+v", code, res)
	}
	if res.Rounds > st.Bound {
		t.Fatalf("epoch took %d rounds, bound %d", res.Rounds, st.Bound)
	}

	code, _ = doJSON(t, h, "POST", "/v1/tenants/alpha/mutations",
		Mutation{Op: OpCorrupt, Nodes: []int{2, 3, 4}}, &res)
	if code != http.StatusOK || !res.Converged || !res.Legit {
		t.Fatalf("corrupt: code %d res %+v", code, res)
	}

	var mem struct {
		Edges [][2]int `json:"edges"`
	}
	if code, _ := doJSON(t, h, "GET", "/v1/tenants/alpha/membership", nil, &mem); code != http.StatusOK {
		t.Fatalf("membership: status %d", code)
	}
	matched := map[int]bool{}
	for _, e := range mem.Edges {
		if matched[e[0]] || matched[e[1]] {
			t.Fatalf("membership is not a matching: %v", mem.Edges)
		}
		matched[e[0]], matched[e[1]] = true, true
	}

	var ni NodeInfo
	if code, _ := doJSON(t, h, "GET", "/v1/tenants/alpha/nodes/3", nil, &ni); code != http.StatusOK {
		t.Fatalf("node read: status %d", code)
	}
	if ni.Node != 3 || ni.Degree == 0 {
		t.Fatalf("node info: %+v", ni)
	}
	if ni.MatchedWith != nil {
		var peer NodeInfo
		doJSON(t, h, "GET", fmt.Sprintf("/v1/tenants/alpha/nodes/%d", *ni.MatchedWith), nil, &peer)
		if peer.MatchedWith == nil || *peer.MatchedWith != 3 {
			t.Fatalf("matched-with not symmetric: %+v vs %+v", ni, peer)
		}
	}
}

func TestSMITenantConverges(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	st := pathTenant(t, h, "mis", ProtocolSMI, 10)
	if !st.Converged || !st.Legit {
		t.Fatalf("SMI init epoch: %+v", st)
	}
	if st.Bound != 22 {
		t.Fatalf("SMI bound for n=10 = %d, want 22", st.Bound)
	}
	var res MutationResult
	code, _ := doJSON(t, h, "POST", "/v1/tenants/mis/mutations",
		Mutation{Op: OpCorrupt, Nodes: []int{0, 1, 2, 3, 4}}, &res)
	if code != http.StatusOK || !res.Converged || !res.Legit || res.Rounds > st.Bound {
		t.Fatalf("SMI corrupt epoch: code %d res %+v", code, res)
	}
	var mem struct {
		Nodes []int `json:"nodes"`
	}
	doJSON(t, h, "GET", "/v1/tenants/mis/membership", nil, &mem)
	if len(mem.Nodes) == 0 {
		t.Fatalf("empty independent set on a path graph")
	}
}

// TestBackpressure503 pins the degradation ladder's queue rung: with
// the event loop wedged, a full bounded queue returns 503 +
// Retry-After instead of queueing unboundedly.
func TestBackpressure503(t *testing.T) {
	// CommitInterval -1 disables the gather window: once the loop has
	// dequeued the wedge command it proceeds straight to prepare, so a
	// command sent afterwards provably stays in the queue.
	svc := newTestService(t, Options{QueueDepth: 1, CommitInterval: -1})
	h := svc.Handler()
	pathTenant(t, h, "bp", ProtocolSMM, 4)
	tn, err := svc.Tenant("bp")
	if err != nil {
		t.Fatal(err)
	}

	// Wedge the loop: hold the tenant write lock so the next command
	// blocks inside prepare, then fill the 1-slot queue behind it with
	// direct sends (the loop is provably holding the first command once
	// it leaves the queue — only the loop dequeues).
	tn.mu.Lock()
	inflight := &command{mut: Mutation{Op: OpAddEdge, U: intp(0), V: intp(2)}, reply: make(chan cmdResult, 1)}
	queued := &command{mut: Mutation{Op: OpAddEdge, U: intp(1), V: intp(3)}, reply: make(chan cmdResult, 1)}
	tn.cmds <- inflight
	deadline := time.Now().Add(5 * time.Second)
	for len(tn.cmds) != 0 {
		if time.Now().After(deadline) {
			tn.mu.Unlock()
			t.Fatal("loop never picked up the wedge command")
		}
		time.Sleep(time.Millisecond)
	}
	// The loop dequeued the wedge but may still be inside gather's
	// non-blocking drain; give it time to reach prepare (where it blocks
	// on mu) before refilling the queue, so the refill cannot join the
	// wedge's batch.
	time.Sleep(100 * time.Millisecond)
	tn.cmds <- queued

	var errBody struct {
		Error string `json:"error"`
	}
	code, hdr := doJSON(t, h, "POST", "/v1/tenants/bp/mutations",
		Mutation{Op: OpRemoveEdge, U: intp(0), V: intp(1)}, &errBody)
	if code != http.StatusServiceUnavailable {
		tn.mu.Unlock()
		t.Fatalf("overload status = %d, want 503 (%+v)", code, errBody)
	}
	if hdr.Get("Retry-After") == "" {
		tn.mu.Unlock()
		t.Fatal("503 without Retry-After")
	}
	tn.mu.Unlock()
	for _, cmd := range []*command{inflight, queued} {
		if res := <-cmd.reply; res.Err != nil {
			t.Fatalf("wedged command failed: %v", res.Err)
		}
	}
	if svc.Varz().Overloaded == 0 {
		t.Fatal("overload counter not incremented")
	}
}

// TestRateLimit429 pins the token-bucket rung with a frozen clock.
func TestRateLimit429(t *testing.T) {
	clock := time.Unix(1000, 0)
	svc := newTestService(t, Options{
		RatePerSec: 1, Burst: 2,
		Now: func() time.Time { return clock },
	})
	h := svc.Handler()
	pathTenant(t, h, "rl", ProtocolSMM, 4)

	for i := 0; i < 2; i++ {
		var res MutationResult
		code, _ := doJSON(t, h, "POST", "/v1/tenants/rl/mutations",
			Mutation{Op: OpAddEdge, U: intp(0), V: intp(2)}, &res)
		if code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, code)
		}
	}
	code, hdr := doJSON(t, h, "POST", "/v1/tenants/rl/mutations",
		Mutation{Op: OpAddEdge, U: intp(1), V: intp(3)}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("exhausted bucket status = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if svc.Varz().RateLimited != 1 {
		t.Fatalf("rate-limited counter = %d, want 1", svc.Varz().RateLimited)
	}
}

// TestQuarantineIsolation pins panic isolation: a chaos-panicked tenant
// is quarantined and reported while its siblings keep serving.
func TestQuarantineIsolation(t *testing.T) {
	svc := newTestService(t, Options{EnableChaos: true})
	h := svc.Handler()
	pathTenant(t, h, "doomed", ProtocolSMM, 4)
	pathTenant(t, h, "healthy", ProtocolSMM, 4)

	code, _ := doJSON(t, h, "POST", "/v1/tenants/doomed/mutations",
		Mutation{Op: OpChaosPanic}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("chaos_panic status = %d, want 503", code)
	}

	var st TenantStatus
	doJSON(t, h, "GET", "/v1/tenants/doomed", nil, &st)
	if !strings.Contains(st.Quarantined, "chaos") {
		t.Fatalf("quarantine reason = %q", st.Quarantined)
	}
	code, _ = doJSON(t, h, "POST", "/v1/tenants/doomed/mutations",
		Mutation{Op: OpAddEdge, U: intp(0), V: intp(2)}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("mutation on quarantined tenant: status %d, want 503", code)
	}

	var res MutationResult
	code, _ = doJSON(t, h, "POST", "/v1/tenants/healthy/mutations",
		Mutation{Op: OpAddEdge, U: intp(0), V: intp(2)}, &res)
	if code != http.StatusOK || !res.Converged {
		t.Fatalf("healthy tenant after sibling quarantine: code %d res %+v", code, res)
	}
	vz := svc.Varz()
	if vz.Panics != 1 || vz.Quarantined != 1 {
		t.Fatalf("varz after panic: %+v", vz)
	}
}

func TestChaosPanicDisabledByDefault(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	pathTenant(t, h, "x", ProtocolSMM, 4)
	code, _ := doJSON(t, h, "POST", "/v1/tenants/x/mutations", Mutation{Op: OpChaosPanic}, nil)
	if code != http.StatusForbidden {
		t.Fatalf("chaos_panic without EnableChaos: status %d, want 403", code)
	}
}

// TestGracefulCloseNoLeaksAndDoubleClose is the ISSUE's shutdown
// acceptance test: start, mutate under concurrent load, drain, and
// verify no goroutines leak; a second Close is a no-op.
func TestGracefulCloseNoLeaksAndDoubleClose(t *testing.T) {
	before := goruntime.NumGoroutine()

	dir := t.TempDir()
	svc, err := Open(Options{DataDir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	h := svc.Handler()
	for i := 0; i < 3; i++ {
		pathTenant(t, h, fmt.Sprintf("t%d", i), ProtocolSMM, 16)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := fmt.Sprintf("t%d", (w+i)%3)
				doJSON(t, h, "POST", "/v1/tenants/"+id+"/mutations",
					Mutation{Op: OpCorrupt, Nodes: []int{i % 16}}, nil)
			}
		}(w)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("double Close: %v", err)
	}

	// Goroutine counts settle asynchronously (timer and test goroutines
	// come and go); retry before declaring a leak.
	var after int
	for i := 0; i < 100; i++ {
		after = goruntime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := goruntime.Stack(buf, true)
	t.Fatalf("goroutines: before=%d after=%d\n%s", before, after, buf[:n])
}

func TestTenantCapAndDuplicate(t *testing.T) {
	svc := newTestService(t, Options{MaxTenants: 1})
	h := svc.Handler()
	pathTenant(t, h, "only", ProtocolSMM, 4)

	code, _ := doJSON(t, h, "POST", "/v1/tenants",
		createRequest{ID: "only", Protocol: ProtocolSMM, N: 4}, nil)
	if code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", code)
	}
	code, hdr := doJSON(t, h, "POST", "/v1/tenants",
		createRequest{ID: "other", Protocol: ProtocolSMM, N: 4}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("cap create: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("cap 429 without Retry-After")
	}
}

func TestIdempotencyKeyDedup(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	pathTenant(t, h, "idem", ProtocolSMM, 6)

	var first, second MutationResult
	m := Mutation{Op: OpRemoveEdge, U: intp(2), V: intp(3), Key: "req-1"}
	if code, _ := doJSON(t, h, "POST", "/v1/tenants/idem/mutations", m, &first); code != http.StatusOK {
		t.Fatalf("first send failed")
	}
	if code, _ := doJSON(t, h, "POST", "/v1/tenants/idem/mutations", m, &second); code != http.StatusOK {
		t.Fatalf("retry send failed")
	}
	if !second.Duplicate || second.Seq != first.Seq {
		t.Fatalf("retry not deduplicated: first %+v second %+v", first, second)
	}
	var st TenantStatus
	doJSON(t, h, "GET", "/v1/tenants/idem", nil, &st)
	if st.Seq != first.Seq {
		t.Fatalf("duplicate advanced seq: %d vs %d", st.Seq, first.Seq)
	}
}

func TestDeleteTenant(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	pathTenant(t, h, "gone", ProtocolSMM, 4)
	req := httptest.NewRequest("DELETE", "/v1/tenants/gone", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	if code, _ := doJSON(t, h, "GET", "/v1/tenants/gone", nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted tenant still readable: %d", code)
	}
}

func intp(v int) *int { return &v }
