package service

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
)

// Protocol names a tenant may host.
const (
	ProtocolSMM = "smm"
	ProtocolSMI = "smi"
)

// NodeInfo is the per-node read served by GET .../nodes/{node}.
type NodeInfo struct {
	Node  int    `json:"node"`
	State string `json:"state"`
	// MatchedWith is the symmetric-pointer partner (SMM only): set when
	// this node and its target point at each other.
	MatchedWith *int `json:"matched_with,omitempty"`
	// InSet reports independent-set membership (SMI only).
	InSet  *bool `json:"in_set,omitempty"`
	Degree int   `json:"degree"`
}

// tenantEngine is the protocol-erased face of one tenant's executor.
// All methods assume the caller holds the tenant's write lock (reads:
// at least the read lock); the event loop is the single writer.
type tenantEngine interface {
	// protocol returns the protocol name ("smm", "smi").
	protocol() string
	// n returns the node count, m the live edge count.
	n() int
	m() int
	// setLink makes edge e present or absent, with dangling-reference
	// repair on removal, and dirties exactly the affected neighborhoods.
	//
	//selfstab:applies
	setLink(e graph.Edge, present bool)
	// corrupt overwrites the targeted nodes with arbitrary states drawn
	// from per-node streams derived from seed.
	//
	//selfstab:applies
	corrupt(nodes []graph.NodeID, seed int64)
	// converge drives the frontier engine until a fixed point, maxRounds
	// active rounds, or ctx cancellation, and returns the active rounds
	// and moves executed plus whether a fixed point was reached.
	converge(ctx context.Context, maxRounds int) (rounds, moves int, stable bool, err error)
	// encodeStates serializes the state vector deterministically.
	encodeStates() json.RawMessage
	// decodeStates restores a state vector serialized by encodeStates
	// and re-dirties every node for re-evaluation.
	decodeStates(raw json.RawMessage) error
	// nodeInfo reads one node.
	nodeInfo(v graph.NodeID) NodeInfo
	// membership serializes the converged structure: the matched edges
	// (SMM) or the in-set nodes (SMI), ascending.
	membership() json.RawMessage
	// check verifies the legitimacy predicate on the current
	// configuration (meaningful when converged).
	check() error
	// edges lists the live topology, ascending, as [u, v] pairs.
	edges() [][2]int
	// neighbors returns the live neighbor list of v (graph-owned; copy
	// before keeping).
	neighbors(v graph.NodeID) []graph.NodeID
	// close releases executor resources (sharded worker pools).
	close()
}

// engine implements tenantEngine generically over the state type.
type engine[S comparable] struct {
	name string
	p    core.Protocol[S]
	fl   *sim.FaultLockstep[S]
	cfg  core.Config[S]
	enc  func([]S) json.RawMessage
	dec  func(json.RawMessage, int) ([]S, error)
	info func(core.Config[S], graph.NodeID) NodeInfo
	mem  func(core.Config[S]) json.RawMessage
	chk  faults.Checker[S]
}

func (e *engine[S]) protocol() string { return e.name }
func (e *engine[S]) n() int           { return e.cfg.G.N() }
func (e *engine[S]) m() int           { return e.cfg.G.M() }

func (e *engine[S]) setLink(ed graph.Edge, present bool) { e.fl.SetLink(ed, present) }

func (e *engine[S]) corrupt(nodes []graph.NodeID, seed int64) {
	for i, v := range nodes {
		rng := rand.New(rand.NewSource(deriveSeed(seed, "corrupt", i)))
		e.fl.WriteState(v, e.p.Random(v, e.cfg.G.Neighbors(v), rng))
	}
}

func (e *engine[S]) converge(ctx context.Context, maxRounds int) (int, int, bool, error) {
	l := e.fl.Lockstep()
	movesBefore := l.Moves()
	res, err := l.ConvergeCtx(ctx, maxRounds)
	return res.Rounds, l.Moves() - movesBefore, res.Stable, err
}

func (e *engine[S]) encodeStates() json.RawMessage { return e.enc(e.cfg.States) }

func (e *engine[S]) decodeStates(raw json.RawMessage) error {
	states, err := e.dec(raw, len(e.cfg.States))
	if err != nil {
		return err
	}
	copy(e.cfg.States, states)
	// The restore bypassed the executor's write hooks: re-dirty every
	// closed neighborhood so the next convergence re-evaluates everyone.
	l := e.fl.Lockstep()
	for v := range e.cfg.States {
		l.DirtyState(graph.NodeID(v))
	}
	return nil
}

func (e *engine[S]) nodeInfo(v graph.NodeID) NodeInfo { return e.info(e.cfg, v) }
func (e *engine[S]) membership() json.RawMessage      { return e.mem(e.cfg) }
func (e *engine[S]) check() error                     { return e.chk(e.cfg) }

func (e *engine[S]) edges() [][2]int {
	es := e.cfg.G.Edges()
	out := make([][2]int, len(es))
	for i, ed := range es {
		out[i] = [2]int{int(ed.U), int(ed.V)}
	}
	return out
}

func (e *engine[S]) neighbors(v graph.NodeID) []graph.NodeID { return e.cfg.G.Neighbors(v) }

func (e *engine[S]) close() { e.fl.Close() }

// newEngine builds the tenant executor for the named protocol over an
// initially edge-listed topology. shards > 1 selects the sharded
// frontier engine.
func newEngine(protocol string, n int, edges [][2]int, shards int) (tenantEngine, error) {
	g := graph.New(n)
	for _, e := range edges {
		u, v := graph.NodeID(e[0]), graph.NodeID(e[1])
		if int(u) < 0 || int(u) >= n || int(v) < 0 || int(v) >= n || u == v {
			return nil, fmt.Errorf("invalid edge [%d, %d] for n=%d", e[0], e[1], n)
		}
		g.AddEdge(u, v)
	}
	switch protocol {
	case ProtocolSMM:
		cfg := core.NewConfig[core.Pointer](g)
		for v := range cfg.States {
			cfg.States[v] = core.Null
		}
		return &engine[core.Pointer]{
			name: ProtocolSMM,
			p:    core.NewSMM(),
			fl:   newFaultLockstep(core.NewSMM(), cfg, shards),
			cfg:  cfg,
			enc:  encodePointers,
			dec:  decodePointers,
			info: smmNodeInfo,
			mem:  smmMembership,
			chk:  faults.SMMChecker,
		}, nil
	case ProtocolSMI:
		cfg := core.NewConfig[bool](g)
		return &engine[bool]{
			name: ProtocolSMI,
			p:    core.NewSMI(),
			fl:   newFaultLockstep[bool](core.NewSMI(), cfg, shards),
			cfg:  cfg,
			enc:  encodeBools,
			dec:  decodeBools,
			info: smiNodeInfo,
			mem:  smiMembership,
			chk:  faults.SMIChecker,
		}, nil
	default: // unknown protocols are rejected at tenant creation
		return nil, fmt.Errorf("unknown protocol %q (want %q or %q)", protocol, ProtocolSMM, ProtocolSMI)
	}
}

func newFaultLockstep[S comparable](p core.Protocol[S], cfg core.Config[S], shards int) *sim.FaultLockstep[S] {
	if shards > 1 {
		return sim.NewShardedFaultLockstep(p, cfg, shards)
	}
	return sim.NewFaultLockstep(p, cfg)
}

// protocolBound returns the convergence budget the service enforces per
// mutation epoch: the paper's stabilization bounds from an arbitrary
// configuration — Theorem 1's n+1 rounds for SMM and the 2n+2 rounds
// experiment E15 records for SMI (factor 2, slack 2, as the soak
// campaigns pin).
func protocolBound(protocol string, n int) int {
	switch protocol {
	case ProtocolSMM:
		return n + 1
	case ProtocolSMI:
		return 2*n + 2
	default: // creation validates the protocol name; unreachable for live tenants
		return 2*n + 2
	}
}

func encodePointers(states []core.Pointer) json.RawMessage {
	vals := make([]int32, len(states))
	for i, s := range states {
		vals[i] = int32(s)
	}
	raw, err := json.Marshal(vals)
	if err != nil {
		panic(fmt.Sprintf("service: encode pointers: %v", err))
	}
	return raw
}

func decodePointers(raw json.RawMessage, n int) ([]core.Pointer, error) {
	var vals []int32
	if err := json.Unmarshal(raw, &vals); err != nil {
		return nil, err
	}
	if len(vals) != n {
		return nil, fmt.Errorf("snapshot has %d states for %d nodes", len(vals), n)
	}
	states := make([]core.Pointer, n)
	for i, v := range vals {
		states[i] = core.Pointer(v)
	}
	return states, nil
}

func encodeBools(states []bool) json.RawMessage {
	raw, err := json.Marshal(states)
	if err != nil {
		panic(fmt.Sprintf("service: encode bools: %v", err))
	}
	return raw
}

func decodeBools(raw json.RawMessage, n int) ([]bool, error) {
	var vals []bool
	if err := json.Unmarshal(raw, &vals); err != nil {
		return nil, err
	}
	if len(vals) != n {
		return nil, fmt.Errorf("snapshot has %d states for %d nodes", len(vals), n)
	}
	return vals, nil
}

func smmNodeInfo(cfg core.Config[core.Pointer], v graph.NodeID) NodeInfo {
	ni := NodeInfo{Node: int(v), State: cfg.States[v].String(), Degree: cfg.G.Degree(v)}
	if core.Matched(cfg, v) {
		w := int(cfg.States[v].Node())
		ni.MatchedWith = &w
	}
	return ni
}

func smiNodeInfo(cfg core.Config[bool], v graph.NodeID) NodeInfo {
	in := cfg.States[v]
	state := "out"
	if in {
		state = "in"
	}
	return NodeInfo{Node: int(v), State: state, InSet: &in, Degree: cfg.G.Degree(v)}
}

func smmMembership(cfg core.Config[core.Pointer]) json.RawMessage {
	edges := core.MatchingOf(cfg)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	out := make([][2]int, len(edges))
	for i, e := range edges {
		out[i] = [2]int{int(e.U), int(e.V)}
	}
	raw, err := json.Marshal(struct {
		Edges [][2]int `json:"edges"`
	}{out})
	if err != nil {
		panic(fmt.Sprintf("service: encode matching: %v", err))
	}
	return raw
}

func smiMembership(cfg core.Config[bool]) json.RawMessage {
	set := core.SetOf(cfg)
	nodes := make([]int, len(set))
	for i, v := range set {
		nodes[i] = int(v)
	}
	raw, err := json.Marshal(struct {
		Nodes []int `json:"nodes"`
	}{nodes})
	if err != nil {
		panic(fmt.Sprintf("service: encode set: %v", err))
	}
	return raw
}

// deriveSeed hashes a tenant seed with a stream name and an index into
// an independent seed, mirroring the fault engine's derived-seed
// discipline: every corruption draws from its own stream, so replaying
// a journal suffix reproduces exactly the states an uninterrupted run
// wrote.
func deriveSeed(seed int64, stream string, i int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(stream))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(i)))
	h.Write(buf[:])
	x := h.Sum64()
	// splitmix64 finalizer for full avalanche.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}
