package service

import (
	"sync"
	"time"
)

// tokenBucket is a classic refill-on-demand rate limiter with an
// injectable clock so tests (and the deterministic replay tier) can
// drive it without wall-clock sleeps. Package detrand exempts
// internal/service: the daemon is the one layer that legitimately
// consumes real time, and every use is behind the Options.Now seam.
type tokenBucket struct {
	mu sync.Mutex
	// guarded by mu
	tokens float64
	// guarded by mu
	last time.Time

	rate  float64 // tokens per second
	burst float64
	now   func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		now:    now,
		tokens: float64(burst),
		last:   now(),
	}
}

// allow consumes one token if available. When the bucket is empty it
// returns false plus the wait until a token accrues, which the HTTP
// layer surfaces as Retry-After.
func (b *tokenBucket) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	wait := time.Duration(deficit / b.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}
