package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// recordedRequest is one entry of a captured API session.
type recordedRequest struct {
	method string
	path   string
	body   []byte
}

// playSession replays a request log against a fresh service and returns
// the raw response bodies in order.
func playSession(t *testing.T, log []recordedRequest) []string {
	t.Helper()
	svc := newTestService(t, Options{})
	h := svc.Handler()
	out := make([]string, 0, len(log))
	for i, rr := range log {
		req := httptest.NewRequest(rr.method, rr.path, bytes.NewReader(rr.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code >= 500 {
			t.Fatalf("replay step %d (%s %s): status %d body %s", i, rr.method, rr.path, w.Code, w.Body.String())
		}
		out = append(out, w.Body.String())
	}
	return out
}

// TestRequestReplayByteIdentical replays one recorded mutation log
// against two fresh daemons and requires byte-identical responses at
// every step: the service's entire visible behavior is a deterministic
// function of the request sequence.
func TestRequestReplayByteIdentical(t *testing.T) {
	mustBody := func(v any) []byte {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	log := []recordedRequest{
		{"POST", "/v1/tenants", mustBody(createRequest{
			ID: "r", Protocol: ProtocolSMM, N: 10, Seed: 7,
			Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}},
		})},
		{"POST", "/v1/tenants/r/mutations", mustBody(Mutation{Op: OpCorrupt, Nodes: []int{2, 5, 8}, Key: "a"})},
		{"GET", "/v1/tenants/r", nil},
		{"POST", "/v1/tenants/r/mutations", mustBody(Mutation{Op: OpAddEdge, U: intp(0), V: intp(9), Key: "b"})},
		{"POST", "/v1/tenants/r/mutations", mustBody(Mutation{Op: OpAddEdge, U: intp(0), V: intp(9), Key: "b"})}, // duplicate
		{"GET", "/v1/tenants/r/membership", nil},
		{"POST", "/v1/tenants/r/mutations", mustBody(Mutation{Op: OpRemoveNode, U: intp(4), Key: "c"})},
		{"POST", "/v1/tenants/r/converge", mustBody(convergeRequest{Rounds: 2, Key: "d"})},
		{"GET", "/v1/tenants/r/snapshot", nil},
		{"POST", "/v1/tenants/r/mutations", mustBody(Mutation{Op: OpAddNode, U: intp(4), Nodes: []int{3, 5}, Key: "e"})},
		{"GET", "/v1/tenants/r/snapshot", nil},
		{"GET", "/v1/tenants/r/nodes/4", nil},
		{"GET", "/v1/tenants/r/membership", nil},
	}
	first := playSession(t, log)
	second := playSession(t, log)
	for i := range log {
		if first[i] != second[i] {
			t.Fatalf("response %d (%s %s) diverged between runs:\nrun1: %s\nrun2: %s",
				i, log[i].method, log[i].path, first[i], second[i])
		}
	}
}

// TestReplayDiffersAcrossSeeds is the negative control: the same log
// with a different tenant seed must change corruption draws (otherwise
// the determinism above would be vacuous).
func TestReplayDiffersAcrossSeeds(t *testing.T) {
	session := func(seed int64) string {
		svc := newTestService(t, Options{})
		h := svc.Handler()
		code, _ := doJSON(t, h, "POST", "/v1/tenants", createRequest{
			ID: "s", Protocol: ProtocolSMM, N: 16, Seed: seed,
			Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}, {14, 15}, {3, 4}, {5, 6}, {7, 8}},
		}, nil)
		if code != http.StatusCreated {
			t.Fatalf("create: %d", code)
		}
		// Corrupt whole graph, then inspect the raw states mid-flight via
		// a truncated converge: different seeds must surface different
		// trajectories somewhere in the pair of snapshots.
		doJSON(t, h, "POST", "/v1/tenants/s/mutations", Mutation{Op: OpCorrupt, Nodes: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}}, nil)
		return string(snapshotJSON(t, h, "s"))
	}
	if session(1) == session(2) {
		t.Fatal("different tenant seeds produced identical corruption trajectories")
	}
}
