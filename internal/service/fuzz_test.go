package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// FuzzJournalRecover is the journal recovery property, extended to
// segmented layouts. The script's entries are split across 1–4 segment
// files; only the final (active) segment may legally be damaged,
// because sealed segments end on a committed, fsynced line.
//
// Three regimes:
//
//   - Tail damage (the default): however the last segment's tail is
//     mangled — truncated mid-line, bit-flipped, or extended with
//     forged bytes — recovering from the damaged layout must behave
//     exactly like recovering from a twin whose last segment holds the
//     validated prefix (the bytes readJournal accepts). Either both
//     recoveries fail with the same error, or both land on the same
//     snapshot view. A divergence means readJournal's prefix validation
//     and recoverFrom's replay disagree about what the journal says.
//   - dropMid: a deleted middle segment must fail recovery loudly (a
//     segment-gap error), never silently skip the missing entries.
//   - swapSegs: two sealed segments with swapped contents (a forged or
//     misnumbered segment) must fail with an out-of-order error.
//
// A flip or tail can turn the cut into a complete, well-formed JSON
// line that the live path would have rejected — which is why
// replayEntry re-validates (see the comment there) and why this fuzz
// drives that seam. The single-segment case writes the legacy
// journal.jsonl name, keeping the migration path under fuzz too.
func FuzzJournalRecover(f *testing.F) {
	f.Add(int64(1<<30), byte(0), []byte{}, uint8(0), false, false)                                                     // untouched journal
	f.Add(int64(37), byte(0), []byte(`{"seq":`), uint8(0), false, false)                                               // torn mid-line
	f.Add(int64(0), byte(0), []byte("\x00\xff\x00"), uint8(0), false, false)                                           // garbage from byte zero
	f.Add(int64(120), byte(1), []byte{}, uint8(0), false, false)                                                       // bit-flip inside the log
	f.Add(int64(1<<30), byte(0), []byte("{\"seq\":99,\"op\":\"add_edge\",\"u\":0,\"v\":3}\n"), uint8(0), false, false) // forged entry
	f.Add(int64(1<<30), byte(0), []byte("{\"seq\":99,\"op\":\"add_edge\"}\n"), uint8(0), false, false)                 // forged entry, nil operands
	f.Add(int64(37), byte(0), []byte(`{"seq":`), uint8(3), false, false)                                               // four segments, torn active tail
	f.Add(int64(1<<30), byte(0), []byte{}, uint8(2), true, false)                                                      // three segments, middle deleted
	f.Add(int64(1<<30), byte(0), []byte{}, uint8(2), false, true)                                                      // three segments, sealed pair swapped

	f.Fuzz(func(t *testing.T, cut int64, flip byte, tail []byte, segCount uint8, dropMid, swapSegs bool) {
		const n = 8
		meta := tenantMeta{ID: "fuzz", Protocol: ProtocolSMM, N: n, Seed: 42}
		lines := make([][]byte, 0, 8)
		for i, m := range mutationScript(n) {
			m.Seq = int64(i + 1)
			line, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			lines = append(lines, append(line, '\n'))
		}
		// Split the script into k contiguous segments; the ceil split
		// keeps every segment non-empty for k ≤ len(lines).
		k := 1 + int(segCount)%4
		segs := make([][]byte, k)
		per := (len(lines) + k - 1) / k
		for i, line := range lines {
			segs[i/per] = append(segs[i/per], line...)
		}

		// Damage applies to the active (last) segment only.
		last := segs[k-1]
		if cut < 0 {
			cut = ^cut
		}
		if cut > int64(len(last)) {
			cut = int64(len(last))
		}
		damaged := append([]byte(nil), last[:cut]...)
		if flip != 0 && len(damaged) > 0 {
			damaged[len(damaged)-1] ^= flip
		}
		damaged = append(damaged, tail...)

		// The validated prefix is whatever readJournal accepts from the
		// damaged active segment.
		scratch := filepath.Join(t.TempDir(), "journal-000000000001.jsonl")
		if err := os.WriteFile(scratch, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		_, good, err := readJournal(scratch)
		if err != nil {
			t.Fatal(err)
		}
		if good < 0 || good > int64(len(damaged)) {
			t.Fatalf("validated prefix %d outside [0, %d]", good, len(damaged))
		}

		// writeLayout materializes the segment files with lastBytes as
		// the active segment's content. k == 1 uses the legacy
		// single-file name so migration stays covered.
		writeLayout := func(t *testing.T, lastBytes []byte) string {
			dir := t.TempDir()
			if k == 1 {
				if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), lastBytes, 0o644); err != nil {
					t.Fatal(err)
				}
				return dir
			}
			for i := 0; i < k-1; i++ {
				if err := os.WriteFile(segmentPath(dir, int64(i+1)), segs[i], 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(segmentPath(dir, int64(k)), lastBytes, 0o644); err != nil {
				t.Fatal(err)
			}
			return dir
		}

		recoverDir := func(dir string) (SnapshotView, error) {
			// slice must be positive: runEpoch converges in slice-sized
			// chunks and a zero slice makes no progress.
			tn, err := newTenant(context.Background(), dir, meta, tenantOptions{slice: 64, now: time.Now})
			if err != nil {
				return SnapshotView{}, err
			}
			view := tn.snapshotView()
			tn.close()
			<-tn.dead
			return view, nil
		}

		switch {
		case dropMid && k >= 3:
			dir := writeLayout(t, damaged)
			if err := os.Remove(segmentPath(dir, 2)); err != nil {
				t.Fatal(err)
			}
			if _, err := recoverDir(dir); err == nil || !strings.Contains(err.Error(), "segment gap") {
				t.Fatalf("deleted middle segment recovered silently (err=%v); want a segment-gap failure", err)
			}
		case swapSegs && k >= 3:
			dir := writeLayout(t, damaged)
			if err := os.WriteFile(segmentPath(dir, 1), segs[1], 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segmentPath(dir, 2), segs[0], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := recoverDir(dir); err == nil || !strings.Contains(err.Error(), "out of order") {
				t.Fatalf("swapped sealed segments recovered silently (err=%v); want an out-of-order failure", err)
			}
		default:
			viewDamaged, errDamaged := recoverDir(writeLayout(t, damaged))
			viewPrefix, errPrefix := recoverDir(writeLayout(t, damaged[:good]))
			switch {
			case errDamaged == nil && errPrefix == nil:
				rawDamaged, err := json.Marshal(viewDamaged)
				if err != nil {
					t.Fatal(err)
				}
				rawPrefix, err := json.Marshal(viewPrefix)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rawDamaged, rawPrefix) {
					t.Fatalf("damaged journal and validated prefix recover differently:\n%s\nvs\n%s", rawDamaged, rawPrefix)
				}
			case errDamaged != nil && errPrefix != nil:
				if errDamaged.Error() != errPrefix.Error() {
					t.Fatalf("recovery errors diverge: %v vs %v", errDamaged, errPrefix)
				}
			default:
				t.Fatalf("recovery outcomes diverge: damaged err=%v, prefix err=%v", errDamaged, errPrefix)
			}
		}
	})
}
