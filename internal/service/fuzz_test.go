package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzJournalRecover is the torn-tail recovery property: however the
// journal's tail is mangled — truncated mid-line, bit-flipped, or
// extended with forged bytes — recovering from the damaged file must
// behave exactly like recovering from its validated prefix (the bytes
// readJournal accepts). Either both recoveries fail with the same
// error, or both succeed and land on the same snapshot view. A
// divergence means readJournal's prefix validation and recoverFrom's
// replay disagree about what the journal says, which is precisely the
// bug class crash recovery must not have.
//
// The fuzzer shapes the damage: cut is the keep-length of the valid
// journal, flip XORs the last kept byte (zero leaves it intact), and
// tail is appended verbatim. A flip or tail can turn the cut into a
// complete, well-formed JSON line that the live path would have
// rejected — which is why replayEntry re-validates (see the comment
// there) and why this fuzz drives that seam.
func FuzzJournalRecover(f *testing.F) {
	f.Add(int64(1<<30), byte(0), []byte{})                                                     // untouched journal
	f.Add(int64(37), byte(0), []byte(`{"seq":`))                                               // torn mid-line
	f.Add(int64(0), byte(0), []byte("\x00\xff\x00"))                                           // garbage from byte zero
	f.Add(int64(120), byte(1), []byte{})                                                       // bit-flip inside the log
	f.Add(int64(1<<30), byte(0), []byte("{\"seq\":99,\"op\":\"add_edge\",\"u\":0,\"v\":3}\n")) // forged entry
	f.Add(int64(1<<30), byte(0), []byte("{\"seq\":99,\"op\":\"add_edge\"}\n"))                 // forged entry, nil operands

	f.Fuzz(func(t *testing.T, cut int64, flip byte, tail []byte) {
		const n = 8
		meta := tenantMeta{ID: "fuzz", Protocol: ProtocolSMM, N: n, Seed: 42}
		var buf bytes.Buffer
		for i, m := range mutationScript(n) {
			m.Seq = int64(i + 1)
			line, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		data := buf.Bytes()
		if cut < 0 {
			cut = ^cut
		}
		if cut > int64(len(data)) {
			cut = int64(len(data))
		}
		damaged := append([]byte(nil), data[:cut]...)
		if flip != 0 && len(damaged) > 0 {
			damaged[len(damaged)-1] ^= flip
		}
		damaged = append(damaged, tail...)

		// The validated prefix is whatever readJournal accepts from the
		// damaged bytes.
		scratch := filepath.Join(t.TempDir(), "journal.jsonl")
		if err := os.WriteFile(scratch, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		_, good, err := readJournal(scratch)
		if err != nil {
			t.Fatal(err)
		}
		if good < 0 || good > int64(len(damaged)) {
			t.Fatalf("validated prefix %d outside [0, %d]", good, len(damaged))
		}

		recover := func(journal []byte) (SnapshotView, error) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), journal, 0o644); err != nil {
				t.Fatal(err)
			}
			// slice must be positive: runEpoch converges in slice-sized
			// chunks and a zero slice makes no progress.
			tn, err := newTenant(context.Background(), dir, meta, tenantOptions{slice: 64, now: time.Now})
			if err != nil {
				return SnapshotView{}, err
			}
			view := tn.snapshotView()
			tn.close()
			<-tn.dead
			return view, nil
		}

		viewDamaged, errDamaged := recover(damaged)
		viewPrefix, errPrefix := recover(damaged[:good])
		switch {
		case errDamaged == nil && errPrefix == nil:
			rawDamaged, err := json.Marshal(viewDamaged)
			if err != nil {
				t.Fatal(err)
			}
			rawPrefix, err := json.Marshal(viewPrefix)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rawDamaged, rawPrefix) {
				t.Fatalf("damaged journal and validated prefix recover differently:\n%s\nvs\n%s", rawDamaged, rawPrefix)
			}
		case errDamaged != nil && errPrefix != nil:
			if errDamaged.Error() != errPrefix.Error() {
				t.Fatalf("recovery errors diverge: %v vs %v", errDamaged, errPrefix)
			}
		default:
			t.Fatalf("recovery outcomes diverge: damaged err=%v, prefix err=%v", errDamaged, errPrefix)
		}
	})
}
