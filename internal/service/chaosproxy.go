package service

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
)

// ChaosTransport is an http.RoundTripper that injects network-level
// faults between a client and the daemon: dropped requests (the send
// fails before reaching the server), duplicated requests (a stashed
// copy is re-sent later, arriving out of order), and the reordering
// that falls out of late duplicate delivery. It exercises the service's
// idempotency-key dedup end to end: a well-behaved client retries drops
// with the same key, and the server must absorb the duplicates.
//
// The generator is seeded and owned by the transport, so a chaos run is
// reproducible; serialize requests through one transport per test.
type ChaosTransport struct {
	// Base performs the real sends; http.DefaultTransport if nil.
	Base http.RoundTripper
	// DropProb is the probability a request is dropped before sending.
	DropProb float64
	// DupProb is the probability a request is cloned into the replay
	// stash after a successful send.
	DupProb float64

	mu sync.Mutex
	// guarded by mu
	rng *rand.Rand
	// guarded by mu
	stash []*stashedRequest
	// guarded by mu
	drops int
	// guarded by mu
	dups int
	// guarded by mu
	replays int
}

type stashedRequest struct {
	method string
	url    string
	header http.Header
	body   []byte
}

// NewChaosTransport builds a transport with a deterministic fault
// stream.
func NewChaosTransport(base http.RoundTripper, seed int64, dropProb, dupProb float64) *ChaosTransport {
	return &ChaosTransport{
		Base:     base,
		DropProb: dropProb,
		DupProb:  dupProb,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// errDropped is the injected network failure clients see for a dropped
// request.
type errDropped struct{}

func (errDropped) Error() string   { return "chaos: request dropped" }
func (errDropped) Timeout() bool   { return true }
func (errDropped) Temporary() bool { return true }

func (c *ChaosTransport) base() http.RoundTripper {
	if c.Base != nil {
		return c.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	body, err := readBody(req)
	if err != nil {
		return nil, err
	}
	drop, replay := c.decide(req, body)
	if drop {
		return nil, errDropped{}
	}
	req.Body = io.NopCloser(bytes.NewReader(body))
	resp, err := c.base().RoundTrip(req)
	if err != nil {
		return resp, err
	}
	// Deliver a stashed duplicate of an earlier request after this one:
	// the duplicate arrives late and out of order relative to its
	// original, which dedup must absorb.
	if replay != nil {
		c.deliver(replay)
	}
	return resp, nil
}

// decide rolls the fault dice for one request under the lock and, when
// duplication hits, stashes a copy for later delivery.
func (c *ChaosTransport) decide(req *http.Request, body []byte) (drop bool, replay *stashedRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Only mutation-bearing requests are faulted: read endpoints carry
	// no idempotency keys and dropping them tests nothing.
	if req.Method != http.MethodPost {
		return false, nil
	}
	if c.rng.Float64() < c.DropProb {
		c.drops++
		return true, nil
	}
	if c.rng.Float64() < c.DupProb {
		c.dups++
		c.stash = append(c.stash, &stashedRequest{
			method: req.Method,
			url:    req.URL.String(),
			header: req.Header.Clone(),
			body:   body,
		})
	}
	if len(c.stash) > 0 && c.rng.Float64() < 0.5 {
		replay = c.stash[0]
		c.stash = c.stash[1:]
		c.replays++
	}
	return false, replay
}

// deliver re-sends a stashed duplicate and discards the response; the
// original sender already got theirs.
func (c *ChaosTransport) deliver(sr *stashedRequest) {
	req, err := http.NewRequest(sr.method, sr.url, bytes.NewReader(sr.body))
	if err != nil {
		return
	}
	for k, vs := range sr.header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.base().RoundTrip(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// Flush re-sends every still-stashed duplicate, so a test can force all
// pending reordered deliveries before asserting final state.
func (c *ChaosTransport) Flush() {
	c.mu.Lock()
	pending := c.stash
	c.stash = nil
	c.replays += len(pending)
	c.mu.Unlock()
	for _, sr := range pending {
		c.deliver(sr)
	}
}

// Stats reports the injected fault counts as (drops, dups, replays).
func (c *ChaosTransport) Stats() (drops, dups, replays int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drops, c.dups, c.replays
}

func readBody(req *http.Request) ([]byte, error) {
	if req.Body == nil {
		return nil, nil
	}
	body, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("chaos: read request body: %w", err)
	}
	return body, nil
}
