package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Service. The zero value is not usable; call
// (Options).withDefaults via Open.
type Options struct {
	// DataDir roots the per-tenant journals and snapshots. Empty means
	// in-memory-only operation is impossible — the journal is the
	// durability story — so Open requires it.
	DataDir string
	// QueueDepth bounds each tenant's command queue; a full queue is
	// surfaced as 503 + Retry-After. Default 64.
	QueueDepth int
	// RatePerSec and Burst shape the per-tenant token bucket; an empty
	// bucket is surfaced as 429 + Retry-After. Default 200/s, burst 100.
	RatePerSec float64
	Burst      int
	// SnapshotEvery checkpoints a tenant after every k-th mutation
	// (plus once on graceful shutdown). Default 32; negative disables
	// periodic checkpoints.
	SnapshotEvery int
	// ConvergeSlice is the active-round granularity at which the event
	// loop releases the tenant lock during convergence. Default 64.
	ConvergeSlice int
	// Shards > 1 runs each tenant on the sharded frontier engine.
	Shards int
	// MaxTenants caps the registry; creation past the cap is 429.
	// Default 256.
	MaxTenants int
	// EnableChaos admits the chaos_panic operation (test clusters only).
	EnableChaos bool
	// CommitInterval is the group-commit window: after the first command
	// of a batch arrives, the event loop waits up to this long for more
	// before the batch's single fsync. It caps the extra latency a lone
	// mutation pays for amortization. Default 200µs; negative disables
	// the wait entirely (batches are whatever is already queued).
	CommitInterval time.Duration
	// SegmentBytes is the journal rotation threshold: once the active
	// segment passes it (checked at commit boundaries), the journal
	// rotates to a fresh numbered segment, and checkpoints retire every
	// segment wholly covered by the snapshot. Default 4 MiB.
	SegmentBytes int64
	// FsyncEach forces one fsync per journaled mutation (the
	// pre-group-commit discipline); kept as the benchmark baseline.
	FsyncEach bool
	// Now is the clock seam for rate limiting; defaults to time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RatePerSec <= 0 {
		o.RatePerSec = 200
	}
	if o.Burst <= 0 {
		o.Burst = 100
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 32
	}
	if o.ConvergeSlice <= 0 {
		o.ConvergeSlice = 64
	}
	if o.MaxTenants <= 0 {
		o.MaxTenants = 256
	}
	if o.CommitInterval == 0 {
		o.CommitInterval = 200 * time.Microsecond
	}
	if o.CommitInterval < 0 {
		o.CommitInterval = 0
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Vars is the operational counter block served by GET /varz.
type Vars struct {
	Tenants     int   `json:"tenants"`
	Quarantined int   `json:"quarantined"`
	Requests    int64 `json:"requests"`
	RateLimited int64 `json:"rate_limited"`
	Overloaded  int64 `json:"overloaded"`
	Accepted    int64 `json:"accepted_async"`
	Mutations   int64 `json:"mutations"`
	Panics      int64 `json:"panics"`
	// Fsyncs totals journal fsyncs across tenants; Fsyncs/Mutations is
	// the group-commit amortization ratio load reports track.
	Fsyncs int64 `json:"fsyncs"`
	// Journal holds the per-tenant journal counters, keyed by tenant id.
	Journal map[string]TenantJournalVars `json:"journal,omitempty"`
}

// TenantJournalVars is one tenant's journal observability block.
type TenantJournalVars struct {
	// Appends counts journal entries written (buffered); Fsyncs counts
	// physical syncs; Batches counts group commits that contained at
	// least one entry.
	Appends int64 `json:"appends"`
	Fsyncs  int64 `json:"fsyncs"`
	Batches int64 `json:"batches"`
	// Segments is the live segment-file count; ReplaySuffixBytes is the
	// total bytes recovery would read (all live segments).
	Segments          int   `json:"segments"`
	ReplaySuffixBytes int64 `json:"replay_suffix_bytes"`
	// BatchSizes histograms realized group-commit sizes into buckets
	// 1, 2, ≤4, ≤8, ≤16, ≤32, ≤64, >64.
	BatchSizes [8]int64 `json:"batch_size_hist"`
}

// Service hosts many tenant graphs, each behind its own single-writer
// event loop, with shared admission control and a common kill switch.
type Service struct {
	opts Options
	// killCtx is canceled by Kill (and by Close after its drain
	// deadline): every tenant loop and in-flight convergence observes it
	// between rounds.
	killCtx context.Context
	kill    context.CancelFunc
	wg      sync.WaitGroup

	mu sync.RWMutex
	// guarded by mu
	tenants map[string]*tenant
	// guarded by mu
	closing bool

	requests    atomic.Int64
	rateLimited atomic.Int64
	overloaded  atomic.Int64
	accepted    atomic.Int64
	mutations   atomic.Int64
	panics      atomic.Int64
}

// Open starts a service over dataDir, recovering every tenant directory
// found there: each is replayed from its latest snapshot plus journal
// suffix to exactly its last acknowledged state.
//
// Open is the process-lifetime context root: killCtx outlives every
// request and is cancelled only by Kill/Close.
//
//selfstab:ctx-root
func Open(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	if opts.DataDir == "" {
		return nil, errors.New("service: DataDir is required")
	}
	if err := os.MkdirAll(filepath.Join(opts.DataDir, "tenants"), 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		opts:    opts,
		killCtx: ctx,
		kill:    cancel,
		tenants: make(map[string]*tenant),
	}
	des, err := os.ReadDir(filepath.Join(opts.DataDir, "tenants"))
	if err != nil {
		cancel()
		return nil, err
	}
	// Sorted recovery order: deterministic startup regardless of
	// directory enumeration order.
	names := make([]string, 0, len(des))
	for _, de := range des {
		if de.IsDir() {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := tenantDir(opts.DataDir, name)
		meta, err := readMeta(dir)
		if err != nil {
			cancel()
			s.shutdownAll()
			return nil, fmt.Errorf("recover tenant %s: %w", name, err)
		}
		t, err := s.startTenant(dir, meta)
		if err != nil {
			cancel()
			s.shutdownAll()
			return nil, fmt.Errorf("recover tenant %s: %w", name, err)
		}
		s.register(t)
	}
	return s, nil
}

func (s *Service) startTenant(dir string, meta tenantMeta) (*tenant, error) {
	t, err := newTenant(s.killCtx, dir, meta, tenantOptions{
		queueDepth:  s.opts.QueueDepth,
		slice:       s.opts.ConvergeSlice,
		snapEvery:   int64(s.opts.SnapshotEvery),
		shards:      s.opts.Shards,
		ratePerSec:  s.opts.RatePerSec,
		burst:       s.opts.Burst,
		commitEvery: s.opts.CommitInterval,
		segBytes:    s.opts.SegmentBytes,
		fsyncEach:   s.opts.FsyncEach,
		now:         s.opts.Now,
	})
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-t.dead
	}()
	return t, nil
}

func (s *Service) register(t *tenant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenants[t.id] = t
}

// CreateTenant provisions a new tenant directory, writes its immutable
// meta, runs the deterministic init epoch, and starts its loop.
func (s *Service) CreateTenant(meta tenantMeta) (*tenant, error) {
	if meta.ID == "" || !validTenantID(meta.ID) {
		return nil, fmt.Errorf("invalid tenant id %q", meta.ID)
	}
	if meta.N <= 0 || meta.N > 1<<22 {
		return nil, fmt.Errorf("tenant n=%d out of range [1, %d]", meta.N, 1<<22)
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, errClosed
	}
	if _, dup := s.tenants[meta.ID]; dup {
		s.mu.Unlock()
		return nil, errTenantExists
	}
	if len(s.tenants) >= s.opts.MaxTenants {
		s.mu.Unlock()
		return nil, errTenantCap
	}
	// Reserve the slot before the (slow) init epoch so a concurrent
	// create of the same ID conflicts instead of racing.
	s.tenants[meta.ID] = nil
	s.mu.Unlock()

	dir := tenantDir(s.opts.DataDir, meta.ID)
	t, err := func() (*tenant, error) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := writeMeta(dir, meta); err != nil {
			return nil, err
		}
		return s.startTenant(dir, meta)
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		delete(s.tenants, meta.ID)
		os.RemoveAll(dir)
		return nil, err
	}
	s.tenants[meta.ID] = t
	return t, nil
}

var (
	errTenantExists   = errors.New("tenant already exists")
	errTenantCap      = errors.New("tenant capacity reached")
	errTenantNotFound = errors.New("tenant not found")
)

func validTenantID(id string) bool {
	if len(id) > 64 {
		return false
	}
	for _, r := range id {
		ok := r == '-' || r == '_' || (r >= '0' && r <= '9') ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// Tenant looks up a live tenant. A reserved-but-initializing slot reads
// as not found.
func (s *Service) Tenant(id string) (*tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	if !ok || t == nil {
		return nil, errTenantNotFound
	}
	return t, nil
}

// TenantIDs returns the sorted live tenant IDs (sorted so map iteration
// order never escapes to a response).
func (s *Service) TenantIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.tenants))
	for id, t := range s.tenants {
		if t != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// DeleteTenant drains the tenant's loop and removes its directory.
func (s *Service) DeleteTenant(ctx context.Context, id string) error {
	s.mu.Lock()
	t, ok := s.tenants[id]
	if !ok || t == nil {
		s.mu.Unlock()
		return errTenantNotFound
	}
	delete(s.tenants, id)
	s.mu.Unlock()
	t.close()
	select {
	case <-t.dead:
	case <-ctx.Done():
		return ctx.Err()
	}
	return os.RemoveAll(t.dir)
}

// Close shuts down gracefully: no new tenants, every loop drains its
// queue and flushes a final checkpoint. If ctx expires first, Close
// falls back to Kill so shutdown always terminates.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	for _, t := range s.liveTenants() {
		t.close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.kill() // release the kill context's resources
		return nil
	case <-ctx.Done():
		s.kill()
		<-done
		return ctx.Err()
	}
}

// Kill is the crash path: cancel every loop and in-flight convergence
// immediately, flush nothing. State on disk is whatever the journal
// says — which is the point; the recovery tier reopens from it.
func (s *Service) Kill() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.kill()
	s.wg.Wait()
}

func (s *Service) shutdownAll() {
	for _, t := range s.liveTenants() {
		t.close()
	}
	s.wg.Wait()
}

// liveTenants snapshots the registered tenants in deterministic id
// order (placeholders from in-flight creates are skipped).
func (s *Service) liveTenants() []*tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	return ts
}

// Varz snapshots the operational counters. Per-tenant journal blocks
// are read in sorted id order so map iteration never shapes a response.
func (s *Service) Varz() Vars {
	ids := s.TenantIDs()
	quarantined := 0
	var fsyncs int64
	journal := make(map[string]TenantJournalVars, len(ids))
	for _, id := range ids {
		t, err := s.Tenant(id)
		if err != nil {
			continue
		}
		if t.status().Quarantined != "" {
			quarantined++
		}
		jv := t.journalVars()
		fsyncs += jv.Fsyncs
		journal[id] = jv
	}
	return Vars{
		Tenants:     len(ids),
		Quarantined: quarantined,
		Requests:    s.requests.Load(),
		RateLimited: s.rateLimited.Load(),
		Overloaded:  s.overloaded.Load(),
		Accepted:    s.accepted.Load(),
		Mutations:   s.mutations.Load(),
		Panics:      s.panics.Load(),
		Fsyncs:      fsyncs,
		Journal:     journal,
	}
}
