package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// mutationScript is a fixed, representative burst: edge churn, node
// crash/resurrect, state corruption, explicit converge.
func mutationScript(n int) []Mutation {
	return []Mutation{
		{Op: OpAddEdge, U: intp(0), V: intp(n - 1), Key: "s1"},
		{Op: OpCorrupt, Nodes: []int{1, 2, 3}, Key: "s2"},
		{Op: OpRemoveNode, U: intp(n / 2), Key: "s3"},
		{Op: OpRemoveEdge, U: intp(0), V: intp(1), Key: "s4"},
		{Op: OpAddNode, U: intp(n / 2), Nodes: []int{n/2 - 1, n/2 + 1}, Key: "s5"},
		{Op: OpCorrupt, Nodes: []int{0, n - 1}, Key: "s6"},
		{Op: OpAddEdge, U: intp(1), V: intp(3), Key: "s7"},
		{Op: OpCorrupt, Nodes: []int{4}, Key: "s8"},
	}
}

func applyScript(t *testing.T, h http.Handler, id string, script []Mutation) []MutationResult {
	t.Helper()
	results := make([]MutationResult, 0, len(script))
	for i, m := range script {
		var res MutationResult
		code, _ := doJSON(t, h, "POST", "/v1/tenants/"+id+"/mutations", m, &res)
		if code != http.StatusOK {
			t.Fatalf("script step %d (%s): status %d", i, m.Op, code)
		}
		results = append(results, res)
	}
	return results
}

func snapshotJSON(t *testing.T, h http.Handler, id string) []byte {
	t.Helper()
	var view SnapshotView
	if code, _ := doJSON(t, h, "GET", "/v1/tenants/"+id+"/snapshot", nil, &view); code != http.StatusOK {
		t.Fatalf("snapshot read: status %d", code)
	}
	raw, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestKillRecoveryByteIdentical is the crash-recovery acceptance pin:
// after an abrupt Kill, reopening from the data dir replays
// snapshot + journal suffix to the exact acknowledged pre-crash state —
// byte-identical both to the pre-crash view and to an uninterrupted
// twin service that ran the same script.
func TestKillRecoveryByteIdentical(t *testing.T) {
	for _, proto := range []string{ProtocolSMM, ProtocolSMI} {
		t.Run(proto, func(t *testing.T) {
			const n = 12
			script := mutationScript(n)

			// Twin A: runs the script, gets killed, reopens.
			dirA := t.TempDir()
			// SnapshotEvery 3 exercises the snapshot+suffix path (the
			// last snapshot covers a strict prefix of the journal).
			svcA, err := Open(Options{DataDir: dirA, SnapshotEvery: 3})
			if err != nil {
				t.Fatal(err)
			}
			hA := svcA.Handler()
			pathTenant(t, hA, "x", proto, n)
			applyScript(t, hA, "x", script)
			preCrash := snapshotJSON(t, hA, "x")
			svcA.Kill()

			// Twin B: same script, clean shutdown, never crashes.
			dirB := t.TempDir()
			svcB := newTestService(t, Options{DataDir: dirB, SnapshotEvery: 3})
			hB := svcB.Handler()
			pathTenant(t, hB, "x", proto, n)
			applyScript(t, hB, "x", script)
			uninterrupted := snapshotJSON(t, hB, "x")

			if string(preCrash) != string(uninterrupted) {
				t.Fatalf("pre-crash state diverged from uninterrupted twin:\nA: %s\nB: %s", preCrash, uninterrupted)
			}

			// Reopen A from its data dir: recovery must land exactly on
			// the acknowledged pre-crash state.
			svcA2 := newTestService(t, Options{DataDir: dirA, SnapshotEvery: 3})
			hA2 := svcA2.Handler()
			recovered := snapshotJSON(t, hA2, "x")
			if string(recovered) != string(preCrash) {
				t.Fatalf("recovered state != pre-crash state:\npre:  %s\npost: %s", preCrash, recovered)
			}

			// The recovered tenant still rejects duplicates of pre-crash
			// requests (dedup window survives via snapshot + journal).
			var res MutationResult
			code, _ := doJSON(t, hA2, "POST", "/v1/tenants/x/mutations", script[len(script)-1], &res)
			if code != http.StatusOK || !res.Duplicate {
				t.Fatalf("pre-crash idempotency key not honored after recovery: code %d res %+v", code, res)
			}

			// And it keeps serving: one more mutation converges in bound.
			var st TenantStatus
			doJSON(t, hA2, "GET", "/v1/tenants/x", nil, &st)
			code, _ = doJSON(t, hA2, "POST", "/v1/tenants/x/mutations",
				Mutation{Op: OpCorrupt, Nodes: []int{2}}, &res)
			if code != http.StatusOK || !res.Converged || res.Rounds > st.Bound {
				t.Fatalf("post-recovery mutation: code %d res %+v bound %d", code, res, st.Bound)
			}
		})
	}
}

// TestTornJournalLineDiscarded pins crash-mid-append behavior: a torn
// final journal line (never acknowledged) is dropped on open and the
// tenant recovers to the last complete entry.
func TestTornJournalLineDiscarded(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	pathTenant(t, h, "torn", ProtocolSMM, 8)
	applyScript(t, h, "torn", mutationScript(8)[:3])
	want := snapshotJSON(t, h, "torn")
	svc.Kill()

	jp := activeSegmentPath(t, tenantDir(dir, "torn"))
	f, err := os.OpenFile(jp, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial line with no newline.
	if _, err := f.WriteString(`{"seq":99,"op":"add_ed`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc2 := newTestService(t, Options{DataDir: dir})
	h2 := svc2.Handler()
	got := snapshotJSON(t, h2, "torn")
	if string(got) != string(want) {
		t.Fatalf("torn journal changed recovered state:\nwant %s\ngot  %s", want, got)
	}
	var st TenantStatus
	doJSON(t, h2, "GET", "/v1/tenants/torn", nil, &st)
	if st.Seq != 3 {
		t.Fatalf("recovered seq = %d, want 3", st.Seq)
	}
	// The truncated journal must accept appends again.
	var res MutationResult
	if code, _ := doJSON(t, h2, "POST", "/v1/tenants/torn/mutations",
		Mutation{Op: OpAddEdge, U: intp(0), V: intp(4)}, &res); code != http.StatusOK || res.Seq != 4 {
		t.Fatalf("append after truncation: code %d res %+v", code, res)
	}
}

// activeSegmentPath returns the highest-numbered journal segment file
// in a tenant directory — the one a crash can tear.
func activeSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	nums, err := segmentNums(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) == 0 {
		t.Fatalf("no journal segments in %s", dir)
	}
	return segmentPath(dir, nums[len(nums)-1])
}

// TestGroupCommitBatchesFsyncs pins the amortization mechanics: a burst
// of mutations queued inside one commit window is journaled with a
// single fsync, and the varz counters (appends, fsyncs, batches, the
// batch-size histogram) report exactly that.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	const burst = 16
	dir := t.TempDir()
	meta := tenantMeta{ID: "batch", Protocol: ProtocolSMM, N: 8, Seed: 7}
	tn, err := newTenant(context.Background(), dir, meta, tenantOptions{
		queueDepth: burst + 4,
		slice:      64,
		// A window far longer than the enqueue loop below, so all 16
		// commands land in one gather and therefore one commit.
		commitEvery: 500 * time.Millisecond,
		now:         time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { tn.close(); <-tn.dead }()

	cmds := make([]*command, burst)
	for i := range cmds {
		cmds[i] = &command{
			mut:   Mutation{Op: OpCorrupt, Nodes: []int{i % 8}},
			reply: make(chan cmdResult, 1),
		}
		tn.cmds <- cmds[i]
	}
	for i, cmd := range cmds {
		res := <-cmd.reply
		if res.Err != nil {
			t.Fatalf("command %d: %v", i, res.Err)
		}
		if res.Seq != int64(i+1) {
			t.Fatalf("command %d: seq %d, want %d (batch replies out of order)", i, res.Seq, i+1)
		}
	}

	jv := tn.journalVars()
	if jv.Appends != burst {
		t.Fatalf("appends = %d, want %d", jv.Appends, burst)
	}
	if jv.Fsyncs != 1 {
		t.Fatalf("fsyncs = %d, want 1 (burst split across commits)", jv.Fsyncs)
	}
	if jv.Batches != 1 {
		t.Fatalf("batches = %d, want 1", jv.Batches)
	}
	// 16 entries land in histogram bucket ≤16 (index 4).
	want := [8]int64{4: 1}
	if jv.BatchSizes != want {
		t.Fatalf("batch_size_hist = %v, want %v", jv.BatchSizes, want)
	}
}

// TestSegmentRotationAndCompaction pins the journal lifecycle: tiny
// segments rotate under a mutation stream, a checkpoint retires every
// sealed segment it covers, and a post-compaction kill still recovers
// byte-identical state.
func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// No checkpoints in phase one: every entry stays replayable, so
	// rotation must leave several live segments.
	svc, err := Open(Options{DataDir: dir, SegmentBytes: 150, SnapshotEvery: -1, CommitInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	pathTenant(t, h, "seg", ProtocolSMM, 8)
	applyScript(t, h, "seg", mutationScript(8))
	want := snapshotJSON(t, h, "seg")
	tdir := tenantDir(dir, "seg")
	tn, err := svc.Tenant("seg")
	if err != nil {
		t.Fatal(err)
	}
	if jv := tn.journalVars(); jv.Segments < 3 {
		t.Fatalf("segments = %d after 8 mutations at 150-byte rotation, want >= 3", jv.Segments)
	}
	svc.Kill()
	nums, err := segmentNums(tdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) < 3 {
		t.Fatalf("on-disk segments = %v, want >= 3", nums)
	}

	// Reopen with per-mutation checkpoints: the next mutation snapshots
	// at its seq, which covers every sealed segment — compaction must
	// retire them all.
	svc2 := newTestService(t, Options{DataDir: dir, SegmentBytes: 150, SnapshotEvery: 1, CommitInterval: -1})
	h2 := svc2.Handler()
	if got := snapshotJSON(t, h2, "seg"); string(got) != string(want) {
		t.Fatalf("multi-segment recovery diverged:\nwant %s\ngot  %s", want, got)
	}
	var res MutationResult
	if code, _ := doJSON(t, h2, "POST", "/v1/tenants/seg/mutations",
		Mutation{Op: OpCorrupt, Nodes: []int{1}}, &res); code != http.StatusOK || res.Seq != 9 {
		t.Fatalf("post-recovery mutation: code %d res %+v", code, res)
	}
	after, err := segmentNums(tdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(nums) || len(after) > 2 {
		t.Fatalf("compaction kept %v (was %v); want at most the live suffix", after, nums)
	}
	postCompact := snapshotJSON(t, h2, "seg")

	// Post-compaction kill: snapshot + surviving suffix must still
	// replay to the acknowledged state.
	svc2.Kill()
	svc3 := newTestService(t, Options{DataDir: dir, SegmentBytes: 150, CommitInterval: -1})
	if got := snapshotJSON(t, svc3.Handler(), "seg"); string(got) != string(postCompact) {
		t.Fatalf("post-compaction recovery diverged:\nwant %s\ngot  %s", postCompact, got)
	}
}

// TestKillBetweenRotationAndCheckpoint pins the window the segmented
// journal opens: segments have rotated but no checkpoint has retired
// them, the process dies, and recovery must concatenate the full
// segment chain — landing byte-identical to an uninterrupted twin.
func TestKillBetweenRotationAndCheckpoint(t *testing.T) {
	script := mutationScript(10)

	dirA := t.TempDir()
	// SnapshotEvery -1: rotation happens (tiny segments) but no
	// checkpoint ever runs, so the kill lands squarely between the two.
	svcA, err := Open(Options{DataDir: dirA, SegmentBytes: 150, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	hA := svcA.Handler()
	pathTenant(t, hA, "rot", ProtocolSMI, 10)
	applyScript(t, hA, "rot", script)
	preCrash := snapshotJSON(t, hA, "rot")
	nums, err := segmentNums(tenantDir(dirA, "rot"))
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) < 2 {
		t.Fatalf("kill window needs rotated segments, got %v", nums)
	}
	svcA.Kill()

	dirB := t.TempDir()
	svcB := newTestService(t, Options{DataDir: dirB, SegmentBytes: 150, SnapshotEvery: -1})
	hB := svcB.Handler()
	pathTenant(t, hB, "rot", ProtocolSMI, 10)
	applyScript(t, hB, "rot", script)
	uninterrupted := snapshotJSON(t, hB, "rot")
	if string(preCrash) != string(uninterrupted) {
		t.Fatalf("pre-crash state diverged from uninterrupted twin:\nA: %s\nB: %s", preCrash, uninterrupted)
	}

	svcA2 := newTestService(t, Options{DataDir: dirA, SegmentBytes: 150, SnapshotEvery: -1})
	if got := snapshotJSON(t, svcA2.Handler(), "rot"); string(got) != string(preCrash) {
		t.Fatalf("recovery across rotated, uncompacted segments diverged:\nwant %s\ngot  %s", preCrash, got)
	}
}

// TestSegmentGapFailsRecovery pins loud failure over silent data loss:
// a deleted middle segment must abort recovery with a segment-gap
// error, not replay around the hole.
func TestSegmentGapFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Options{DataDir: dir, SegmentBytes: 150, SnapshotEvery: -1, CommitInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	pathTenant(t, h, "gap", ProtocolSMM, 8)
	applyScript(t, h, "gap", mutationScript(8))
	tdir := tenantDir(dir, "gap")
	nums, err := segmentNums(tdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) < 3 {
		t.Fatalf("need >= 3 segments to delete a middle one, got %v", nums)
	}
	svc.Kill()

	if err := os.Remove(segmentPath(tdir, nums[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{DataDir: dir, SegmentBytes: 150}); err == nil ||
		!strings.Contains(err.Error(), "segment gap") {
		t.Fatalf("Open with a missing middle segment: err=%v, want a segment-gap failure", err)
	}
}

// TestSegmentOutOfOrderFails pins the cross-segment sequence check: two
// sealed segments with swapped contents (forged or misnumbered files)
// must abort recovery.
func TestSegmentOutOfOrderFails(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Options{DataDir: dir, SegmentBytes: 150, SnapshotEvery: -1, CommitInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	pathTenant(t, h, "ooo", ProtocolSMM, 8)
	applyScript(t, h, "ooo", mutationScript(8))
	tdir := tenantDir(dir, "ooo")
	nums, err := segmentNums(tdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) < 3 {
		t.Fatalf("need >= 3 segments to swap two sealed ones, got %v", nums)
	}
	svc.Kill()

	a, err := os.ReadFile(segmentPath(tdir, nums[0]))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(segmentPath(tdir, nums[1]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(tdir, nums[0]), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(tdir, nums[1]), a, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{DataDir: dir, SegmentBytes: 150}); err == nil ||
		!strings.Contains(err.Error(), "out of order") {
		t.Fatalf("Open with swapped sealed segments: err=%v, want an out-of-order failure", err)
	}
}

// TestRecoveryAcrossManyTenants pins deterministic multi-tenant
// startup: several tenants with different protocols all recover.
func TestRecoveryAcrossManyTenants(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Options{DataDir: dir, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	views := map[string][]byte{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("m%d", i)
		proto := ProtocolSMM
		if i%2 == 1 {
			proto = ProtocolSMI
		}
		pathTenant(t, h, id, proto, 6+i)
		applyScript(t, h, id, mutationScript(6 + i)[:4])
		views[id] = snapshotJSON(t, h, id)
	}
	svc.Kill()

	svc2 := newTestService(t, Options{DataDir: dir, SnapshotEvery: 2})
	h2 := svc2.Handler()
	ids := svc2.TenantIDs()
	if len(ids) != 4 {
		t.Fatalf("recovered %d tenants, want 4: %v", len(ids), ids)
	}
	for id, want := range views {
		got := snapshotJSON(t, h2, id)
		if string(got) != string(want) {
			t.Fatalf("tenant %s diverged after recovery:\nwant %s\ngot  %s", id, want, got)
		}
	}
}

// TestConvergeEndpointJournaledTruncation pins the post-hoc journaling
// of converge epochs: a converge with a tiny round budget lands in the
// journal with the rounds it actually ran, and replay reproduces the
// truncated state exactly.
func TestConvergeEndpointJournaledTruncation(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	pathTenant(t, h, "c", ProtocolSMM, 10)

	// Corrupt widely, then converge with a budget of 1 round — far too
	// small, leaving the tenant mid-trajectory.
	var res MutationResult
	doJSON(t, h, "POST", "/v1/tenants/c/mutations",
		Mutation{Op: OpCorrupt, Nodes: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}, &res)

	code, _ := doJSON(t, h, "POST", "/v1/tenants/c/converge", convergeRequest{Rounds: 1}, &res)
	if code != http.StatusOK {
		t.Fatalf("converge: status %d", code)
	}
	want := snapshotJSON(t, h, "c")
	svc.Kill()

	svc2 := newTestService(t, Options{DataDir: dir})
	got := snapshotJSON(t, svc2.Handler(), "c")
	if string(got) != string(want) {
		t.Fatalf("truncated converge not reproduced by replay:\nwant %s\ngot  %s", want, got)
	}
}

// TestCloseDrainsQueuedWork pins graceful-shutdown semantics: commands
// already queued when Close begins are processed, journaled, and
// answered before the loops exit.
func TestCloseDrainsQueuedWork(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	pathTenant(t, h, "drain", ProtocolSMM, 6)
	tn, err := svc.Tenant("drain")
	if err != nil {
		t.Fatal(err)
	}
	// Queue directly so the command is provably pending when Close runs.
	cmd := &command{mut: Mutation{Op: OpAddEdge, U: intp(0), V: intp(3)}, reply: make(chan cmdResult, 1)}
	tn.cmds <- cmd
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case res := <-cmd.reply:
		if res.Err != nil || !res.Converged {
			t.Fatalf("drained command result: %+v", res)
		}
	default:
		t.Fatal("queued command was not drained before shutdown")
	}

	// The drained mutation is durable: reopening shows it.
	svc2 := newTestService(t, Options{DataDir: dir})
	var st TenantStatus
	doJSON(t, svc2.Handler(), "GET", "/v1/tenants/drain", nil, &st)
	if st.Seq != 1 {
		t.Fatalf("drained mutation lost: seq %d, want 1", st.Seq)
	}
}
