package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// MutationResult is the response body for accepted mutations.
type MutationResult struct {
	Seq       int64  `json:"seq"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Rounds    int    `json:"epoch_rounds"`
	Converged bool   `json:"converged"`
	Legit     bool   `json:"legit"`
	CheckErr  string `json:"check_error,omitempty"`
	Bound     int    `json:"bound"`
}

// createRequest is the body of POST /v1/tenants.
type createRequest struct {
	ID       string   `json:"id"`
	Protocol string   `json:"protocol"`
	N        int      `json:"n"`
	Seed     int64    `json:"seed"`
	Edges    [][2]int `json:"edges"`
}

// convergeRequest is the body of POST .../converge.
type convergeRequest struct {
	Rounds int    `json:"rounds"`
	Key    string `json:"key,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /varz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Varz())
	})
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	mux.HandleFunc("GET /v1/tenants/{id}", s.withTenant(s.handleStatus))
	mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDeleteTenant)
	mux.HandleFunc("POST /v1/tenants/{id}/mutations", s.withTenant(s.handleMutation))
	mux.HandleFunc("POST /v1/tenants/{id}/converge", s.withTenant(s.handleConverge))
	mux.HandleFunc("GET /v1/tenants/{id}/snapshot", s.withTenant(s.handleSnapshot))
	mux.HandleFunc("GET /v1/tenants/{id}/membership", s.withTenant(s.handleMembership))
	mux.HandleFunc("GET /v1/tenants/{id}/nodes/{node}", s.withTenant(s.handleNode))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func (s *Service) withTenant(h func(http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.Tenant(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		h(w, r, t)
	}
}

func (s *Service) handleListTenants(w http.ResponseWriter, r *http.Request) {
	limit := queryInt(r, "limit", 100)
	offset := queryInt(r, "offset", 0)
	if limit < 1 {
		limit = 1
	}
	if offset < 0 {
		offset = 0
	}
	ids := s.TenantIDs()
	total := len(ids)
	if offset > total {
		offset = total
	}
	if offset+limit > total {
		limit = total - offset
	}
	page := ids[offset : offset+limit]
	statuses := make([]TenantStatus, 0, len(page))
	for _, id := range page {
		if t, err := s.Tenant(id); err == nil {
			statuses = append(statuses, t.status())
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Total   int            `json:"total"`
		Offset  int            `json:"offset"`
		Tenants []TenantStatus `json:"tenants"`
	}{total, offset, statuses})
}

func (s *Service) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	t, err := s.CreateTenant(tenantMeta{
		ID:       req.ID,
		Protocol: req.Protocol,
		N:        req.N,
		Seed:     req.Seed,
		Edges:    req.Edges,
	})
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, t.status())
	case errors.Is(err, errTenantExists):
		writeErr(w, http.StatusConflict, err)
	case errors.Is(err, errTenantCap):
		w.Header().Set("Retry-After", "10")
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, errClosed):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	err := s.DeleteTenant(r.Context(), r.PathValue("id"))
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, errTenantNotFound):
		writeErr(w, http.StatusNotFound, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request, t *tenant) {
	writeJSON(w, http.StatusOK, t.status())
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request, t *tenant) {
	writeJSON(w, http.StatusOK, t.snapshotView())
}

func (s *Service) handleMembership(w http.ResponseWriter, r *http.Request, t *tenant) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(t.membershipView())
}

func (s *Service) handleNode(w http.ResponseWriter, r *http.Request, t *tenant) {
	v, err := strconv.Atoi(r.PathValue("node"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("node id: %w", err))
		return
	}
	ni, err := t.node(v)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, ni)
}

func (s *Service) handleMutation(w http.ResponseWriter, r *http.Request, t *tenant) {
	var m Mutation
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	// Client-supplied bookkeeping fields are server-owned.
	m.Seq, m.Seed, m.Rounds, m.Stable = 0, 0, 0, false
	if m.Op == OpChaosPanic && !s.opts.EnableChaos {
		writeErr(w, http.StatusForbidden, errors.New("chaos operations are disabled"))
		return
	}
	if m.Op == OpConverge {
		writeErr(w, http.StatusBadRequest, errors.New("use the converge endpoint"))
		return
	}
	s.submit(w, r, t, &command{mut: m, reply: make(chan cmdResult, 1)})
}

func (s *Service) handleConverge(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req convergeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	if req.Rounds <= 0 {
		req.Rounds = t.bound + 1
	}
	m := Mutation{Op: OpConverge, Rounds: req.Rounds, Key: req.Key}
	s.submit(w, r, t, &command{mut: m, ctx: r.Context(), reply: make(chan cmdResult, 1)})
}

// submit is the degradation ladder: rate limit (429), quarantine (503),
// bounded queue (503), then wait for the single-writer loop — a client
// that gives up gets 202 while the work still completes and journals.
func (s *Service) submit(w http.ResponseWriter, r *http.Request, t *tenant, cmd *command) {
	if ok, wait := t.limiter.allow(); !ok {
		s.rateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfter(wait))
		writeErr(w, http.StatusTooManyRequests, errors.New("tenant rate limit exceeded"))
		return
	}
	// A dead loop (quarantined or shut down) can never drain the queue;
	// fail fast. The check is the dead channel, not tenant status: a
	// status read would wait on the tenant lock, which a busy epoch may
	// hold, and the fast path must never block.
	select {
	case <-t.dead:
		if q := t.status().Quarantined; q != "" {
			writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("%w: %s", errQuarantined, q))
		} else {
			writeErr(w, http.StatusServiceUnavailable, errClosed)
		}
		return
	default:
	}
	select {
	case t.cmds <- cmd:
	default:
		s.overloaded.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, errors.New("tenant queue full"))
		return
	}
	select {
	case res := <-cmd.reply:
		s.finishSubmit(w, t, res)
	case <-t.dead:
		// The loop died (quarantine or shutdown) with the command still
		// queued; it was never journaled, so the client may retry safely.
		writeErr(w, http.StatusServiceUnavailable, errors.New("tenant loop stopped before processing"))
	case <-r.Context().Done():
		// The client gave up; the loop will still process and journal
		// the command. Report that it is in flight.
		s.accepted.Add(1)
		writeJSON(w, http.StatusAccepted, struct {
			Accepted bool `json:"accepted"`
		}{true})
	}
}

func (s *Service) finishSubmit(w http.ResponseWriter, t *tenant, res cmdResult) {
	if res.Err != nil {
		switch {
		case errors.Is(res.Err, errQuarantined):
			s.panics.Add(1)
			writeErr(w, http.StatusServiceUnavailable, res.Err)
		case errors.Is(res.Err, context.Canceled), errors.Is(res.Err, context.DeadlineExceeded):
			// A truncated converge epoch: journaled with the rounds that
			// actually ran. Report what happened rather than an error.
			writeJSON(w, http.StatusOK, MutationResult{
				Seq: res.Seq, Rounds: res.Rounds, Converged: res.Converged,
				Legit: res.Legit, CheckErr: res.CheckErr, Bound: t.bound,
			})
		default:
			writeErr(w, http.StatusBadRequest, res.Err)
		}
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, MutationResult{
		Seq:       res.Seq,
		Duplicate: res.Duplicate,
		Rounds:    res.Rounds,
		Converged: res.Converged,
		Legit:     res.Legit,
		CheckErr:  res.CheckErr,
		Bound:     t.bound,
	})
}

func retryAfter(wait time.Duration) string {
	secs := int(wait / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func queryInt(r *http.Request, key string, def int) int {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return def
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
