package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchMutations drives a closed-loop mutation stream at the given
// queue depth straight into a tenant event loop (no HTTP, no rate
// limiter) and reports mutations/sec plus realized fsyncs per journal
// entry. BenchmarkServiceMutationsFsyncEach at depth 1 is the
// pre-group-commit discipline; rising depth under BenchmarkService-
// Mutations shows one fsync amortizing over the commands queued behind
// it.
func benchMutations(b *testing.B, depth int, fsyncEach bool) {
	n := 2 * depth
	if n < 8 {
		n = 8
	}
	edges := make([][2]int, n)
	for v := 0; v < n; v++ {
		edges[v] = [2]int{v, (v + 1) % n}
	}
	meta := tenantMeta{ID: "bench", Protocol: ProtocolSMM, N: n, Seed: 1, Edges: edges}
	tn, err := newTenant(context.Background(), b.TempDir(), meta, tenantOptions{
		queueDepth:  depth,
		slice:       64,
		snapEvery:   -1,
		commitEvery: 200 * time.Microsecond,
		segBytes:    64 << 20,
		fsyncEach:   fsyncEach,
		now:         time.Now,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { tn.close(); <-tn.dead }()

	b.ResetTimer()
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker toggles its own chord edge (distinct per
			// worker since n = 2·depth), so every mutation validates and
			// the topology stays bounded.
			u, v := (2*w)%n, (2*w+n/2)%n
			on := false
			for {
				if atomic.AddInt64(&next, 1) > int64(b.N) {
					return
				}
				op := OpAddEdge
				if on {
					op = OpRemoveEdge
				}
				on = !on
				uu, vv := u, v
				cmd := &command{mut: Mutation{Op: op, U: &uu, V: &vv}, reply: make(chan cmdResult, 1)}
				tn.cmds <- cmd
				if res := <-cmd.reply; res.Err != nil {
					b.Errorf("mutation: %v", res.Err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	jv := tn.journalVars()
	if jv.Appends > 0 {
		b.ReportMetric(float64(jv.Fsyncs)/float64(jv.Appends), "fsyncs/op")
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "mut/s")
	}
}

func BenchmarkServiceMutations(b *testing.B) {
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) { benchMutations(b, depth, false) })
	}
}

func BenchmarkServiceMutationsFsyncEach(b *testing.B) {
	for _, depth := range []int{1, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) { benchMutations(b, depth, true) })
	}
}
