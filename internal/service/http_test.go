package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func TestListPagination(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	for i := 0; i < 5; i++ {
		pathTenant(t, h, fmt.Sprintf("p%d", i), ProtocolSMM, 4)
	}
	var page struct {
		Total   int            `json:"total"`
		Offset  int            `json:"offset"`
		Tenants []TenantStatus `json:"tenants"`
	}
	code, _ := doJSON(t, h, "GET", "/v1/tenants?limit=2&offset=1", nil, &page)
	if code != http.StatusOK || page.Total != 5 || len(page.Tenants) != 2 {
		t.Fatalf("pagination: code %d page %+v", code, page)
	}
	// Sorted, stable order: offset 1 limit 2 over p0..p4 is p1, p2.
	if page.Tenants[0].ID != "p1" || page.Tenants[1].ID != "p2" {
		t.Fatalf("page order: %s, %s", page.Tenants[0].ID, page.Tenants[1].ID)
	}
	// Past-the-end offset degrades to an empty page, not an error.
	code, _ = doJSON(t, h, "GET", "/v1/tenants?limit=10&offset=99", nil, &page)
	if code != http.StatusOK || len(page.Tenants) != 0 {
		t.Fatalf("past-end pagination: code %d len %d", code, len(page.Tenants))
	}
}

func TestCreateValidation(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	cases := []struct {
		name string
		req  createRequest
	}{
		{"empty id", createRequest{Protocol: ProtocolSMM, N: 4}},
		{"bad id chars", createRequest{ID: "a/../b", Protocol: ProtocolSMM, N: 4}},
		{"unknown protocol", createRequest{ID: "x", Protocol: "tsp", N: 4}},
		{"zero n", createRequest{ID: "x", Protocol: ProtocolSMM, N: 0}},
		{"self loop", createRequest{ID: "x", Protocol: ProtocolSMM, N: 4, Edges: [][2]int{{1, 1}}}},
		{"edge out of range", createRequest{ID: "x", Protocol: ProtocolSMM, N: 4, Edges: [][2]int{{0, 9}}}},
	}
	for _, tc := range cases {
		if code, _ := doJSON(t, h, "POST", "/v1/tenants", tc.req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
}

func TestMutationValidation(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	pathTenant(t, h, "v", ProtocolSMM, 4)
	cases := []struct {
		name string
		m    Mutation
	}{
		{"unknown op", Mutation{Op: "unmatch_everything"}},
		{"missing operands", Mutation{Op: OpAddEdge}},
		{"self loop", Mutation{Op: OpAddEdge, U: intp(1), V: intp(1)}},
		{"out of range", Mutation{Op: OpRemoveEdge, U: intp(0), V: intp(7)}},
		{"empty corrupt", Mutation{Op: OpCorrupt}},
		{"corrupt out of range", Mutation{Op: OpCorrupt, Nodes: []int{-1}}},
		{"converge via mutations", Mutation{Op: OpConverge}},
	}
	for _, tc := range cases {
		if code, _ := doJSON(t, h, "POST", "/v1/tenants/v/mutations", tc.m, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	// Validation failures never consume sequence numbers.
	var st TenantStatus
	doJSON(t, h, "GET", "/v1/tenants/v", nil, &st)
	if st.Seq != 0 {
		t.Fatalf("failed mutations advanced seq to %d", st.Seq)
	}
}

func TestNoOpMutationsJournaled(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	pathTenant(t, h, "noop", ProtocolSMM, 4)
	// Adding an existing edge and removing an absent one both succeed
	// (idempotent topology ops) and still consume a seq — the journal
	// records intent, not diffs.
	var res MutationResult
	if code, _ := doJSON(t, h, "POST", "/v1/tenants/noop/mutations",
		Mutation{Op: OpAddEdge, U: intp(0), V: intp(1)}, &res); code != http.StatusOK || res.Seq != 1 {
		t.Fatalf("re-add existing edge: code %d res %+v", code, res)
	}
	if code, _ := doJSON(t, h, "POST", "/v1/tenants/noop/mutations",
		Mutation{Op: OpRemoveEdge, U: intp(0), V: intp(3)}, &res); code != http.StatusOK || res.Seq != 2 {
		t.Fatalf("remove absent edge: code %d res %+v", code, res)
	}
}

func TestNotFoundRoutes(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	pathTenant(t, h, "nf", ProtocolSMM, 4)
	for _, path := range []string{
		"/v1/tenants/ghost",
		"/v1/tenants/ghost/membership",
		"/v1/tenants/nf/nodes/99",
	} {
		if code, _ := doJSON(t, h, "GET", path, nil, nil); code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, code)
		}
	}
}

func TestHealthAndVarz(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	if code, _ := doJSON(t, h, "GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	pathTenant(t, h, "z", ProtocolSMI, 4)
	var vz Vars
	if code, _ := doJSON(t, h, "GET", "/varz", nil, &vz); code != http.StatusOK || vz.Tenants != 1 {
		t.Fatalf("varz: code %d %+v", code, vz)
	}
	if vz.Requests == 0 {
		t.Fatal("request counter not incremented")
	}
}

// TestVarzJournalShape pins the JSON wire shape of the group-commit
// observability counters: the aggregate fsync total plus the per-tenant
// journal block (appends, fsyncs, batches, segment count, replayable
// suffix bytes, batch-size histogram). Dashboards key on these names.
func TestVarzJournalShape(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	if code, _ := doJSON(t, h, "GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	pathTenant(t, h, "jz", ProtocolSMM, 6)
	var res MutationResult
	for i := 0; i < 3; i++ {
		m := Mutation{Op: OpCorrupt, Nodes: []int{i}}
		if code, _ := doJSON(t, h, "POST", "/v1/tenants/jz/mutations", m, &res); code != http.StatusOK {
			t.Fatalf("mutation %d: status %d", i, code)
		}
	}

	// Decode into loose maps so a renamed or dropped key fails here, not
	// in a consumer.
	var raw map[string]json.RawMessage
	if code, _ := doJSON(t, h, "GET", "/varz", nil, &raw); code != http.StatusOK {
		t.Fatalf("varz: %d", code)
	}
	var fsyncs int64
	if err := json.Unmarshal(raw["fsyncs"], &fsyncs); err != nil || fsyncs < 1 {
		t.Fatalf("varz fsyncs = %s (err %v), want a positive count", raw["fsyncs"], err)
	}
	var journal map[string]map[string]json.RawMessage
	if err := json.Unmarshal(raw["journal"], &journal); err != nil {
		t.Fatalf("varz journal block: %v", err)
	}
	jz, ok := journal["jz"]
	if !ok {
		t.Fatalf("varz journal missing tenant jz: %v", journal)
	}
	for _, key := range []string{"appends", "fsyncs", "batches", "segments", "replay_suffix_bytes"} {
		var v int64
		if err := json.Unmarshal(jz[key], &v); err != nil {
			t.Fatalf("journal.jz.%s = %s: %v", key, jz[key], err)
		}
		if v < 1 {
			t.Fatalf("journal.jz.%s = %d, want >= 1 after 3 mutations", key, v)
		}
	}
	var hist []int64
	if err := json.Unmarshal(jz["batch_size_hist"], &hist); err != nil || len(hist) != 8 {
		t.Fatalf("journal.jz.batch_size_hist = %s (err %v), want 8 buckets", jz["batch_size_hist"], err)
	}
	var total int64
	for _, b := range hist {
		total += b
	}
	if total < 1 {
		t.Fatalf("batch_size_hist empty after 3 mutations: %v", hist)
	}
}

func TestConvergeEndpointDefaultsToBound(t *testing.T) {
	svc := newTestService(t, Options{})
	h := svc.Handler()
	st := pathTenant(t, h, "cv", ProtocolSMM, 6)
	var res MutationResult
	code, _ := doJSON(t, h, "POST", "/v1/tenants/cv/converge", convergeRequest{}, &res)
	if code != http.StatusOK || !res.Converged || !res.Legit {
		t.Fatalf("default converge: code %d res %+v", code, res)
	}
	if res.Bound != st.Bound {
		t.Fatalf("bound mismatch: %d vs %d", res.Bound, st.Bound)
	}
}
