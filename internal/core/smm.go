package core

import (
	"fmt"
	"math/rand"

	"selfstab/internal/graph"
)

// Pointer is the single per-node variable of Algorithm SMM: Null, or the
// ID of the neighbor the node points at.
type Pointer int32

// Null is the null pointer value, written i → Λ in the paper.
const Null Pointer = -1

// IsNull reports whether the pointer is Λ.
//
//selfstab:noalloc
func (p Pointer) IsNull() bool { return p == Null }

// Node returns the pointed-at node; it panics on Null.
//
//selfstab:noalloc
func (p Pointer) Node() graph.NodeID {
	if p == Null {
		panic("core: Node() on null pointer")
	}
	return graph.NodeID(p)
}

// PointAt returns a pointer at node j.
//
//selfstab:noalloc
func PointAt(j graph.NodeID) Pointer { return Pointer(j) }

// String renders "Λ" or the target ID.
func (p Pointer) String() string {
	if p == Null {
		return "Λ"
	}
	return fmt.Sprintf("%d", int32(p))
}

// ProposalPolicy selects which null-pointer neighbor rule R2 proposes to.
// The paper requires MinID (and proves the others may diverge); the
// variants exist to reproduce the Section 3 counterexample and for the
// ablation benchmarks.
type ProposalPolicy uint8

const (
	// ProposeMinID proposes to the minimum-ID null-pointer neighbor —
	// the rule exactly as published.
	ProposeMinID ProposalPolicy = iota
	// ProposeMaxID proposes to the maximum-ID candidate. Like MinID it is
	// a consistent total order, so the convergence proof carries over by
	// symmetry; used as an ablation.
	ProposeMaxID
	// ProposeSuccessor proposes to the cyclically next candidate after the
	// proposer's own ID (the "clockwise neighbor" of the paper's
	// four-cycle counterexample). Not a consistent order across nodes, so
	// SMM with this policy may never stabilize.
	ProposeSuccessor
)

// String names the policy for reports.
func (p ProposalPolicy) String() string {
	switch p {
	case ProposeMinID:
		return "min-id"
	case ProposeMaxID:
		return "max-id"
	case ProposeSuccessor:
		return "successor"
	}
	return fmt.Sprintf("ProposalPolicy(%d)", uint8(p))
}

// AcceptPolicy selects which proposer rule R1 accepts. The paper allows
// any choice ("a node i ... may select a node j among those that are
// pointing to it"); all policies preserve the theorem.
type AcceptPolicy uint8

const (
	// AcceptMinID accepts the minimum-ID proposer (default).
	AcceptMinID AcceptPolicy = iota
	// AcceptMaxID accepts the maximum-ID proposer.
	AcceptMaxID
)

// String names the policy for reports.
func (p AcceptPolicy) String() string {
	switch p {
	case AcceptMinID:
		return "accept-min"
	case AcceptMaxID:
		return "accept-max"
	}
	return fmt.Sprintf("AcceptPolicy(%d)", uint8(p))
}

// SMM is Algorithm SMM (Figure 1): the synchronous self-stabilizing
// maximal matching protocol. The zero value is the protocol exactly as
// published (min-ID proposals, min-ID accepts).
//
// Rules, evaluated in order, first enabled rule fires:
//
//	R1 (accept):   i→Λ ∧ ∃j∈N(i): j→i                    ⇒ i→j
//	R2 (propose):  i→Λ ∧ ∀k∈N(i): k↛i ∧ ∃j∈N(i): j→Λ    ⇒ i→min{j∈N(i): j→Λ}
//	R3 (back-off): i→j ∧ j→k, k∉{Λ,i}                    ⇒ i→Λ
//
// The rule guards are mutually exclusive (R1/R2 need a null pointer with
// and without proposers; R3 needs a non-null pointer), so evaluation order
// does not matter; we keep the paper's order for readability.
type SMM struct {
	Proposal ProposalPolicy
	Accept   AcceptPolicy
}

// NewSMM returns the protocol exactly as published.
func NewSMM() *SMM { return &SMM{} }

// NewSMMArbitrary returns the Section 3 counterexample variant, which
// replaces R2's min-ID selection with the cyclic-successor ("clockwise")
// choice and therefore may never stabilize.
func NewSMMArbitrary() *SMM { return &SMM{Proposal: ProposeSuccessor} }

// Name implements Protocol.
func (s *SMM) Name() string {
	if s.Proposal == ProposeMinID && s.Accept == AcceptMinID {
		return "SMM"
	}
	return fmt.Sprintf("SMM(%s,%s)", s.Proposal, s.Accept)
}

// Random implements Protocol: an arbitrary state is Null or any neighbor.
func (s *SMM) Random(_ graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) Pointer {
	k := rng.Intn(len(nbrs) + 1)
	if k == len(nbrs) {
		return Null
	}
	return PointAt(nbrs[k])
}

// Move implements Protocol by evaluating R1, R2, R3.
func (s *SMM) Move(v View[Pointer]) (Pointer, bool) {
	if v.Peers != nil {
		return s.moveDirect(v.ID, v.Self, v.Nbrs, v.Peers)
	}
	if v.Self.IsNull() {
		// Gather proposers: neighbors pointing at us.
		best := Null
		for _, j := range v.Nbrs {
			pj := v.Peer(j)
			if !pj.IsNull() && pj.Node() == v.ID {
				if best.IsNull() {
					best = PointAt(j)
				} else if s.Accept == AcceptMaxID && j > best.Node() {
					best = PointAt(j)
				}
				// AcceptMinID keeps the first (Nbrs is ascending).
			}
		}
		if !best.IsNull() {
			return best, true // R1: accept a proposal
		}
		// R2: no proposers; propose to a null-pointer neighbor.
		if j, ok := s.selectProposal(v); ok {
			return PointAt(j), true
		}
		return Null, false
	}
	// Pointer set: check R3 (back-off).
	j := v.Self.Node()
	if !containsNode(v.Nbrs, j) {
		// Dangling pointer: the target is not (or no longer) a neighbor.
		// In the deployed system the link layer repairs this when it
		// drops the neighbor (OnNeighborLost); evaluating the same repair
		// here keeps the rule system total over every reachable state of
		// the message-passing executors.
		return Null, true
	}
	pj := v.Peer(j)
	if !pj.IsNull() && pj.Node() != v.ID {
		return Null, true // R3: j points at some k ∉ {Λ, i}
	}
	return v.Self, false
}

// moveDirect is Move over a direct state vector: the same rules R1–R3,
// restructured around the read freedoms the Peers contract grants. For
// the published policies a single ascending sweep serves both R1 and
// R2's scans — the first proposer found IS the min-ID accept target, so
// the sweep returns on it, and the first null-pointer neighbor seen is
// remembered as the min-ID proposal candidate.
//
//selfstab:noalloc
func (s *SMM) moveDirect(id graph.NodeID, self Pointer, nbrs []graph.NodeID, peers []Pointer) (Pointer, bool) {
	me := Pointer(id)
	if self.IsNull() {
		if s.Accept == AcceptMinID && s.Proposal == ProposeMinID {
			proposal := Null
			for _, j := range nbrs {
				pj := peers[j]
				if pj == me {
					return PointAt(j), true // R1: min-ID proposer accepted
				}
				if pj.IsNull() && proposal.IsNull() {
					proposal = PointAt(j)
				}
			}
			if !proposal.IsNull() {
				return proposal, true // R2: propose to the min-ID null neighbor
			}
			return Null, false
		}
		return s.moveDirectPolicies(id, nbrs, peers)
	}
	// Pointer set: check R3 (back-off).
	j := self.Node()
	if !containsNode(nbrs, j) {
		return Null, true // dangling pointer repair, as in Move
	}
	if pj := peers[j]; !pj.IsNull() && pj != me {
		return Null, true // R3: j points at some k ∉ {Λ, i}
	}
	return self, false
}

// moveDirectPolicies is the null-pointer case of moveDirect under the
// non-default ablation policies.
//
//selfstab:noalloc
func (s *SMM) moveDirectPolicies(id graph.NodeID, nbrs []graph.NodeID, peers []Pointer) (Pointer, bool) {
	me := Pointer(id)
	best := Null
	for _, j := range nbrs {
		if peers[j] == me {
			if best.IsNull() || (s.Accept == AcceptMaxID && j > best.Node()) {
				best = PointAt(j)
			}
		}
	}
	if !best.IsNull() {
		return best, true // R1 under the accept policy
	}
	switch s.Proposal {
	case ProposeMinID:
		for _, j := range nbrs {
			if peers[j].IsNull() {
				return PointAt(j), true
			}
		}
	case ProposeMaxID:
		for i := len(nbrs) - 1; i >= 0; i-- {
			if j := nbrs[i]; peers[j].IsNull() {
				return PointAt(j), true
			}
		}
	case ProposeSuccessor:
		// First null-pointer neighbor above our ID, wrapping to the
		// smallest — the "clockwise" choice, without the candidate slice.
		first := Null
		for _, j := range nbrs {
			if peers[j].IsNull() {
				if j > id {
					return PointAt(j), true
				}
				if first.IsNull() {
					first = PointAt(j)
				}
			}
		}
		if !first.IsNull() {
			return first, true
		}
	default:
		// Constant message: formatting the policy would allocate on a
		// path the noalloc contract covers.
		panic("core: unknown proposal policy")
	}
	return Null, false
}

// MoveBatch implements BatchEvaluator: the rules of Move over a direct
// state vector, one call per round instead of one per node. The default-
// policy loop is the synchronous executors' hottest code path.
//
//selfstab:noalloc
func (s *SMM) MoveBatch(ids []graph.NodeID, csr *graph.CSR, states, next []Pointer, moved []bool) {
	if s.Accept != AcceptMinID || s.Proposal != ProposeMinID {
		woffs, wnbrs := csr.Rows()
		for _, id := range ids {
			next[id], moved[id] = s.moveDirect(id, states[id], wnbrs[woffs[id]:woffs[id+1]], states)
		}
		return
	}
	offs, nbrs := csr.Rows32()
	for _, id := range ids {
		self := states[id]
		row := nbrs[offs[id]:offs[id+1]]
		me := Pointer(id)
		if self.IsNull() {
			// One reverse sweep with conditional moves: the last hit in
			// reverse order is the first in ascending order, so prop ends
			// as the min-ID proposer and firstNull as the min-ID null
			// neighbor, with no data-dependent branches inside the loop.
			prop, firstNull := int32(-1), int32(-1)
			for i := len(row) - 1; i >= 0; i-- {
				j := row[i]
				pj := states[j]
				if pj == Null {
					firstNull = j
				}
				if pj == me {
					prop = j
				}
			}
			switch {
			case prop >= 0:
				next[id], moved[id] = Pointer(prop), true // R1
			case firstNull >= 0:
				next[id], moved[id] = Pointer(firstNull), true // R2
			default:
				next[id], moved[id] = Null, false
			}
			continue
		}
		j := int32(self)
		if uint(j) >= uint(len(states)) {
			next[id], moved[id] = Null, true // pointer outside the ID space: repair
			continue
		}
		if pj := states[j]; pj != Null && pj != me {
			// The output is Null either way — R3 if j is a neighbor, the
			// dangling-pointer repair if not — so membership need not be
			// tested at all on this path.
			next[id], moved[id] = Null, true
			continue
		}
		// pj is Null or points back at us: the outcome now turns on
		// whether the pointer is legal.
		if containsNode32(row, j) {
			next[id], moved[id] = self, false
		} else {
			next[id], moved[id] = Null, true // dangling pointer repair
		}
	}
}

// InstallBatch implements BatchInstaller. The dependency rule follows
// directly from the rules' read sets: a node holding a pointer reads only
// its target's state (R3 and the dangling-pointer repair consult nothing
// else), so a state change at id re-privileges a pointing neighbor w only
// when w points at id; a null node's rules (R1/R2) scan every neighbor,
// so it always re-evaluates. This holds for every Accept/Proposal policy
// — policies change which null-neighbor wins, not which states are read.
//
//selfstab:noalloc
func (s *SMM) InstallBatch(ids []graph.NodeID, csr *graph.CSR, states, next []Pointer, moved []bool, f *graph.Frontier) int {
	offs, nbrs := csr.Rows32()
	mv := 0
	for _, id := range ids {
		// SMM is deterministic: every firing rule rewrites the pointer, so
		// moved coincides exactly with "the state changed" and one flag
		// covers both the move count and the install test.
		if !moved[id] {
			continue
		}
		mv++
		nx := next[id]
		states[id] = nx
		// A mover re-marks itself only when it lands on Null: a node whose
		// new state points at k can only become privileged again through a
		// change at k, and k's own install marks it — whether k installs
		// before us (it reads our old state, Null, since R1/R2 fire only
		// from Null) or after us (it reads our new Pointer(k)). A node
		// landing on Null may have R1/R2 immediately enabled with no
		// neighbor changing, so it must re-evaluate.
		f.AddMask(id, nx == Null)
		target := Pointer(id)
		for _, w := range nbrs[offs[id]:offs[id+1]] {
			pw := states[w]
			// Exact dependency test, compiled to flag-set-and-or rather
			// than a data-dependent branch: null neighbors read every
			// state, pointing neighbors read only their target's.
			isNull := pw == Null
			pointsHere := pw == target
			f.AddMask(graph.NodeID(w), isNull || pointsHere)
		}
	}
	return mv
}

// CommitBatch implements ShardKernel: the commit half of InstallBatch.
// SMM is deterministic, so moved coincides exactly with "the state
// changed". Writes touch only ids' slots — safe across shards with
// disjoint id sets.
//
//selfstab:noalloc
func (s *SMM) CommitBatch(ids []graph.NodeID, states, next []Pointer, moved []bool) int {
	mv := 0
	for _, id := range ids {
		if moved[id] {
			mv++
			states[id] = next[id]
		}
	}
	return mv
}

// MarkBatch implements ShardKernel: the dependency-marking half of
// InstallBatch, reading the fully committed post-round states. The test
// per neighbor is the same as InstallBatch's; its soundness argument is
// order-independent (see the InstallBatch comments), and post-round
// reads are the all-installs-first order: a moved neighbor w either
// landed on Null (its own shard's mark phase re-marks it) or points at
// some k, in which case only a change at k — whose mark phase tests
// exactly this — can re-enable it.
//
//selfstab:noalloc
func (s *SMM) MarkBatch(ids []graph.NodeID, csr *graph.CSR, states []Pointer, moved []bool, f *graph.Frontier) {
	offs, nbrs := csr.Rows32()
	for _, id := range ids {
		if !moved[id] {
			continue
		}
		nx := states[id]
		f.AddMask(id, nx == Null)
		target := Pointer(id)
		for _, w := range nbrs[offs[id]:offs[id+1]] {
			pw := states[w]
			isNull := pw == Null
			pointsHere := pw == target
			f.AddMask(graph.NodeID(w), isNull || pointsHere)
		}
	}
}

// containsNode reports membership in an ascending neighbor list. Short
// lists — the common case in the bounded-degree ad hoc topologies — scan
// linearly: the predictable branch beats binary search's mispredicted
// halving well past a cache line of IDs.
//
//selfstab:noalloc
func containsNode(nbrs []graph.NodeID, j graph.NodeID) bool {
	if len(nbrs) <= 32 {
		for _, x := range nbrs {
			if x >= j {
				return x == j
			}
		}
		return false
	}
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbrs) && nbrs[lo] == j
}

// containsNode32 is containsNode over a narrowed CSR row.
//
//selfstab:noalloc
func containsNode32(nbrs []int32, j int32) bool {
	if len(nbrs) <= 32 {
		for _, x := range nbrs {
			if x >= j {
				return x == j
			}
		}
		return false
	}
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbrs) && nbrs[lo] == j
}

// selectProposal returns the R2 target under the configured policy, and
// whether any null-pointer neighbor exists.
func (s *SMM) selectProposal(v View[Pointer]) (graph.NodeID, bool) {
	switch s.Proposal {
	case ProposeMinID:
		for _, j := range v.Nbrs {
			if v.Peer(j).IsNull() {
				return j, true
			}
		}
		return 0, false
	case ProposeMaxID:
		for i := len(v.Nbrs) - 1; i >= 0; i-- {
			if j := v.Nbrs[i]; v.Peer(j).IsNull() {
				return j, true
			}
		}
		return 0, false
	case ProposeSuccessor:
		// First candidate with ID greater than ours, wrapping around:
		// the "clockwise neighbor" selection of the counterexample.
		var candidates []graph.NodeID
		for _, j := range v.Nbrs {
			if v.Peer(j).IsNull() {
				candidates = append(candidates, j)
			}
		}
		if len(candidates) == 0 {
			return 0, false
		}
		for _, j := range candidates {
			if j > v.ID {
				return j, true
			}
		}
		return candidates[0], true
	}
	panic(fmt.Sprintf("core: unknown proposal policy %d", s.Proposal))
}

// OnNeighborLost implements NeighborAware: a pointer at a departed
// neighbor is reset to Null, exactly the readjustment the paper's
// fault-tolerance claim describes.
func (s *SMM) OnNeighborLost(_ graph.NodeID, p Pointer, lost graph.NodeID) Pointer {
	if !p.IsNull() && p.Node() == lost {
		return Null
	}
	return p
}

// Matched reports whether node i is matched in cfg (i ↔ j for some j).
func Matched(cfg Config[Pointer], i graph.NodeID) bool {
	p := cfg.States[i]
	if p.IsNull() {
		return false
	}
	j := p.Node()
	q := cfg.States[j]
	return !q.IsNull() && q.Node() == i
}

// MatchingOf extracts the matched pairs {i,j} with i ↔ j from a
// configuration, each edge reported once, sorted by smaller endpoint.
func MatchingOf(cfg Config[Pointer]) []graph.Edge {
	var m []graph.Edge
	for v := range cfg.States {
		i := graph.NodeID(v)
		p := cfg.States[v]
		if !p.IsNull() && p.Node() > i {
			j := p.Node()
			q := cfg.States[j]
			if !q.IsNull() && q.Node() == i {
				m = append(m, graph.Edge{U: i, V: j})
			}
		}
	}
	return m
}

// ValidSMMConfig checks that every non-null pointer targets an actual
// neighbor; states violating this cannot arise in the message-passing
// system (a node only learns of neighbors via beacons) but can be fed to
// the simulator by mistake.
func ValidSMMConfig(cfg Config[Pointer]) error {
	for v, p := range cfg.States {
		if p.IsNull() {
			continue
		}
		if !cfg.G.HasEdge(graph.NodeID(v), p.Node()) {
			return fmt.Errorf("core: node %d points at non-neighbor %d", v, p.Node())
		}
	}
	return nil
}

// NormalizeSMM repairs a configuration after a topology change by
// nullifying any pointer whose target edge disappeared. This is exactly
// what a deployed node does when the neighbor-discovery protocol drops the
// pointed-at neighbor from its neighbor list.
func NormalizeSMM(cfg Config[Pointer]) (repaired int) {
	for v, p := range cfg.States {
		if !p.IsNull() && !cfg.G.HasEdge(graph.NodeID(v), p.Node()) {
			cfg.States[v] = Null
			repaired++
		}
	}
	return repaired
}
