// Package core implements the paper's primary contribution: the
// synchronous-model self-stabilizing protocols SMM (maximal matching) and
// SMI (maximal independent set), together with the protocol abstraction
// they run under and the node-type classification (M, A°, A', PA, PM, PP)
// used by the paper's convergence analysis.
//
// # Computation model
//
// The paper's model is synchronous shared state driven by beacons: in each
// round every node receives the round-t states of all its neighbors and
// simultaneously computes its round-t+1 state by applying the first
// enabled rule. A protocol here is therefore a pure function from a local
// view (own state plus neighbor states) to the next state. Executors — the
// lockstep simulator, the discrete-event beacon simulator, and the
// goroutine-per-node runtime — differ only in how they deliver the view.
package core

import (
	"math/rand"

	"selfstab/internal/graph"
)

// View is the information a node may legally consult when moving: its own
// identity and state, and the states its neighbors reported in their last
// beacons. Peer must be called only with IDs from Nbrs.
type View[S any] struct {
	// ID is the executing node.
	ID graph.NodeID
	// Self is the node's current state.
	Self S
	// Nbrs lists the node's current neighbors in ascending ID order.
	Nbrs []graph.NodeID
	// Peer returns the last known state of a neighbor.
	Peer func(graph.NodeID) S
	// Peers, when non-nil, is the state vector Peer reads from, indexed
	// by node ID: Peers[j] == Peer(j) for every j in Nbrs. Executors set
	// it only when they serve fresh, unfiltered states (the lockstep
	// engines, the central daemon); it stays nil when reads are mediated
	// — stale views, fault filters, beacon neighbor tables. Protocols may
	// use it as an allocation- and call-free read path, but must fall
	// back to Peer (with the same read sequence they always used) when it
	// is nil: mediated Peer implementations may observe the sequence of
	// reads, so only the Peers path is free to reorder or skip them.
	Peers []S
}

// Protocol is a self-stabilizing protocol in the synchronous beacon model.
// The state type S must be comparable so executors and verifiers can
// detect convergence and snapshot configurations cheaply.
//
// Move must be deterministic up to the protocol's own internal randomness
// (protocols that randomize, such as the daemon-refinement wrapper, own
// per-node generators so concurrent executors stay race-free).
type Protocol[S comparable] interface {
	// Name identifies the protocol in traces and reports.
	Name() string
	// Random draws an arbitrary initial state for node id, whose neighbor
	// list is nbrs. Self-stabilization demands convergence from every
	// state, so Random must cover the full state space.
	Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) S
	// Move evaluates the rules at the viewing node and returns the next
	// state plus whether the node is active: privileged in the current
	// configuration. For deterministic protocols active coincides with
	// "the state changed"; randomized protocols report active even in
	// rounds where a coin kept the state unchanged, and wrappers that
	// piggyback auxiliary data (e.g. refinement priorities) may change
	// auxiliary fields while inactive. Executors must always store the
	// returned state and use the active flag — never state inequality —
	// to detect stabilization: a configuration is stable exactly when no
	// node reports active.
	Move(v View[S]) (next S, moved bool)
}

// BatchEvaluator is an optional protocol fast path: MoveBatch evaluates
// many nodes in one call against a direct state vector and a CSR
// adjacency snapshot, writing next[id] and moved[id] for every id in
// ids. It must be observationally identical to calling Move per id with
// a View whose Peers is states — executors use it on their unfiltered
// hot path, fall back to Move everywhere reads are mediated, and the
// metamorphic suite replays both paths for equality. Implementations
// must be safe for concurrent calls over disjoint id sets: the
// data-parallel executor partitions a round's frontier across workers.
type BatchEvaluator[S comparable] interface {
	// MoveBatch is an allocation-free contract: implementations and the
	// round loops that call it are checked by the noalloc analyzer.
	//
	//selfstab:noalloc
	MoveBatch(ids []graph.NodeID, csr *graph.CSR, states []S, next []S, moved []bool)
}

// BatchInstaller is an optional protocol fast path for the install half of
// a round: InstallBatch commits next[id] into states[id] for every id in
// ids, marks every node whose next Move output could now differ on f, and
// returns the number of ids with moved[id] set. The generic install marks
// the full closed neighborhood of every changed node; an implementation
// may mark any subset that still covers the protocol's true read
// dependencies (e.g. an SMM node holding a pointer reads only its target,
// an SMI node reads only its bigger neighbors). Under-marking breaks the
// frontier engine's byte-identity with the full scan, which is exactly
// what the metamorphic equivalence suite replays for. Unlike MoveBatch,
// InstallBatch is called from one goroutine only.
type BatchInstaller[S comparable] interface {
	// InstallBatch is an allocation-free contract (see noalloc).
	//
	//selfstab:noalloc
	InstallBatch(ids []graph.NodeID, csr *graph.CSR, states []S, next []S, moved []bool, f *graph.Frontier) int
}

// ShardKernel is an optional protocol fast path for sharded executors,
// which split the install half of a round at a barrier so shards never
// read a half-committed state vector: first every shard commits its own
// nodes (CommitBatch — disjoint writes, no reads of other shards'
// states), then, after all commits land, every shard derives its
// re-evaluation marks from the fully post-round state vector (MarkBatch
// — concurrent reads of immutable-for-the-phase states, writes only to
// the shard's own frontier).
//
// MarkBatch must mark a superset of the nodes whose next Move output
// could differ because of this round's changes, reading neighbor states
// as they stand after the round. For SMM and SMI the sequential
// InstallBatch dependency tests remain sound under post-round reads:
// the InstallBatch comments argue the mark test is order-independent
// ("whether k installs before us or after us"), and reading post-round
// states is simply the all-installs-first order. The sharded
// metamorphic suite replays random workloads at 1–8 shards against the
// reference engine to pin the resulting byte-identity.
//
// CommitBatch must be safe for concurrent calls over disjoint id sets,
// and MarkBatch for concurrent calls over disjoint id sets with
// distinct frontiers.
type ShardKernel[S comparable] interface {
	// CommitBatch installs next[id] into states[id] for every id in ids
	// and returns the number of ids with moved[id] set. Allocation-free
	// contract (noalloc); write-ownership checked by shardsafe.
	//
	//selfstab:noalloc
	CommitBatch(ids []graph.NodeID, states []S, next []S, moved []bool) int
	// MarkBatch marks on f every node whose view this shard's movers
	// changed, reading only post-round states. Allocation-free contract
	// (noalloc); phase discipline checked by shardsafe.
	//
	//selfstab:noalloc
	MarkBatch(ids []graph.NodeID, csr *graph.CSR, states []S, moved []bool, f *graph.Frontier)
}

// NeighborAware is implemented by protocols whose states reference
// neighbors (e.g. SMM's pointer). When the neighbor-discovery protocol
// drops a neighbor — its beacons timed out, or the link-layer reported
// the link gone — executors call OnNeighborLost so the node can repair a
// dangling reference. Protocols with self-contained states (SMI,
// coloring) simply don't implement it.
type NeighborAware[S comparable] interface {
	// OnNeighborLost returns the repaired state of node self after
	// neighbor lost disappeared from its neighbor list.
	OnNeighborLost(self graph.NodeID, s S, lost graph.NodeID) S
}

// RepairState applies OnNeighborLost if the protocol supports it and
// returns the (possibly unchanged) state.
func RepairState[S comparable](p Protocol[S], self graph.NodeID, s S, lost graph.NodeID) S {
	if na, ok := p.(NeighborAware[S]); ok {
		return na.OnNeighborLost(self, s, lost)
	}
	return s
}

// Config is a global configuration: a topology plus one state per node,
// indexed by node ID. It is the unit verifiers and traces operate on.
type Config[S comparable] struct {
	G      *graph.Graph
	States []S
}

// NewConfig allocates a configuration for g with zero-valued states.
func NewConfig[S comparable](g *graph.Graph) Config[S] {
	return Config[S]{G: g, States: make([]S, g.N())}
}

// Randomize fills every state from p.Random.
func (c Config[S]) Randomize(p Protocol[S], rng *rand.Rand) {
	for v := range c.States {
		id := graph.NodeID(v)
		c.States[v] = p.Random(id, c.G.Neighbors(id), rng)
	}
}

// View builds the local view of node id over the configuration.
func (c Config[S]) View(id graph.NodeID) View[S] {
	return View[S]{
		ID:    id,
		Self:  c.States[id],
		Nbrs:  c.G.Neighbors(id),
		Peer:  func(j graph.NodeID) S { return c.States[j] },
		Peers: c.States,
	}
}

// Privileged reports whether node id would move in the current
// configuration.
func (c Config[S]) Privileged(p Protocol[S], id graph.NodeID) bool {
	_, moved := p.Move(c.View(id))
	return moved
}

// PrivilegedNodes returns all nodes that would move, in ascending order.
func (c Config[S]) PrivilegedNodes(p Protocol[S]) []graph.NodeID {
	var ids []graph.NodeID
	for v := range c.States {
		if c.Privileged(p, graph.NodeID(v)) {
			ids = append(ids, graph.NodeID(v))
		}
	}
	return ids
}

// Clone returns a deep copy sharing the graph but not the state slice.
func (c Config[S]) Clone() Config[S] {
	s := make([]S, len(c.States))
	copy(s, c.States)
	return Config[S]{G: c.G, States: s}
}
