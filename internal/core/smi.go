package core

import (
	"math/rand"

	"selfstab/internal/graph"
)

// SMI is Algorithm SMI (Figure 4): the synchronous self-stabilizing
// maximal independent set protocol. Each node keeps one bit x(i); the set
// is {i : x(i) = true}.
//
// Rules ("j bigger than i" means j's ID exceeds i's):
//
//	R1 (enter): x(i)=0 ∧ ¬∃j∈N(i): j>i ∧ x(j)=1  ⇒ x(i)=1
//	R2 (leave): x(i)=1 ∧  ∃j∈N(i): j>i ∧ x(j)=1  ⇒ x(i)=0
//
// The guards are complementary on the bigger-neighbor predicate, so
// exactly one rule can be enabled at a node.
type SMI struct{}

// NewSMI returns Algorithm SMI.
func NewSMI() *SMI { return &SMI{} }

// Name implements Protocol.
func (*SMI) Name() string { return "SMI" }

// Random implements Protocol: the state space is a single bit.
func (*SMI) Random(_ graph.NodeID, _ []graph.NodeID, rng *rand.Rand) bool {
	return rng.Intn(2) == 1
}

// Move implements Protocol by evaluating R1 and R2.
func (*SMI) Move(v View[bool]) (bool, bool) {
	biggerIn := false
	for _, j := range v.Nbrs {
		if j > v.ID && v.Peer(j) {
			biggerIn = true
			break
		}
	}
	switch {
	case !v.Self && !biggerIn:
		return true, true // R1: enter the set
	case v.Self && biggerIn:
		return false, true // R2: leave the set
	}
	return v.Self, false
}

// SetOf extracts {i : x(i)=1} from a configuration, ascending.
func SetOf(cfg Config[bool]) []graph.NodeID {
	var s []graph.NodeID
	for v, x := range cfg.States {
		if x {
			s = append(s, graph.NodeID(v))
		}
	}
	return s
}
