package core

import (
	"math/rand"

	"selfstab/internal/graph"
)

// SMI is Algorithm SMI (Figure 4): the synchronous self-stabilizing
// maximal independent set protocol. Each node keeps one bit x(i); the set
// is {i : x(i) = true}.
//
// Rules ("j bigger than i" means j's ID exceeds i's):
//
//	R1 (enter): x(i)=0 ∧ ¬∃j∈N(i): j>i ∧ x(j)=1  ⇒ x(i)=1
//	R2 (leave): x(i)=1 ∧  ∃j∈N(i): j>i ∧ x(j)=1  ⇒ x(i)=0
//
// The guards are complementary on the bigger-neighbor predicate, so
// exactly one rule can be enabled at a node.
type SMI struct{}

// NewSMI returns Algorithm SMI.
func NewSMI() *SMI { return &SMI{} }

// Name implements Protocol.
func (*SMI) Name() string { return "SMI" }

// Random implements Protocol: the state space is a single bit.
func (*SMI) Random(_ graph.NodeID, _ []graph.NodeID, rng *rand.Rand) bool {
	return rng.Intn(2) == 1
}

// Move implements Protocol by evaluating R1 and R2.
func (*SMI) Move(v View[bool]) (bool, bool) {
	biggerIn := false
	if peers := v.Peers; peers != nil {
		// Direct-read path: the bigger neighbors are a suffix of the
		// ascending list, so start at the end and stop at the first ID at
		// or below ours (the Peers contract lets reads reorder freely).
		for i := len(v.Nbrs) - 1; i >= 0; i-- {
			j := v.Nbrs[i]
			if j <= v.ID {
				break
			}
			if peers[j] {
				biggerIn = true
				break
			}
		}
	} else {
		for _, j := range v.Nbrs {
			if j > v.ID && v.Peer(j) {
				biggerIn = true
				break
			}
		}
	}
	switch {
	case !v.Self && !biggerIn:
		return true, true // R1: enter the set
	case v.Self && biggerIn:
		return false, true // R2: leave the set
	}
	return v.Self, false
}

// MoveBatch implements BatchEvaluator: the rules of Move over a direct
// state vector, one call per round instead of one per node.
//
//selfstab:noalloc
func (*SMI) MoveBatch(ids []graph.NodeID, csr *graph.CSR, states, next []bool, moved []bool) {
	offs, nbrs := csr.Rows32()
	for _, id := range ids {
		row := nbrs[offs[id]:offs[id+1]]
		id32 := int32(id)
		biggerIn := false
		for i := len(row) - 1; i >= 0; i-- {
			j := row[i]
			if j <= id32 {
				break
			}
			if states[j] {
				biggerIn = true
				break
			}
		}
		self := states[id]
		switch {
		case !self && !biggerIn:
			next[id], moved[id] = true, true // R1: enter the set
		case self && biggerIn:
			next[id], moved[id] = false, true // R2: leave the set
		default:
			next[id], moved[id] = self, false
		}
	}
}

// InstallBatch implements BatchInstaller. Both rules test only neighbors
// with bigger IDs, so a state change at id can re-privilege a neighbor w
// only when w < id — the ascending CSR row makes those a prefix.
//
//selfstab:noalloc
func (*SMI) InstallBatch(ids []graph.NodeID, csr *graph.CSR, states, next []bool, moved []bool, f *graph.Frontier) int {
	offs, nbrs := csr.Rows32()
	mv := 0
	for _, id := range ids {
		// SMI is deterministic: each rule flips the bit, so moved coincides
		// exactly with "the state changed".
		if !moved[id] {
			continue
		}
		mv++
		states[id] = next[id]
		// No self re-mark: a mover's next-round privilege depends only on
		// its bigger in-set neighbors, so it can only be re-enabled by a
		// bigger neighbor's change — and that neighbor's install marks its
		// whole smaller-ID prefix, which includes this node.
		id32 := int32(id)
		for _, w := range nbrs[offs[id]:offs[id+1]] {
			if w >= id32 {
				break
			}
			f.Add(graph.NodeID(w))
		}
	}
	return mv
}

// CommitBatch implements ShardKernel: the commit half of InstallBatch
// (moved coincides with "the state changed" — SMI flips the bit). Writes
// touch only ids' slots — safe across shards with disjoint id sets.
//
//selfstab:noalloc
func (*SMI) CommitBatch(ids []graph.NodeID, states, next []bool, moved []bool) int {
	mv := 0
	for _, id := range ids {
		if moved[id] {
			mv++
			states[id] = next[id]
		}
	}
	return mv
}

// MarkBatch implements ShardKernel: the marking half of InstallBatch. It
// reads no states at all — each mover marks its smaller-ID neighbor
// prefix from the CSR alone (the InstallBatch comment explains why no
// self re-mark is needed) — so it is trivially sound under any commit
// order, including the sharded all-installs-first order.
//
//selfstab:noalloc
func (*SMI) MarkBatch(ids []graph.NodeID, csr *graph.CSR, _ []bool, moved []bool, f *graph.Frontier) {
	offs, nbrs := csr.Rows32()
	for _, id := range ids {
		if !moved[id] {
			continue
		}
		id32 := int32(id)
		for _, w := range nbrs[offs[id]:offs[id+1]] {
			if w >= id32 {
				break
			}
			f.Add(graph.NodeID(w))
		}
	}
}

// SetOf extracts {i : x(i)=1} from a configuration, ascending.
func SetOf(cfg Config[bool]) []graph.NodeID {
	var s []graph.NodeID
	for v, x := range cfg.States {
		if x {
			s = append(s, graph.NodeID(v))
		}
	}
	return s
}
