package core

import (
	"testing"

	"selfstab/internal/graph"
)

func TestSMMOnNeighborLost(t *testing.T) {
	p := NewSMM()
	if got := p.OnNeighborLost(0, PointAt(3), 3); got != Null {
		t.Fatalf("pointer at lost neighbor: %v", got)
	}
	if got := p.OnNeighborLost(0, PointAt(3), 2); got != PointAt(3) {
		t.Fatalf("pointer at surviving neighbor clobbered: %v", got)
	}
	if got := p.OnNeighborLost(0, Null, 2); got != Null {
		t.Fatalf("null pointer changed: %v", got)
	}
}

func TestRepairStateDispatch(t *testing.T) {
	// SMM implements NeighborAware; the helper must invoke it.
	if got := RepairState[Pointer](NewSMM(), 0, PointAt(5), 5); got != Null {
		t.Fatalf("RepairState did not repair: %v", got)
	}
	// SMI does not implement it; the state must pass through untouched.
	if got := RepairState[bool](NewSMI(), 0, true, 5); got != true {
		t.Fatalf("RepairState mutated a repair-free protocol: %v", got)
	}
}

func TestSMMDanglingPointerRepairMove(t *testing.T) {
	// A pointer at a node absent from the neighbor list (possible in the
	// message-passing executors between a link failure and its timeout)
	// must be treated as an enabled back-off.
	g := graph.Path(2)
	cfg := NewConfig[Pointer](g)
	cfg.States[0] = PointAt(1)
	cfg.States[1] = Null
	v := View[Pointer]{
		ID:   0,
		Self: PointAt(1),
		Nbrs: nil, // the link layer already dropped neighbor 1
		Peer: func(graph.NodeID) Pointer { panic("must not consult peers") },
	}
	next, active := NewSMM().Move(v)
	if !active || next != Null {
		t.Fatalf("dangling pointer: got (%v,%v), want (Λ,true)", next, active)
	}
	_ = cfg
}

func TestContainsNode(t *testing.T) {
	nbrs := []graph.NodeID{1, 3, 5, 9}
	for _, j := range nbrs {
		if !containsNode(nbrs, j) {
			t.Errorf("containsNode missed %d", j)
		}
	}
	for _, j := range []graph.NodeID{0, 2, 4, 8, 10} {
		if containsNode(nbrs, j) {
			t.Errorf("containsNode false positive %d", j)
		}
	}
	if containsNode(nil, 1) {
		t.Error("containsNode on empty list")
	}
}
