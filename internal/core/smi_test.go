package core

import (
	"math/rand"
	"testing"

	"selfstab/internal/graph"
)

func boolCfg(g *graph.Graph, xs ...bool) Config[bool] {
	if len(xs) != g.N() {
		panic("boolCfg: wrong state count")
	}
	cfg := NewConfig[bool](g)
	copy(cfg.States, xs)
	return cfg
}

func TestSMIRule1Enter(t *testing.T) {
	// Node 2 on a path 0-1-2: x all false; 2 has no bigger neighbor → enter.
	g := graph.Path(3)
	cfg := boolCfg(g, false, false, false)
	next, moved := NewSMI().Move(cfg.View(2))
	if !moved || next != true {
		t.Fatalf("R1: got (%v,%v), want (true,true)", next, moved)
	}
	// Node 1 also enters: its bigger neighbor 2 has x=0 this round.
	next, moved = NewSMI().Move(cfg.View(1))
	if !moved || next != true {
		t.Fatalf("R1 at 1: got (%v,%v), want (true,true)", next, moved)
	}
}

func TestSMIRule1BlockedByBiggerMember(t *testing.T) {
	g := graph.Path(3)
	cfg := boolCfg(g, false, false, true)
	next, moved := NewSMI().Move(cfg.View(1))
	if moved || next != false {
		t.Fatalf("got (%v,%v), want (false,false)", next, moved)
	}
}

func TestSMIRule1IgnoresSmallerMembers(t *testing.T) {
	// x(0)=1 does not block node 1 from entering (only bigger IDs count).
	g := graph.Path(3)
	cfg := boolCfg(g, true, false, false)
	next, moved := NewSMI().Move(cfg.View(1))
	if !moved || next != true {
		t.Fatalf("got (%v,%v), want (true,true)", next, moved)
	}
}

func TestSMIRule2Leave(t *testing.T) {
	g := graph.Path(3)
	cfg := boolCfg(g, false, true, true)
	next, moved := NewSMI().Move(cfg.View(1))
	if !moved || next != false {
		t.Fatalf("R2: got (%v,%v), want (false,true)", next, moved)
	}
}

func TestSMIRule2NotForSmallerMembers(t *testing.T) {
	// 2 in the set with smaller member neighbor 1: 2 stays.
	g := graph.Path(3)
	cfg := boolCfg(g, false, true, true)
	next, moved := NewSMI().Move(cfg.View(2))
	if moved || next != true {
		t.Fatalf("got (%v,%v), want (true,false)", next, moved)
	}
}

func TestSMIIsolatedEnters(t *testing.T) {
	g := graph.New(1)
	cfg := boolCfg(g, false)
	next, moved := NewSMI().Move(cfg.View(0))
	if !moved || !next {
		t.Fatal("isolated node must enter the set")
	}
}

func TestSMISetOf(t *testing.T) {
	g := graph.Path(4)
	cfg := boolCfg(g, true, false, false, true)
	s := SetOf(cfg)
	if len(s) != 2 || s[0] != 0 || s[1] != 3 {
		t.Fatalf("SetOf = %v", s)
	}
}

func TestSMIRandomCoversBothBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewSMI()
	seen := map[bool]bool{}
	for i := 0; i < 50; i++ {
		seen[p.Random(0, nil, rng)] = true
	}
	if !seen[true] || !seen[false] {
		t.Fatal("Random does not cover the state space")
	}
}

func TestSMIName(t *testing.T) {
	if NewSMI().Name() != "SMI" {
		t.Fatalf("Name = %q", NewSMI().Name())
	}
}
