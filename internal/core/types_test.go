package core

import (
	"strings"
	"testing"

	"selfstab/internal/graph"
)

func TestClassifySMMAllTypes(t *testing.T) {
	// Build a configuration exhibiting every one of the six types on a
	// path 0-1-2-3-4-5-6:
	//   0↔1 matched            → 0,1 ∈ M
	//   2→1 (1 matched)        → 2 ∈ PM
	//   3→2 (2 points on)      → 3 ∈ PP
	//   4→5, 5→Λ               → 4 ∈ PA, 5 ∈ A' (4 points at it)... but 5
	//   must be aloof: 5→Λ ✓ and 4→5 means someone points at 5 → A'.
	//   6→Λ with neighbor 5→Λ  → nobody points at 6 → A°.
	g := graph.Path(7)
	cfg := pointerCfg(g,
		PointAt(1), PointAt(0), PointAt(1), PointAt(2), PointAt(5), Null, Null)
	types := ClassifySMM(cfg)
	want := []SMMType{TypeM, TypeM, TypePM, TypePP, TypePA, TypeA1, TypeA0}
	for v := range want {
		if types[v] != want[v] {
			t.Errorf("node %d: type %v, want %v", v, types[v], want[v])
		}
	}
	c := CensusOf(types)
	if c[TypeM] != 2 || c[TypePM] != 1 || c[TypePP] != 1 || c[TypePA] != 1 || c[TypeA1] != 1 || c[TypeA0] != 1 {
		t.Fatalf("census = %v", c)
	}
	if s := c.String(); !strings.Contains(s, "M=2") || !strings.Contains(s, "A°=1") {
		t.Fatalf("census string = %q", s)
	}
}

func TestClassifySMMPanicsOnInvalid(t *testing.T) {
	g := graph.Path(3)
	cfg := pointerCfg(g, PointAt(2), Null, Null) // 0-2 not an edge
	defer func() {
		if recover() == nil {
			t.Fatal("ClassifySMM accepted pointer at non-neighbor")
		}
	}()
	ClassifySMM(cfg)
}

func TestTypeStrings(t *testing.T) {
	wants := map[SMMType]string{
		TypeM: "M", TypeA0: "A°", TypeA1: "A'", TypePA: "PA", TypePM: "PM", TypePP: "PP",
	}
	for typ, want := range wants {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestTransitionDiagramShape(t *testing.T) {
	// Lemma 7's structural fact: no arrows enter A' or PA.
	for _, from := range AllSMMTypes {
		if TransitionAllowed(from, TypeA1) {
			t.Errorf("diagram has arrow %v→A'", from)
		}
		if TransitionAllowed(from, TypePA) {
			t.Errorf("diagram has arrow %v→PA", from)
		}
	}
	// Lemma 1: M is absorbing.
	for _, to := range AllSMMTypes {
		if to == TypeM {
			if !TransitionAllowed(TypeM, to) {
				t.Error("M→M missing")
			}
		} else if TransitionAllowed(TypeM, to) {
			t.Errorf("M→%v should be forbidden", to)
		}
	}
	// Lemmas 2,3: PM and PP go only to A°.
	for _, from := range []SMMType{TypePM, TypePP} {
		for _, to := range AllSMMTypes {
			want := to == TypeA0
			if TransitionAllowed(from, to) != want {
				t.Errorf("%v→%v allowed=%v, want %v", from, to, !want, want)
			}
		}
	}
	// Lemma 5: A' goes only to M.
	for _, to := range AllSMMTypes {
		want := to == TypeM
		if TransitionAllowed(TypeA1, to) != want {
			t.Errorf("A'→%v allowed=%v, want %v", to, !want, want)
		}
	}
}

func TestCheckTransitions(t *testing.T) {
	before := []SMMType{TypeM, TypePA, TypeA1}
	after := []SMMType{TypeM, TypePM, TypeM}
	if _, _, _, ok := CheckTransitions(before, after); !ok {
		t.Fatal("legal transitions rejected")
	}
	bad := []SMMType{TypeM, TypePM, TypePA} // A'→PA forbidden
	node, from, to, ok := CheckTransitions(before, bad)
	if ok || node != 2 || from != TypeA1 || to != TypePA {
		t.Fatalf("got (%d,%v,%v,%v)", node, from, to, ok)
	}
}

func TestCheckTransitionsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	CheckTransitions([]SMMType{TypeM}, nil)
}

func TestTransitionMatrix(t *testing.T) {
	var m TransitionMatrix
	m.Record([]SMMType{TypePA, TypeA0}, []SMMType{TypeM, TypeA0})
	m.Record([]SMMType{TypeM, TypeA0}, []SMMType{TypeM, TypePP})
	obs := m.Observed()
	if len(obs) != 4 {
		t.Fatalf("Observed = %v", obs)
	}
	if v := m.Violations(); len(v) != 0 {
		t.Fatalf("unexpected violations %v", v)
	}
	// Record a forbidden transition and check it is flagged.
	m.Record([]SMMType{TypeM}, []SMMType{TypePA})
	v := m.Violations()
	if len(v) != 1 || v[0].From != TypeM || v[0].To != TypePA || v[0].Count != 1 {
		t.Fatalf("Violations = %v", v)
	}
	if s := v[0].String(); s != "M→PA ×1" {
		t.Fatalf("String = %q", s)
	}
}
