package core

import (
	"math/rand"
	"testing"

	"selfstab/internal/graph"
)

// FuzzSMMMove decodes arbitrary bytes into a graph plus a configuration
// (including invalid dangling pointers) and asserts that Move is total:
// it never panics, always returns Null or a current neighbor, and its
// guards are mutually exclusive with the reported activity (inactive ⇒
// state unchanged for this deterministic protocol).
func FuzzSMMMove(f *testing.F) {
	f.Add(int64(1), uint8(6), []byte{0, 1, 2, 3})
	f.Add(int64(2), uint8(4), []byte{255, 255, 255, 255})
	f.Add(int64(3), uint8(9), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, size uint8, raw []byte) {
		n := 2 + int(size%12)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGNP(n, 0.4, rng)
		// Decode raw bytes into pointers — deliberately allowing values
		// that point at non-neighbors or self, which the message-passing
		// executors can transiently produce.
		states := make([]Pointer, n)
		for v := range states {
			var b byte
			if len(raw) > 0 {
				b = raw[v%len(raw)]
			}
			switch int(b) % (n + 2) {
			case n, n + 1:
				states[v] = Null
			default:
				target := graph.NodeID(int(b) % n)
				if target == graph.NodeID(v) {
					states[v] = Null // self-pointers are unrepresentable
				} else {
					states[v] = PointAt(target)
				}
			}
		}
		cfg := Config[Pointer]{G: g, States: states}
		p := NewSMM()
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			next, active := p.Move(cfg.View(id))
			if !next.IsNull() && !g.HasEdge(id, next.Node()) {
				t.Fatalf("node %d moved to non-neighbor %v (from %v)", v, next, states[v])
			}
			if !active && next != states[v] {
				t.Fatalf("node %d inactive but state changed %v -> %v", v, states[v], next)
			}
			if active && next == states[v] {
				t.Fatalf("node %d active but state unchanged (%v)", v, next)
			}
		}
	})
}

// FuzzSMIMove asserts the same totality for SMI over arbitrary bit
// configurations.
func FuzzSMIMove(f *testing.F) {
	f.Add(int64(1), uint8(8), uint64(0b10110))
	f.Add(int64(2), uint8(3), uint64(0))
	f.Fuzz(func(t *testing.T, seed int64, size uint8, bits uint64) {
		n := 2 + int(size%16)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGNP(n, 0.4, rng)
		cfg := NewConfig[bool](g)
		for v := range cfg.States {
			cfg.States[v] = bits>>(v%64)&1 == 1
		}
		p := NewSMI()
		for v := 0; v < n; v++ {
			next, active := p.Move(cfg.View(graph.NodeID(v)))
			if active == (next == cfg.States[v]) {
				t.Fatalf("node %d: active=%v but %v -> %v", v, active, cfg.States[v], next)
			}
		}
	})
}
