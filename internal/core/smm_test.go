package core

import (
	"math/rand"
	"testing"

	"selfstab/internal/graph"
)

// view builds a View over an explicit configuration for rule-level tests.
func view(cfg Config[Pointer], id graph.NodeID) View[Pointer] { return cfg.View(id) }

func pointerCfg(g *graph.Graph, ptrs ...Pointer) Config[Pointer] {
	if len(ptrs) != g.N() {
		panic("pointerCfg: wrong state count")
	}
	cfg := NewConfig[Pointer](g)
	copy(cfg.States, ptrs)
	return cfg
}

func TestPointerBasics(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null.IsNull() = false")
	}
	p := PointAt(7)
	if p.IsNull() || p.Node() != 7 {
		t.Fatalf("PointAt(7) = %v", p)
	}
	if Null.String() != "Λ" || p.String() != "7" {
		t.Fatalf("String: %q %q", Null.String(), p.String())
	}
}

func TestPointerNodeOnNullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Node() on Null did not panic")
		}
	}()
	Null.Node()
}

func TestSMMRule1AcceptsProposal(t *testing.T) {
	// 1 points at 0; 0 is null → 0 must accept (R1) and point back at 1.
	g := graph.Path(3)
	cfg := pointerCfg(g, Null, PointAt(0), Null)
	next, moved := NewSMM().Move(view(cfg, 0))
	if !moved || next != PointAt(1) {
		t.Fatalf("R1: got (%v, %v), want (→1, true)", next, moved)
	}
}

func TestSMMRule1AcceptPolicy(t *testing.T) {
	// Star center 0 with proposers 1, 2, 3.
	g := graph.Star(4)
	cfg := pointerCfg(g, Null, PointAt(0), PointAt(0), PointAt(0))
	minP := &SMM{Accept: AcceptMinID}
	next, moved := minP.Move(view(cfg, 0))
	if !moved || next != PointAt(1) {
		t.Fatalf("AcceptMinID: got %v, want →1", next)
	}
	maxP := &SMM{Accept: AcceptMaxID}
	next, moved = maxP.Move(view(cfg, 0))
	if !moved || next != PointAt(3) {
		t.Fatalf("AcceptMaxID: got %v, want →3", next)
	}
}

func TestSMMRule2ProposesToMinNullNeighbor(t *testing.T) {
	// 2's neighbors on a path 1-2-3: both null, no proposers → propose to 1.
	g := graph.Path(5)
	cfg := pointerCfg(g, Null, Null, Null, Null, Null)
	next, moved := NewSMM().Move(view(cfg, 2))
	if !moved || next != PointAt(1) {
		t.Fatalf("R2: got (%v,%v), want (→1,true)", next, moved)
	}
}

func TestSMMRule2SkipsNonNullNeighbors(t *testing.T) {
	// 1's smaller neighbor 0 has a pointer elsewhere; must propose to 2.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	cfg := pointerCfg(g, PointAt(3), Null, Null, Null)
	next, moved := NewSMM().Move(view(cfg, 1))
	if !moved || next != PointAt(2) {
		t.Fatalf("R2: got (%v,%v), want (→2,true)", next, moved)
	}
}

func TestSMMRule2RequiresNoProposers(t *testing.T) {
	// 1 has a proposer (0→1), so R1 applies, not R2: 1 accepts 0 even
	// though 2 is a null neighbor.
	g := graph.Path(3)
	cfg := pointerCfg(g, PointAt(1), Null, Null)
	next, moved := NewSMM().Move(view(cfg, 1))
	if !moved || next != PointAt(0) {
		t.Fatalf("got (%v,%v), want (→0,true)", next, moved)
	}
}

func TestSMMRule3BacksOff(t *testing.T) {
	// 0→1, 1→2, 2→1: node 0 sees 1 pointing at 2 ∉ {Λ,0} → back off.
	g := graph.Path(3)
	cfg := pointerCfg(g, PointAt(1), PointAt(2), PointAt(1))
	next, moved := NewSMM().Move(view(cfg, 0))
	if !moved || next != Null {
		t.Fatalf("R3: got (%v,%v), want (Λ,true)", next, moved)
	}
}

func TestSMMRule3NotWhenTargetNull(t *testing.T) {
	// 0→1 and 1→Λ: R3 guard requires j to point at a third node.
	g := graph.Path(3)
	cfg := pointerCfg(g, PointAt(1), Null, Null)
	next, moved := NewSMM().Move(view(cfg, 0))
	if moved || next != PointAt(1) {
		t.Fatalf("got (%v,%v), want (→1,false)", next, moved)
	}
}

func TestSMMMatchedPairStable(t *testing.T) {
	// 0↔1 matched: neither moves (Lemma 1 closure).
	g := graph.Path(3)
	cfg := pointerCfg(g, PointAt(1), PointAt(0), Null)
	p := NewSMM()
	for _, id := range []graph.NodeID{0, 1} {
		if _, moved := p.Move(view(cfg, id)); moved {
			t.Fatalf("matched node %d moved", id)
		}
	}
	// Node 2 is aloof next to matched 1: no null neighbor, no proposer →
	// also stable.
	if _, moved := p.Move(view(cfg, 2)); moved {
		t.Fatal("aloof node 2 moved with no null neighbors")
	}
}

func TestSMMIsolatedNodeStable(t *testing.T) {
	g := graph.New(2) // no edges
	cfg := pointerCfg(g, Null, Null)
	if _, moved := NewSMM().Move(view(cfg, 0)); moved {
		t.Fatal("isolated node moved")
	}
}

func TestSMMRandomCoversStateSpace(t *testing.T) {
	g := graph.Star(4)
	rng := rand.New(rand.NewSource(1))
	p := NewSMM()
	seen := map[Pointer]bool{}
	for i := 0; i < 200; i++ {
		seen[p.Random(0, g.Neighbors(0), rng)] = true
	}
	for _, want := range []Pointer{Null, PointAt(1), PointAt(2), PointAt(3)} {
		if !seen[want] {
			t.Errorf("Random never produced %v", want)
		}
	}
	if len(seen) != 4 {
		t.Errorf("Random produced unexpected states: %v", seen)
	}
}

func TestMatchedAndMatchingOf(t *testing.T) {
	g := graph.Path(4)
	cfg := pointerCfg(g, PointAt(1), PointAt(0), PointAt(3), PointAt(2))
	for v := 0; v < 4; v++ {
		if !Matched(cfg, graph.NodeID(v)) {
			t.Fatalf("node %d should be matched", v)
		}
	}
	m := MatchingOf(cfg)
	if len(m) != 2 || m[0] != graph.NewEdge(0, 1) || m[1] != graph.NewEdge(2, 3) {
		t.Fatalf("MatchingOf = %v", m)
	}
	// One-sided pointing is not a match.
	cfg2 := pointerCfg(g, PointAt(1), Null, Null, Null)
	if Matched(cfg2, 0) || len(MatchingOf(cfg2)) != 0 {
		t.Fatal("one-sided pointer reported as matched")
	}
}

func TestValidSMMConfig(t *testing.T) {
	g := graph.Path(3)
	ok := pointerCfg(g, PointAt(1), Null, Null)
	if err := ValidSMMConfig(ok); err != nil {
		t.Fatal(err)
	}
	bad := pointerCfg(g, PointAt(2), Null, Null) // 0-2 not an edge
	if err := ValidSMMConfig(bad); err == nil {
		t.Fatal("pointer at non-neighbor accepted")
	}
}

func TestNormalizeSMM(t *testing.T) {
	g := graph.Path(3)
	cfg := pointerCfg(g, PointAt(1), PointAt(0), PointAt(1))
	g.RemoveEdge(0, 1) // mobility: link {0,1} fails
	n := NormalizeSMM(cfg)
	if n != 2 {
		t.Fatalf("repaired %d pointers, want 2", n)
	}
	if cfg.States[0] != Null || cfg.States[1] != Null {
		t.Fatal("dangling pointers not nulled")
	}
	if cfg.States[2] != PointAt(1) {
		t.Fatal("intact pointer was clobbered")
	}
}

func TestSMMNames(t *testing.T) {
	if NewSMM().Name() != "SMM" {
		t.Fatalf("Name = %q", NewSMM().Name())
	}
	if NewSMMArbitrary().Name() != "SMM(successor,accept-min)" {
		t.Fatalf("Name = %q", NewSMMArbitrary().Name())
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[string]string{
		ProposeMinID.String():     "min-id",
		ProposeMaxID.String():     "max-id",
		ProposeSuccessor.String(): "successor",
		AcceptMinID.String():      "accept-min",
		AcceptMaxID.String():      "accept-max",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestSMMSuccessorPolicyOnC4(t *testing.T) {
	// The counterexample setup: all null on C4; each node proposes to its
	// clockwise (successor) neighbor.
	g := graph.Cycle(4)
	cfg := pointerCfg(g, Null, Null, Null, Null)
	p := NewSMMArbitrary()
	wants := []Pointer{PointAt(1), PointAt(2), PointAt(3), PointAt(0)}
	for v := 0; v < 4; v++ {
		next, moved := p.Move(view(cfg, graph.NodeID(v)))
		if !moved || next != wants[v] {
			t.Fatalf("node %d: got (%v,%v), want (%v,true)", v, next, moved, wants[v])
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	g := graph.Path(3)
	cfg := NewConfig[Pointer](g)
	for _, s := range cfg.States {
		if s != 0 { // zero value of Pointer is 0, not Null — callers must init
			t.Fatal("zero config unexpected")
		}
	}
	rng := rand.New(rand.NewSource(2))
	cfg.Randomize(NewSMM(), rng)
	if err := ValidSMMConfig(cfg); err != nil {
		t.Fatal(err)
	}
	c2 := cfg.Clone()
	c2.States[0] = Null
	if cfg.States[0] == Null && c2.States[0] == Null && &cfg.States[0] == &c2.States[0] {
		t.Fatal("Clone shares state storage")
	}
	ids := cfg.PrivilegedNodes(NewSMM())
	for _, id := range ids {
		if !cfg.Privileged(NewSMM(), id) {
			t.Fatalf("PrivilegedNodes returned unprivileged %d", id)
		}
	}
}
