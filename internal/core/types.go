package core

import (
	"fmt"

	"selfstab/internal/graph"
)

// SMMType is the six-way classification of nodes in a global SMM state
// (paper Section 3, Figure 2):
//
//	M  — matched: i ↔ j for some j
//	A° — aloof, unsolicited: i → Λ and no neighbor points at i
//	A' — aloof, solicited: i → Λ and some neighbor points at i
//	PA — pointing at an aloof node
//	PM — pointing at a matched node (without being pointed back)
//	PP — pointing at a pointing node (that points elsewhere)
type SMMType uint8

// The classification constants. TypeA0 is the paper's A°, TypeA1 its A'.
const (
	TypeM SMMType = iota
	TypeA0
	TypeA1
	TypePA
	TypePM
	TypePP
	numSMMTypes
)

// String renders the paper's notation.
func (t SMMType) String() string {
	switch t {
	case TypeM:
		return "M"
	case TypeA0:
		return "A°"
	case TypeA1:
		return "A'"
	case TypePA:
		return "PA"
	case TypePM:
		return "PM"
	case TypePP:
		return "PP"
	}
	return fmt.Sprintf("SMMType(%d)", uint8(t))
}

// AllSMMTypes lists the types in declaration order, for iteration.
var AllSMMTypes = [...]SMMType{TypeM, TypeA0, TypeA1, TypePA, TypePM, TypePP}

// ClassifySMM assigns every node its type in the given configuration.
// Pointers at non-neighbors are rejected by panicking; use ValidSMMConfig
// first when handling untrusted input.
func ClassifySMM(cfg Config[Pointer]) []SMMType {
	n := cfg.G.N()
	// pointedAt[i] = some neighbor points at i.
	pointedAt := make([]bool, n)
	for v, p := range cfg.States {
		if !p.IsNull() {
			if !cfg.G.HasEdge(graph.NodeID(v), p.Node()) {
				panic(fmt.Sprintf("core: ClassifySMM: node %d points at non-neighbor %d", v, p.Node()))
			}
			pointedAt[p.Node()] = true
		}
	}
	types := make([]SMMType, n)
	for v := range cfg.States {
		i := graph.NodeID(v)
		p := cfg.States[v]
		if p.IsNull() {
			if pointedAt[i] {
				types[v] = TypeA1
			} else {
				types[v] = TypeA0
			}
			continue
		}
		j := p.Node()
		q := cfg.States[j]
		switch {
		case !q.IsNull() && q.Node() == i:
			types[v] = TypeM
		case q.IsNull():
			types[v] = TypePA
		case Matched(cfg, j):
			types[v] = TypePM
		default:
			types[v] = TypePP
		}
	}
	return types
}

// Census counts nodes of each type; index with an SMMType.
type Census [numSMMTypes]int

// CensusOf tallies a type assignment.
func CensusOf(types []SMMType) Census {
	var c Census
	for _, t := range types {
		c[t]++
	}
	return c
}

// String renders e.g. "M=4 A°=1 A'=0 PA=0 PM=2 PP=0".
func (c Census) String() string {
	s := ""
	for i, t := range AllSMMTypes {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", t, c[t])
	}
	return s
}

// allowedSMMTransitions is the paper's type-transition diagram (Figure 3),
// as proved by Lemmas 1–6: from each type, the set of types a node may
// hold one round later.
//
//	M  → M               (Lemma 1)
//	PM → A°              (Lemma 2: pointer nulled, and nobody can have
//	                      proposed to a node whose pointer was set)
//	PP → A°              (Lemma 3, same argument)
//	PA → M, PM           (Lemma 4)
//	A' → M               (Lemma 5)
//	A° → A°, PM, M, PP   (Lemma 6)
//
// No arrows enter A' or PA, which is Lemma 7: both sets are empty for all
// t ≥ 1.
var allowedSMMTransitions = [numSMMTypes][numSMMTypes]bool{
	TypeM:  {TypeM: true},
	TypePM: {TypeA0: true},
	TypePP: {TypeA0: true},
	TypePA: {TypeM: true, TypePM: true},
	TypeA1: {TypeM: true},
	TypeA0: {TypeA0: true, TypePM: true, TypeM: true, TypePP: true},
}

// TransitionAllowed reports whether the Figure 3 diagram permits a node to
// move from type `from` to type `to` in one round.
func TransitionAllowed(from, to SMMType) bool {
	return allowedSMMTransitions[from][to]
}

// CheckTransitions compares consecutive type assignments and returns the
// first node whose transition the Figure 3 diagram forbids, or -1 if all
// transitions are allowed. The two slices must have equal length.
func CheckTransitions(before, after []SMMType) (node graph.NodeID, from, to SMMType, ok bool) {
	if len(before) != len(after) {
		panic("core: CheckTransitions: length mismatch")
	}
	for v := range before {
		if !TransitionAllowed(before[v], after[v]) {
			return graph.NodeID(v), before[v], after[v], false
		}
	}
	return -1, 0, 0, true
}

// TransitionMatrix accumulates observed type transitions across rounds;
// entry [from][to] counts nodes that went from `from` to `to`.
type TransitionMatrix [numSMMTypes][numSMMTypes]int

// Record adds the transitions between two consecutive type assignments.
func (m *TransitionMatrix) Record(before, after []SMMType) {
	if len(before) != len(after) {
		panic("core: TransitionMatrix.Record: length mismatch")
	}
	for v := range before {
		m[before[v]][after[v]]++
	}
}

// Add accumulates another matrix into m — the deterministic merge for
// per-trial matrices recorded concurrently (addition commutes, so any
// gather order yields the same totals).
func (m *TransitionMatrix) Add(o *TransitionMatrix) {
	for i := range o {
		for j := range o[i] {
			m[i][j] += o[i][j]
		}
	}
}

// Violations returns the observed transitions the diagram forbids, as
// (from, to, count) triples in declaration order.
func (m *TransitionMatrix) Violations() []TransitionCount {
	var out []TransitionCount
	for _, from := range AllSMMTypes {
		for _, to := range AllSMMTypes {
			if m[from][to] > 0 && !TransitionAllowed(from, to) {
				out = append(out, TransitionCount{From: from, To: to, Count: m[from][to]})
			}
		}
	}
	return out
}

// Observed returns all transitions that occurred at least once.
func (m *TransitionMatrix) Observed() []TransitionCount {
	var out []TransitionCount
	for _, from := range AllSMMTypes {
		for _, to := range AllSMMTypes {
			if m[from][to] > 0 {
				out = append(out, TransitionCount{From: from, To: to, Count: m[from][to]})
			}
		}
	}
	return out
}

// TransitionCount is one cell of a TransitionMatrix.
type TransitionCount struct {
	From, To SMMType
	Count    int
}

// String renders e.g. "PA→M ×12".
func (t TransitionCount) String() string {
	return fmt.Sprintf("%s→%s ×%d", t.From, t.To, t.Count)
}
