package beacon

import (
	"math"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
)

// FaultNetwork adapts Network to faults.Target. Unlike the round-based
// executors, the beacon model realizes most faults natively: a removed
// link is discovered only when the neighbor timeout t_ij expires
// (DetectionLag), a beacon-loss burst drops in-flight beacons on the
// link, and a frozen neighbor table serves genuinely stale reads from
// the discrete-event state. One Target round is one beacon period TB,
// driven by Network.StepRound.
type FaultNetwork[S comparable] struct {
	n *Network[S]
}

// NewFaultNetwork builds a beacon network with fault hooks over
// topology g.
func NewFaultNetwork[S comparable](p core.Protocol[S], g *graph.Graph, states []S, prm Params, rng *rand.Rand) *FaultNetwork[S] {
	return &FaultNetwork[S]{n: NewNetwork(p, g, states, prm, rng)}
}

// Network returns the wrapped simulator.
func (f *FaultNetwork[S]) Network() *Network[S] { return f.n }

// Model implements faults.Target.
func (f *FaultNetwork[S]) Model() string { return "beacon" }

// Topology implements faults.Target.
func (f *FaultNetwork[S]) Topology() *graph.Graph { return f.n.g }

// Config implements faults.Target (a snapshot; see Network.Config).
func (f *FaultNetwork[S]) Config() core.Config[S] { return f.n.Config() }

// ReadState implements faults.Target.
func (f *FaultNetwork[S]) ReadState(v graph.NodeID) S { return f.n.nodes[v].state }

// WriteState implements faults.Target. Neighbors learn the new state
// from the node's next beacon; the node itself must re-evaluate, so it
// is marked dirty.
func (f *FaultNetwork[S]) WriteState(v graph.NodeID, s S) {
	nd := f.n.nodes[v]
	nd.state = s
	nd.dirty = true
}

// SetLink implements faults.Target. The endpoints of a removed link
// notice only when their timers t_ij expire; a new link is discovered
// by the first beacon crossing it — both exactly as in AddLink and
// RemoveLink.
func (f *FaultNetwork[S]) SetLink(e graph.Edge, present bool) {
	if present {
		f.n.g.AddEdge(e.U, e.V)
		return
	}
	f.n.g.RemoveEdge(e.U, e.V)
	delete(f.n.linkDrop, e)
}

// DropLink implements faults.Target: the link drops all beacons for the
// given number of beacon periods, measured from the current round edge.
func (f *FaultNetwork[S]) DropLink(e graph.Edge, rounds int) {
	until := f.n.stepTo + float64(rounds)*f.n.prm.TB
	if until > f.n.linkDrop[e] {
		f.n.linkDrop[e] = until
	}
}

// Freeze implements faults.Target: node v's neighbor table stops
// accepting state updates (but not liveness refreshes) for the given
// number of beacon periods.
func (f *FaultNetwork[S]) Freeze(v graph.NodeID, rounds int) {
	until := f.n.stepTo + float64(rounds)*f.n.prm.TB
	if until > f.n.staleUntil[v] {
		f.n.staleUntil[v] = until
	}
}

// Step implements faults.Target: one beacon period.
func (f *FaultNetwork[S]) Step() int { return f.n.StepRound() }

// Warmup implements faults.Target: neighbor tables start empty and
// need a few beacon periods of discovery before nodes act.
func (f *FaultNetwork[S]) Warmup() int { return 3 }

// DetectionLag implements faults.Target: a vanished link is noticed
// when the timeout t_ij = TimeoutFactor·TB expires, plus one period of
// slack for beacon phase.
func (f *FaultNetwork[S]) DetectionLag() int {
	return int(math.Ceil(f.n.prm.TimeoutFactor)) + 1
}

// QuietRounds implements faults.Target: beacon phases are unaligned, so
// one quiet period is not proof of a fixed point; two are.
func (f *FaultNetwork[S]) QuietRounds() int { return 2 }

// Close implements faults.Target; the event queue needs no teardown.
func (f *FaultNetwork[S]) Close() {}

var _ faults.Target[bool] = (*FaultNetwork[bool])(nil)
