// Package beacon is a discrete-event simulation of the paper's System
// Model: every node periodically broadcasts a beacon carrying its
// protocol state; a node adds a sender it has not seen to its neighbor
// list (neighbor discovery) and drops a neighbor whose beacons time out;
// logical links are FIFO with bounded delay and may lose beacons; and a
// node takes a protocol action exactly when it has received beacons from
// all of its current neighbors since its last action. Time is continuous
// (float64 "seconds") and beacon periods may jitter, so the executor
// exercises the asynchrony the lockstep simulator abstracts away.
package beacon

import "container/heap"

// eventKind discriminates scheduled events.
type eventKind uint8

const (
	// evBeacon fires a node's beacon timer: expire stale neighbors,
	// possibly act, broadcast, reschedule.
	evBeacon eventKind = iota
	// evDeliver delivers one beacon message over one directed link.
	evDeliver
)

// event is a scheduled simulation event.
type event struct {
	at   float64
	seq  uint64 // FIFO tiebreak for simultaneous events: deterministic order
	kind eventKind
	node int // evBeacon: the beaconing node; evDeliver: the receiver
	from int // evDeliver: the sender
	msg  any // evDeliver: the carried protocol state
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

var _ heap.Interface = (*eventQueue)(nil)
