package beacon

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Params configures the simulated link layer. Times are in arbitrary
// continuous units; TB is the reference unit ("one beacon period").
type Params struct {
	// TB is the beacon period t_b. Must be positive.
	TB float64
	// Jitter desynchronizes beacon timers: each interval is drawn from
	// TB * (1 ± U(0, Jitter)). 0 = perfectly periodic.
	Jitter float64
	// Delay is the base one-way link delay per beacon.
	Delay float64
	// DelayJitter perturbs each delay by ± U(0, DelayJitter) * Delay.
	// FIFO order per directed link is enforced regardless.
	DelayJitter float64
	// Loss is the probability an individual beacon is lost in transit.
	Loss float64
	// TimeoutFactor sets the neighbor timeout t_ij = TimeoutFactor * TB:
	// a neighbor not heard for that long is presumed gone.
	TimeoutFactor float64
	// Synchronized starts every beacon timer at exactly TB instead of a
	// random phase. With Jitter = 0 this makes the beacon model coincide
	// with the lockstep model round for round — including reproducing the
	// four-cycle counterexample, which random phases otherwise break by
	// serializing the moves.
	Synchronized bool
}

// DefaultParams returns a loss-free, low-delay link layer with a small
// phase jitter — the setting in which the beacon model and the lockstep
// model provably coincide round for round.
func DefaultParams() Params {
	return Params{TB: 1.0, Jitter: 0.05, Delay: 0.05, TimeoutFactor: 3.0}
}

// Result summarizes a beacon-model run.
type Result struct {
	// Time is the simulated time of the last protocol activity.
	Time float64
	// Rounds is Time expressed in beacon periods (Time / TB) — the
	// paper's unit of convergence.
	Rounds float64
	// Moves counts protocol moves (active evaluations).
	Moves int
	// Actions counts rule evaluations (a node acting after hearing all
	// neighbors), whether or not a rule fired.
	Actions int
	// Stable reports whether the network went quiet before the deadline.
	Stable bool
}

// String renders e.g. "stable at t=8.13 (8.1 beacon rounds, 23 moves)".
func (r Result) String() string {
	if r.Stable {
		return fmt.Sprintf("stable at t=%.2f (%.1f beacon rounds, %d moves)", r.Time, r.Rounds, r.Moves)
	}
	return fmt.Sprintf("NOT stable by t=%.2f (%.1f beacon rounds, %d moves)", r.Time, r.Rounds, r.Moves)
}

// nbrInfo is one row of a node's neighbor table.
type nbrInfo[S comparable] struct {
	state     S
	lastHeard float64
	heard     bool // heard since the node's last action
}

// netNode is the per-node runtime state.
type netNode[S comparable] struct {
	id      graph.NodeID
	state   S
	nbrs    map[graph.NodeID]*nbrInfo[S]
	unheard int // table entries with heard == false
	// ready gates rule evaluation behind a one-period warmup (set at the
	// second own-beacon timer) so a cold-started node does not act on a
	// half-discovered neighbor table.
	ready  bool
	timers int
	// lastArrival enforces FIFO per outgoing directed link.
	lastArrival map[graph.NodeID]float64
	// dirty is the frontier analogue of the event-driven model: it is set
	// whenever the node's local view changes (table membership, a
	// recorded neighbor state, or its own state) and cleared by an
	// evaluation. A clean act still counts as an action and consumes the
	// round's beacons, but skips the provably no-op Move call.
	dirty bool
	// nbrList caches the sorted neighbor-ID slice served to Move,
	// invalidated on table membership changes; peerFn is the table read
	// closure, allocated once per node instead of once per action.
	nbrList   []graph.NodeID
	nbrListOK bool
	peerFn    func(graph.NodeID) S
}

// Network is the discrete-event simulator. It is not safe for concurrent
// use; the event loop is single-threaded by design (determinism).
type Network[S comparable] struct {
	p   core.Protocol[S]
	g   *graph.Graph
	prm Params
	rng *rand.Rand

	now          float64
	seq          uint64
	q            eventQueue
	nodes        []*netNode[S]
	lastActivity float64
	moves        int
	actions      int
	stats        Stats

	// stepTo is the upper edge of the last StepRound window; the fault
	// layer drives the simulation one beacon period at a time through it.
	stepTo float64
	// linkDrop maps a link to the time until which its beacons are
	// dropped in both directions (a beacon-loss burst). Entries are
	// removed lazily once expired.
	linkDrop map[graph.Edge]float64
	// staleUntil[v], when in the future, freezes node v's neighbor
	// table: beacons still refresh liveness (no spurious expiry) but do
	// not overwrite the recorded states, so v acts on stale reads.
	staleUntil []float64
	// fullScan is reference mode: evaluate Move on every action.
	fullScan bool
}

// Stats counts link-layer traffic, for measuring the beacon overhead the
// paper's protocol piggybacks on.
type Stats struct {
	// Sent counts beacon transmissions (one per receiver per beacon).
	Sent int
	// Delivered counts beacons processed by a receiver.
	Delivered int
	// Lost counts beacons dropped by the loss process or by a link that
	// vanished while the beacon was in flight.
	Lost int
	// Expired counts neighbor-table entries dropped by the timeout t_ij.
	Expired int
}

// NewNetwork builds a beacon network running protocol p over topology g
// with the given initial states (one per node; pointers may reference
// any current neighbor). Neighbor tables start empty and fill through
// the discovery protocol, exactly as in a cold-started deployment.
func NewNetwork[S comparable](p core.Protocol[S], g *graph.Graph, states []S, prm Params, rng *rand.Rand) *Network[S] {
	if prm.TB <= 0 {
		panic("beacon: Params.TB must be positive")
	}
	if prm.TimeoutFactor <= 1 {
		panic("beacon: Params.TimeoutFactor must exceed 1")
	}
	if len(states) != g.N() {
		panic(fmt.Sprintf("beacon: %d states for %d nodes", len(states), g.N()))
	}
	n := &Network[S]{p: p, g: g, prm: prm, rng: rng, fullScan: referenceScan.Load()}
	n.linkDrop = make(map[graph.Edge]float64)
	n.staleUntil = make([]float64, g.N())
	n.nodes = make([]*netNode[S], g.N())
	for v := range n.nodes {
		nd := &netNode[S]{
			id:          graph.NodeID(v),
			state:       states[v],
			nbrs:        make(map[graph.NodeID]*nbrInfo[S]),
			lastArrival: make(map[graph.NodeID]float64),
			dirty:       true, // any node may be privileged initially
		}
		nd.peerFn = func(j graph.NodeID) S { return nd.nbrs[j].state }
		n.nodes[v] = nd
		// Random phase offsets in [0, TB): beacons are unsynchronized
		// (unless the caller asked for lockstep-equivalent timing).
		phase := rng.Float64() * prm.TB
		if prm.Synchronized {
			phase = prm.TB
		}
		n.schedule(&event{at: phase, kind: evBeacon, node: v})
	}
	return n
}

// Now returns the current simulated time.
func (n *Network[S]) Now() float64 { return n.now }

// Moves returns the number of protocol moves so far.
func (n *Network[S]) Moves() int { return n.moves }

// LinkStats returns the link-layer traffic counters so far. Sent equals
// Delivered + Lost + beacons still in flight.
func (n *Network[S]) LinkStats() Stats { return n.stats }

// Config snapshots the current protocol states over the current topology.
func (n *Network[S]) Config() core.Config[S] {
	cfg := core.NewConfig[S](n.g)
	for v, nd := range n.nodes {
		cfg.States[v] = nd.state
	}
	return cfg
}

// NeighborTable returns the IDs currently in node v's neighbor table,
// ascending — the node's local belief, which lags the true topology.
func (n *Network[S]) NeighborTable(v graph.NodeID) []graph.NodeID {
	nd := n.nodes[v]
	ids := make([]graph.NodeID, 0, len(nd.nbrs))
	for j := range nd.nbrs {
		ids = append(ids, j)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// AddLink inserts the link {u,v} into the true topology at the current
// time. Nodes learn of it when the first beacon crosses it.
func (n *Network[S]) AddLink(u, v graph.NodeID) { n.g.AddEdge(u, v) }

// RemoveLink removes the link {u,v} at the current time. In-flight
// beacons on the link are lost; the endpoints discover the loss when
// their timers t_ij expire.
func (n *Network[S]) RemoveLink(u, v graph.NodeID) { n.g.RemoveEdge(u, v) }

// Run processes events until either no protocol activity has occurred
// for quiet time units (stable) or the deadline maxTime passes. It may
// be called repeatedly: after a topology change, call Run again to
// re-stabilize.
func (n *Network[S]) Run(maxTime, quiet float64) Result {
	// The quiet window restarts at entry so that a Run after a topology
	// change actually processes events instead of inheriting the previous
	// run's quiescence.
	watermark := n.lastActivity
	if n.now > watermark {
		watermark = n.now
	}
	for len(n.q) > 0 {
		if n.lastActivity > watermark {
			watermark = n.lastActivity
		}
		if n.now-watermark >= quiet {
			break
		}
		if n.now > maxTime {
			return Result{Time: n.now, Rounds: n.now / n.prm.TB, Moves: n.moves, Actions: n.actions, Stable: false}
		}
		ev := heap.Pop(&n.q).(*event)
		n.now = ev.at
		switch ev.kind {
		case evBeacon:
			n.onBeaconTimer(ev.node)
		case evDeliver:
			n.onDeliver(ev.node, ev.from, ev.msg.(S))
		}
	}
	return Result{
		Time:    n.lastActivity,
		Rounds:  n.lastActivity / n.prm.TB,
		Moves:   n.moves,
		Actions: n.actions,
		Stable:  true,
	}
}

// StepRound advances the simulation by exactly one beacon period TB,
// processing every event in the window, and returns the number of
// protocol moves in it. It is the fault layer's logical clock: each
// StepRound is one round in the paper's sense. Mixing StepRound and Run
// on the same network is not supported.
func (n *Network[S]) StepRound() int {
	movesBefore := n.moves
	n.stepTo += n.prm.TB
	for len(n.q) > 0 && n.q[0].at <= n.stepTo {
		ev := heap.Pop(&n.q).(*event)
		n.now = ev.at
		switch ev.kind {
		case evBeacon:
			n.onBeaconTimer(ev.node)
		case evDeliver:
			n.onDeliver(ev.node, ev.from, ev.msg.(S))
		}
	}
	if n.now < n.stepTo {
		n.now = n.stepTo
	}
	return n.moves - movesBefore
}

func (n *Network[S]) schedule(ev *event) {
	ev.seq = n.seq
	n.seq++
	heap.Push(&n.q, ev)
}

// onBeaconTimer expires stale neighbors, lets the node act if it has a
// complete round of beacons, broadcasts, and reschedules.
func (n *Network[S]) onBeaconTimer(v int) {
	nd := n.nodes[v]
	nd.timers++
	if nd.timers >= 2 {
		nd.ready = true
	}
	n.expireNeighbors(nd)
	if nd.ready && nd.unheard == 0 {
		n.act(nd)
	}
	// Broadcast to everyone currently in radio range (true topology).
	for _, j := range n.g.Neighbors(nd.id) {
		n.stats.Sent++
		if until, dropped := n.linkDrop[graph.NewEdge(nd.id, j)]; dropped {
			if n.now < until {
				// Beacon-loss burst injected by the fault layer.
				n.stats.Lost++
				continue
			}
			delete(n.linkDrop, graph.NewEdge(nd.id, j))
		}
		if n.prm.Loss > 0 && n.rng.Float64() < n.prm.Loss {
			n.stats.Lost++
			continue
		}
		delay := n.prm.Delay
		if n.prm.DelayJitter > 0 {
			delay += n.prm.Delay * n.prm.DelayJitter * (2*n.rng.Float64() - 1)
		}
		at := n.now + delay
		// FIFO per directed link: never deliver before a previously sent
		// beacon on the same link.
		if prev := nd.lastArrival[j]; at <= prev {
			at = prev + 1e-9
		}
		nd.lastArrival[j] = at
		n.schedule(&event{at: at, kind: evDeliver, node: int(j), from: v, msg: nd.state})
	}
	interval := n.prm.TB
	if n.prm.Jitter > 0 {
		interval *= 1 + n.prm.Jitter*(2*n.rng.Float64()-1)
	}
	n.schedule(&event{at: n.now + interval, kind: evBeacon, node: v})
}

// onDeliver processes one received beacon.
func (n *Network[S]) onDeliver(to, from int, s S) {
	// A beacon crossing a link that vanished mid-flight is lost.
	if !n.g.HasEdge(graph.NodeID(to), graph.NodeID(from)) {
		n.stats.Lost++
		return
	}
	n.stats.Delivered++
	nd := n.nodes[to]
	info, known := nd.nbrs[graph.NodeID(from)]
	if !known {
		// Neighbor discovery: first beacon from a new neighbor — a table
		// membership change, so the cached list and the evaluation both
		// need refreshing.
		info = &nbrInfo[S]{heard: false}
		nd.nbrs[graph.NodeID(from)] = info
		nd.unheard++
		nd.nbrListOK = false
		nd.dirty = true
	}
	if !known || n.now >= n.staleUntil[to] {
		// A frozen table keeps its recorded states (stale reads) but a
		// brand-new neighbor has no previous belief to keep. Only an
		// actual value change dirties the view: a beacon repeating the
		// recorded state refreshes liveness but cannot enable a rule.
		if !known || info.state != s {
			info.state = s
			nd.dirty = true
		}
	}
	info.lastHeard = n.now
	if !info.heard {
		info.heard = true
		nd.unheard--
	}
	if nd.ready && nd.unheard == 0 && len(nd.nbrs) > 0 {
		n.act(nd)
	}
}

// expireNeighbors drops table entries whose beacons have timed out and
// repairs state references to them. Expiries are applied in ascending
// neighbor-ID order: repairs chain through the node's state, so applying
// them in map-iteration order would make the surviving state depend on
// the iteration — the very bug class the paper's min-ID requirement
// guards against.
func (n *Network[S]) expireNeighbors(nd *netNode[S]) {
	timeout := n.prm.TimeoutFactor * n.prm.TB
	var expired []graph.NodeID
	for j, info := range nd.nbrs {
		if n.now-info.lastHeard > timeout {
			expired = append(expired, j)
		}
	}
	sort.Slice(expired, func(a, b int) bool { return expired[a] < expired[b] })
	for _, j := range expired {
		if !nd.nbrs[j].heard {
			nd.unheard--
		}
		delete(nd.nbrs, j)
		n.stats.Expired++
		nd.state = core.RepairState(n.p, nd.id, nd.state, j)
	}
	if len(expired) > 0 {
		// Membership changed (and the repair may have rewritten the
		// state): re-evaluate at the next action.
		nd.nbrListOK = false
		nd.dirty = true
	}
}

// act evaluates the protocol rules against the node's neighbor table and
// consumes the current round of beacons. A clean node — whose last
// evaluation was a complete no-op and whose view has not changed since —
// skips the Move call: purity guarantees the same no-op result (see
// DESIGN.md, "Active-frontier scheduling"). Action and move counts,
// state sequences, and beacon traffic are identical either way.
func (n *Network[S]) act(nd *netNode[S]) {
	n.actions++
	if n.fullScan {
		nd.dirty = true
	}
	if nd.dirty {
		if !nd.nbrListOK {
			nd.nbrList = nd.nbrList[:0]
			for j := range nd.nbrs {
				nd.nbrList = append(nd.nbrList, j)
			}
			sort.Slice(nd.nbrList, func(a, b int) bool { return nd.nbrList[a] < nd.nbrList[b] })
			nd.nbrListOK = true
		}
		v := core.View[S]{
			ID:   nd.id,
			Self: nd.state,
			Nbrs: nd.nbrList,
			Peer: nd.peerFn,
		}
		next, active := n.p.Move(v)
		// Stay dirty after a move or any state change (wrappers may edit
		// aux fields while inactive): the new Self needs one more look.
		nd.dirty = active || next != nd.state
		nd.state = next
		if active {
			n.moves++
			n.lastActivity = n.now
		}
	}
	for _, info := range nd.nbrs {
		if info.heard {
			info.heard = false
			nd.unheard++
		}
	}
}
