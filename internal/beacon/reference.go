package beacon

import "sync/atomic"

// referenceScan, when set, makes every Network built afterwards
// evaluate Move on every action instead of skipping provably no-op
// clean nodes. Test seam for the metamorphic equivalence suite (see
// sim.SetReferenceScan); production code never sets it.
var referenceScan atomic.Bool

// SetReferenceScan toggles reference mode for networks constructed
// afterwards.
func SetReferenceScan(on bool) { referenceScan.Store(on) }
