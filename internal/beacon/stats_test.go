package beacon

import (
	"math/rand"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

func TestLinkStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Cycle(6)
	net := NewNetwork[bool](core.NewSMI(), g, make([]bool, 6), DefaultParams(), rng)
	net.Run(40, 5)
	st := net.LinkStats()
	if st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if st.Delivered+st.Lost > st.Sent {
		t.Fatalf("delivered %d + lost %d exceeds sent %d", st.Delivered, st.Lost, st.Sent)
	}
	if st.Lost != 0 {
		t.Fatalf("loss-free run lost %d beacons", st.Lost)
	}
	if st.Expired != 0 {
		t.Fatalf("static topology expired %d neighbors", st.Expired)
	}
}

func TestLinkStatsTotalLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prm := DefaultParams()
	prm.Loss = 1.0
	g := graph.Path(4)
	net := NewNetwork[bool](core.NewSMI(), g, make([]bool, 4), prm, rng)
	net.Run(30, 5)
	st := net.LinkStats()
	if st.Delivered != 0 {
		t.Fatalf("delivered %d beacons at loss=1", st.Delivered)
	}
	if st.Lost != st.Sent {
		t.Fatalf("lost %d != sent %d", st.Lost, st.Sent)
	}
	// With no beacons ever delivered, no neighbor is discovered and no
	// node can point anywhere — but isolated-in-practice SMI nodes still
	// enter the set on their own timers.
	for v, x := range net.Config().States {
		if !x {
			t.Fatalf("node %d did not enter the set under total loss", v)
		}
	}
}

func TestLinkStatsExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Path(2)
	net := NewNetwork[core.Pointer](core.NewSMM(), g,
		[]core.Pointer{core.Null, core.Null}, DefaultParams(), rng)
	net.Run(40, 5)
	net.RemoveLink(0, 1)
	net.Run(net.Now()+60, 10)
	st := net.LinkStats()
	if st.Expired != 2 {
		t.Fatalf("expired = %d, want 2 (both endpoints time out)", st.Expired)
	}
}

// Failure injection: a node "sleeps" (loses all links), its neighbors
// repair, then it wakes and the protocol re-integrates it.
func TestNodeSleepAndWake(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Cycle(6)
	states := make([]core.Pointer, 6)
	for i := range states {
		states[i] = core.Null
	}
	net := NewNetwork[core.Pointer](core.NewSMM(), g, states, DefaultParams(), rng)
	if res := net.Run(100, 6); !res.Stable {
		t.Fatalf("initial: %v", res)
	}
	// Node 0 sleeps: both its links vanish.
	neighbors := append([]graph.NodeID(nil), g.Neighbors(0)...)
	for _, j := range neighbors {
		net.RemoveLink(0, j)
	}
	if res := net.Run(net.Now()+150, 10); !res.Stable {
		t.Fatalf("during sleep: %v", res)
	}
	if got := net.Config().States[0]; got != core.Null {
		t.Fatalf("sleeping node state = %v, want Λ", got)
	}
	// Wake up.
	for _, j := range neighbors {
		net.AddLink(0, j)
	}
	if res := net.Run(net.Now()+150, 10); !res.Stable {
		t.Fatalf("after wake: %v", res)
	}
	cfg := net.Config()
	if err := core.ValidSMMConfig(cfg); err != nil {
		t.Fatal(err)
	}
}

// FIFO property: per directed link, beacons are delivered in send order
// even with delay jitter. We verify indirectly by checking that the
// neighbor-table state a receiver holds is never older than a previously
// delivered one — monotonically increasing beacon content on a 2-node
// network with a counter protocol.
func TestFIFODeliveryOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prm := DefaultParams()
	prm.DelayJitter = 0.9 // heavy jitter: reordering would happen without FIFO enforcement
	prm.Delay = 0.4
	g := graph.Path(2)
	p := &counterProto{}
	net := NewNetwork[int32](p, g, []int32{0, 0}, prm, rng)
	net.Run(200, 1000) // run to the deadline: the counter never stabilizes
	if p.regressions != 0 {
		t.Fatalf("%d out-of-order deliveries observed", p.regressions)
	}
	if p.observations == 0 {
		t.Fatal("no observations — test is vacuous")
	}
}

// counterProto increments its state each action and records whether the
// peer's observed counter ever decreases (a FIFO violation).
type counterProto struct {
	last         [2]int32
	regressions  int
	observations int
}

func (*counterProto) Name() string { return "counter" }

func (*counterProto) Random(_ graph.NodeID, _ []graph.NodeID, _ *rand.Rand) int32 { return 0 }

func (c *counterProto) Move(v core.View[int32]) (int32, bool) {
	for _, j := range v.Nbrs {
		seen := v.Peer(j)
		c.observations++
		if seen < c.last[j] {
			c.regressions++
		}
		c.last[j] = seen
	}
	return v.Self + 1, true
}
