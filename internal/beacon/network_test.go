package beacon

import (
	"math/rand"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
	"selfstab/internal/verify"
)

func nullStates(n int) []core.Pointer {
	s := make([]core.Pointer, n)
	for i := range s {
		s[i] = core.Null
	}
	return s
}

func randomPointerStates(g *graph.Graph, seed int64) []core.Pointer {
	rng := rand.New(rand.NewSource(seed))
	p := core.NewSMM()
	s := make([]core.Pointer, g.N())
	for v := range s {
		s[v] = p.Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), rng)
	}
	return s
}

func TestParamsValidation(t *testing.T) {
	g := graph.Path(2)
	rng := rand.New(rand.NewSource(1))
	for _, bad := range []Params{
		{TB: 0, TimeoutFactor: 3},
		{TB: 1, TimeoutFactor: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %+v accepted", bad)
				}
			}()
			NewNetwork[core.Pointer](core.NewSMM(), g, nullStates(2), bad, rng)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong state count accepted")
			}
		}()
		NewNetwork[core.Pointer](core.NewSMM(), g, nullStates(3), DefaultParams(), rng)
	}()
}

func TestSMMStabilizesUnderBeacons(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(12, 0.25, rng)
		net := NewNetwork[core.Pointer](core.NewSMM(), g, randomPointerStates(g, int64(trial)), DefaultParams(), rng)
		res := net.Run(float64(20*g.N()), 5)
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSMIStabilizesUnderBeacons(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(14, 0.2, rng)
		states := make([]bool, g.N())
		for v := range states {
			states[v] = rng.Intn(2) == 1
		}
		net := NewNetwork[bool](core.NewSMI(), g, states, DefaultParams(), rng)
		res := net.Run(float64(20*g.N()), 5)
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if err := verify.IsMaximalIndependentSet(g, core.SetOf(net.Config())); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBeaconMatchesLockstepStableState(t *testing.T) {
	// Loss-free, low-jitter beacons must reach the same *kind* of fixed
	// point as lockstep: both maximal matchings over the same graph; and
	// the beacon round count should be within a small factor of the
	// lockstep rounds.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(16, 0.2, rng)
		states := randomPointerStates(g, int64(trial))

		cfg := core.NewConfig[core.Pointer](g)
		copy(cfg.States, states)
		l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
		lres := l.Run(g.N() + 2)
		if !lres.Stable {
			t.Fatalf("lockstep: %v", lres)
		}

		net := NewNetwork[core.Pointer](core.NewSMM(), g, states, DefaultParams(), rng)
		bres := net.Run(float64(20*g.N()), 5)
		if !bres.Stable {
			t.Fatalf("beacon: %v", bres)
		}
		if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
			t.Fatal(err)
		}
		// Beacon rounds should not wildly exceed lockstep: allow discovery
		// (~1 round) plus a 3x asynchrony factor plus slack.
		if bres.Rounds > 3*float64(lres.Rounds)+6 {
			t.Fatalf("trial %d: beacon %.1f rounds vs lockstep %d", trial, bres.Rounds, lres.Rounds)
		}
	}
}

func TestBeaconWithLossStillStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prm := DefaultParams()
	prm.Loss = 0.15
	prm.Jitter = 0.2
	prm.DelayJitter = 0.5
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(10, 0.3, rng)
		net := NewNetwork[core.Pointer](core.NewSMM(), g, randomPointerStates(g, int64(trial)), prm, rng)
		res := net.Run(float64(100*g.N()), 8)
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestNeighborDiscoveryFillsTables(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Cycle(6)
	net := NewNetwork[bool](core.NewSMI(), g, make([]bool, 6), DefaultParams(), rng)
	net.Run(50, 5)
	for v := 0; v < 6; v++ {
		table := net.NeighborTable(graph.NodeID(v))
		want := g.Neighbors(graph.NodeID(v))
		if len(table) != len(want) {
			t.Fatalf("node %d table = %v, want %v", v, table, want)
		}
		for i := range want {
			if table[i] != want[i] {
				t.Fatalf("node %d table = %v, want %v", v, table, want)
			}
		}
	}
}

func TestLinkFailureDetectedByTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Path(2)
	states := []core.Pointer{core.Null, core.Null}
	net := NewNetwork[core.Pointer](core.NewSMM(), g, states, DefaultParams(), rng)
	res := net.Run(60, 5)
	if !res.Stable {
		t.Fatalf("initial: %v", res)
	}
	// The pair must have matched.
	if len(core.MatchingOf(net.Config())) != 1 {
		t.Fatalf("pair not matched: %v", net.Config().States)
	}
	// Break the only link. Both nodes must time the other out, repair
	// their pointers, and end aloof.
	net.RemoveLink(0, 1)
	res = net.Run(net.Now()+120, 10)
	if !res.Stable {
		t.Fatalf("after failure: %v", res)
	}
	cfg := net.Config()
	if cfg.States[0] != core.Null || cfg.States[1] != core.Null {
		t.Fatalf("dangling pointers after link failure: %v", cfg.States)
	}
	if len(net.NeighborTable(0)) != 0 || len(net.NeighborTable(1)) != 0 {
		t.Fatal("neighbor tables not purged after timeout")
	}
}

func TestLinkCreationRematches(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.New(2) // no links yet
	net := NewNetwork[core.Pointer](core.NewSMM(), g, nullStates(2), DefaultParams(), rng)
	res := net.Run(30, 5)
	if !res.Stable || len(core.MatchingOf(net.Config())) != 0 {
		t.Fatalf("isolated pair: %v", res)
	}
	net.AddLink(0, 1)
	res = net.Run(net.Now()+60, 5)
	if !res.Stable {
		t.Fatalf("after link creation: %v", res)
	}
	if len(core.MatchingOf(net.Config())) != 1 {
		t.Fatalf("pair did not match after link creation: %v", net.Config().States)
	}
}

func TestMobilityRestabilization(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(12, 0.3, rng)
	net := NewNetwork[core.Pointer](core.NewSMM(), g, randomPointerStates(g, 1), DefaultParams(), rng)
	res := net.Run(float64(30*g.N()), 5)
	if !res.Stable {
		t.Fatalf("initial: %v", res)
	}
	// Apply a batch of connectivity-preserving changes and re-run.
	for i := 0; i < 3; i++ {
		es := g.Edges()
		e := es[rng.Intn(len(es))]
		if !graph.IsCutEdge(g, e.U, e.V) {
			net.RemoveLink(e.U, e.V)
		}
	}
	res = net.Run(net.Now()+float64(50*g.N()), 8)
	if !res.Stable {
		t.Fatalf("after churn: %v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatal(err)
	}
}

// foldProto is an order-sensitive probe for neighbor-expiry repairs:
// each lost neighbor folds into the state as s*31 + lost + 1, so the
// final state encodes the exact order repairs were applied in. The
// protocol itself never moves.
type foldProto struct{}

func (foldProto) Name() string { return "fold" }

func (foldProto) Random(graph.NodeID, []graph.NodeID, *rand.Rand) int { return 0 }

func (foldProto) Move(v core.View[int]) (int, bool) { return v.Self, false }

func (foldProto) OnNeighborLost(_ graph.NodeID, s int, lost graph.NodeID) int {
	return s*31 + int(lost) + 1
}

// TestNeighborExpiryRepairOrderDeterministic pins the repair order when
// several neighbors expire in the same beacon round: repairs must chain
// in ascending neighbor-ID order, not in the neighbor map's iteration
// order. A silent regression here would make the post-expiry state
// depend on map iteration — byte-level nondeterminism the whole suite
// forbids.
func TestNeighborExpiryRepairOrderDeterministic(t *testing.T) {
	const n = 7 // star: center 0, leaves 1..6
	want := 0
	for j := 1; j < n; j++ {
		want = want*31 + j + 1
	}
	prm := DefaultParams()
	prm.Jitter = 0
	prm.Synchronized = true // all leaves beacon in lockstep, so they all expire in one call
	for seed := int64(0); seed < 10; seed++ {
		g := graph.Star(n)
		net := NewNetwork[int](foldProto{}, g, make([]int, n), prm, rand.New(rand.NewSource(seed)))
		if res := net.Run(30, 5); !res.Stable {
			t.Fatalf("seed %d: discovery did not settle: %v", seed, res)
		}
		if got := len(net.NeighborTable(0)); got != n-1 {
			t.Fatalf("seed %d: center discovered %d of %d leaves", seed, got, n-1)
		}
		for j := 1; j < n; j++ {
			net.RemoveLink(0, graph.NodeID(j))
		}
		net.Run(net.Now()+20*prm.TB, 5)
		if got := net.Config().States[0]; got != want {
			t.Fatalf("seed %d: center folded expiries to %d, want %d (ascending order)", seed, got, want)
		}
		// Each leaf lost only the center: one repair, 0*31+0+1.
		for j := 1; j < n; j++ {
			if got := net.Config().States[j]; got != 1 {
				t.Fatalf("seed %d: leaf %d state %d after losing center, want 1", seed, j, got)
			}
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{Time: 8.13, Rounds: 8.1, Moves: 23, Stable: true}
	if r.String() != "stable at t=8.13 (8.1 beacon rounds, 23 moves)" {
		t.Fatalf("%q", r.String())
	}
	// The timeout branch must also report Rounds — the paper's unit of
	// convergence — not just wall-clock time and moves.
	r.Stable = false
	if r.String() != "NOT stable by t=8.13 (8.1 beacon rounds, 23 moves)" {
		t.Fatalf("%q", r.String())
	}
}

func TestRunDeadlineCounterexampleSynchronized(t *testing.T) {
	// With synchronized beacon timers the beacon model coincides with the
	// lockstep model, so the counterexample oscillates and Run must hit
	// the deadline rather than "stabilize".
	rng := rand.New(rand.NewSource(10))
	g := graph.Cycle(4)
	prm := DefaultParams()
	prm.Jitter = 0
	prm.Synchronized = true
	net := NewNetwork[core.Pointer](core.NewSMMArbitrary(), g, nullStates(4), prm, rng)
	res := net.Run(50, 25)
	if res.Stable {
		t.Fatalf("counterexample stabilized under synchronized beacons: %v", res)
	}
}

func TestCounterexampleBrokenByAsynchrony(t *testing.T) {
	// With random beacon phases the four moves serialize, and the
	// otherwise-divergent arbitrary-proposal rule converges — asynchrony
	// acts as a daemon refinement. (The paper's counterexample concerns
	// the synchronous model; this documents the boundary.)
	rng := rand.New(rand.NewSource(11))
	g := graph.Cycle(4)
	net := NewNetwork[core.Pointer](core.NewSMMArbitrary(), g, nullStates(4), DefaultParams(), rng)
	res := net.Run(200, 10)
	if !res.Stable {
		t.Fatalf("asynchronous beacons did not break the oscillation: %v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatal(err)
	}
}
