package beacon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/verify"
)

// Failure injection: partition the network into two halves, let each
// half stabilize independently, then heal the partition and verify the
// merged network re-stabilizes. Exercises timeout-driven table purging
// on many links at once plus rediscovery on heal.
func TestPartitionAndHeal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two K4s joined by two links: removing the joins partitions cleanly.
	g := graph.Barbell(4, 0)
	g.AddEdge(0, 4) // a second cross edge so the halves interact more
	states := make([]core.Pointer, g.N())
	for i := range states {
		states[i] = core.Null
	}
	net := NewNetwork[core.Pointer](core.NewSMM(), g, states, DefaultParams(), rng)
	if res := net.Run(500, 6); !res.Stable {
		t.Fatalf("initial: %v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatal(err)
	}

	// Partition: cut every cross edge.
	net.RemoveLink(3, 4)
	net.RemoveLink(0, 4)
	if res := net.Run(net.Now()+800, 10); !res.Stable {
		t.Fatalf("during partition: %v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatalf("partitioned halves invalid: %v", err)
	}

	// Heal.
	net.AddLink(3, 4)
	net.AddLink(0, 4)
	if res := net.Run(net.Now()+800, 10); !res.Stable {
		t.Fatalf("after heal: %v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatalf("healed network invalid: %v", err)
	}
}

// Property: SMM under randomized link-layer parameters (jitter, delay,
// delay jitter, loss, timeout) always stabilizes to a maximal matching
// within a generous deadline. Result.Stable only reports quiescence, and
// under loss a quiet window can elapse during a discovery lull (every
// beacon on a link lost for several periods), so a single Run is not
// conclusive: keep processing events until the configuration is actually
// maximal or the deadline passes. quick.Check draws from a fixed seed so
// the sampled parameter set is identical on every CI run.
func TestQuickBeaconParamsRobust(t *testing.T) {
	f := func(seed int64, jit, dly, dlyJit, loss uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(10, 0.3, rng)
		prm := Params{
			TB:            1,
			Jitter:        float64(jit%50) / 100,      // 0..0.49
			Delay:         0.02 + float64(dly%20)/100, // 0.02..0.21
			DelayJitter:   float64(dlyJit%80) / 100,   // 0..0.79
			Loss:          float64(loss%25) / 100,     // 0..0.24
			TimeoutFactor: 4,
		}
		states := make([]core.Pointer, g.N())
		srng := rand.New(rand.NewSource(seed))
		for v := range states {
			states[v] = core.NewSMM().Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), srng)
		}
		net := NewNetwork[core.Pointer](core.NewSMM(), g, states, prm, rng)
		const deadline = 3000
		for {
			res := net.Run(deadline, 10)
			if verify.IsMaximalMatching(g, core.MatchingOf(net.Config())) == nil {
				return true
			}
			if !res.Stable || net.Now() >= deadline {
				return false
			}
			// Quiescence during a transient lull — resume the event loop.
		}
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(20260806))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBeaconLossyDiscoveryLull pins the counterexample quick.Check once
// found in CI: with 17% loss, every beacon from node 2 to node 5 is lost
// for the first ~19 periods, so 5 never discovers 2; 2 proposes to 5 and
// goes quiet waiting, the 10-period quiet window elapses, and Run reports
// quiescence while edge {2,5} has no matched endpoint. Resuming the run
// must deliver the discovery beacon and converge to a maximal matching.
func TestBeaconLossyDiscoveryLull(t *testing.T) {
	seed := int64(-3925038436534476815)
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(10, 0.3, rng)
	prm := Params{
		TB:            1,
		Jitter:        0,
		Delay:         0.05,
		DelayJitter:   0.6,
		Loss:          0.17,
		TimeoutFactor: 4,
	}
	states := make([]core.Pointer, g.N())
	srng := rand.New(rand.NewSource(seed))
	for v := range states {
		states[v] = core.NewSMM().Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), srng)
	}
	net := NewNetwork[core.Pointer](core.NewSMM(), g, states, prm, rng)

	res := net.Run(3000, 10)
	if !res.Stable {
		t.Fatalf("first run hit the deadline: %v", res)
	}
	if verify.IsMaximalMatching(g, core.MatchingOf(net.Config())) != nil {
		// The lull reproduced (the interesting path): resuming must fix it.
		res = net.Run(3000, 10)
		if !res.Stable {
			t.Fatalf("resumed run hit the deadline: %v", res)
		}
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatalf("not maximal after resume: %v", err)
	}
}
