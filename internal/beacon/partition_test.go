package beacon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/verify"
)

// Failure injection: partition the network into two halves, let each
// half stabilize independently, then heal the partition and verify the
// merged network re-stabilizes. Exercises timeout-driven table purging
// on many links at once plus rediscovery on heal.
func TestPartitionAndHeal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two K4s joined by two links: removing the joins partitions cleanly.
	g := graph.Barbell(4, 0)
	g.AddEdge(0, 4) // a second cross edge so the halves interact more
	states := make([]core.Pointer, g.N())
	for i := range states {
		states[i] = core.Null
	}
	net := NewNetwork[core.Pointer](core.NewSMM(), g, states, DefaultParams(), rng)
	if res := net.Run(500, 6); !res.Stable {
		t.Fatalf("initial: %v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatal(err)
	}

	// Partition: cut every cross edge.
	net.RemoveLink(3, 4)
	net.RemoveLink(0, 4)
	if res := net.Run(net.Now()+800, 10); !res.Stable {
		t.Fatalf("during partition: %v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatalf("partitioned halves invalid: %v", err)
	}

	// Heal.
	net.AddLink(3, 4)
	net.AddLink(0, 4)
	if res := net.Run(net.Now()+800, 10); !res.Stable {
		t.Fatalf("after heal: %v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
		t.Fatalf("healed network invalid: %v", err)
	}
}

// Property: SMM under randomized link-layer parameters (jitter, delay,
// delay jitter, loss, timeout) always stabilizes to a maximal matching
// within a generous deadline.
func TestQuickBeaconParamsRobust(t *testing.T) {
	f := func(seed int64, jit, dly, dlyJit, loss uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(10, 0.3, rng)
		prm := Params{
			TB:            1,
			Jitter:        float64(jit%50) / 100,      // 0..0.49
			Delay:         0.02 + float64(dly%20)/100, // 0.02..0.21
			DelayJitter:   float64(dlyJit%80) / 100,   // 0..0.79
			Loss:          float64(loss%25) / 100,     // 0..0.24
			TimeoutFactor: 4,
		}
		states := make([]core.Pointer, g.N())
		srng := rand.New(rand.NewSource(seed))
		for v := range states {
			states[v] = core.NewSMM().Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), srng)
		}
		net := NewNetwork[core.Pointer](core.NewSMM(), g, states, prm, rng)
		res := net.Run(3000, 10)
		return res.Stable &&
			verify.IsMaximalMatching(g, core.MatchingOf(net.Config())) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
