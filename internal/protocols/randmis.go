package protocols

import (
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// RandMIS is a randomized self-stabilizing maximal independent set
// protocol for *anonymous* networks, after Shukla, Rosenkrantz and Ravi
// (the paper's reference [12]): symmetry between identical neighbors is
// broken by coin flips instead of IDs.
//
// Rules at node i:
//
//	enter: x(i)=0 ∧ no neighbor has x=1          ⇒ with probability ½, x(i)=1
//	leave: x(i)=1 ∧ some neighbor has x=1        ⇒ with probability ½, x(i)=0
//
// Both rules randomize so that two adjacent nodes firing simultaneously
// eventually diverge. A node is reported active whenever a rule's guard
// holds, even in rounds where the coin declines the move, so executors
// keep running until the configuration is genuinely stable; expected
// convergence is O(log n) rounds on bounded-degree graphs and O(n) in
// general.
//
// The protocol exists as an ablation against SMI: it needs no IDs but
// trades the deterministic n-round bound for a probabilistic one (E10).
type RandMIS struct {
	rngs []*rand.Rand
}

// NewRandMIS returns the protocol for a network of n nodes with per-node
// generators derived from seed (race-free under concurrent executors).
func NewRandMIS(n int, seed int64) *RandMIS {
	p := &RandMIS{rngs: make([]*rand.Rand, n)}
	for i := range p.rngs {
		p.rngs[i] = rand.New(rand.NewSource(seed ^ int64(i)*0x5DEECE66D))
	}
	return p
}

// Name implements core.Protocol.
func (*RandMIS) Name() string { return "RandMIS" }

// Random implements core.Protocol.
func (*RandMIS) Random(_ graph.NodeID, _ []graph.NodeID, rng *rand.Rand) bool {
	return rng.Intn(2) == 1
}

// Move implements core.Protocol.
func (p *RandMIS) Move(v core.View[bool]) (bool, bool) {
	neighborIn := false
	for _, j := range v.Nbrs {
		if v.Peer(j) {
			neighborIn = true
			break
		}
	}
	switch {
	case !v.Self && !neighborIn:
		if p.rngs[v.ID].Intn(2) == 0 {
			return true, true
		}
		return false, true // enabled, coin declined
	case v.Self && neighborIn:
		if p.rngs[v.ID].Intn(2) == 0 {
			return false, true
		}
		return true, true // enabled, coin declined
	}
	return v.Self, false
}
