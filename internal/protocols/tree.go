package protocols

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// TreeState is the per-node state of the spanning-tree protocol: the
// root the node currently believes in, its hop distance from that root,
// and the parent pointer toward it (Null at the root).
type TreeState struct {
	Root   graph.NodeID
	Dist   int32
	Parent core.Pointer
}

// String renders e.g. "(root=7 d=2 parent=3)".
func (s TreeState) String() string {
	return fmt.Sprintf("(root=%d d=%d parent=%s)", s.Root, s.Dist, s.Parent)
}

// SpanningTree is a synchronous self-stabilizing BFS spanning-tree
// protocol — the multicast/broadcast tree maintenance the paper's
// introduction motivates ("a minimal spanning tree must be maintained to
// minimize latency and bandwidth requirements of multicast/broadcast
// messages") and the problem of its companion references [13, 14].
//
// Every node tracks (root, dist, parent) and repeatedly adopts the best
// offer in its neighborhood: the largest visible root, at the smallest
// distance, through the smallest parent ID. A node that sees no better
// root than itself becomes a root. Corrupted states that advertise
// nonexistent ("fake") roots are flushed by the distance bound: a fake
// root has no node at distance 0, so the minimum advertised distance for
// it rises every round until it exceeds MaxN and the claim is dropped.
// The protocol therefore stabilizes from arbitrary states in O(MaxN)
// rounds to the BFS tree rooted at the component's maximum ID, with
// exact hop distances.
type SpanningTree struct {
	// MaxN is an upper bound on the network size, used to flush fake
	// root claims. The paper's system model fixes the node set, so the
	// bound is deployment knowledge. Must be at least the actual n.
	MaxN int32
}

// NewSpanningTree returns the protocol for networks of at most maxN
// nodes.
func NewSpanningTree(maxN int) *SpanningTree {
	if maxN <= 0 {
		panic(fmt.Sprintf("protocols: NewSpanningTree(%d): need maxN > 0", maxN))
	}
	return &SpanningTree{MaxN: int32(maxN)}
}

// Name implements core.Protocol.
func (*SpanningTree) Name() string { return "SpanningTree" }

// Random implements core.Protocol: arbitrary states include fake roots
// beyond any real ID and inconsistent distances — the hard part of the
// state space.
func (p *SpanningTree) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) TreeState {
	s := TreeState{
		Root: graph.NodeID(rng.Intn(int(p.MaxN) * 2)), // may be nonexistent
		Dist: int32(rng.Intn(int(p.MaxN) + 1)),
		Parent: func() core.Pointer {
			if len(nbrs) == 0 || rng.Intn(2) == 0 {
				return core.Null
			}
			return core.PointAt(nbrs[rng.Intn(len(nbrs))])
		}(),
	}
	return s
}

// Move implements core.Protocol: adopt the best consistent offer.
func (p *SpanningTree) Move(v core.View[TreeState]) (TreeState, bool) {
	desired := TreeState{Root: v.ID, Dist: 0, Parent: core.Null}
	for _, j := range v.Nbrs {
		sj := v.Peer(j)
		if sj.Dist < 0 || sj.Dist >= p.MaxN {
			continue // inconsistent or flushing claim: not a valid offer
		}
		offer := TreeState{Root: sj.Root, Dist: sj.Dist + 1, Parent: core.PointAt(j)}
		if better(offer, desired) {
			desired = offer
		}
	}
	if desired != v.Self {
		return desired, true
	}
	return v.Self, false
}

// better orders offers: larger root first, then smaller distance, then
// smaller parent ID (a deterministic total order, so the stable tree is
// unique).
func better(a, b TreeState) bool {
	if a.Root != b.Root {
		return a.Root > b.Root
	}
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	// Both Null is impossible here (offers always carry a parent); a
	// Null parent denotes self-rooting, preferred only via Root order.
	switch {
	case a.Parent.IsNull():
		return false
	case b.Parent.IsNull():
		return true
	default:
		return a.Parent.Node() < b.Parent.Node()
	}
}

// OnNeighborLost implements core.NeighborAware: losing the parent resets
// the node to self-rooting, triggering re-attachment on the next round.
func (*SpanningTree) OnNeighborLost(self graph.NodeID, s TreeState, lost graph.NodeID) TreeState {
	if !s.Parent.IsNull() && s.Parent.Node() == lost {
		return TreeState{Root: self, Dist: 0, Parent: core.Null}
	}
	return s
}

// VerifyTree checks that states form the unique stable configuration on
// a *connected* graph: every node names the maximum ID as root, Dist is
// the exact BFS hop distance, and parent pointers descend toward the
// root along edges of g.
func VerifyTree(g *graph.Graph, states []TreeState) error {
	n := g.N()
	if len(states) != n {
		return fmt.Errorf("protocols: %d states for %d nodes", len(states), n)
	}
	if n == 0 {
		return nil
	}
	root := graph.NodeID(n - 1)
	dist := graph.BFSDistances(g, root)
	for v, s := range states {
		if s.Root != root {
			return fmt.Errorf("protocols: node %d has root %d, want %d", v, s.Root, root)
		}
		if int(s.Dist) != dist[v] {
			return fmt.Errorf("protocols: node %d has dist %d, want %d", v, s.Dist, dist[v])
		}
		if graph.NodeID(v) == root {
			if !s.Parent.IsNull() {
				return fmt.Errorf("protocols: root %d has parent %s", v, s.Parent)
			}
			continue
		}
		if s.Parent.IsNull() {
			return fmt.Errorf("protocols: non-root %d has no parent", v)
		}
		parent := s.Parent.Node()
		if !g.HasEdge(graph.NodeID(v), parent) {
			return fmt.Errorf("protocols: node %d's parent %d is not a neighbor", v, parent)
		}
		if int(states[parent].Dist) != dist[v]-1 {
			return fmt.Errorf("protocols: node %d's parent %d at dist %d, want %d",
				v, parent, states[parent].Dist, dist[v]-1)
		}
	}
	return nil
}

// LeaderOf returns the root the (stable) tree states agree on, and
// whether they in fact all agree — the spanning-tree protocol doubles as
// self-stabilizing leader election (the elected leader is the maximum
// ID, the paper's implicit convention for ID-symmetric tie-breaking).
func LeaderOf(states []TreeState) (graph.NodeID, bool) {
	if len(states) == 0 {
		return -1, false
	}
	leader := states[0].Root
	for _, s := range states[1:] {
		if s.Root != leader {
			return -1, false
		}
	}
	return leader, true
}

// TreeEdges extracts the parent edges, one per non-root node.
func TreeEdges(states []TreeState) []graph.Edge {
	var edges []graph.Edge
	for v, s := range states {
		if !s.Parent.IsNull() {
			edges = append(edges, graph.NewEdge(graph.NodeID(v), s.Parent.Node()))
		}
	}
	return edges
}
