package protocols

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// LayerState is the state of a hierarchically composed protocol: the
// base layer's state plus the layer built on top of it.
type LayerState[SA, SB comparable] struct {
	A SA
	B SB
}

// Layer is the upper half of a collateral composition: a rule system
// that reads its own state AND the base layer's states (its own node's
// and its neighbors') but never writes the base layer.
type Layer[SA, SB comparable] interface {
	// Name identifies the layer.
	Name() string
	// Random draws an arbitrary initial layer state.
	Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) SB
	// Move evaluates the layer's rules over the composed view.
	Move(v core.View[LayerState[SA, SB]]) (SB, bool)
}

// Layered is the classical collateral composition of self-stabilizing
// protocols: the base protocol runs unmodified, the layer treats the
// base's outputs as inputs, and both move in the same rounds. Once the
// base stabilizes the layer sees constant inputs and stabilizes by its
// own convergence; composed stabilization time is at most the sum. The
// canonical instance here is SMI + ClusterAssign: clusterhead election
// with per-node head assignment, the ad hoc network organization the
// paper's introduction motivates.
type Layered[SA, SB comparable] struct {
	base  core.Protocol[SA]
	layer Layer[SA, SB]
}

// Compose builds the collateral composition of base and layer.
func Compose[SA, SB comparable](base core.Protocol[SA], layer Layer[SA, SB]) *Layered[SA, SB] {
	return &Layered[SA, SB]{base: base, layer: layer}
}

// Name implements core.Protocol.
func (l *Layered[SA, SB]) Name() string {
	return fmt.Sprintf("%s∘%s", l.layer.Name(), l.base.Name())
}

// Random implements core.Protocol.
func (l *Layered[SA, SB]) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) LayerState[SA, SB] {
	return LayerState[SA, SB]{
		A: l.base.Random(id, nbrs, rng),
		B: l.layer.Random(id, nbrs, rng),
	}
}

// Move implements core.Protocol: both layers evaluate against the same
// round-t snapshot; the composed node is active if either layer is.
func (l *Layered[SA, SB]) Move(v core.View[LayerState[SA, SB]]) (LayerState[SA, SB], bool) {
	baseView := core.View[SA]{
		ID:   v.ID,
		Self: v.Self.A,
		Nbrs: v.Nbrs,
		Peer: func(j graph.NodeID) SA { return v.Peer(j).A },
	}
	aNext, aActive := l.base.Move(baseView)
	bNext, bActive := l.layer.Move(v)
	return LayerState[SA, SB]{A: aNext, B: bNext}, aActive || bActive
}

// OnNeighborLost implements core.NeighborAware by repairing both layers.
func (l *Layered[SA, SB]) OnNeighborLost(self graph.NodeID, s LayerState[SA, SB], lost graph.NodeID) LayerState[SA, SB] {
	s.A = core.RepairState(l.base, self, s.A, lost)
	if na, ok := l.layer.(interface {
		OnNeighborLost(graph.NodeID, SB, graph.NodeID) SB
	}); ok {
		s.B = na.OnNeighborLost(self, s.B, lost)
	}
	return s
}

// ClusterAssign is the layer that turns an MIS into a clustering: heads
// (base x = true) hold a Null pointer; every other node points at its
// maximum-ID head neighbor. Because an MIS dominates the graph, every
// non-head has a head neighbor once the base stabilizes, so the stable
// assignment is total.
type ClusterAssign struct{}

// NewClusterAssign returns the layer.
func NewClusterAssign() *ClusterAssign { return &ClusterAssign{} }

// Name implements Layer.
func (*ClusterAssign) Name() string { return "ClusterAssign" }

// Random implements Layer: Null or any neighbor.
func (*ClusterAssign) Random(_ graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) core.Pointer {
	if len(nbrs) == 0 || rng.Intn(2) == 0 {
		return core.Null
	}
	return core.PointAt(nbrs[rng.Intn(len(nbrs))])
}

// Move implements Layer: converge the pointer to the desired assignment.
func (*ClusterAssign) Move(v core.View[LayerState[bool, core.Pointer]]) (core.Pointer, bool) {
	desired := core.Null
	if !v.Self.A {
		for i := len(v.Nbrs) - 1; i >= 0; i-- { // descending: first head is max
			if v.Peer(v.Nbrs[i]).A {
				desired = core.PointAt(v.Nbrs[i])
				break
			}
		}
	}
	if desired != v.Self.B {
		return desired, true
	}
	return v.Self.B, false
}

// OnNeighborLost nulls an assignment pointing at a departed neighbor.
func (*ClusterAssign) OnNeighborLost(_ graph.NodeID, p core.Pointer, lost graph.NodeID) core.Pointer {
	if !p.IsNull() && p.Node() == lost {
		return core.Null
	}
	return p
}

// NewClustering composes SMI with ClusterAssign: a one-call
// self-stabilizing clusterhead election plus head assignment.
func NewClustering() *Layered[bool, core.Pointer] {
	return Compose[bool, core.Pointer](core.NewSMI(), NewClusterAssign())
}

// VerifyClustering checks a stable clustering: the head set is a maximal
// independent set obligation is the base layer's (verify separately);
// here we check the assignment itself — heads have no pointer, every
// non-head points at a neighboring head.
func VerifyClustering(g *graph.Graph, states []LayerState[bool, core.Pointer]) error {
	if len(states) != g.N() {
		return fmt.Errorf("protocols: %d states for %d nodes", len(states), g.N())
	}
	for v, s := range states {
		id := graph.NodeID(v)
		if s.A {
			if !s.B.IsNull() {
				return fmt.Errorf("protocols: head %d has assignment %s", v, s.B)
			}
			continue
		}
		if s.B.IsNull() {
			return fmt.Errorf("protocols: non-head %d unassigned", v)
		}
		h := s.B.Node()
		if !g.HasEdge(id, h) {
			return fmt.Errorf("protocols: node %d assigned to non-neighbor %d", v, h)
		}
		if !states[h].A {
			return fmt.Errorf("protocols: node %d assigned to non-head %d", v, h)
		}
	}
	return nil
}
