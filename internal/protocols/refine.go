package protocols

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// RefState is the state published by a refined protocol: the wrapped
// protocol's state plus the local-mutual-exclusion handshake fields that
// ride along in each beacon.
type RefState[S comparable] struct {
	// Inner is the wrapped protocol's state.
	Inner S
	// Want announces that the node was privileged (in the wrapped
	// protocol) when it last beaconed.
	Want bool
	// Prio is the random priority drawn for the current arbitration.
	Prio uint32
}

// Refined converts a central-daemon protocol into the synchronous beacon
// model using randomized local mutual exclusion — the standard
// daemon-refinement construction behind the techniques the paper cites
// ([12], [16]). Each round a privileged node publishes a fresh random
// priority; a node executes its wrapped move only if it announced Want in
// its previous beacon and its announced priority beats every announcing
// neighbor's (ties broken by ID). Neighbors therefore never move in the
// same round, and since moves of non-adjacent nodes commute, every
// synchronous execution is equivalent to a serial central-daemon
// execution — so any protocol correct under a central daemon remains
// correct, at the cost of extra rounds. Quantifying that cost against the
// purpose-built SMM is experiment E7.
type Refined[S comparable] struct {
	inner core.Protocol[S]
	rngs  []*rand.Rand // one generator per node, for race-free concurrent executors
}

// Refine wraps inner for a network of n nodes. Each node gets its own
// deterministic generator derived from seed, so concurrent executors can
// call Move for distinct nodes from distinct goroutines.
func Refine[S comparable](inner core.Protocol[S], n int, seed int64) *Refined[S] {
	r := &Refined[S]{inner: inner, rngs: make([]*rand.Rand, n)}
	for i := range r.rngs {
		r.rngs[i] = rand.New(rand.NewSource(seed + int64(i)*0x9E3779B9))
	}
	return r
}

// Name implements core.Protocol.
func (r *Refined[S]) Name() string { return fmt.Sprintf("Refined(%s)", r.inner.Name()) }

// Random implements core.Protocol: arbitrary inner state and arbitrary
// handshake fields (self-stabilization must cope with any of them).
func (r *Refined[S]) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) RefState[S] {
	return RefState[S]{
		Inner: r.inner.Random(id, nbrs, rng),
		Want:  rng.Intn(2) == 1,
		Prio:  rng.Uint32(),
	}
}

// Move implements core.Protocol. The active flag reports whether the node
// is privileged in the wrapped protocol, so executors keep scheduling
// rounds until the wrapped protocol is stable even while individual nodes
// lose arbitration.
func (r *Refined[S]) Move(v core.View[RefState[S]]) (RefState[S], bool) {
	innerView := core.View[S]{
		ID:   v.ID,
		Self: v.Self.Inner,
		Nbrs: v.Nbrs,
		Peer: func(j graph.NodeID) S { return v.Peer(j).Inner },
	}
	innerNext, privileged := r.inner.Move(innerView)
	active := privileged
	next := v.Self
	if privileged && v.Self.Want && r.winsArbitration(v) {
		next.Inner = innerNext
		// Re-evaluate the guard after our own move: the result feeds the
		// next beacon's Want announcement but not the active flag, which
		// must report the pre-move privilege (the round did real work and
		// its effects may privilege neighbors next round).
		innerView.Self = next.Inner
		_, privileged = r.inner.Move(innerView)
	}
	next.Want = privileged
	if privileged {
		next.Prio = r.rngs[v.ID].Uint32()
	}
	return next, active
}

// OnNeighborLost implements core.NeighborAware by delegating to the
// wrapped protocol's repair (if any).
func (r *Refined[S]) OnNeighborLost(self graph.NodeID, s RefState[S], lost graph.NodeID) RefState[S] {
	s.Inner = core.RepairState[S](r.inner, self, s.Inner, lost)
	return s
}

// winsArbitration reports whether the node's announced priority beats all
// announcing neighbors, with ties broken toward the larger ID.
func (r *Refined[S]) winsArbitration(v core.View[RefState[S]]) bool {
	for _, j := range v.Nbrs {
		pj := v.Peer(j)
		if !pj.Want {
			continue
		}
		if pj.Prio > v.Self.Prio || (pj.Prio == v.Self.Prio && j > v.ID) {
			return false
		}
	}
	return true
}
