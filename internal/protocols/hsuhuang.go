// Package protocols contains the baseline and extension protocols the
// experiments compare the paper's SMM/SMI against: the Hsu–Huang
// central-daemon maximal matching algorithm, a daemon-refinement
// synchronizer that converts central-daemon protocols to the synchronous
// beacon model (the conversion Section 3 of the paper calls "not as
// fast"), a synchronous self-stabilizing Grundy coloring in the style of
// the authors' earlier work, and a randomized anonymous MIS protocol.
package protocols

import (
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// HsuHuang is the self-stabilizing maximal matching algorithm of Hsu and
// Huang (Information Processing Letters 43:77–81, 1992), the paper's
// reference [15]. It uses the same pointer variable and the same three
// rules as SMM except that rule R2 may propose to an *arbitrary*
// null-pointer neighbor — correct under a central daemon, where only one
// node moves at a time, but not under the synchronous model (the paper's
// four-cycle counterexample). Run it under daemon.Central, or convert it
// with Refine for a synchronous execution.
//
// The arbitrary choice is realized as the cyclic successor of the
// proposer's own ID, the most adversarial choice for the synchronous
// model; under a central daemon every choice converges.
type HsuHuang struct{}

// NewHsuHuang returns the baseline protocol.
func NewHsuHuang() *HsuHuang { return &HsuHuang{} }

// Name implements core.Protocol.
func (*HsuHuang) Name() string { return "HsuHuang" }

// Random implements core.Protocol: Null or any neighbor.
func (*HsuHuang) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) core.Pointer {
	return (&core.SMM{}).Random(id, nbrs, rng)
}

// Move implements core.Protocol with the Hsu–Huang rules.
func (*HsuHuang) Move(v core.View[core.Pointer]) (core.Pointer, bool) {
	return (&core.SMM{Proposal: core.ProposeSuccessor}).Move(v)
}

// OnNeighborLost implements core.NeighborAware like SMM: null a pointer
// at a departed neighbor.
func (*HsuHuang) OnNeighborLost(self graph.NodeID, p core.Pointer, lost graph.NodeID) core.Pointer {
	return (&core.SMM{}).OnNeighborLost(self, p, lost)
}
