package protocols

import (
	"math/rand"
	"testing"
	"testing/quick"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
	"selfstab/internal/sim"
)

func runTree(g *graph.Graph, seed int64, limit int) (*sim.Lockstep[TreeState], sim.Result) {
	p := NewSpanningTree(g.N())
	cfg := core.NewConfig[TreeState](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[TreeState](p, cfg)
	return l, l.Run(limit)
}

func TestSpanningTreeConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gens := []*graph.Graph{
		graph.Path(12),
		graph.Cycle(11),
		graph.Complete(8),
		graph.Star(9),
		graph.Grid(4, 4),
		graph.RandomTree(15, rng),
		graph.RandomConnected(20, 0.15, rng),
	}
	for gi, g := range gens {
		for trial := 0; trial < 10; trial++ {
			l, res := runTree(g, int64(trial), 5*g.N()+10)
			if !res.Stable {
				t.Fatalf("gen %d trial %d: %v", gi, trial, res)
			}
			if err := VerifyTree(g, l.Config().States); err != nil {
				t.Fatalf("gen %d trial %d: %v", gi, trial, err)
			}
		}
	}
}

func TestSpanningTreeFlushesFakeRoots(t *testing.T) {
	// Every node starts claiming a nonexistent root at distance 1 — the
	// classical hard case for self-stabilizing BFS.
	g := graph.Cycle(10)
	p := NewSpanningTree(g.N())
	cfg := core.NewConfig[TreeState](g)
	for v := range cfg.States {
		cfg.States[v] = TreeState{Root: 9999, Dist: 1, Parent: core.PointAt(g.Neighbors(graph.NodeID(v))[0])}
	}
	l := sim.NewLockstep[TreeState](p, cfg)
	res := l.Run(5*g.N() + 10)
	if !res.Stable {
		t.Fatalf("fake roots never flushed: %v", res)
	}
	if err := VerifyTree(g, cfg.States); err != nil {
		t.Fatal(err)
	}
}

func TestSpanningTreeSingleNode(t *testing.T) {
	g := graph.New(1)
	l, res := runTree(g, 1, 5)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	s := l.Config().States[0]
	if s.Root != 0 || s.Dist != 0 || !s.Parent.IsNull() {
		t.Fatalf("state = %v", s)
	}
}

func TestSpanningTreeDistancesExact(t *testing.T) {
	// On a path relabeled so the max ID sits at one end, distances must
	// equal positions.
	n := 9
	perm := make([]graph.NodeID, n)
	for i := range perm {
		perm[i] = graph.NodeID(i) // identity: max ID n-1 at the far end
	}
	g := graph.Path(n).Relabel(perm)
	l, res := runTree(g, 3, 5*n+10)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	for v, s := range l.Config().States {
		if int(s.Dist) != n-1-v {
			t.Fatalf("node %d dist %d, want %d", v, s.Dist, n-1-v)
		}
	}
}

func TestSpanningTreeEdgesFormSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(18, 0.2, rng)
	l, res := runTree(g, 7, 5*g.N()+10)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	edges := TreeEdges(l.Config().States)
	if len(edges) != g.N()-1 {
		t.Fatalf("%d tree edges for %d nodes", len(edges), g.N())
	}
	// The parent edges must form a connected spanning subgraph.
	tree := graph.New(g.N())
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("tree edge %v not in graph", e)
		}
		tree.AddEdge(e.U, e.V)
	}
	if !graph.IsConnected(tree) {
		t.Fatal("parent edges do not span")
	}
}

func TestSpanningTreeRestabilizesAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(16, 0.2, rng)
	p := NewSpanningTree(g.N())
	cfg := core.NewConfig[TreeState](g)
	cfg.Randomize(p, rng)
	l := sim.NewLockstep[TreeState](p, cfg)
	if res := l.Run(5*g.N() + 10); !res.Stable {
		t.Fatalf("initial: %v", res)
	}
	for epoch := 0; epoch < 5; epoch++ {
		events := mobility.NewChurn(g, rng).Apply(2)
		for _, ev := range events {
			if !ev.Add {
				for _, v := range [2]graph.NodeID{ev.Edge.U, ev.Edge.V} {
					other := ev.Edge.U ^ ev.Edge.V ^ v
					cfg.States[v] = p.OnNeighborLost(v, cfg.States[v], other)
				}
			}
		}
		if res := l.Run(5*g.N() + 10); !res.Stable {
			t.Fatalf("epoch %d: %v", epoch, res)
		}
		if err := VerifyTree(g, cfg.States); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
}

func TestSpanningTreeOnNeighborLost(t *testing.T) {
	p := NewSpanningTree(8)
	s := TreeState{Root: 7, Dist: 3, Parent: core.PointAt(2)}
	repaired := p.OnNeighborLost(5, s, 2)
	if repaired.Root != 5 || repaired.Dist != 0 || !repaired.Parent.IsNull() {
		t.Fatalf("repaired = %v", repaired)
	}
	// Losing a non-parent neighbor changes nothing.
	if got := p.OnNeighborLost(5, s, 3); got != s {
		t.Fatalf("got %v", got)
	}
}

func TestVerifyTreeRejectsBadStates(t *testing.T) {
	g := graph.Path(3) // root is node 2
	good := []TreeState{
		{Root: 2, Dist: 2, Parent: core.PointAt(1)},
		{Root: 2, Dist: 1, Parent: core.PointAt(2)},
		{Root: 2, Dist: 0, Parent: core.Null},
	}
	if err := VerifyTree(g, good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]TreeState)
	}{
		{"wrong root", func(s []TreeState) { s[0].Root = 1 }},
		{"wrong dist", func(s []TreeState) { s[0].Dist = 1 }},
		{"root with parent", func(s []TreeState) { s[2].Parent = core.PointAt(1) }},
		{"orphan", func(s []TreeState) { s[0].Parent = core.Null }},
		{"parent not neighbor", func(s []TreeState) { s[0].Parent = core.PointAt(2) }},
	}
	for _, c := range cases {
		bad := append([]TreeState(nil), good...)
		c.mutate(bad)
		if VerifyTree(g, bad) == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if VerifyTree(g, good[:2]) == nil {
		t.Error("wrong length accepted")
	}
}

func TestLeaderOf(t *testing.T) {
	g := graph.Cycle(7)
	l, res := runTree(g, 5, 5*g.N()+10)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	leader, ok := LeaderOf(l.Config().States)
	if !ok || leader != graph.NodeID(g.N()-1) {
		t.Fatalf("leader = %d ok=%v, want %d", leader, ok, g.N()-1)
	}
	// Disagreement is reported.
	states := append([]TreeState(nil), l.Config().States...)
	states[0].Root = 0
	if _, ok := LeaderOf(states); ok {
		t.Fatal("disagreeing roots reported as agreement")
	}
	if _, ok := LeaderOf(nil); ok {
		t.Fatal("empty states elected a leader")
	}
}

func TestSpanningTreeName(t *testing.T) {
	if NewSpanningTree(4).Name() != "SpanningTree" {
		t.Fatal("name")
	}
	s := TreeState{Root: 7, Dist: 2, Parent: core.PointAt(3)}
	if s.String() != "(root=7 d=2 parent=3)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestNewSpanningTreeRejectsBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSpanningTree(0)
}

// Property: from any random state (including fake roots) on any random
// connected graph, the protocol stabilizes within 5n+10 rounds to the
// exact BFS tree of the maximum ID.
func TestQuickSpanningTree(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 3 + int(size%20)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, 0.2, rng)
		l, res := runTree(g, seed, 5*n+10)
		return res.Stable && VerifyTree(g, l.Config().States) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
