package protocols

import (
	"math/rand"
	"testing"
	"testing/quick"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
	"selfstab/internal/sim"
	"selfstab/internal/verify"
)

func runClustering(g *graph.Graph, seed int64) (*sim.Lockstep[LayerState[bool, core.Pointer]], sim.Result) {
	p := NewClustering()
	cfg := core.NewConfig[LayerState[bool, core.Pointer]](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[LayerState[bool, core.Pointer]](p, cfg)
	return l, l.Run(g.N() + 4)
}

func headsOf(states []LayerState[bool, core.Pointer]) []graph.NodeID {
	var hs []graph.NodeID
	for v, s := range states {
		if s.A {
			hs = append(hs, graph.NodeID(v))
		}
	}
	return hs
}

func TestClusteringConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gens := []*graph.Graph{
		graph.Path(12),
		graph.Cycle(10),
		graph.Star(8),
		graph.Complete(6),
		graph.RandomConnected(20, 0.2, rng),
		graph.Caterpillar(5, 2),
	}
	for gi, g := range gens {
		for trial := 0; trial < 8; trial++ {
			l, res := runClustering(g, int64(trial))
			if !res.Stable {
				t.Fatalf("gen %d trial %d: %v", gi, trial, res)
			}
			states := l.Config().States
			if err := verify.IsMaximalIndependentSet(g, headsOf(states)); err != nil {
				t.Fatalf("gen %d trial %d: %v", gi, trial, err)
			}
			if err := VerifyClustering(g, states); err != nil {
				t.Fatalf("gen %d trial %d: %v", gi, trial, err)
			}
		}
	}
}

func TestClusteringAssignsMaxHead(t *testing.T) {
	// Star with center 0: heads are the leaves; the center must point at
	// the maximum leaf.
	g := graph.Star(5)
	l, res := runClustering(g, 3)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	s := l.Config().States
	if s[0].A {
		t.Fatal("center became a head")
	}
	if s[0].B != core.PointAt(4) {
		t.Fatalf("center assigned to %s, want max head 4", s[0].B)
	}
}

func TestClusteringName(t *testing.T) {
	if NewClustering().Name() != "ClusterAssign∘SMI" {
		t.Fatalf("Name = %q", NewClustering().Name())
	}
}

func TestClusteringRestabilizesAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(16, 0.2, rng)
	p := NewClustering()
	cfg := core.NewConfig[LayerState[bool, core.Pointer]](g)
	cfg.Randomize(p, rng)
	l := sim.NewLockstep[LayerState[bool, core.Pointer]](p, cfg)
	if res := l.Run(g.N() + 4); !res.Stable {
		t.Fatalf("initial: %v", res)
	}
	for epoch := 0; epoch < 5; epoch++ {
		events := mobility.NewChurn(g, rng).Apply(2)
		for _, ev := range events {
			if !ev.Add {
				for _, v := range [2]graph.NodeID{ev.Edge.U, ev.Edge.V} {
					other := ev.Edge.U ^ ev.Edge.V ^ v
					cfg.States[v] = p.OnNeighborLost(v, cfg.States[v], other)
				}
			}
		}
		if res := l.Run(g.N() + 4); !res.Stable {
			t.Fatalf("epoch %d: %v", epoch, res)
		}
		if err := VerifyClustering(g, cfg.States); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
}

func TestVerifyClusteringRejects(t *testing.T) {
	g := graph.Path(3)
	good := []LayerState[bool, core.Pointer]{
		{A: false, B: core.PointAt(1)},
		{A: true, B: core.Null},
		{A: false, B: core.PointAt(1)},
	}
	if err := VerifyClustering(g, good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]LayerState[bool, core.Pointer])
	}{
		{"head with pointer", func(s []LayerState[bool, core.Pointer]) { s[1].B = core.PointAt(0) }},
		{"unassigned", func(s []LayerState[bool, core.Pointer]) { s[0].B = core.Null }},
		{"non-neighbor", func(s []LayerState[bool, core.Pointer]) { s[0].B = core.PointAt(2) }},
		{"non-head target", func(s []LayerState[bool, core.Pointer]) {
			s[2].A = true
			s[2].B = core.Null
			s[0].B = core.PointAt(1)
			s[1].A = false
			s[1].B = core.PointAt(2)
		}},
	}
	for _, c := range cases {
		bad := append([]LayerState[bool, core.Pointer](nil), good...)
		c.mutate(bad)
		if VerifyClustering(g, bad) == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if VerifyClustering(g, good[:2]) == nil {
		t.Error("wrong length accepted")
	}
}

func TestLayeredOnNeighborLost(t *testing.T) {
	p := NewClustering()
	s := LayerState[bool, core.Pointer]{A: false, B: core.PointAt(3)}
	got := p.OnNeighborLost(1, s, 3)
	if !got.B.IsNull() {
		t.Fatalf("assignment not repaired: %v", got)
	}
	if got.A != s.A {
		t.Fatal("base layer corrupted")
	}
}

// Property: clustering converges to a verified clustering on random
// connected graphs within n+4 rounds.
func TestQuickClustering(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 3 + int(size%20)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, 0.25, rng)
		l, res := runClustering(g, seed)
		return res.Stable &&
			VerifyClustering(g, l.Config().States) == nil &&
			verify.IsMaximalIndependentSet(g, headsOf(l.Config().States)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
