package protocols

import (
	"math/rand"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/daemon"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
	"selfstab/internal/verify"
)

func TestHsuHuangUnderCentralDaemonAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	strategies := []daemon.Pick{daemon.PickRandom, daemon.PickMin, daemon.PickMax, daemon.PickAdversarial}
	for _, strat := range strategies {
		for trial := 0; trial < 10; trial++ {
			g := graph.RandomConnected(12, 0.25, rng)
			p := NewHsuHuang()
			cfg := core.NewConfig[core.Pointer](g)
			cfg.Randomize(p, rng)
			sch := daemon.NewCentral[core.Pointer](strat, rng)
			r := daemon.NewRunner[core.Pointer](p, cfg, sch)
			res := r.Run(20 * g.N() * g.N())
			if !res.Stable {
				t.Fatalf("%s trial %d: %v", sch.Name(), trial, res)
			}
			if err := verify.IsMaximalMatching(g, core.MatchingOf(r.Config())); err != nil {
				t.Fatalf("%s trial %d: %v", sch.Name(), trial, err)
			}
		}
	}
}

func TestHsuHuangDivergesSynchronouslyOnC4(t *testing.T) {
	// Sanity: the baseline really does exhibit the paper's counterexample
	// when run synchronously without refinement.
	g := graph.Cycle(4)
	p := NewHsuHuang()
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	l := sim.NewLockstep[core.Pointer](p, cfg)
	if res := l.Run(500); res.Stable {
		t.Fatalf("expected divergence, got %v", res)
	}
}

func TestRefinedHsuHuangStabilizesSynchronously(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(14, 0.25, rng)
		ref := Refine[core.Pointer](NewHsuHuang(), g.N(), int64(trial))
		cfg := core.NewConfig[RefState[core.Pointer]](g)
		cfg.Randomize(ref, rng)
		l := sim.NewLockstep[RefState[core.Pointer]](ref, cfg)
		res := l.Run(200 * g.N())
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		inner := core.NewConfig[core.Pointer](g)
		for v, s := range l.Config().States {
			inner.States[v] = s.Inner
		}
		if err := verify.IsMaximalMatching(g, core.MatchingOf(inner)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRefinedRescuesC4Counterexample(t *testing.T) {
	// The same all-null C4 start that oscillates forever unrefined
	// stabilizes once neighbors are serialized.
	g := graph.Cycle(4)
	ref := Refine[core.Pointer](NewHsuHuang(), 4, 7)
	cfg := core.NewConfig[RefState[core.Pointer]](g)
	for i := range cfg.States {
		cfg.States[i] = RefState[core.Pointer]{Inner: core.Null}
	}
	l := sim.NewLockstep[RefState[core.Pointer]](ref, cfg)
	res := l.Run(2000)
	if !res.Stable {
		t.Fatalf("refined C4 did not stabilize: %v", res)
	}
	inner := core.NewConfig[core.Pointer](g)
	for v, s := range l.Config().States {
		inner.States[v] = s.Inner
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(inner)); err != nil {
		t.Fatal(err)
	}
}

// Refinement safety: adjacent nodes never execute an inner move in the
// same round.
func TestRefinedLocalMutualExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(12, 0.3, rng)
		ref := Refine[core.Pointer](NewHsuHuang(), g.N(), int64(trial))
		cfg := core.NewConfig[RefState[core.Pointer]](g)
		cfg.Randomize(ref, rng)
		l := sim.NewLockstep[RefState[core.Pointer]](ref, cfg)
		prev := make([]core.Pointer, g.N())
		snapshot := func() {
			for v, s := range l.Config().States {
				prev[v] = s.Inner
			}
		}
		snapshot()
		for round := 0; round < 50*g.N(); round++ {
			if l.Step() == 0 {
				break
			}
			var movers []graph.NodeID
			for v, s := range l.Config().States {
				if s.Inner != prev[v] {
					movers = append(movers, graph.NodeID(v))
				}
			}
			for i := 0; i < len(movers); i++ {
				for j := i + 1; j < len(movers); j++ {
					if g.HasEdge(movers[i], movers[j]) {
						t.Fatalf("trial %d round %d: adjacent movers %d,%d",
							trial, round, movers[i], movers[j])
					}
				}
			}
			snapshot()
		}
	}
}

func TestRefinedName(t *testing.T) {
	ref := Refine[core.Pointer](NewHsuHuang(), 4, 1)
	if ref.Name() != "Refined(HsuHuang)" {
		t.Fatalf("Name = %q", ref.Name())
	}
}

func TestColoringStabilizesProper(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gens := []*graph.Graph{
		graph.Path(10),
		graph.Cycle(9),
		graph.Complete(7),
		graph.Star(8),
		graph.RandomConnected(20, 0.2, rng),
	}
	for gi, g := range gens {
		for trial := 0; trial < 5; trial++ {
			p := NewColoring()
			cfg := core.NewConfig[int](g)
			cfg.Randomize(p, rand.New(rand.NewSource(int64(trial))))
			l := sim.NewLockstep[int](p, cfg)
			res := l.Run(g.N() + 1)
			if !res.Stable {
				t.Fatalf("gen %d trial %d: %v", gi, trial, res)
			}
			if err := verify.IsProperColoring(g, l.Config().States); err != nil {
				t.Fatalf("gen %d trial %d: %v", gi, trial, err)
			}
			// At most Δ+1 colors.
			maxDeg := graph.Degrees(g).Max
			for v, c := range l.Config().States {
				if c > maxDeg {
					t.Fatalf("gen %d: node %d color %d exceeds Δ=%d", gi, v, c, maxDeg)
				}
			}
		}
	}
}

func TestColoringCompleteGraphUsesAllColors(t *testing.T) {
	g := graph.Complete(5)
	p := NewColoring()
	cfg := core.NewConfig[int](g)
	cfg.Randomize(p, rand.New(rand.NewSource(2)))
	l := sim.NewLockstep[int](p, cfg)
	if res := l.Run(g.N() + 1); !res.Stable {
		t.Fatalf("%v", res)
	}
	// On K_n the stable coloring is exactly n-1-i for node i (descending wave).
	for v, c := range l.Config().States {
		if c != g.N()-1-v {
			t.Fatalf("K5 coloring = %v", l.Config().States)
		}
	}
}

func TestRandMISStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(16, 0.2, rng)
		p := NewRandMIS(g.N(), int64(trial))
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rng)
		l := sim.NewLockstep[bool](p, cfg)
		res := l.Run(500 * g.N()) // probabilistic bound; generous limit
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if err := verify.IsMaximalIndependentSet(g, core.SetOf(l.Config())); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandMISReportsActiveWhenCoinDeclines(t *testing.T) {
	// A single uncovered node is enabled regardless of the coin outcome.
	g := graph.New(1)
	p := NewRandMIS(1, 99)
	cfg := core.NewConfig[bool](g)
	for i := 0; i < 10; i++ {
		_, active := p.Move(cfg.View(0))
		if !active {
			t.Fatal("uncovered node reported inactive")
		}
	}
}

func TestProtocolNames(t *testing.T) {
	if NewColoring().Name() != "Coloring" {
		t.Fatal(NewColoring().Name())
	}
	if NewRandMIS(1, 0).Name() != "RandMIS" {
		t.Fatal(NewRandMIS(1, 0).Name())
	}
	if NewHsuHuang().Name() != "HsuHuang" {
		t.Fatal(NewHsuHuang().Name())
	}
}

// SMI's output doubles as a minimal dominating set (an MIS is exactly an
// independent dominating set) — the paper's introduction motivates
// dominating sets for resource placement; this closes that loop.
func TestSMIOutputIsMinimalDominating(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(14, 0.25, rng)
		p := core.NewSMI()
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rng)
		l := sim.NewLockstep[bool](p, cfg)
		if res := l.Run(g.N() + 1); !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if err := verify.IsMinimalDominatingSet(g, core.SetOf(l.Config())); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
