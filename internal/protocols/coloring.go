package protocols

import (
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Coloring is a synchronous self-stabilizing Grundy-style coloring in the
// spirit of the authors' earlier linear-time coloring work (the paper's
// reference [7]) and of SMI's ID-descent wave: each node recolors itself
// to the smallest color unused by its *bigger-ID* neighbors. For every
// edge the smaller endpoint avoids the bigger endpoint's color, so a
// stable configuration is a proper coloring, and it uses at most Δ+1
// colors because a node's color never exceeds its bigger-degree.
// Convergence follows the SMI wave argument: the largest ID fixes its
// color in round one and the wave descends, stabilizing in O(n) rounds.
//
// The protocol exists to reproduce the paper's concluding claim (E10):
// problems solvable in the central-daemon model are generally solvable —
// and here fast — in the synchronous model.
type Coloring struct {
	// MaxColor bounds the arbitrary initial colors drawn by Random;
	// the protocol itself may only ever lower a node's color below its
	// degree+1. Zero means n is used.
	MaxColor int
}

// NewColoring returns the coloring protocol.
func NewColoring() *Coloring { return &Coloring{} }

// Name implements core.Protocol.
func (*Coloring) Name() string { return "Coloring" }

// Random implements core.Protocol: any non-negative color up to MaxColor
// (or the degree+1 default space when unset).
func (c *Coloring) Random(_ graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) int {
	limit := c.MaxColor
	if limit <= 0 {
		limit = len(nbrs) + 2
	}
	return rng.Intn(limit)
}

// Move implements core.Protocol: recolor to the minimum excludant of the
// bigger neighbors' colors.
func (*Coloring) Move(v core.View[int]) (int, bool) {
	used := make(map[int]bool, len(v.Nbrs))
	for _, j := range v.Nbrs {
		if j > v.ID {
			used[v.Peer(j)] = true
		}
	}
	mex := 0
	for used[mex] {
		mex++
	}
	if v.Self != mex {
		return mex, true
	}
	return v.Self, false
}
