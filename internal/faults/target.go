package faults

import (
	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Target is the single hook interface through which the engine injects
// faults into an execution model. All three executors implement it —
// sim.Lockstep via FaultLockstep, beacon.Network via FaultNetwork, and
// runtime.Network via its Faults adapter — so one Schedule replays,
// fault for fault and round for round, on every model.
//
// The methods split into three groups: injection primitives the engine
// composes high-level faults from (WriteState, SetLink, DropLink,
// Freeze), observation (Topology, Config, ReadState), and model
// calibration constants that let the recovery monitor use one logical
// clock across executors whose physical behavior differs (Warmup,
// DetectionLag, QuietRounds).
//
// Implementations need not be safe for concurrent use: the engine is
// strictly sequential — inject, Step, observe.
type Target[S comparable] interface {
	// Model names the execution model ("lockstep", "beacon", "runtime").
	Model() string

	// Topology returns the live topology. The engine treats it as
	// read-only and mutates only through SetLink.
	Topology() *graph.Graph

	// Config snapshots the current global configuration. The States
	// slice may alias executor state; the engine copies before keeping
	// it across Steps.
	Config() core.Config[S]

	// ReadState returns node v's current state.
	ReadState(v graph.NodeID) S

	// WriteState overwrites node v's state — a transient memory fault or
	// an arbitrary resurrection state. The write is visible to v's next
	// move and to neighbors from the next exchange on.
	WriteState(v graph.NodeID, s S)

	// SetLink makes link e present or absent. Removing a link triggers
	// the executor's neighbor-loss path (dangling-reference repair via
	// core.RepairState), immediately for round-based models and after
	// beacon timeout for the beacon model.
	SetLink(e graph.Edge, present bool)

	// DropLink suppresses state exchange over live link e for the given
	// number of rounds: both endpoints keep acting on the last state
	// they heard from the other.
	DropLink(e graph.Edge, rounds int)

	// Freeze pins node v's entire neighbor view for the given number of
	// rounds: v keeps acting, but on stale reads.
	Freeze(v graph.NodeID, rounds int)

	// Step executes one logical round — the paper's beacon period — and
	// returns how many nodes moved.
	Step() int

	// Warmup is the number of throwaway Steps the engine runs before
	// round 0 so the model reaches steady operation (beacon neighbor
	// discovery); 0 for models with built-in topology knowledge.
	Warmup() int

	// DetectionLag is the worst-case number of rounds between a topology
	// change and the executor reacting to it (beacon expiry timeout); 0
	// when changes are visible immediately.
	DetectionLag() int

	// QuietRounds is the number of consecutive zero-move Steps that
	// imply a fixed point for this model; 1 for deterministic lockstep,
	// more for models with asynchronous slack.
	QuietRounds() int

	// Close releases executor resources (goroutines, queues). The target
	// is unusable afterwards.
	Close()
}
