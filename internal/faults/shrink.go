package faults

import "selfstab/internal/graph"

// Shrink minimizes a failing schedule: it repeatedly drops event chunks
// (coarse to fine, ddmin style) and then shortens the surviving events
// (durations, target lists, churn counts), keeping every candidate that
// still fails, until a fixed point or the run budget is exhausted. The
// failing predicate must re-run the candidate from scratch — because
// every event draws its injection randomness from its own derived
// stream, removing one event does not perturb the others, so failures
// shrink stably.
//
// Shrink is fully deterministic: candidates are enumerated in a fixed
// order and no randomness is consumed.
func Shrink(sched Schedule, failing func(Schedule) bool, maxRuns int) Schedule {
	if maxRuns <= 0 {
		maxRuns = 256
	}
	runs := 0
	try := func(c Schedule) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		return failing(c)
	}
	cur := sched
	for {
		next := shrinkEvents(cur, try)
		next = shrinkFields(next, try)
		if len(next.Events) == len(cur.Events) && eventsEqual(next.Events, cur.Events) {
			return next
		}
		cur = next
		if runs >= maxRuns {
			return cur
		}
	}
}

// shrinkEvents removes chunks of events, halving the chunk size from
// half the schedule down to single events.
func shrinkEvents(cur Schedule, try func(Schedule) bool) Schedule {
	for size := (len(cur.Events) + 1) / 2; size >= 1; size /= 2 {
		for i := 0; i+size <= len(cur.Events); {
			cand := withoutEvents(cur, i, size)
			if try(cand) {
				cur = cand // same i now points at the next chunk
			} else {
				i += size
			}
		}
	}
	return cur
}

// shrinkFields reduces each surviving event in place: durations and
// churn counts toward 1, node and link target lists toward a single
// element.
func shrinkFields(cur Schedule, try func(Schedule) bool) Schedule {
	for i := 0; i < len(cur.Events); i++ {
		ev := cur.Events[i]
		if ev.Dur > 1 {
			cur = shrinkInt(cur, i, try, func(e *Event) *int { return &e.Dur })
		}
		if ev.K > 1 {
			cur = shrinkInt(cur, i, try, func(e *Event) *int { return &e.K })
		}
		if len(ev.Nodes) > 1 {
			cur = shrinkNodes(cur, i, try)
		}
		if len(ev.Links) > 1 {
			cur = shrinkLinks(cur, i, try)
		}
	}
	return cur
}

// shrinkInt lowers one integer field toward 1: first straight to 1,
// then by halving.
func shrinkInt(cur Schedule, i int, try func(Schedule) bool, field func(*Event) *int) Schedule {
	for {
		v := *field(&cur.Events[i])
		if v <= 1 {
			return cur
		}
		for _, next := range []int{1, v / 2} {
			if next >= v {
				continue
			}
			cand := cloneSchedule(cur)
			*field(&cand.Events[i]) = next
			if try(cand) {
				cur = cand
				break
			}
		}
		if *field(&cur.Events[i]) == v {
			return cur // no candidate failed; field is minimal
		}
	}
}

// shrinkNodes reduces an event's node list: try each half, then each
// single node.
func shrinkNodes(cur Schedule, i int, try func(Schedule) bool) Schedule {
	replace := func(s Schedule, nodes []graph.NodeID) Schedule {
		c := cloneSchedule(s)
		c.Events[i].Nodes = nodes
		return c
	}
	for {
		nodes := cur.Events[i].Nodes
		if len(nodes) <= 1 {
			return cur
		}
		shrunk := false
		half := len(nodes) / 2
		for _, cand := range [][]graph.NodeID{nodes[:half], nodes[half:]} {
			c := replace(cur, append([]graph.NodeID(nil), cand...))
			if try(c) {
				cur = c
				shrunk = true
				break
			}
		}
		if shrunk {
			continue
		}
		for _, v := range nodes {
			c := replace(cur, []graph.NodeID{v})
			if try(c) {
				cur = c
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// shrinkLinks reduces an event's link list the same way.
func shrinkLinks(cur Schedule, i int, try func(Schedule) bool) Schedule {
	replace := func(s Schedule, links []graph.Edge) Schedule {
		c := cloneSchedule(s)
		c.Events[i].Links = links
		return c
	}
	for {
		links := cur.Events[i].Links
		if len(links) <= 1 {
			return cur
		}
		shrunk := false
		half := len(links) / 2
		for _, cand := range [][]graph.Edge{links[:half], links[half:]} {
			c := replace(cur, append([]graph.Edge(nil), cand...))
			if try(c) {
				cur = c
				shrunk = true
				break
			}
		}
		if shrunk {
			continue
		}
		for _, l := range links {
			c := replace(cur, []graph.Edge{l})
			if try(c) {
				cur = c
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// withoutEvents drops events [i, i+size).
func withoutEvents(s Schedule, i, size int) Schedule {
	events := make([]Event, 0, len(s.Events)-size)
	events = append(events, s.Events[:i]...)
	events = append(events, s.Events[i+size:]...)
	return Schedule{Seed: s.Seed, Events: events}
}

// cloneSchedule deep-copies a schedule so candidates can be mutated.
func cloneSchedule(s Schedule) Schedule {
	events := make([]Event, len(s.Events))
	for i, ev := range s.Events {
		ev.Nodes = append([]graph.NodeID(nil), ev.Nodes...)
		ev.Links = append([]graph.Edge(nil), ev.Links...)
		events[i] = ev
	}
	return Schedule{Seed: s.Seed, Events: events}
}

// eventsEqual compares two event lists structurally.
func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Round != b[i].Round || a[i].Kind != b[i].Kind ||
			a[i].K != b[i].K || a[i].Dur != b[i].Dur ||
			len(a[i].Nodes) != len(b[i].Nodes) || len(a[i].Links) != len(b[i].Links) {
			return false
		}
		for j := range a[i].Nodes {
			if a[i].Nodes[j] != b[i].Nodes[j] {
				return false
			}
		}
		for j := range a[i].Links {
			if a[i].Links[j] != b[i].Links[j] {
				return false
			}
		}
	}
	return true
}
