package faults

import (
	"fmt"

	"selfstab/internal/core"
	"selfstab/internal/verify"
)

// Checker decides whether a converged configuration is legitimate,
// returning nil for legitimate and a descriptive error otherwise. The
// monitor invokes it only on quiescent configurations, which is exactly
// when the paper's legitimacy predicates are meaningful.
type Checker[S comparable] func(cfg core.Config[S]) error

// SMMChecker verifies the SMM legitimacy predicate: pointers are
// symmetric or null (no dangling and no unrequited pointers — checked
// first, because the type classifier is only defined on valid
// configurations) and the induced edge set is a maximal matching.
func SMMChecker(cfg core.Config[core.Pointer]) error {
	if err := core.ValidSMMConfig(cfg); err != nil {
		return err
	}
	if err := verify.IsMaximalMatching(cfg.G, core.MatchingOf(cfg)); err != nil {
		return fmt.Errorf("SMM: %w", err)
	}
	return nil
}

// SMIChecker verifies the SMI legitimacy predicate: the in-set nodes
// form a maximal independent set.
func SMIChecker(cfg core.Config[bool]) error {
	if err := verify.IsMaximalIndependentSet(cfg.G, core.SetOf(cfg)); err != nil {
		return fmt.Errorf("SMI: %w", err)
	}
	return nil
}
