package faults

import (
	"sort"

	"selfstab/internal/graph"
)

// overlayKey addresses one direction of one link: what viewer believes
// about nbr.
type overlayKey struct {
	Viewer, Nbr graph.NodeID
}

// overlayPin is one stale belief with a remaining lifetime in rounds.
type overlayPin[S comparable] struct {
	state S
	ttl   int
}

// Overlay pins stale per-link state views on top of an otherwise fresh
// executor. It is how the round-based executors (lockstep, runtime)
// realize beacon-loss bursts (Drop) and neighbor-table staleness
// (Stale): the underlying link stays up, but for a bounded number of
// rounds the viewer keeps reading the state it last heard — exactly the
// effect of losing the neighbor's beacons while the discovery timeout
// has not yet expired. The beacon executor does not need it; it models
// both faults natively in its event queue.
//
// An Overlay is confined to its executor's Step loop and is not safe
// for concurrent use.
type Overlay[S comparable] struct {
	pins       map[overlayKey]overlayPin[S]
	expiredBuf []graph.NodeID // reused by Tick for its return value
}

// NewOverlay returns an empty overlay.
func NewOverlay[S comparable]() *Overlay[S] {
	return &Overlay[S]{pins: make(map[overlayKey]overlayPin[S])}
}

// PinLink freezes both directions of link {u,v}: for rounds rounds u
// reads sv for v and v reads su for u. Re-pinning an already-pinned
// direction keeps the older (staler) belief and extends the lifetime to
// the maximum of the two.
func (o *Overlay[S]) PinLink(u, v graph.NodeID, su, sv S, rounds int) {
	o.pin(overlayKey{Viewer: u, Nbr: v}, sv, rounds)
	o.pin(overlayKey{Viewer: v, Nbr: u}, su, rounds)
}

// PinView freezes everything viewer currently believes about its
// neighbors: for rounds rounds every Peer read by viewer returns the
// state read returns now.
func (o *Overlay[S]) PinView(viewer graph.NodeID, nbrs []graph.NodeID, read func(graph.NodeID) S, rounds int) {
	for _, j := range nbrs {
		o.pin(overlayKey{Viewer: viewer, Nbr: j}, read(j), rounds)
	}
}

func (o *Overlay[S]) pin(k overlayKey, s S, rounds int) {
	if rounds <= 0 {
		return
	}
	if p, ok := o.pins[k]; ok {
		// Keep the stalest state; extend to the longer lifetime.
		if rounds > p.ttl {
			p.ttl = rounds
			o.pins[k] = p
		}
		return
	}
	o.pins[k] = overlayPin[S]{state: s, ttl: rounds}
}

// Peer resolves viewer's belief about nbr: the pinned state if one is
// live, otherwise fresh.
func (o *Overlay[S]) Peer(viewer, nbr graph.NodeID, fresh S) S {
	if p, ok := o.pins[overlayKey{Viewer: viewer, Nbr: nbr}]; ok {
		return p.state
	}
	return fresh
}

// Unpin clears both directions of link {u,v}, e.g. when the link itself
// is removed (a gone link must not keep serving stale reads; the
// executor's neighbor lists no longer include the peer at all).
func (o *Overlay[S]) Unpin(u, v graph.NodeID) {
	delete(o.pins, overlayKey{Viewer: u, Nbr: v})
	delete(o.pins, overlayKey{Viewer: v, Nbr: u})
}

// Tick ages every pin by one round and drops the expired ones. Call it
// once at the end of each executor Step. The two passes commute across
// map iteration order: the first uniformly decrements, the second
// deletes exactly the non-positive entries.
//
// It returns the viewers that lost at least one pin this tick, sorted
// ascending with duplicates removed (deterministic despite the map
// walk). An expiry changes the viewer's effective view without any
// state changing — the read flips back from the pinned value to fresh —
// so frontier-scheduled executors must re-dirty exactly these nodes.
// The returned slice is reused by the next Tick; callers must consume
// it before then.
func (o *Overlay[S]) Tick() []graph.NodeID {
	for k, p := range o.pins {
		p.ttl--
		o.pins[k] = p
	}
	expired := o.expiredBuf[:0]
	for k, p := range o.pins {
		if p.ttl <= 0 {
			delete(o.pins, k)
			expired = append(expired, k.Viewer)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	dedup := expired[:0]
	for i, v := range expired {
		if i == 0 || v != expired[i-1] {
			dedup = append(dedup, v)
		}
	}
	o.expiredBuf = expired[:len(dedup)]
	return o.expiredBuf
}

// Empty reports whether no pins are live.
func (o *Overlay[S]) Empty() bool { return len(o.pins) == 0 }
