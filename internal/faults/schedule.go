// Package faults implements the deterministic fault-injection engine
// behind the repository's recovery verification: typed fault events on a
// logical round clock (node crash/restart with arbitrary resurrection
// state, transient state corruption, beacon-loss bursts, network
// partition and heal, neighbor-table staleness, mobility-driven link
// churn), injected through one small hook interface implemented by all
// three execution models, plus a recovery monitor that segments a run
// into fault epochs and checks — per epoch — closure (a legitimate
// configuration stays legitimate absent faults), re-convergence within
// the paper's bound, and containment (states changed during recovery
// versus the fault radius).
//
// Self-stabilization *is* a fault-tolerance claim: Theorems 1–2 promise
// recovery from arbitrary transient faults. This package makes that
// claim directly testable, under identical fault campaigns, for every
// executor and protocol in the module. Everything here is deterministic:
// a schedule is a concrete value (all randomness is resolved when it is
// generated), the engine derives any remaining randomness — corruption
// and resurrection states — from per-event seed streams, and reports are
// plain data with canonical ordering.
package faults

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"selfstab/internal/graph"
)

// Kind discriminates fault events.
type Kind uint8

const (
	// Init is the pseudo-event opening the first epoch: the arbitrary
	// initial configuration itself, the paper's canonical "fault".
	Init Kind = iota
	// Crash takes the targeted nodes off the air for Dur rounds: every
	// incident link is cut (in an ad hoc network a crashed node is
	// indistinguishable from one that left radio range), and each node is
	// resurrected with an arbitrary state drawn from the protocol's full
	// state space — the paper's "arbitrary resurrection state".
	Crash
	// Resurrect is the engine-generated counterpart of Crash: links are
	// restored and the node restarts with an arbitrary state. It never
	// appears in a schedule; it shows up in epoch descriptions.
	Resurrect
	// Corrupt overwrites the states of the targeted nodes with arbitrary
	// states — a transient memory fault.
	Corrupt
	// Drop is a beacon-loss burst: for Dur rounds the targeted links
	// exchange no fresh state (the beacon model drops the beacons; the
	// view models pin the last exchanged states).
	Drop
	// Partition cuts every link between Nodes and the rest of the
	// network until the matching Heal.
	Partition
	// Heal restores the most recent unhealed Partition's cut links.
	Heal
	// Stale freezes the targeted nodes' neighbor views for Dur rounds:
	// they keep acting, but on stale reads (Cohen et al.'s stale
	// link-register model).
	Stale
	// Churn applies K connectivity-preserving random link events through
	// the mobility generator.
	Churn
)

// AllKinds lists the schedulable kinds in canonical order (Init and
// Resurrect are engine-internal).
var AllKinds = [...]Kind{Crash, Corrupt, Drop, Partition, Stale, Churn}

// kindNames maps kinds to their wire/report names.
var kindNames = map[Kind]string{
	Init:      "init",
	Crash:     "crash",
	Resurrect: "resurrect",
	Corrupt:   "corrupt",
	Drop:      "drop",
	Partition: "partition",
	Heal:      "heal",
	Stale:     "stale",
	Churn:     "churn",
}

// String renders the kind's canonical name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its name, keeping schedule artifacts
// readable and stable across const reordering.
func (k Kind) MarshalJSON() ([]byte, error) {
	n, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("faults: unknown kind %d", uint8(k))
	}
	return json.Marshal(n)
}

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for kk, n := range kindNames {
		if n == name {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("faults: unknown kind %q", name)
}

// Event is one fault on the logical clock. Which fields matter depends
// on Kind; unused fields are zero.
type Event struct {
	// Round is the logical round (post-warmup Step count) at which the
	// event is injected.
	Round int `json:"round"`
	Kind  Kind `json:"kind"`
	// Nodes targets Crash, Corrupt and Stale, and names one side of a
	// Partition.
	Nodes []graph.NodeID `json:"nodes,omitempty"`
	// Links targets Drop.
	Links []graph.Edge `json:"links,omitempty"`
	// K is the event count for Churn.
	K int `json:"k,omitempty"`
	// Dur is the duration in rounds for Crash (down time), Drop and
	// Stale.
	Dur int `json:"dur,omitempty"`
}

// String renders e.g. "r12 corrupt nodes=[3 7]" or "r30 drop links=[{0,1}] dur=4".
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%d %s", e.Round, e.Kind)
	if len(e.Nodes) > 0 {
		fmt.Fprintf(&b, " nodes=%v", e.Nodes)
	}
	if len(e.Links) > 0 {
		fmt.Fprintf(&b, " links=%v", e.Links)
	}
	if e.K > 0 {
		fmt.Fprintf(&b, " k=%d", e.K)
	}
	if e.Dur > 0 {
		fmt.Fprintf(&b, " dur=%d", e.Dur)
	}
	return b.String()
}

// Schedule is a concrete, replayable fault campaign: every target and
// duration is resolved, so running it twice — on any execution model —
// injects exactly the same faults at the same logical rounds.
type Schedule struct {
	// Seed is the seed the schedule was generated from; the engine also
	// derives corruption/resurrection state streams from it. Hand-built
	// schedules may use any value.
	Seed int64 `json:"seed"`
	// Events holds the faults in ascending Round order.
	Events []Event `json:"events"`
}

// String renders one event per line.
func (s Schedule) String() string {
	if len(s.Events) == 0 {
		return "(no faults)"
	}
	lines := make([]string, len(s.Events))
	for i, e := range s.Events {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// Normalize sorts events by round (stable, preserving injection order
// within a round).
func (s *Schedule) Normalize() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].Round < s.Events[j].Round
	})
}

// WriteJSON serializes the schedule as indented JSON.
func (s Schedule) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// GenParams scopes Generate.
type GenParams struct {
	// Events is the number of fault events to generate.
	Events int
	// MaxBurst bounds the nodes/links targeted per event (default 3).
	MaxBurst int
	// MaxDur bounds event durations in rounds (default 4).
	MaxDur int
	// Start offsets the first event: events begin after Start rounds,
	// leaving the initial epoch room to converge (default 0).
	Start int
	// Gap bounds the spacing between events: consecutive events are
	// 1..Gap rounds apart (default n+6, so most epochs can complete).
	Gap int
	// Kinds restricts the generated kinds (default AllKinds).
	Kinds []Kind
}

// Generate draws a randomized schedule for topology g from seed. The
// result is fully concrete — targets, durations and rounds are resolved
// here — so the same seed yields byte-identical schedules everywhere. A
// generated Partition is always closed by a matching Heal.
func Generate(seed int64, g *graph.Graph, prm GenParams) Schedule {
	if prm.MaxBurst <= 0 {
		prm.MaxBurst = 3
	}
	if prm.MaxDur <= 0 {
		prm.MaxDur = 4
	}
	if prm.Gap <= 0 {
		prm.Gap = g.N() + 6
	}
	kinds := make([]Kind, 0, len(prm.Kinds))
	for _, k := range prm.Kinds {
		// Init and Resurrect are engine-internal pseudo-events; a
		// schedule must never inject them.
		if k != Init && k != Resurrect {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		kinds = AllKinds[:]
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	var events []Event
	round := prm.Start
	partitioned := false
	for len(events) < prm.Events {
		round += 1 + rng.Intn(prm.Gap)
		kind := kinds[rng.Intn(len(kinds))]
		if partitioned {
			// While split, no nested partition and no churn (the churn
			// generator requires a connected graph); heal instead.
			if kind == Partition || kind == Churn {
				kind = Heal
			}
		} else if kind == Heal {
			kind = Corrupt
		}
		ev := Event{Round: round, Kind: kind}
		switch kind {
		case Crash:
			ev.Nodes = pickNodes(rng, n, 1+rng.Intn(prm.MaxBurst))
			ev.Dur = 1 + rng.Intn(prm.MaxDur)
		case Corrupt:
			ev.Nodes = pickNodes(rng, n, 1+rng.Intn(prm.MaxBurst))
		case Drop:
			edges := g.Edges()
			if len(edges) == 0 {
				continue
			}
			k := 1 + rng.Intn(prm.MaxBurst)
			if k > len(edges) {
				k = len(edges)
			}
			perm := rng.Perm(len(edges))[:k]
			sort.Ints(perm)
			for _, i := range perm {
				ev.Links = append(ev.Links, edges[i])
			}
			ev.Dur = 1 + rng.Intn(prm.MaxDur)
		case Partition:
			if n < 2 {
				continue
			}
			ev.Nodes = pickNodes(rng, n, 1+rng.Intn(n/2+1))
			partitioned = true
		case Heal:
			partitioned = false
		case Stale:
			ev.Nodes = pickNodes(rng, n, 1+rng.Intn(prm.MaxBurst))
			ev.Dur = 1 + rng.Intn(prm.MaxDur)
		case Churn:
			ev.K = 1 + rng.Intn(prm.MaxBurst)
		default:
			// Init and Resurrect are filtered out of kinds above; no
			// other Kind exists.
		}
		events = append(events, ev)
	}
	if partitioned {
		round += 1 + rng.Intn(prm.Gap)
		events = append(events, Event{Round: round, Kind: Heal})
	}
	return Schedule{Seed: seed, Events: events}
}

// pickNodes draws k distinct node IDs, ascending.
func pickNodes(rng *rand.Rand, n, k int) []graph.NodeID {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	ids := make([]graph.NodeID, k)
	for i, v := range perm {
		ids[i] = graph.NodeID(v)
	}
	return ids
}

// deriveSeed hashes the schedule seed with an event stream name and two
// coordinates into an independent seed, mirroring the harness's
// derived-seed discipline: every injection draws from its own stream, so
// dropping one event during shrinking does not shift the randomness of
// the events that remain.
func deriveSeed(seed int64, stream string, a, b int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(stream))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(a)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(b)))
	h.Write(buf[:])
	return int64(splitmix64(h.Sum64()))
}

// splitmix64 finalizes the hash with full avalanche.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
