package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
)

// Options tunes the recovery monitor.
type Options struct {
	// BoundFactor and BoundSlack define the re-convergence bound the
	// monitor enforces per epoch:
	//
	//	bound = ceil(BoundFactor·n) + BoundSlack + DetectionLag + event duration
	//
	// The paper's Theorem 1 gives n+1 rounds for SMM, i.e. factor 1 and
	// slack 1 (the defaults); SMI is O(n) with the constant recorded by
	// experiment E15. DetectionLag and the event's own duration are added
	// because the executor cannot even begin repairing until the fault's
	// effects end and are detected.
	BoundFactor float64
	BoundSlack  int
	// MaxRounds caps the whole run. 0 derives a generous default from
	// the schedule horizon and the bound.
	MaxRounds int
	// Tail is how many extra rounds to observe after the final epoch
	// converges, so closure violations out of the final fixed point are
	// caught too (default 8).
	Tail int
}

// Epoch is the monitor's verdict on one fault and the recovery that
// followed it.
type Epoch struct {
	// Index is the epoch's position in the run (0 = the Init epoch).
	Index int `json:"index"`
	// Kind is the fault kind that opened the epoch.
	Kind Kind `json:"kind"`
	// Desc renders the concrete injection, e.g. "r12 corrupt nodes=[3 7]".
	Desc string `json:"desc"`
	// Round is the logical round the fault was injected at.
	Round int `json:"round"`
	// Rounds is the re-convergence time: rounds from injection to the
	// last round with a move.
	Rounds int `json:"rounds"`
	// Bound is the enforced re-convergence bound for this epoch.
	Bound int `json:"bound"`
	// Converged reports whether a quiet plateau was reached before the
	// next fault (or the round cap).
	Converged bool `json:"converged"`
	// Interrupted reports the next fault arrived first. Interrupted
	// epochs fail only if they had already exceeded Bound.
	Interrupted bool `json:"interrupted"`
	// WithinBound is Rounds <= Bound (meaningful when Converged).
	WithinBound bool `json:"within_bound"`
	// Legitimate is the checker's verdict on the converged
	// configuration; CheckErr carries the violation when false.
	Legitimate bool   `json:"legitimate"`
	CheckErr   string `json:"check_err,omitempty"`
	// Disrupted counts nodes whose state at convergence differs from
	// just before the injection — the recovery's write footprint.
	Disrupted int `json:"disrupted"`
	// Radius counts nodes directly touched by the fault (targets or link
	// endpoints); Disrupted/Radius is the containment ratio.
	Radius int `json:"radius"`
}

// Report is the monitor's account of one schedule run on one target.
// It is plain ordered data: running the same schedule on the same
// target twice yields identical reports.
type Report struct {
	Model    string  `json:"model"`
	Protocol string  `json:"protocol"`
	N        int     `json:"n"`
	Rounds   int     `json:"rounds"`
	Epochs   []Epoch `json:"epochs"`
	// ClosureViolations counts rounds in which nodes moved out of a
	// converged legitimate configuration with no fault in flight —
	// direct violations of the paper's closure property.
	ClosureViolations int `json:"closure_violations"`
	// Failures lists every property violation in injection order.
	Failures []string `json:"failures,omitempty"`
	// Notes records benign anomalies (e.g. a churn event skipped because
	// the graph was disconnected).
	Notes []string `json:"notes,omitempty"`
}

// Failed reports whether any monitored property was violated.
func (r Report) Failed() bool { return len(r.Failures) > 0 }

// MaxEpochRounds returns the largest re-convergence time over converged
// non-Init epochs, or 0 if there were none — the observed stabilization
// constant E15 records.
func (r Report) MaxEpochRounds() int {
	max := 0
	for _, ep := range r.Epochs {
		if ep.Kind != Init && ep.Converged && ep.Rounds > max {
			max = ep.Rounds
		}
	}
	return max
}

// String summarizes the report in one line.
func (r Report) String() string {
	status := "ok"
	if r.Failed() {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Failures))
	}
	return fmt.Sprintf("%s/%s n=%d: %d epochs in %d rounds, %d closure violations: %s",
		r.Model, r.Protocol, r.N, len(r.Epochs), r.Rounds, r.ClosureViolations, status)
}

// engine is the per-run state of RunSchedule.
type engine[S comparable] struct {
	p     core.Protocol[S]
	t     Target[S]
	check Checker[S]
	opt   Options
	seed  int64

	report Report

	// r is the logical clock: Steps taken after warmup.
	r int
	// lastActive is the last round with a move or an injection.
	lastActive int
	// effectsUntil is the round after which no injected fault is still
	// in force (durations and detection lags included); convergence and
	// closure are only judged past it.
	effectsUntil int

	// cur is the open epoch, nil between epochs; snapshot holds the
	// pre-injection states backing cur's Disrupted count.
	cur      *Epoch
	snapshot []S

	// convergedLegit: the last closed epoch converged to a legitimate
	// configuration, so further moves are closure violations.
	convergedLegit bool
	// quietSince tracks the violation streak so each burst of illegal
	// activity produces one failure entry.
	inViolation bool

	// cutBy refcounts link cuts (partitions and crashes may cut the same
	// link); a link is physically restored when its count returns to 0.
	cutBy map[graph.Edge]int
	// down marks crashed nodes; lost remembers the links each crash cut.
	down map[graph.NodeID]bool
	lost map[graph.NodeID][]graph.Edge
	// partitions is the stack of open partition cuts, healed LIFO.
	partitions [][]graph.Edge
	// resurrections are pending crash recoveries in schedule order.
	resurrections []resurrection
}

type resurrection struct {
	round int
	nodes []graph.NodeID
	evIdx int
}

// RunSchedule replays sched on target t and monitors every epoch for
// closure, bounded re-convergence, legitimacy (via check), and
// containment. The protocol p supplies the arbitrary states written by
// Corrupt and Crash resurrection; their randomness comes from per-event
// streams derived from sched.Seed, so the injection into a given event
// is independent of every other event.
func RunSchedule[S comparable](p core.Protocol[S], t Target[S], sched Schedule, check Checker[S], opt Options) Report {
	if opt.BoundFactor <= 0 {
		opt.BoundFactor = 1
	}
	if opt.BoundSlack <= 0 {
		opt.BoundSlack = 1
	}
	events := append([]Event(nil), sched.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Round < events[j].Round })
	n := t.Topology().N()
	if opt.MaxRounds <= 0 {
		last := 0
		durs := 0
		for _, ev := range events {
			if ev.Round > last {
				last = ev.Round
			}
			durs += ev.Dur
		}
		opt.MaxRounds = last + durs + (len(events)+2)*(boundBase(opt, n)+t.DetectionLag()+2) + 16
	}
	e := &engine[S]{
		p: p, t: t, check: check, opt: opt, seed: sched.Seed,
		report: Report{Model: t.Model(), Protocol: p.Name(), N: n},
		cutBy:  make(map[graph.Edge]int),
		down:   make(map[graph.NodeID]bool),
		lost:   make(map[graph.NodeID][]graph.Edge),
	}
	for i := 0; i < t.Warmup(); i++ {
		t.Step()
	}
	// The Init pseudo-epoch: the arbitrary initial configuration is the
	// first "fault", with the whole network as its radius.
	e.openEpoch(Event{Kind: Init}, -1, n)
	quiet := t.QuietRounds()
	if quiet < 1 {
		quiet = 1
	}
	if opt.Tail <= 0 {
		opt.Tail = 8
	}
	evIdx := 0
	tail := -1
	for {
		// Inject everything due this round: crash recoveries first (they
		// restore preconditions later events may rely on), then the
		// scheduled events.
		for len(e.resurrections) > 0 && e.resurrections[0].round <= e.r {
			res := e.resurrections[0]
			e.resurrections = e.resurrections[1:]
			e.applyResurrection(res)
		}
		for evIdx < len(events) && events[evIdx].Round <= e.r {
			e.applyEvent(events[evIdx], evIdx)
			evIdx++
		}
		if evIdx == len(events) && len(e.resurrections) == 0 && e.cur == nil {
			// All faults processed and the last epoch closed: keep
			// observing for Tail rounds so late closure violations are
			// still caught, then stop.
			if tail < 0 {
				tail = opt.Tail
			}
			if tail == 0 {
				break
			}
			tail--
		}
		if e.r >= opt.MaxRounds {
			if e.cur != nil {
				e.fail("epoch %d (%s): no convergence within round cap %d", e.cur.Index, e.cur.Desc, opt.MaxRounds)
				e.closeEpoch(false)
			}
			break
		}
		moved := e.t.Step()
		e.r++
		if moved > 0 {
			e.lastActive = e.r
			if e.cur == nil && e.r > e.effectsUntil {
				// Activity out of a settled configuration with no fault
				// in force.
				if e.convergedLegit {
					e.report.ClosureViolations++
					if !e.inViolation {
						e.fail("closure violated: %d moves at round %d out of a legitimate fixed point", moved, e.r)
						e.inViolation = true
					}
				}
			}
		} else {
			e.inViolation = false
		}
		if e.cur != nil && e.r >= e.effectsUntil && e.r-e.lastActive >= quiet {
			e.closeEpoch(true)
		}
	}
	e.report.Rounds = e.r
	return e.report
}

func boundBase(opt Options, n int) int {
	return int(math.Ceil(opt.BoundFactor*float64(n))) + opt.BoundSlack
}

func (e *engine[S]) fail(format string, args ...any) {
	e.report.Failures = append(e.report.Failures, fmt.Sprintf(format, args...))
}

func (e *engine[S]) note(format string, args ...any) {
	e.report.Notes = append(e.report.Notes, fmt.Sprintf(format, args...))
}

// snapshotStates copies the current global state vector.
func (e *engine[S]) snapshotStates() []S {
	cfg := e.t.Config()
	return append([]S(nil), cfg.States...)
}

// openEpoch interrupts any unfinished epoch and opens a new one for the
// fault described by ev (round −1 means "now").
func (e *engine[S]) openEpoch(ev Event, round, radius int) {
	if e.cur != nil {
		e.closeEpoch(false)
	}
	if round < 0 {
		round = e.r
	}
	desc := ev.String()
	if ev.Kind == Init {
		desc = "init (arbitrary initial configuration)"
	}
	e.snapshot = e.snapshotStates()
	e.cur = &Epoch{
		Index:  len(e.report.Epochs),
		Kind:   ev.Kind,
		Desc:   desc,
		Round:  round,
		Bound:  boundBase(e.opt, e.report.N) + e.t.DetectionLag() + ev.Dur,
		Radius: radius,
	}
	e.lastActive = e.r
	e.convergedLegit = false
	e.inViolation = false
}

// closeEpoch finalizes the open epoch, as converged or as interrupted
// by the next fault.
func (e *engine[S]) closeEpoch(converged bool) {
	ep := e.cur
	e.cur = nil
	ep.Rounds = e.lastActive - ep.Round
	if ep.Rounds < 0 {
		ep.Rounds = 0
	}
	ep.WithinBound = ep.Rounds <= ep.Bound
	ep.Disrupted = e.diffStates(e.snapshot)
	if converged {
		ep.Converged = true
		if !ep.WithinBound {
			e.fail("epoch %d (%s): re-convergence took %d rounds, bound %d", ep.Index, ep.Desc, ep.Rounds, ep.Bound)
		}
		err := e.check(e.t.Config())
		ep.Legitimate = err == nil
		if err != nil {
			ep.CheckErr = err.Error()
			e.fail("epoch %d (%s): converged to illegitimate configuration: %v", ep.Index, ep.Desc, err)
		}
		e.convergedLegit = ep.Legitimate
	} else {
		ep.Interrupted = true
		if !ep.WithinBound {
			e.fail("epoch %d (%s): already %d rounds past injection at interruption, bound %d", ep.Index, ep.Desc, ep.Rounds, ep.Bound)
		}
	}
	e.report.Epochs = append(e.report.Epochs, *ep)
}

// diffStates counts nodes whose current state differs from the snapshot.
func (e *engine[S]) diffStates(snap []S) int {
	cfg := e.t.Config()
	d := 0
	for v, s := range cfg.States {
		if s != snap[v] {
			d++
		}
	}
	return d
}

// bumpEffects extends the window during which convergence must not be
// declared and activity is not a closure violation.
func (e *engine[S]) bumpEffects(dur int) {
	until := e.r + dur + e.t.DetectionLag()
	if until > e.effectsUntil {
		e.effectsUntil = until
	}
}

// applyEvent injects one scheduled fault and opens its epoch.
func (e *engine[S]) applyEvent(ev Event, evIdx int) {
	switch ev.Kind {
	case Crash:
		e.applyCrash(ev, evIdx)
	case Corrupt:
		e.openEpoch(ev, ev.Round, len(ev.Nodes))
		for i, v := range ev.Nodes {
			rng := rand.New(rand.NewSource(deriveSeed(e.seed, "corrupt", evIdx, i)))
			e.t.WriteState(v, e.p.Random(v, e.t.Topology().Neighbors(v), rng))
		}
		e.bumpEffects(0)
	case Drop:
		var touched []graph.NodeID
		e.openEpoch(ev, ev.Round, 0)
		for _, l := range ev.Links {
			if !e.t.Topology().HasEdge(l.U, l.V) {
				continue // churned or cut away since scheduling
			}
			e.t.DropLink(l, ev.Dur)
			touched = append(touched, l.U, l.V)
		}
		e.cur.Radius = distinctNodes(touched)
		e.bumpEffects(ev.Dur)
	case Partition:
		cut := e.crossingEdges(ev.Nodes)
		e.openEpoch(ev, ev.Round, distinctEndpoints(cut))
		for _, l := range cut {
			e.cutLink(l)
		}
		e.partitions = append(e.partitions, cut)
		e.bumpEffects(0)
	case Heal:
		if len(e.partitions) == 0 {
			e.note("r%d heal with no open partition; ignored", ev.Round)
			return
		}
		cut := e.partitions[len(e.partitions)-1]
		e.partitions = e.partitions[:len(e.partitions)-1]
		e.openEpoch(ev, ev.Round, distinctEndpoints(cut))
		for _, l := range cut {
			e.restoreLink(l)
		}
		e.bumpEffects(0)
	case Stale:
		e.openEpoch(ev, ev.Round, len(ev.Nodes))
		for _, v := range ev.Nodes {
			e.t.Freeze(v, ev.Dur)
		}
		e.bumpEffects(ev.Dur)
	case Churn:
		e.applyChurn(ev, evIdx)
	default:
		e.note("r%d %s: not injectable; ignored", ev.Round, ev.Kind)
	}
}

// applyCrash cuts every link of the targeted nodes and schedules their
// resurrection with arbitrary states after ev.Dur rounds.
func (e *engine[S]) applyCrash(ev Event, evIdx int) {
	e.openEpoch(ev, ev.Round, len(ev.Nodes))
	var crashed []graph.NodeID
	for _, v := range ev.Nodes {
		if e.down[v] {
			continue // already down; the earlier crash owns its links
		}
		e.down[v] = true
		inc := e.incidentEdges(v)
		e.lost[v] = inc
		for _, l := range inc {
			e.cutLink(l)
		}
		crashed = append(crashed, v)
	}
	dur := ev.Dur
	if dur < 1 {
		dur = 1
	}
	if len(crashed) > 0 {
		e.resurrections = append(e.resurrections, resurrection{round: ev.Round + dur, nodes: crashed, evIdx: evIdx})
		sort.SliceStable(e.resurrections, func(i, j int) bool { return e.resurrections[i].round < e.resurrections[j].round })
	}
	e.bumpEffects(dur)
}

// applyResurrection restores a crashed node's links and restarts it with
// an arbitrary state — the fault engine's Resurrect pseudo-event.
func (e *engine[S]) applyResurrection(res resurrection) {
	ev := Event{Round: e.r, Kind: Resurrect, Nodes: res.nodes}
	e.openEpoch(ev, -1, len(res.nodes))
	for i, v := range res.nodes {
		delete(e.down, v)
		for _, l := range e.lost[v] {
			e.restoreLink(l)
		}
		delete(e.lost, v)
		rng := rand.New(rand.NewSource(deriveSeed(e.seed, "resurrect", res.evIdx, i)))
		e.t.WriteState(v, e.p.Random(v, e.t.Topology().Neighbors(v), rng))
	}
	e.bumpEffects(0)
}

// applyChurn mutates the topology through the connectivity-preserving
// mobility generator. Churn is skipped (with a note) while the graph is
// disconnected or links are administratively cut: the generator requires
// connectivity, and churning a cut link would corrupt the cut ledger.
func (e *engine[S]) applyChurn(ev Event, evIdx int) {
	if len(e.cutBy) > 0 || !graph.IsConnected(e.t.Topology()) {
		e.note("r%d churn skipped: topology cut or disconnected", ev.Round)
		return
	}
	rng := rand.New(rand.NewSource(deriveSeed(e.seed, "churn", evIdx, 0)))
	clone := e.t.Topology().Clone()
	churn := mobility.NewChurn(clone, rng)
	changes := churn.Apply(ev.K)
	if len(changes) == 0 {
		e.note("r%d churn produced no events", ev.Round)
		return
	}
	// Open the epoch (snapshotting the pre-fault states) before applying:
	// link removal triggers dangling-reference repair, which must count
	// as disruption.
	e.openEpoch(ev, ev.Round, 0)
	var touched []graph.NodeID
	var parts []string
	for _, ch := range changes {
		e.t.SetLink(ch.Edge, ch.Add)
		touched = append(touched, ch.Edge.U, ch.Edge.V)
		parts = append(parts, ch.String())
	}
	e.cur.Radius = distinctNodes(touched)
	e.cur.Desc = fmt.Sprintf("r%d churn %s", ev.Round, strings.Join(parts, " "))
	e.bumpEffects(0)
}

// incidentEdges lists node v's links: those live in the topology plus
// those currently cut (a resurrection must not restore a link another
// open cut also holds down without going through the refcount).
func (e *engine[S]) incidentEdges(v graph.NodeID) []graph.Edge {
	var inc []graph.Edge
	for _, u := range e.t.Topology().Neighbors(v) {
		inc = append(inc, graph.NewEdge(v, u))
	}
	for l := range e.cutBy {
		if l.U == v || l.V == v {
			inc = append(inc, l)
		}
	}
	sort.Slice(inc, func(i, j int) bool {
		if inc[i].U != inc[j].U {
			return inc[i].U < inc[j].U
		}
		return inc[i].V < inc[j].V
	})
	// The two sources are disjoint (a cut link is not in the topology),
	// so no dedup is needed.
	return inc
}

// crossingEdges lists the live links between side and its complement.
func (e *engine[S]) crossingEdges(side []graph.NodeID) []graph.Edge {
	in := make(map[graph.NodeID]bool, len(side))
	for _, v := range side {
		in[v] = true
	}
	var cut []graph.Edge
	for _, l := range e.t.Topology().Edges() {
		if in[l.U] != in[l.V] {
			cut = append(cut, l)
		}
	}
	return cut
}

// cutLink removes link l, refcounting overlapping cuts.
func (e *engine[S]) cutLink(l graph.Edge) {
	if e.cutBy[l] == 0 {
		e.t.SetLink(l, false)
	}
	e.cutBy[l]++
}

// restoreLink undoes one cut of l; the link reappears when the last cut
// is lifted.
func (e *engine[S]) restoreLink(l graph.Edge) {
	if e.cutBy[l] == 0 {
		return
	}
	e.cutBy[l]--
	if e.cutBy[l] == 0 {
		delete(e.cutBy, l)
		e.t.SetLink(l, true)
	}
}

// distinctNodes counts the distinct IDs in ids.
func distinctNodes(ids []graph.NodeID) int {
	seen := make(map[graph.NodeID]bool, len(ids))
	for _, v := range ids {
		seen[v] = true
	}
	return len(seen)
}

// distinctEndpoints counts the distinct endpoints of edges.
func distinctEndpoints(edges []graph.Edge) int {
	var ids []graph.NodeID
	for _, l := range edges {
		ids = append(ids, l.U, l.V)
	}
	return distinctNodes(ids)
}
