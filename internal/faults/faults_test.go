package faults_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"selfstab/internal/beacon"
	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
	"selfstab/internal/runtime"
	"selfstab/internal/sim"
)

// pathGraph returns the path 0-1-...-(n-1).
func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	return g
}

// cycleGraph returns the cycle on n nodes.
func cycleGraph(n int) *graph.Graph {
	g := pathGraph(n)
	g.AddEdge(0, graph.NodeID(n-1))
	return g
}

// legitPathSMM returns a legitimate SMM configuration on the 8-path:
// matched pairs (1,2), (3,4), (5,6); 0 and 7 unmatched but saturated.
func legitPathSMM() []core.Pointer {
	return []core.Pointer{
		core.Null, core.PointAt(2), core.PointAt(1),
		core.PointAt(4), core.PointAt(3),
		core.PointAt(6), core.PointAt(5), core.Null,
	}
}

func TestGenerateDeterministicAndSorted(t *testing.T) {
	g := cycleGraph(10)
	a := faults.Generate(7, g, faults.GenParams{Events: 12})
	b := faults.Generate(7, g, faults.GenParams{Events: 12})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n--\n%v", a, b)
	}
	if len(a.Events) < 12 {
		t.Fatalf("got %d events, want >= 12", len(a.Events))
	}
	open := 0
	for i, ev := range a.Events {
		if i > 0 && ev.Round < a.Events[i-1].Round {
			t.Fatalf("events not sorted by round: %v", a.Events)
		}
		switch ev.Kind {
		case faults.Partition:
			open++
		case faults.Heal:
			if open == 0 {
				t.Fatalf("heal without open partition at index %d", i)
			}
			open--
		}
	}
	if open != 0 {
		t.Fatalf("%d partitions left unhealed", open)
	}
	if c := faults.Generate(8, g, faults.GenParams{Events: 12}); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := faults.Generate(3, cycleGraph(6), faults.GenParams{Events: 8})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got faults.Schedule
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n%v\n--\n%v", s, got)
	}
}

func TestOverlayPinTickUnpin(t *testing.T) {
	ov := faults.NewOverlay[int]()
	if !ov.Empty() {
		t.Fatal("new overlay not empty")
	}
	ov.PinLink(0, 1, 10, 20, 2)
	if got := ov.Peer(0, 1, 99); got != 20 {
		t.Fatalf("0's view of 1 = %d, want pinned 20", got)
	}
	if got := ov.Peer(1, 0, 99); got != 10 {
		t.Fatalf("1's view of 0 = %d, want pinned 10", got)
	}
	if got := ov.Peer(0, 2, 99); got != 99 {
		t.Fatalf("unpinned read = %d, want fresh 99", got)
	}
	// Re-pinning keeps the stalest state and the longer lifetime.
	ov.PinLink(0, 1, 11, 21, 1)
	if got := ov.Peer(0, 1, 99); got != 20 {
		t.Fatalf("re-pin overwrote stale state: got %d, want 20", got)
	}
	ov.Tick()
	if ov.Empty() {
		t.Fatal("pins expired one round early")
	}
	ov.Tick()
	if !ov.Empty() {
		t.Fatal("pins survived their lifetime")
	}
	ov.PinView(3, []graph.NodeID{4, 5}, func(j graph.NodeID) int { return int(j) * 100 }, 3)
	if got := ov.Peer(3, 5, 1); got != 500 {
		t.Fatalf("frozen view read = %d, want 500", got)
	}
	ov.Unpin(3, 5)
	if got := ov.Peer(3, 5, 1); got != 1 {
		t.Fatalf("unpinned read = %d, want fresh 1", got)
	}
}

// TestZeroFaultClosure is the acceptance check for closure: a campaign
// with no faults, started in a legitimate configuration, must report
// zero closure violations and a clean Init epoch on every model.
func TestZeroFaultClosure(t *testing.T) {
	sched := faults.Schedule{Seed: 1}
	for _, tc := range modelTargets(t, 1, legitPathSMM()) {
		rep := faults.RunSchedule[core.Pointer](core.NewSMM(), tc.target, sched, faults.SMMChecker, faults.Options{})
		tc.target.Close()
		if rep.Failed() {
			t.Errorf("%s: %v", tc.target.Model(), rep.Failures)
		}
		if rep.ClosureViolations != 0 {
			t.Errorf("%s: %d closure violations from a legitimate fixed point", tc.target.Model(), rep.ClosureViolations)
		}
		if len(rep.Epochs) != 1 || rep.Epochs[0].Kind != faults.Init {
			t.Errorf("%s: epochs = %+v, want exactly the Init epoch", tc.target.Model(), rep.Epochs)
		}
		if !rep.Epochs[0].Legitimate {
			t.Errorf("%s: Init epoch not legitimate: %s", tc.target.Model(), rep.Epochs[0].CheckErr)
		}
	}
}

type modelTarget struct {
	target faults.Target[core.Pointer]
}

// modelTargets builds all three execution models over the 8-path with
// the given initial states (copied per model).
func modelTargets(t *testing.T, seed int64, states []core.Pointer) []modelTarget {
	t.Helper()
	mk := func() []core.Pointer { return append([]core.Pointer(nil), states...) }
	lock := sim.NewFaultLockstep[core.Pointer](core.NewSMM(), core.Config[core.Pointer]{G: pathGraph(len(states)), States: mk()})
	run := runtime.NewFaultNetwork[core.Pointer](core.NewSMM(), pathGraph(len(states)), mk())
	bcn := beacon.NewFaultNetwork[core.Pointer](core.NewSMM(), pathGraph(len(states)), mk(),
		beacon.DefaultParams(), rand.New(rand.NewSource(seed)))
	return []modelTarget{{lock}, {run}, {bcn}}
}

// TestRecoveryAllModels is the acceptance check for cross-model replay:
// one generated schedule covering every fault kind replays on lockstep,
// beacon, and runtime, and the recovery monitor confirms every epoch —
// in particular every SMM epoch — re-converges within the paper's
// bound (BoundFactor 1, BoundSlack 1 ⇒ n+1 rounds plus the model's
// detection lag and the fault's own duration).
func TestRecoveryAllModels(t *testing.T) {
	const n = 8
	states := make([]core.Pointer, n)
	rng := rand.New(rand.NewSource(11))
	g := pathGraph(n)
	p := core.NewSMM()
	for v := range states {
		states[v] = p.Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), rng)
	}
	sched := faults.Generate(5, g, faults.GenParams{Events: 6, Start: n + 2, Gap: 3 * n})
	var reports []faults.Report
	for _, tc := range modelTargets(t, 2, states) {
		rep := faults.RunSchedule[core.Pointer](core.NewSMM(), tc.target, sched, faults.SMMChecker, faults.Options{})
		tc.target.Close()
		if rep.Failed() {
			t.Errorf("%s: %v", tc.target.Model(), rep.Failures)
		}
		for _, ep := range rep.Epochs {
			if ep.Converged && !ep.WithinBound {
				t.Errorf("%s: epoch %d (%s) took %d rounds, bound %d", tc.target.Model(), ep.Index, ep.Desc, ep.Rounds, ep.Bound)
			}
		}
		reports = append(reports, rep)
	}
	// Lockstep and runtime are bulk-synchronous with identical
	// semantics: their epoch accounts must agree exactly.
	if !reflect.DeepEqual(reports[0].Epochs, reports[1].Epochs) {
		t.Errorf("lockstep and runtime epoch reports diverge:\n%+v\n--\n%+v", reports[0].Epochs, reports[1].Epochs)
	}
	// The beacon model shares the logical schedule: same epochs, same
	// kinds, in the same order.
	if len(reports[2].Epochs) != len(reports[0].Epochs) {
		t.Fatalf("beacon saw %d epochs, lockstep %d", len(reports[2].Epochs), len(reports[0].Epochs))
	}
	for i, ep := range reports[2].Epochs {
		if ep.Kind != reports[0].Epochs[i].Kind {
			t.Errorf("epoch %d: beacon kind %s, lockstep kind %s", i, ep.Kind, reports[0].Epochs[i].Kind)
		}
	}
}

// TestRunScheduleDeterministic pins that replaying the same schedule on
// a fresh target yields the identical report.
func TestRunScheduleDeterministic(t *testing.T) {
	const n = 8
	g := pathGraph(n)
	p := core.NewSMM()
	rng := rand.New(rand.NewSource(3))
	states := make([]core.Pointer, n)
	for v := range states {
		states[v] = p.Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), rng)
	}
	sched := faults.Generate(9, g, faults.GenParams{Events: 5, Start: n + 2})
	runOnce := func() faults.Report {
		tgt := sim.NewFaultLockstep[core.Pointer](core.NewSMM(),
			core.Config[core.Pointer]{G: pathGraph(n), States: append([]core.Pointer(nil), states...)})
		defer tgt.Close()
		return faults.RunSchedule[core.Pointer](core.NewSMM(), tgt, sched, faults.SMMChecker, faults.Options{})
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\n--\n%+v", a, b)
	}
}

// noRepairSMM is SMM with its dangling-pointer self-repair removed and
// no NeighborAware hook: a node whose pointer target left the network
// keeps pointing at it forever and claims to be inactive. The fault
// engine must expose this as an illegitimate converged configuration
// whenever a fault cuts a matched edge.
type noRepairSMM struct{ smm *core.SMM }

func (b *noRepairSMM) Name() string { return "SMM-norepair" }

func (b *noRepairSMM) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) core.Pointer {
	return b.smm.Random(id, nbrs, rng)
}

func (b *noRepairSMM) Move(v core.View[core.Pointer]) (core.Pointer, bool) {
	if !v.Self.IsNull() {
		present := false
		for _, j := range v.Nbrs {
			if j == v.Self.Node() {
				present = true
				break
			}
		}
		if !present {
			return v.Self, false // the bug: dangling pointer kept, claimed stable
		}
	}
	return b.smm.Move(v)
}

// TestShrinkBrokenProtocol is the acceptance check for shrinking: a
// seeded failing schedule against a deliberately broken protocol
// variant shrinks to a minimal repro that still fails on replay.
func TestShrinkBrokenProtocol(t *testing.T) {
	const n = 8
	failing := func(s faults.Schedule) faults.Report {
		tgt := sim.NewFaultLockstep[core.Pointer](&noRepairSMM{smm: core.NewSMM()},
			core.Config[core.Pointer]{G: pathGraph(n), States: legitPathSMM()})
		defer tgt.Close()
		return faults.RunSchedule[core.Pointer](&noRepairSMM{smm: core.NewSMM()}, tgt, s, faults.SMMChecker, faults.Options{})
	}
	// Benign noise around the trigger: the partition cuts matched edge
	// {1,2} (among others), which the broken protocol never repairs.
	sched := faults.Schedule{Seed: 1, Events: []faults.Event{
		{Round: 2, Kind: faults.Corrupt, Nodes: []graph.NodeID{0}},
		{Round: 14, Kind: faults.Stale, Nodes: []graph.NodeID{5}, Dur: 2},
		{Round: 26, Kind: faults.Partition, Nodes: []graph.NodeID{0, 1, 2, 3}},
		{Round: 40, Kind: faults.Drop, Links: []graph.Edge{graph.NewEdge(5, 6)}, Dur: 2},
	}}
	if rep := failing(sched); !rep.Failed() {
		t.Fatalf("seed schedule unexpectedly passes: %+v", rep)
	}
	min := faults.Shrink(sched, func(s faults.Schedule) bool { return failing(s).Failed() }, 0)
	if rep := failing(min); !rep.Failed() {
		t.Fatalf("shrunk schedule no longer fails: %v", min)
	}
	if len(min.Events) != 1 {
		t.Fatalf("shrunk to %d events, want 1: %v", len(min.Events), min)
	}
	ev := min.Events[0]
	if ev.Kind != faults.Partition {
		t.Fatalf("shrunk to %s, want the partition trigger: %v", ev.Kind, min)
	}
	if len(ev.Nodes) != 1 {
		t.Fatalf("partition side not minimized: %v", ev.Nodes)
	}
	// And the healthy protocol must survive the minimal repro.
	tgt := sim.NewFaultLockstep[core.Pointer](core.NewSMM(),
		core.Config[core.Pointer]{G: pathGraph(n), States: legitPathSMM()})
	defer tgt.Close()
	if rep := faults.RunSchedule[core.Pointer](core.NewSMM(), tgt, min, faults.SMMChecker, faults.Options{}); rep.Failed() {
		t.Fatalf("healthy SMM fails the minimal repro: %v", rep.Failures)
	}
}

func TestShrinkSynthetic(t *testing.T) {
	sched := faults.Generate(2, cycleGraph(10), faults.GenParams{Events: 10})
	// Failure: any Drop with Dur >= 2 present.
	failing := func(s faults.Schedule) bool {
		for _, ev := range s.Events {
			if ev.Kind == faults.Drop && ev.Dur >= 2 {
				return true
			}
		}
		return false
	}
	if !failing(sched) {
		t.Skip("generated schedule lacks a qualifying drop; adjust seed")
	}
	min := faults.Shrink(sched, failing, 0)
	if len(min.Events) != 1 {
		t.Fatalf("shrunk to %d events, want 1: %v", len(min.Events), min)
	}
	ev := min.Events[0]
	if ev.Kind != faults.Drop || ev.Dur != 2 || len(ev.Links) != 1 {
		t.Fatalf("not minimal: %+v", ev)
	}
}

// scriptTarget is a fake Target whose per-round move counts follow a
// script, for exercising the monitor's closure accounting in isolation.
type scriptTarget struct {
	g      *graph.Graph
	states []bool
	moves  []int
	r      int
}

func (s *scriptTarget) Model() string                        { return "script" }
func (s *scriptTarget) Topology() *graph.Graph               { return s.g }
func (s *scriptTarget) Config() core.Config[bool]            { return core.Config[bool]{G: s.g, States: s.states} }
func (s *scriptTarget) ReadState(v graph.NodeID) bool        { return s.states[v] }
func (s *scriptTarget) WriteState(v graph.NodeID, b bool)    { s.states[v] = b }
func (s *scriptTarget) SetLink(e graph.Edge, present bool)   {}
func (s *scriptTarget) DropLink(e graph.Edge, rounds int)    {}
func (s *scriptTarget) Freeze(v graph.NodeID, rounds int)    {}
func (s *scriptTarget) Warmup() int                          { return 0 }
func (s *scriptTarget) DetectionLag() int                    { return 0 }
func (s *scriptTarget) QuietRounds() int                     { return 1 }
func (s *scriptTarget) Close()                               {}
func (s *scriptTarget) Step() int {
	m := 0
	if s.r < len(s.moves) {
		m = s.moves[s.r]
	}
	s.r++
	return m
}

// TestMonitorClosureViolation drives the monitor with a scripted run
// that goes quiet, then moves again with no fault in flight — a direct
// closure violation.
func TestMonitorClosureViolation(t *testing.T) {
	okChecker := func(cfg core.Config[bool]) error { return nil }
	tgt := &scriptTarget{
		g:      cycleGraph(4),
		states: make([]bool, 4),
		// Rounds 1-2 active (Init recovery), quiet at 3-4 (epoch
		// closes), then a burst at rounds 5-6 violating closure.
		moves: []int{2, 1, 0, 0, 3, 1, 0, 0, 0, 0},
	}
	rep := faults.RunSchedule[bool](core.NewSMI(), tgt, faults.Schedule{Seed: 1}, okChecker, faults.Options{})
	if rep.ClosureViolations == 0 {
		t.Fatalf("scripted closure violation not detected: %+v", rep)
	}
	if !rep.Failed() {
		t.Fatal("closure violation did not fail the report")
	}
}

// TestMonitorBoundViolation scripts a run that keeps moving past the
// bound: the monitor must flag the epoch.
func TestMonitorBoundViolation(t *testing.T) {
	okChecker := func(cfg core.Config[bool]) error { return nil }
	n := 4
	moves := make([]int, 4*n)
	for i := range moves {
		moves[i] = 1 // never quiet within bound n+1
	}
	tgt := &scriptTarget{g: cycleGraph(n), states: make([]bool, n), moves: moves}
	rep := faults.RunSchedule[bool](core.NewSMI(), tgt, faults.Schedule{Seed: 1}, okChecker,
		faults.Options{MaxRounds: 3 * n})
	if !rep.Failed() {
		t.Fatalf("bound violation not detected: %+v", rep)
	}
}

// TestSMIRecoveryLockstep runs an SMI campaign and records the O(n)
// constant: every epoch must converge, stay legitimate, and the
// observed maximum must respect the configured bound.
func TestSMIRecoveryLockstep(t *testing.T) {
	const n = 10
	g := cycleGraph(n)
	p := core.NewSMI()
	rng := rand.New(rand.NewSource(17))
	states := make([]bool, n)
	for v := range states {
		states[v] = p.Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), rng)
	}
	sched := faults.Generate(21, g, faults.GenParams{Events: 6, Start: n + 2, Gap: 3 * n})
	tgt := sim.NewFaultLockstep[bool](core.NewSMI(), core.Config[bool]{G: g, States: states})
	defer tgt.Close()
	rep := faults.RunSchedule[bool](core.NewSMI(), tgt, sched, faults.SMIChecker,
		faults.Options{BoundFactor: 2, BoundSlack: 2})
	if rep.Failed() {
		t.Fatalf("SMI campaign failed: %v", rep.Failures)
	}
	if rep.MaxEpochRounds() > 2*n+2 {
		t.Fatalf("SMI re-convergence constant too large: %d rounds", rep.MaxEpochRounds())
	}
}
