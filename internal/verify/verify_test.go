package verify

import (
	"math/rand"
	"testing"

	"selfstab/internal/graph"
)

func TestIsMatching(t *testing.T) {
	g := graph.Path(5)
	if err := IsMatching(g, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := IsMatching(g, nil); err != nil {
		t.Fatal("empty matching rejected:", err)
	}
	if IsMatching(g, []graph.Edge{graph.NewEdge(0, 2)}) == nil {
		t.Fatal("non-edge accepted")
	}
	if IsMatching(g, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2)}) == nil {
		t.Fatal("shared endpoint accepted")
	}
}

func TestIsMaximalMatching(t *testing.T) {
	g := graph.Path(5) // 0-1-2-3-4
	if err := IsMaximalMatching(g, []graph.Edge{graph.NewEdge(1, 2), graph.NewEdge(3, 4)}); err != nil {
		t.Fatal(err)
	}
	// {0,1} alone leaves edge {2,3} unsaturated.
	if IsMaximalMatching(g, []graph.Edge{graph.NewEdge(0, 1)}) == nil {
		t.Fatal("non-maximal matching accepted")
	}
	// Empty matching on an edgeless graph is maximal.
	if err := IsMaximalMatching(graph.New(3), nil); err != nil {
		t.Fatal(err)
	}
	// Invalid matchings propagate their error.
	if IsMaximalMatching(g, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2)}) == nil {
		t.Fatal("invalid matching accepted by maximality check")
	}
}

func TestIsIndependentSet(t *testing.T) {
	g := graph.Cycle(5)
	if err := IsIndependentSet(g, []graph.NodeID{0, 2}); err != nil {
		t.Fatal(err)
	}
	if IsIndependentSet(g, []graph.NodeID{0, 1}) == nil {
		t.Fatal("adjacent pair accepted")
	}
	if IsIndependentSet(g, []graph.NodeID{0, 0}) == nil {
		t.Fatal("duplicate accepted")
	}
	if IsIndependentSet(g, []graph.NodeID{9}) == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestIsMaximalIndependentSet(t *testing.T) {
	g := graph.Cycle(5)
	if err := IsMaximalIndependentSet(g, []graph.NodeID{0, 2}); err != nil {
		t.Fatal(err)
	}
	if IsMaximalIndependentSet(g, []graph.NodeID{0}) == nil {
		t.Fatal("non-maximal set accepted")
	}
	if IsMaximalIndependentSet(g, []graph.NodeID{0, 1}) == nil {
		t.Fatal("dependent set accepted")
	}
}

func TestIsDominatingSet(t *testing.T) {
	g := graph.Star(5)
	if err := IsDominatingSet(g, []graph.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	if IsDominatingSet(g, []graph.NodeID{1}) == nil {
		t.Fatal("leaf alone dominates star?")
	}
	if IsDominatingSet(g, []graph.NodeID{-1}) == nil {
		t.Fatal("out-of-range accepted")
	}
	// Isolated node must itself be in the set.
	g2 := graph.New(2)
	if IsDominatingSet(g2, []graph.NodeID{0}) == nil {
		t.Fatal("isolated node 1 not dominated but accepted")
	}
}

func TestIsMinimalDominatingSet(t *testing.T) {
	g := graph.Path(4)
	if err := IsMinimalDominatingSet(g, []graph.NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	// {0,1,3}: 0 is redundant.
	if IsMinimalDominatingSet(g, []graph.NodeID{0, 1, 3}) == nil {
		t.Fatal("non-minimal set accepted")
	}
	if IsMinimalDominatingSet(g, []graph.NodeID{0}) == nil {
		t.Fatal("non-dominating set accepted")
	}
}

func TestIsProperColoring(t *testing.T) {
	g := graph.Cycle(4)
	if err := IsProperColoring(g, []int{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if IsProperColoring(g, []int{0, 0, 1, 1}) == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if IsProperColoring(g, []int{0, 1}) == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestMaxMatchingSize(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Path(2), 1},
		{graph.Path(5), 2},
		{graph.Cycle(6), 3},
		{graph.Cycle(7), 3},
		{graph.Star(6), 1},
		{graph.Complete(6), 3},
		{graph.CompleteBipartite(3, 5), 3},
		{graph.New(4), 0},
		{graph.Grid(2, 3), 3},
	}
	for i, c := range cases {
		if got := MaxMatchingSize(c.g); got != c.want {
			t.Errorf("case %d (%v): MaxMatchingSize = %d, want %d", i, c.g, got, c.want)
		}
	}
}

func TestMaxIndependentSetSize(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Path(5), 3},
		{graph.Cycle(6), 3},
		{graph.Cycle(7), 3},
		{graph.Star(6), 5},
		{graph.Complete(6), 1},
		{graph.CompleteBipartite(3, 5), 5},
		{graph.New(4), 4},
		{graph.Grid(3, 3), 5},
	}
	for i, c := range cases {
		if got := MaxIndependentSetSize(c.g); got != c.want {
			t.Errorf("case %d (%v): MaxIndependentSetSize = %d, want %d", i, c.g, got, c.want)
		}
	}
}

// Property: any maximal matching has size >= half the maximum matching
// (classical 2-approximation), checked on small random graphs with a
// greedy maximal matching.
func TestQuickMaximalMatchingHalfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		g := graph.RandomConnected(10, 0.3, rng)
		var m []graph.Edge
		used := make([]bool, g.N())
		for _, e := range g.Edges() {
			if !used[e.U] && !used[e.V] {
				m = append(m, e)
				used[e.U], used[e.V] = true, true
			}
		}
		if err := IsMaximalMatching(g, m); err != nil {
			t.Fatal(err)
		}
		if opt := MaxMatchingSize(g); 2*len(m) < opt {
			t.Fatalf("greedy %d < half of optimum %d", len(m), opt)
		}
	}
}
