// Package verify provides the ground-truth graph-theoretic predicates the
// tests and experiments check protocol output against: matchings, maximal
// matchings, independent sets, maximal independent sets, and dominating
// sets, plus brute-force optima on small graphs for quality comparisons.
package verify

import (
	"fmt"

	"selfstab/internal/graph"
)

// IsMatching reports whether edges form a matching in g: every edge is
// present in g and no two edges share an endpoint. A non-nil error
// explains the first violation.
func IsMatching(g *graph.Graph, edges []graph.Edge) error {
	used := make(map[graph.NodeID]graph.Edge, 2*len(edges))
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("verify: matching edge %v not in graph", e)
		}
		for _, v := range [2]graph.NodeID{e.U, e.V} {
			if prev, dup := used[v]; dup {
				return fmt.Errorf("verify: node %d in both %v and %v", v, prev, e)
			}
			used[v] = e
		}
	}
	return nil
}

// IsMaximalMatching reports whether edges form a maximal matching in g:
// a matching such that every edge of g has a matched endpoint.
func IsMaximalMatching(g *graph.Graph, edges []graph.Edge) error {
	if err := IsMatching(g, edges); err != nil {
		return err
	}
	saturated := make([]bool, g.N())
	for _, e := range edges {
		saturated[e.U] = true
		saturated[e.V] = true
	}
	for _, e := range g.Edges() {
		if !saturated[e.U] && !saturated[e.V] {
			return fmt.Errorf("verify: matching not maximal: edge %v has no matched endpoint", e)
		}
	}
	return nil
}

// IsIndependentSet reports whether set is independent in g (no two
// members adjacent). Duplicate and out-of-range IDs are violations.
func IsIndependentSet(g *graph.Graph, set []graph.NodeID) error {
	in := make([]bool, g.N())
	for _, v := range set {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("verify: node %d out of range", v)
		}
		if in[v] {
			return fmt.Errorf("verify: node %d listed twice", v)
		}
		in[v] = true
	}
	for _, v := range set {
		for _, u := range g.Neighbors(v) {
			if in[u] {
				return fmt.Errorf("verify: adjacent members %d and %d", v, u)
			}
		}
	}
	return nil
}

// IsMaximalIndependentSet reports whether set is a maximal independent
// set in g: independent, and every node outside has a neighbor inside.
// (A maximal independent set is exactly an independent dominating set.)
func IsMaximalIndependentSet(g *graph.Graph, set []graph.NodeID) error {
	if err := IsIndependentSet(g, set); err != nil {
		return err
	}
	return IsDominatingSet(g, set)
}

// IsDominatingSet reports whether every node of g is in set or adjacent
// to a member of set.
func IsDominatingSet(g *graph.Graph, set []graph.NodeID) error {
	in := make([]bool, g.N())
	for _, v := range set {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("verify: node %d out of range", v)
		}
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("verify: node %d not dominated", v)
		}
	}
	return nil
}

// IsMinimalDominatingSet reports whether set is dominating and no proper
// subset obtained by removing one member still dominates.
func IsMinimalDominatingSet(g *graph.Graph, set []graph.NodeID) error {
	if err := IsDominatingSet(g, set); err != nil {
		return err
	}
	for i, v := range set {
		reduced := make([]graph.NodeID, 0, len(set)-1)
		reduced = append(reduced, set[:i]...)
		reduced = append(reduced, set[i+1:]...)
		if IsDominatingSet(g, reduced) == nil {
			return fmt.Errorf("verify: dominating set not minimal: %d is redundant", v)
		}
	}
	return nil
}

// IsProperColoring reports whether color (indexed by node) assigns
// adjacent nodes distinct colors.
func IsProperColoring(g *graph.Graph, color []int) error {
	if len(color) != g.N() {
		return fmt.Errorf("verify: %d colors for %d nodes", len(color), g.N())
	}
	for _, e := range g.Edges() {
		if color[e.U] == color[e.V] {
			return fmt.Errorf("verify: edge %v monochromatic (color %d)", e, color[e.U])
		}
	}
	return nil
}

// MaxMatchingSize computes the maximum matching size of g by exhaustive
// search with memoized branching on the lowest unsaturated node. Only for
// small graphs (exponential worst case); used to measure the quality
// ratio of the maximal matchings SMM produces.
func MaxMatchingSize(g *graph.Graph) int {
	return maxMatch(g, 0, make([]bool, g.N()))
}

func maxMatch(g *graph.Graph, from graph.NodeID, used []bool) int {
	n := graph.NodeID(g.N())
	v := from
	for v < n && used[v] {
		v++
	}
	if v >= n {
		return 0
	}
	// Either v stays unmatched...
	best := maxMatch(g, v+1, used)
	// ...or v matches one of its free neighbors.
	used[v] = true
	for _, u := range g.Neighbors(v) {
		if !used[u] {
			used[u] = true
			if r := 1 + maxMatch(g, v+1, used); r > best {
				best = r
			}
			used[u] = false
		}
	}
	used[v] = false
	return best
}

// MaxIndependentSetSize computes the maximum independent set size of g by
// branch and bound on the highest-degree remaining node. Only for small
// graphs.
func MaxIndependentSetSize(g *graph.Graph) int {
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	return maxIS(g, alive)
}

func maxIS(g *graph.Graph, alive []bool) int {
	// Pick an alive node of maximum degree among alive nodes.
	pick := graph.NodeID(-1)
	pickDeg := -1
	for v := 0; v < g.N(); v++ {
		if !alive[v] {
			continue
		}
		d := 0
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if alive[u] {
				d++
			}
		}
		if d > pickDeg {
			pick, pickDeg = graph.NodeID(v), d
		}
	}
	if pick == -1 {
		return 0
	}
	if pickDeg == 0 {
		// All remaining nodes are isolated: take them all.
		count := 0
		for v := 0; v < g.N(); v++ {
			if alive[v] {
				count++
			}
		}
		return count
	}
	// Branch: exclude pick...
	alive[pick] = false
	best := maxIS(g, alive)
	// ...or include pick (removes its alive neighbors too).
	var removed []graph.NodeID
	for _, u := range g.Neighbors(pick) {
		if alive[u] {
			alive[u] = false
			removed = append(removed, u)
		}
	}
	if r := 1 + maxIS(g, alive); r > best {
		best = r
	}
	for _, u := range removed {
		alive[u] = true
	}
	alive[pick] = true
	return best
}
