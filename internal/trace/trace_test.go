package trace

import (
	"strings"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
)

func TestRecordAndMetric(t *testing.T) {
	tr := New("SMM", "matched")
	if err := tr.Record(0, 0, map[string]float64{"matched": 0}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Record(1, 3, map[string]float64{"matched": 2}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	m := tr.Metric("matched")
	if len(m) != 2 || m[0] != 0 || m[1] != 2 {
		t.Fatalf("Metric = %v", m)
	}
}

func TestRecordRejectsUnknownMetric(t *testing.T) {
	tr := New("SMM", "matched")
	if err := tr.Record(0, 0, map[string]float64{"bogus": 1}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New("SMI", "inset")
	tr.Record(0, 0, map[string]float64{"inset": 1})
	tr.Record(1, 2, map[string]float64{"inset": 3})
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "round,moves,inset" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,0,1" || lines[2] != "1,2,3" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New("SMM", "matched", "M")
	tr.Record(1, 4, map[string]float64{"matched": 2, "M": 2})
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Protocol != "SMM" || back.Len() != 1 || back.Rows[0].Metrics["matched"] != 2 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestRecordSMMOverRun(t *testing.T) {
	g := graph.Path(6)
	p := core.NewSMM()
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	tr := New(p.Name(), SMMColumns...)
	if err := RecordSMM(tr, 0, 0, cfg); err != nil {
		t.Fatal(err)
	}
	l := sim.NewLockstep[core.Pointer](p, cfg)
	res := l.RunHook(g.N()+2, func(round int, c core.Config[core.Pointer]) {
		if err := RecordSMM(tr, round, 0, c); err != nil {
			t.Fatal(err)
		}
	})
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	// Final row must show everyone matched on an even path.
	final := tr.Rows[tr.Len()-1]
	if final.Metrics["M"] != 6 {
		t.Fatalf("final census M = %v, want 6", final.Metrics["M"])
	}
	// A' and PA columns must be zero from round 1 onward (Lemma 7).
	for _, r := range tr.Rows[1:] {
		if r.Metrics["A1"] != 0 || r.Metrics["PA"] != 0 {
			t.Fatalf("round %d: A1=%v PA=%v", r.Round, r.Metrics["A1"], r.Metrics["PA"])
		}
	}
}

func TestRecordSMI(t *testing.T) {
	g := graph.Star(4)
	cfg := core.NewConfig[bool](g)
	cfg.States[0] = true
	tr := New("SMI", SMIColumns...)
	if err := RecordSMI(tr, 0, 0, cfg); err != nil {
		t.Fatal(err)
	}
	if tr.Rows[0].Metrics["inset"] != 1 {
		t.Fatalf("inset = %v", tr.Rows[0].Metrics["inset"])
	}
}
