// Package trace records round-by-round observations of a protocol run —
// state snapshots, SMM type censuses, matching/set sizes — and exports
// them as CSV or JSON for the experiment reports. A Trace is protocol
// agnostic: recorders specific to SMM and SMI live alongside it.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"selfstab/internal/core"
)

// Row is one observed round.
type Row struct {
	// Round is the 1-based round index (0 = the initial configuration).
	Round int `json:"round"`
	// Moves is the number of nodes that moved in this round (0 for the
	// initial row).
	Moves int `json:"moves"`
	// Metrics holds named observations (e.g. "matched", "census.M").
	Metrics map[string]float64 `json:"metrics"`
}

// Trace is an ordered list of rows sharing a metric schema.
type Trace struct {
	// Protocol names the traced protocol.
	Protocol string `json:"protocol"`
	// Columns fixes the metric order for CSV export.
	Columns []string `json:"columns"`
	Rows    []Row    `json:"rows"`
}

// New creates a trace for a protocol with the given metric columns.
func New(protocol string, columns ...string) *Trace {
	return &Trace{Protocol: protocol, Columns: columns}
}

// Record appends a row. Metrics not in the schema are rejected so CSV and
// JSON exports always agree; the error names the smallest offending
// metric so the message is independent of map iteration order.
func (t *Trace) Record(round, moves int, metrics map[string]float64) error {
	var unknown []string
	for k := range metrics {
		if !t.hasColumn(k) {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("trace: metric %q not in schema %v", unknown[0], t.Columns)
	}
	t.Rows = append(t.Rows, Row{Round: round, Moves: moves, Metrics: metrics})
	return nil
}

func (t *Trace) hasColumn(name string) bool {
	for _, c := range t.Columns {
		if c == name {
			return true
		}
	}
	return false
}

// Len returns the number of recorded rows.
func (t *Trace) Len() int { return len(t.Rows) }

// Metric returns the series of one metric across rounds.
func (t *Trace) Metric(name string) []float64 {
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Metrics[name]
	}
	return out
}

// WriteCSV exports the trace with header round,moves,<columns...>.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"round", "moves"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, r := range t.Rows {
		rec[0] = strconv.Itoa(r.Round)
		rec[1] = strconv.Itoa(r.Moves)
		for i, c := range t.Columns {
			rec[2+i] = strconv.FormatFloat(r.Metrics[c], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON parses a trace previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	return &t, nil
}

// SMMColumns is the metric schema RecordSMM emits: the matched-node
// count and the six-type census.
var SMMColumns = []string{"matched", "M", "A0", "A1", "PA", "PM", "PP"}

// RecordSMM appends a row describing an SMM configuration.
func RecordSMM(t *Trace, round, moves int, cfg core.Config[core.Pointer]) error {
	types := core.ClassifySMM(cfg)
	census := core.CensusOf(types)
	return t.Record(round, moves, map[string]float64{
		"matched": float64(census[core.TypeM]),
		"M":       float64(census[core.TypeM]),
		"A0":      float64(census[core.TypeA0]),
		"A1":      float64(census[core.TypeA1]),
		"PA":      float64(census[core.TypePA]),
		"PM":      float64(census[core.TypePM]),
		"PP":      float64(census[core.TypePP]),
	})
}

// SMIColumns is the metric schema RecordSMI emits.
var SMIColumns = []string{"inset"}

// RecordSMI appends a row with the independent-set size.
func RecordSMI(t *Trace, round, moves int, cfg core.Config[bool]) error {
	return t.Record(round, moves, map[string]float64{
		"inset": float64(len(core.SetOf(cfg))),
	})
}
