package harness

import (
	"strings"
	"testing"

	"selfstab/internal/beacon"
	"selfstab/internal/runtime"
	"selfstab/internal/sim"
)

// The experiment tables rendered by cmd/experiments must be
// byte-identical whether the executors schedule with the active
// frontier (production default) or with the full-scan reference engine:
// frontier scheduling is an optimization, never an observable change.
func TestExperimentTablesByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	render := func() string {
		var sb strings.Builder
		if _, err := RunAll(QuickOptions(), &sb, false); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	frontier := render()

	sim.SetReferenceScan(true)
	runtime.SetReferenceScan(true)
	beacon.SetReferenceScan(true)
	defer func() {
		sim.SetReferenceScan(false)
		runtime.SetReferenceScan(false)
		beacon.SetReferenceScan(false)
	}()
	reference := render()

	if frontier != reference {
		d := firstDiffLine(frontier, reference)
		t.Fatalf("experiment tables diverged between engines at line %d:\nfrontier:  %q\nreference: %q",
			d.line, d.a, d.b)
	}
}

type diff struct {
	line int
	a, b string
}

func firstDiffLine(a, b string) diff {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) || i < len(lb); i++ {
		va, vb := "", ""
		if i < len(la) {
			va = la[i]
		}
		if i < len(lb) {
			vb = lb[i]
		}
		if va != vb {
			return diff{line: i + 1, a: va, b: vb}
		}
	}
	return diff{}
}
