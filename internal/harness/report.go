package harness

import (
	"fmt"
	"io"
)

// Experiment pairs an ID with its runner, for uniform dispatch.
type Experiment struct {
	ID  string
	Run func(Options) *Table
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1SMMConvergence},
		{"E2", E2TypeCensus},
		{"E3", E3MatchingGrowth},
		{"E4", E4Counterexample},
		{"E5", E5SMIConvergence},
		{"E6", E6SMIWave},
		{"E7", E7Baseline},
		{"E8", E8Restabilization},
		{"E9", E9BeaconModel},
		{"E10", E10Extensions},
		{"E11", E11Exhaustive},
		{"E12", E12Staleness},
		{"E13", E13RuleCensus},
		{"E14", E14AdversarialSearch},
		{"E15", E15FaultRecovery},
	}
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, rendering each table to w as it
// completes. markdown selects the markdown renderer. It returns the
// number of failed experiments.
func RunAll(opt Options, w io.Writer, markdown bool) (failed int, err error) {
	for _, e := range All() {
		tbl := e.Run(opt)
		if markdown {
			err = tbl.RenderMarkdown(w)
		} else {
			err = tbl.Render(w)
		}
		if err != nil {
			return failed, err
		}
		if !tbl.Passed {
			failed++
		}
	}
	if _, err := fmt.Fprintf(w, "experiments failed: %d\n", failed); err != nil {
		return failed, err
	}
	return failed, nil
}
