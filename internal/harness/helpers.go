package harness

import (
	"strconv"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
)

func itoa(n int) string { return strconv.Itoa(n) }

func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func cycleGraph(n int) *graph.Graph { return graph.Cycle(n) }

func newLockstepSMM(cfg core.Config[core.Pointer]) *sim.Lockstep[core.Pointer] {
	return sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
}

func newLockstepVariant(cfg core.Config[core.Pointer], v *core.SMM) *sim.Lockstep[core.Pointer] {
	return sim.NewLockstep[core.Pointer](v, cfg)
}

func equalStates(a, b []core.Pointer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
