package harness

import (
	"fmt"
	"math/rand"

	"selfstab/internal/beacon"
	"selfstab/internal/core"
	"selfstab/internal/daemon"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
	"selfstab/internal/protocols"
	"selfstab/internal/sim"
	"selfstab/internal/stats"
	"selfstab/internal/verify"
)

// E6SMIWave measures how SMI's stabilization time tracks the ID-descent
// wave of the Theorem 2 proof sketch: on paths, ascending IDs stabilize
// in O(1) rounds while descending IDs force the wave to traverse the
// whole path; the rounds-vs-n fit quantifies the linearity.
func E6SMIWave(opt Options) *Table {
	t := &Table{
		ID:    "E6",
		Title: "SMI ID-wave scaling (Theorem 2 proof sketch)",
		Claim: "stabilization time is O(n), driven by the descending-ID wave",
		Cols:  []string{"ID order", "rounds per n (fit)", "R²", "max rounds", "max n+1"},
	}
	t.Passed = true
	orders := []struct {
		name string
		perm func(n int, rng *rand.Rand) []graph.NodeID
	}{
		{"ascending", func(n int, _ *rand.Rand) []graph.NodeID { return identityPerm(n) }},
		{"descending", func(n int, _ *rand.Rand) []graph.NodeID { return reversePerm(n) }},
		{"random", func(n int, rng *rand.Rand) []graph.NodeID { return graph.RandomPermutation(n, rng) }},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, ord := range orders {
		var xs, ys []float64
		maxRounds, maxBound := 0, 0
		for _, n := range opt.Sizes {
			g := graph.Path(n).Relabel(ord.perm(n, rng))
			worst := 0
			for trial := 0; trial < opt.Trials; trial++ {
				// From the all-zero state the wave is fully exposed.
				cfg := core.NewConfig[bool](g)
				if trial > 0 { // remaining trials randomize
					cfg.Randomize(core.NewSMI(), rand.New(rand.NewSource(opt.Seed+int64(trial))))
				}
				l := sim.NewLockstep[bool](core.NewSMI(), cfg)
				res := l.Run(n + 2)
				if !res.Stable || res.Rounds > n+1 {
					t.Passed = false
				}
				if res.Rounds > worst {
					worst = res.Rounds
				}
			}
			xs = append(xs, float64(n))
			ys = append(ys, float64(worst))
			if worst > maxRounds {
				maxRounds = worst
				maxBound = n + 1
			}
		}
		fit := stats.FitLine(xs, ys)
		t.AddRow(ord.name, fmt.Sprintf("%.3f", fit.Slope), fmt.Sprintf("%.3f", fit.R2),
			itoa(maxRounds), itoa(maxBound))
	}
	t.Notes = append(t.Notes,
		"paths with relabeled IDs; 'descending' reverses the path so the wave must traverse it")
	return t
}

// E7Baseline reproduces the Section 3 comparison: converting the
// Hsu–Huang central-daemon algorithm to the synchronous model via daemon
// refinement stabilizes, but is slower than the purpose-built SMM.
func E7Baseline(opt Options) *Table {
	t := &Table{
		ID:    "E7",
		Title: "SMM vs. synchronized Hsu–Huang (Section 3)",
		Claim: "the refined central-daemon algorithm is correct but not as fast as SMM",
		Cols:  []string{"topology", "n", "SMM rounds", "refined HH rounds", "slowdown", "both maximal"},
	}
	t.Passed = true
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, topo := range opt.topologies() {
		for _, n := range opt.Sizes {
			if n > 128 && opt.Quick {
				continue
			}
			g := topo.Gen(n, rng)
			var smmRounds, refRounds []float64
			bothMaximal := true
			for trial := 0; trial < opt.Trials; trial++ {
				l, res := runSMM(g, opt.Seed+int64(trial), core.NewSMM())
				if !res.Stable {
					t.Passed = false
				}
				if verify.IsMaximalMatching(g, core.MatchingOf(l.Config())) != nil {
					bothMaximal = false
				}
				smmRounds = append(smmRounds, float64(res.Rounds))

				ref := protocols.Refine[core.Pointer](protocols.NewHsuHuang(), n, opt.Seed+int64(trial))
				cfg := core.NewConfig[protocols.RefState[core.Pointer]](g)
				cfg.Randomize(ref, rand.New(rand.NewSource(opt.Seed+int64(trial))))
				lr := sim.NewLockstep[protocols.RefState[core.Pointer]](ref, cfg)
				rres := lr.Run(500 * n)
				if !rres.Stable {
					t.Passed = false
				}
				inner := core.NewConfig[core.Pointer](g)
				for v, s := range lr.Config().States {
					inner.States[v] = s.Inner
				}
				if verify.IsMaximalMatching(g, core.MatchingOf(inner)) != nil {
					bothMaximal = false
				}
				refRounds = append(refRounds, float64(rres.Rounds))
			}
			if !bothMaximal {
				t.Passed = false
			}
			ms, rs := stats.Mean(smmRounds), stats.Mean(refRounds)
			slowdown := rs / ms
			if slowdown <= 1 {
				t.Passed = false // the paper's claim is that SMM is faster
			}
			t.AddRow(topo.Name, itoa(n), fmt.Sprintf("%.1f", ms), fmt.Sprintf("%.1f", rs),
				fmt.Sprintf("%.1fx", slowdown), boolMark(bothMaximal))
		}
	}
	return t
}

// E8Restabilization reproduces the fault-tolerance claim: after k link
// failures/creations both protocols re-stabilize, and the disruption
// (nodes whose state changes) stays commensurate with k rather than n.
func E8Restabilization(opt Options) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Re-stabilization after topology changes",
		Claim: "the algorithms detect link failures/creations and readjust the predicate",
		Cols:  []string{"protocol", "k events", "re-rounds mean", "re-rounds max", "disrupted mean", "n"},
	}
	t.Passed = true
	n := opt.Sizes[len(opt.Sizes)-1]
	if n > 128 {
		n = 128
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, proto := range []string{"SMM", "SMI"} {
		for _, k := range []int{1, 2, 4, 8} {
			var rounds, disrupted []float64
			for trial := 0; trial < opt.Trials; trial++ {
				g := graph.RandomConnected(n, 0.1, rng)
				switch proto {
				case "SMM":
					r, d, ok := restabilizeSMM(g, k, opt.Seed+int64(trial), rng)
					if !ok {
						t.Passed = false
					}
					rounds = append(rounds, float64(r))
					disrupted = append(disrupted, float64(d))
				case "SMI":
					r, d, ok := restabilizeSMI(g, k, opt.Seed+int64(trial), rng)
					if !ok {
						t.Passed = false
					}
					rounds = append(rounds, float64(r))
					disrupted = append(disrupted, float64(d))
				}
			}
			rs := stats.Summarize(rounds)
			ds := stats.Summarize(disrupted)
			t.AddRow(proto, itoa(k), fmt.Sprintf("%.1f", rs.Mean), itoa(int(rs.Max)),
				fmt.Sprintf("%.1f", ds.Mean), itoa(n))
		}
	}
	t.Notes = append(t.Notes,
		"disrupted = nodes whose state differs between the pre-churn and post-churn fixed points")
	return t
}

func restabilizeSMM(g *graph.Graph, k int, seed int64, rng *rand.Rand) (rounds, disrupted int, ok bool) {
	p := core.NewSMM()
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[core.Pointer](p, cfg)
	if res := l.Run(g.N() + 2); !res.Stable {
		return 0, 0, false
	}
	before := append([]core.Pointer(nil), cfg.States...)
	mobility.NewChurn(g, rng).Apply(k)
	core.NormalizeSMM(cfg)
	res := l.Run(g.N() + 2)
	if !res.Stable || verify.IsMaximalMatching(g, core.MatchingOf(l.Config())) != nil {
		return res.Rounds, 0, false
	}
	for v := range before {
		if before[v] != cfg.States[v] {
			disrupted++
		}
	}
	return res.Rounds, disrupted, true
}

func restabilizeSMI(g *graph.Graph, k int, seed int64, rng *rand.Rand) (rounds, disrupted int, ok bool) {
	p := core.NewSMI()
	cfg := core.NewConfig[bool](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[bool](p, cfg)
	if res := l.Run(g.N() + 2); !res.Stable {
		return 0, 0, false
	}
	before := append([]bool(nil), cfg.States...)
	mobility.NewChurn(g, rng).Apply(k)
	res := l.Run(g.N() + 2)
	if !res.Stable || verify.IsMaximalIndependentSet(g, core.SetOf(l.Config())) != nil {
		return res.Rounds, 0, false
	}
	for v := range before {
		if before[v] != cfg.States[v] {
			disrupted++
		}
	}
	return res.Rounds, disrupted, true
}

// E9BeaconModel validates the system-model substitution: under the
// discrete-event beacon layer (jitter, delays, loss, discovery) SMM
// still stabilizes, and with synchronized loss-free beacons the beacon
// round count matches the lockstep count plus the fixed discovery
// warmup.
func E9BeaconModel(opt Options) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Beacon-model fidelity (System Model, Section 2)",
		Claim: "convergence in beacon rounds matches the synchronous analysis; asynchrony and loss only add slack",
		Cols:  []string{"setting", "n", "lockstep rounds", "beacon rounds", "beacons sent", "stable", "maximal"},
	}
	t.Passed = true
	settings := []struct {
		name string
		prm  beacon.Params
	}{
		{"synchronized", beacon.Params{TB: 1, TimeoutFactor: 3, Synchronized: true}},
		{"jitter-10%", beacon.Params{TB: 1, Jitter: 0.10, Delay: 0.05, TimeoutFactor: 3}},
		{"jitter-40%", beacon.Params{TB: 1, Jitter: 0.40, Delay: 0.10, DelayJitter: 0.5, TimeoutFactor: 3}},
		{"loss-10%", beacon.Params{TB: 1, Jitter: 0.10, Delay: 0.05, Loss: 0.10, TimeoutFactor: 4}},
	}
	sizes := opt.Sizes
	if len(sizes) > 3 {
		sizes = sizes[:3]
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, setting := range settings {
		for _, n := range sizes {
			g, _ := graph.RandomUnitDisk(n, 1.2/float64(n), rng)
			trials := opt.Trials
			if trials > 10 {
				trials = 10
			}
			var lockRounds, beacRounds, sent []float64
			stable, maximal := true, true
			for trial := 0; trial < trials; trial++ {
				states := make([]core.Pointer, g.N())
				srng := rand.New(rand.NewSource(opt.Seed + int64(trial)))
				for v := range states {
					states[v] = core.NewSMM().Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), srng)
				}
				cfg := core.NewConfig[core.Pointer](g)
				copy(cfg.States, states)
				l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
				lres := l.Run(n + 2)

				net := beacon.NewNetwork[core.Pointer](core.NewSMM(), g.Clone(),
					append([]core.Pointer(nil), states...), setting.prm, rng)
				bres := net.Run(float64(50*n), 6)
				if !lres.Stable || !bres.Stable {
					stable = false
					t.Passed = false
				}
				if verify.IsMaximalMatching(g, core.MatchingOf(net.Config())) != nil {
					maximal = false
					t.Passed = false
				}
				lockRounds = append(lockRounds, float64(lres.Rounds))
				beacRounds = append(beacRounds, bres.Rounds)
				sent = append(sent, float64(net.LinkStats().Sent))
			}
			t.AddRow(setting.name, itoa(n),
				fmt.Sprintf("%.1f", stats.Mean(lockRounds)),
				fmt.Sprintf("%.1f", stats.Mean(beacRounds)),
				fmt.Sprintf("%.0f", stats.Mean(sent)),
				boolMark(stable), boolMark(maximal))
		}
	}
	t.Notes = append(t.Notes,
		"beacon rounds = time of last protocol move / t_b, including the ~2-round discovery warmup")
	return t
}

// E10Extensions reproduces the conclusion's claim on the other problems
// the introduction motivates: the synchronous model also solves coloring
// (fast, deterministic) and anonymous MIS (randomized), and the daemon
// machinery executes the baselines under classical schedulers.
func E10Extensions(opt Options) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Extensions and daemons (Conclusions)",
		Claim: "central-daemon-solvable problems are solvable in the synchronous model",
		Cols:  []string{"protocol", "model", "n", "rounds/steps mean", "max", "valid"},
	}
	t.Passed = true
	rng := rand.New(rand.NewSource(opt.Seed))
	n := opt.Sizes[len(opt.Sizes)-1]
	if n > 64 {
		n = 64
	}
	trials := opt.Trials
	if trials > 20 {
		trials = 20
	}

	// Grundy coloring, synchronous.
	var rounds []float64
	valid := true
	for trial := 0; trial < trials; trial++ {
		g := graph.RandomConnected(n, 0.15, rng)
		p := protocols.NewColoring()
		cfg := core.NewConfig[int](g)
		cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed+int64(trial))))
		l := sim.NewLockstep[int](p, cfg)
		res := l.Run(n + 2)
		if !res.Stable || verify.IsProperColoring(g, l.Config().States) != nil {
			valid = false
			t.Passed = false
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	s := stats.Summarize(rounds)
	t.AddRow("Coloring", "synchronous", itoa(n), fmt.Sprintf("%.1f", s.Mean), itoa(int(s.Max)), boolMark(valid))

	// Randomized anonymous MIS, synchronous.
	rounds, valid = nil, true
	for trial := 0; trial < trials; trial++ {
		g := graph.RandomConnected(n, 0.15, rng)
		p := protocols.NewRandMIS(n, opt.Seed+int64(trial))
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed+int64(trial))))
		l := sim.NewLockstep[bool](p, cfg)
		res := l.Run(1000 * n)
		if !res.Stable || verify.IsMaximalIndependentSet(g, core.SetOf(l.Config())) != nil {
			valid = false
			t.Passed = false
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	s = stats.Summarize(rounds)
	t.AddRow("RandMIS", "synchronous", itoa(n), fmt.Sprintf("%.1f", s.Mean), itoa(int(s.Max)), boolMark(valid))

	// Hsu–Huang under the classical daemons.
	for _, strat := range []daemon.Pick{daemon.PickRandom, daemon.PickAdversarial} {
		var steps []float64
		valid = true
		dTrials := trials
		if strat == daemon.PickAdversarial && dTrials > 5 {
			dTrials = 5 // the greedy adversary is O(n²) per step
		}
		for trial := 0; trial < dTrials; trial++ {
			g := graph.RandomConnected(n, 0.15, rng)
			p := protocols.NewHsuHuang()
			cfg := core.NewConfig[core.Pointer](g)
			cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed+int64(trial))))
			r := daemon.NewRunner[core.Pointer](p, cfg, daemon.NewCentral[core.Pointer](strat, rng))
			res := r.Run(50 * n * n)
			if !res.Stable || verify.IsMaximalMatching(g, core.MatchingOf(r.Config())) != nil {
				valid = false
				t.Passed = false
			}
			steps = append(steps, float64(res.Steps))
		}
		s = stats.Summarize(steps)
		t.AddRow("HsuHuang", "central-"+strat.String(), itoa(n),
			fmt.Sprintf("%.1f", s.Mean), itoa(int(s.Max)), boolMark(valid))
	}

	// BFS spanning tree (the multicast-tree maintenance the paper's
	// introduction motivates), synchronous, from states with fake roots.
	rounds, valid = nil, true
	for trial := 0; trial < trials; trial++ {
		g := graph.RandomConnected(n, 0.15, rng)
		p := protocols.NewSpanningTree(n)
		cfg := core.NewConfig[protocols.TreeState](g)
		cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed+int64(trial))))
		l := sim.NewLockstep[protocols.TreeState](p, cfg)
		res := l.Run(5*n + 10)
		if !res.Stable || protocols.VerifyTree(g, l.Config().States) != nil {
			valid = false
			t.Passed = false
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	s = stats.Summarize(rounds)
	t.AddRow("SpanningTree", "synchronous", itoa(n), fmt.Sprintf("%.1f", s.Mean), itoa(int(s.Max)), boolMark(valid))

	// SMI under a distributed daemon (robustness beyond the paper).
	var steps []float64
	valid = true
	for trial := 0; trial < trials; trial++ {
		g := graph.RandomConnected(n, 0.15, rng)
		p := core.NewSMI()
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed+int64(trial))))
		r := daemon.NewRunner[bool](p, cfg, daemon.NewDistributed[bool](0.5, rng))
		res := r.Run(200 * n)
		if !res.Stable || verify.IsMaximalIndependentSet(g, core.SetOf(r.Config())) != nil {
			valid = false
			t.Passed = false
		}
		steps = append(steps, float64(res.Steps))
	}
	s = stats.Summarize(steps)
	t.AddRow("SMI", "distributed-0.50", itoa(n), fmt.Sprintf("%.1f", s.Mean), itoa(int(s.Max)), boolMark(valid))

	return t
}

func identityPerm(n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := range p {
		p[i] = graph.NodeID(i)
	}
	return p
}

func reversePerm(n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := range p {
		p[i] = graph.NodeID(n - 1 - i)
	}
	return p
}
