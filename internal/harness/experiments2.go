package harness

import (
	"fmt"
	"math/rand"

	"selfstab/internal/beacon"
	"selfstab/internal/core"
	"selfstab/internal/daemon"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
	"selfstab/internal/protocols"
	"selfstab/internal/sim"
	"selfstab/internal/stats"
	"selfstab/internal/verify"
)

// E6SMIWave measures how SMI's stabilization time tracks the ID-descent
// wave of the Theorem 2 proof sketch: on paths, ascending IDs stabilize
// in O(1) rounds while descending IDs force the wave to traverse the
// whole path; the rounds-vs-n fit quantifies the linearity.
func E6SMIWave(opt Options) *Table {
	t := &Table{
		ID:    "E6",
		Title: "SMI ID-wave scaling (Theorem 2 proof sketch)",
		Claim: "stabilization time is O(n), driven by the descending-ID wave",
		Cols:  []string{"ID order", "rounds per n (fit)", "R²", "max rounds", "max n+1"},
	}
	t.Passed = true
	orders := []struct {
		name string
		perm func(n int, rng *rand.Rand) []graph.NodeID
	}{
		{"ascending", func(n int, _ *rand.Rand) []graph.NodeID { return identityPerm(n) }},
		{"descending", func(n int, _ *rand.Rand) []graph.NodeID { return reversePerm(n) }},
		{"random", func(n int, rng *rand.Rand) []graph.NodeID { return graph.RandomPermutation(n, rng) }},
	}
	graphs := make([][]*graph.Graph, len(orders))
	for oi, ord := range orders {
		graphs[oi] = make([]*graph.Graph, len(opt.Sizes))
		for si, n := range opt.Sizes {
			rng := cellRand(opt.Seed, "E6", ord.name+"/perm", n, -1)
			graphs[oi][si] = graph.Path(n).Relabel(ord.perm(n, rng))
		}
	}
	type cell struct {
		rounds  int
		inBound bool
	}
	total := len(orders) * len(opt.Sizes) * opt.Trials
	res := mapCells(opt.workers(), total, func(i int) cell {
		trial := i % opt.Trials
		si := (i / opt.Trials) % len(opt.Sizes)
		oi := i / (opt.Trials * len(opt.Sizes))
		n := opt.Sizes[si]
		g := graphs[oi][si]
		// From the all-zero state the wave is fully exposed.
		cfg := core.NewConfig[bool](g)
		if trial > 0 { // remaining trials randomize
			seed := DeriveSeed(opt.Seed, "E6", orders[oi].name, n, trial)
			cfg.Randomize(core.NewSMI(), rand.New(rand.NewSource(seed)))
		}
		l := sim.NewLockstep[bool](core.NewSMI(), cfg)
		r := l.Run(n + 2)
		return cell{rounds: r.Rounds, inBound: r.Stable && r.Rounds <= n+1}
	})
	for oi, ord := range orders {
		var xs, ys []float64
		maxRounds, maxBound := 0, 0
		for si, n := range opt.Sizes {
			worst := 0
			for trial := 0; trial < opt.Trials; trial++ {
				c := res[(oi*len(opt.Sizes)+si)*opt.Trials+trial]
				if !c.inBound {
					t.Passed = false
				}
				if c.rounds > worst {
					worst = c.rounds
				}
				t.Cells++
			}
			xs = append(xs, float64(n))
			ys = append(ys, float64(worst))
			if worst > maxRounds {
				maxRounds = worst
				maxBound = n + 1
			}
		}
		fit := stats.FitLine(xs, ys)
		t.AddRow(ord.name, fmt.Sprintf("%.3f", fit.Slope), fmt.Sprintf("%.3f", fit.R2),
			itoa(maxRounds), itoa(maxBound))
	}
	t.Notes = append(t.Notes,
		"paths with relabeled IDs; 'descending' reverses the path so the wave must traverse it")
	return t
}

// E7Baseline reproduces the Section 3 comparison: converting the
// Hsu–Huang central-daemon algorithm to the synchronous model via daemon
// refinement stabilizes, but is slower than the purpose-built SMM.
func E7Baseline(opt Options) *Table {
	t := &Table{
		ID:    "E7",
		Title: "SMM vs. synchronized Hsu–Huang (Section 3)",
		Claim: "the refined central-daemon algorithm is correct but not as fast as SMM",
		Cols:  []string{"topology", "n", "SMM rounds", "refined HH rounds", "slowdown", "both maximal"},
	}
	t.Passed = true
	gridOpt := opt
	gridOpt.Sizes = nil
	for _, n := range opt.Sizes {
		if n > 128 && opt.Quick {
			continue
		}
		gridOpt.Sizes = append(gridOpt.Sizes, n)
	}
	type cell struct {
		smmRounds float64
		refRounds float64
		stable    bool
		bothMax   bool
	}
	res, _ := trialGrid(gridOpt, "E7", func(_ Topology, g *graph.Graph, n, trial int, seed int64) cell {
		c := cell{stable: true, bothMax: true}
		l, r := runSMM(g, seed, core.NewSMM())
		if !r.Stable {
			c.stable = false
		}
		if verify.IsMaximalMatching(g, core.MatchingOf(l.Config())) != nil {
			c.bothMax = false
		}
		c.smmRounds = float64(r.Rounds)

		ref := protocols.Refine[core.Pointer](protocols.NewHsuHuang(), n, seed)
		cfg := core.NewConfig[protocols.RefState[core.Pointer]](g)
		cfg.Randomize(ref, rand.New(rand.NewSource(seed)))
		lr := sim.NewLockstep[protocols.RefState[core.Pointer]](ref, cfg)
		rres := lr.Run(500 * n)
		if !rres.Stable {
			c.stable = false
		}
		inner := core.NewConfig[core.Pointer](g)
		for v, s := range lr.Config().States {
			inner.States[v] = s.Inner
		}
		if verify.IsMaximalMatching(g, core.MatchingOf(inner)) != nil {
			c.bothMax = false
		}
		c.refRounds = float64(rres.Rounds)
		return c
	})
	for ti, topo := range gridOpt.topologies() {
		for si, n := range gridOpt.Sizes {
			var smmRounds, refRounds []float64
			bothMaximal := true
			for _, c := range res[ti][si] {
				if !c.stable {
					t.Passed = false
				}
				if !c.bothMax {
					bothMaximal = false
				}
				smmRounds = append(smmRounds, c.smmRounds)
				refRounds = append(refRounds, c.refRounds)
				t.Cells++
			}
			if !bothMaximal {
				t.Passed = false
			}
			ms, rs := stats.Mean(smmRounds), stats.Mean(refRounds)
			slowdown := rs / ms
			if slowdown <= 1 {
				t.Passed = false // the paper's claim is that SMM is faster
			}
			t.AddRow(topo.Name, itoa(n), fmt.Sprintf("%.1f", ms), fmt.Sprintf("%.1f", rs),
				fmt.Sprintf("%.1fx", slowdown), boolMark(bothMaximal))
		}
	}
	return t
}

// E8Restabilization reproduces the fault-tolerance claim: after k link
// failures/creations both protocols re-stabilize, and the disruption
// (nodes whose state changes) stays commensurate with k rather than n.
func E8Restabilization(opt Options) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Re-stabilization after topology changes",
		Claim: "the algorithms detect link failures/creations and readjust the predicate",
		Cols:  []string{"protocol", "k events", "re-rounds mean", "re-rounds max", "disrupted mean", "n"},
	}
	t.Passed = true
	n := opt.Sizes[len(opt.Sizes)-1]
	if n > 128 {
		n = 128
	}
	protos := []string{"SMM", "SMI"}
	ks := []int{1, 2, 4, 8}
	type cell struct {
		rounds    int
		disrupted int
		ok        bool
	}
	total := len(protos) * len(ks) * opt.Trials
	res := mapCells(opt.workers(), total, func(i int) cell {
		trial := i % opt.Trials
		ki := (i / opt.Trials) % len(ks)
		proto := protos[i/(opt.Trials*len(ks))]
		k := ks[ki]
		seed := DeriveSeed(opt.Seed, "E8", proto, k, trial)
		rng := cellRand(opt.Seed, "E8", proto+"/churn", k, trial)
		g := graph.RandomConnected(n, 0.1, rng)
		var c cell
		switch proto {
		case "SMM":
			c.rounds, c.disrupted, c.ok = restabilizeSMM(g, k, seed, rng)
		case "SMI":
			c.rounds, c.disrupted, c.ok = restabilizeSMI(g, k, seed, rng)
		}
		return c
	})
	for pi, proto := range protos {
		for ki, k := range ks {
			var rounds, disrupted []float64
			for trial := 0; trial < opt.Trials; trial++ {
				c := res[(pi*len(ks)+ki)*opt.Trials+trial]
				if !c.ok {
					t.Passed = false
				}
				rounds = append(rounds, float64(c.rounds))
				disrupted = append(disrupted, float64(c.disrupted))
				t.Cells++
			}
			rs := stats.Summarize(rounds)
			ds := stats.Summarize(disrupted)
			t.AddRow(proto, itoa(k), fmt.Sprintf("%.1f", rs.Mean), itoa(int(rs.Max)),
				fmt.Sprintf("%.1f", ds.Mean), itoa(n))
		}
	}
	t.Notes = append(t.Notes,
		"disrupted = nodes whose state differs between the pre-churn and post-churn fixed points")
	return t
}

func restabilizeSMM(g *graph.Graph, k int, seed int64, rng *rand.Rand) (rounds, disrupted int, ok bool) {
	p := core.NewSMM()
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[core.Pointer](p, cfg)
	if res := l.Run(g.N() + 2); !res.Stable {
		return 0, 0, false
	}
	before := append([]core.Pointer(nil), cfg.States...)
	mobility.NewChurn(g, rng).Apply(k)
	core.NormalizeSMM(cfg)
	res := l.Run(g.N() + 2)
	if !res.Stable || verify.IsMaximalMatching(g, core.MatchingOf(l.Config())) != nil {
		return res.Rounds, 0, false
	}
	for v := range before {
		if before[v] != cfg.States[v] {
			disrupted++
		}
	}
	return res.Rounds, disrupted, true
}

func restabilizeSMI(g *graph.Graph, k int, seed int64, rng *rand.Rand) (rounds, disrupted int, ok bool) {
	p := core.NewSMI()
	cfg := core.NewConfig[bool](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[bool](p, cfg)
	if res := l.Run(g.N() + 2); !res.Stable {
		return 0, 0, false
	}
	before := append([]bool(nil), cfg.States...)
	mobility.NewChurn(g, rng).Apply(k)
	res := l.Run(g.N() + 2)
	if !res.Stable || verify.IsMaximalIndependentSet(g, core.SetOf(l.Config())) != nil {
		return res.Rounds, 0, false
	}
	for v := range before {
		if before[v] != cfg.States[v] {
			disrupted++
		}
	}
	return res.Rounds, disrupted, true
}

// E9BeaconModel validates the system-model substitution: under the
// discrete-event beacon layer (jitter, delays, loss, discovery) SMM
// still stabilizes, and with synchronized loss-free beacons the beacon
// round count matches the lockstep count plus the fixed discovery
// warmup.
func E9BeaconModel(opt Options) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Beacon-model fidelity (System Model, Section 2)",
		Claim: "convergence in beacon rounds matches the synchronous analysis; asynchrony and loss only add slack",
		Cols:  []string{"setting", "n", "lockstep rounds", "beacon rounds", "beacons sent", "stable", "maximal"},
	}
	t.Passed = true
	settings := []struct {
		name string
		prm  beacon.Params
	}{
		{"synchronized", beacon.Params{TB: 1, TimeoutFactor: 3, Synchronized: true}},
		{"jitter-10%", beacon.Params{TB: 1, Jitter: 0.10, Delay: 0.05, TimeoutFactor: 3}},
		{"jitter-40%", beacon.Params{TB: 1, Jitter: 0.40, Delay: 0.10, DelayJitter: 0.5, TimeoutFactor: 3}},
		{"loss-10%", beacon.Params{TB: 1, Jitter: 0.10, Delay: 0.05, Loss: 0.10, TimeoutFactor: 4}},
	}
	sizes := opt.Sizes
	if len(sizes) > 3 {
		sizes = sizes[:3]
	}
	trials := opt.Trials
	if trials > 10 {
		trials = 10
	}
	graphs := make([][]*graph.Graph, len(settings))
	for si, setting := range settings {
		graphs[si] = make([]*graph.Graph, len(sizes))
		for ni, n := range sizes {
			rng := cellRand(opt.Seed, "E9", setting.name+"/graph", n, -1)
			graphs[si][ni], _ = graph.RandomUnitDisk(n, 1.2/float64(n), rng)
		}
	}
	type cell struct {
		lockRounds float64
		beacRounds float64
		sent       float64
		stable     bool
		maximal    bool
	}
	total := len(settings) * len(sizes) * trials
	res := mapCells(opt.workers(), total, func(i int) cell {
		trial := i % trials
		ni := (i / trials) % len(sizes)
		si := i / (trials * len(sizes))
		n := sizes[ni]
		g := graphs[si][ni]
		setting := settings[si]
		states := make([]core.Pointer, g.N())
		srng := cellRand(opt.Seed, "E9", setting.name, n, trial)
		for v := range states {
			states[v] = core.NewSMM().Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), srng)
		}
		cfg := core.NewConfig[core.Pointer](g)
		copy(cfg.States, states)
		l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
		lres := l.Run(n + 2)

		nrng := cellRand(opt.Seed, "E9", setting.name+"/net", n, trial)
		net := beacon.NewNetwork[core.Pointer](core.NewSMM(), g.Clone(),
			append([]core.Pointer(nil), states...), setting.prm, nrng)
		bres := net.Run(float64(50*n), 6)
		return cell{
			lockRounds: float64(lres.Rounds),
			beacRounds: bres.Rounds,
			sent:       float64(net.LinkStats().Sent),
			stable:     lres.Stable && bres.Stable,
			maximal:    verify.IsMaximalMatching(g, core.MatchingOf(net.Config())) == nil,
		}
	})
	for si, setting := range settings {
		for ni, n := range sizes {
			var lockRounds, beacRounds, sent []float64
			stable, maximal := true, true
			for trial := 0; trial < trials; trial++ {
				c := res[(si*len(sizes)+ni)*trials+trial]
				if !c.stable {
					stable = false
					t.Passed = false
				}
				if !c.maximal {
					maximal = false
					t.Passed = false
				}
				lockRounds = append(lockRounds, c.lockRounds)
				beacRounds = append(beacRounds, c.beacRounds)
				sent = append(sent, c.sent)
				t.Cells++
			}
			t.AddRow(setting.name, itoa(n),
				fmt.Sprintf("%.1f", stats.Mean(lockRounds)),
				fmt.Sprintf("%.1f", stats.Mean(beacRounds)),
				fmt.Sprintf("%.0f", stats.Mean(sent)),
				boolMark(stable), boolMark(maximal))
		}
	}
	t.Notes = append(t.Notes,
		"beacon rounds = time of last protocol move / t_b, including the ~2-round discovery warmup")
	return t
}

// E10Extensions reproduces the conclusion's claim on the other problems
// the introduction motivates: the synchronous model also solves coloring
// (fast, deterministic) and anonymous MIS (randomized), and the daemon
// machinery executes the baselines under classical schedulers.
func E10Extensions(opt Options) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Extensions and daemons (Conclusions)",
		Claim: "central-daemon-solvable problems are solvable in the synchronous model",
		Cols:  []string{"protocol", "model", "n", "rounds/steps mean", "max", "valid"},
	}
	t.Passed = true
	n := opt.Sizes[len(opt.Sizes)-1]
	if n > 64 {
		n = 64
	}
	trials := opt.Trials
	if trials > 20 {
		trials = 20
	}
	type cell struct {
		cost  float64
		valid bool
	}
	// runBlock fans one protocol block's trials across the pool; stream
	// names the block so its cells draw independent seeds.
	runBlock := func(stream string, count int, body func(trial int, seed int64, grng *rand.Rand) cell) []cell {
		return mapCells(opt.workers(), count, func(trial int) cell {
			return body(trial,
				DeriveSeed(opt.Seed, "E10", stream, n, trial),
				cellRand(opt.Seed, "E10", stream+"/graph", n, trial))
		})
	}
	emit := func(name, model string, res []cell) {
		var costs []float64
		valid := true
		for _, c := range res {
			if !c.valid {
				valid = false
				t.Passed = false
			}
			costs = append(costs, c.cost)
			t.Cells++
		}
		s := stats.Summarize(costs)
		t.AddRow(name, model, itoa(n), fmt.Sprintf("%.1f", s.Mean), itoa(int(s.Max)), boolMark(valid))
	}

	// Grundy coloring, synchronous.
	emit("Coloring", "synchronous", runBlock("coloring", trials, func(_ int, seed int64, grng *rand.Rand) cell {
		g := graph.RandomConnected(n, 0.15, grng)
		p := protocols.NewColoring()
		cfg := core.NewConfig[int](g)
		cfg.Randomize(p, rand.New(rand.NewSource(seed)))
		l := sim.NewLockstep[int](p, cfg)
		res := l.Run(n + 2)
		return cell{
			cost:  float64(res.Rounds),
			valid: res.Stable && verify.IsProperColoring(g, l.Config().States) == nil,
		}
	}))

	// Randomized anonymous MIS, synchronous.
	emit("RandMIS", "synchronous", runBlock("randmis", trials, func(_ int, seed int64, grng *rand.Rand) cell {
		g := graph.RandomConnected(n, 0.15, grng)
		p := protocols.NewRandMIS(n, seed)
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rand.New(rand.NewSource(seed)))
		l := sim.NewLockstep[bool](p, cfg)
		res := l.Run(1000 * n)
		return cell{
			cost:  float64(res.Rounds),
			valid: res.Stable && verify.IsMaximalIndependentSet(g, core.SetOf(l.Config())) == nil,
		}
	}))

	// Hsu–Huang under the classical daemons.
	for _, strat := range []daemon.Pick{daemon.PickRandom, daemon.PickAdversarial} {
		dTrials := trials
		if strat == daemon.PickAdversarial && dTrials > 5 {
			dTrials = 5 // the greedy adversary is O(n²) per step
		}
		stream := "hsuhuang/" + strat.String()
		emit("HsuHuang", "central-"+strat.String(),
			runBlock(stream, dTrials, func(_ int, seed int64, grng *rand.Rand) cell {
				g := graph.RandomConnected(n, 0.15, grng)
				p := protocols.NewHsuHuang()
				cfg := core.NewConfig[core.Pointer](g)
				cfg.Randomize(p, rand.New(rand.NewSource(seed)))
				drng := rand.New(rand.NewSource(seed + 1))
				r := daemon.NewRunner[core.Pointer](p, cfg, daemon.NewCentral[core.Pointer](strat, drng))
				res := r.Run(50 * n * n)
				return cell{
					cost:  float64(res.Steps),
					valid: res.Stable && verify.IsMaximalMatching(g, core.MatchingOf(r.Config())) == nil,
				}
			}))
	}

	// BFS spanning tree (the multicast-tree maintenance the paper's
	// introduction motivates), synchronous, from states with fake roots.
	emit("SpanningTree", "synchronous", runBlock("tree", trials, func(_ int, seed int64, grng *rand.Rand) cell {
		g := graph.RandomConnected(n, 0.15, grng)
		p := protocols.NewSpanningTree(n)
		cfg := core.NewConfig[protocols.TreeState](g)
		cfg.Randomize(p, rand.New(rand.NewSource(seed)))
		l := sim.NewLockstep[protocols.TreeState](p, cfg)
		res := l.Run(5*n + 10)
		return cell{
			cost:  float64(res.Rounds),
			valid: res.Stable && protocols.VerifyTree(g, l.Config().States) == nil,
		}
	}))

	// SMI under a distributed daemon (robustness beyond the paper).
	emit("SMI", "distributed-0.50", runBlock("smi-dist", trials, func(_ int, seed int64, grng *rand.Rand) cell {
		g := graph.RandomConnected(n, 0.15, grng)
		p := core.NewSMI()
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rand.New(rand.NewSource(seed)))
		drng := rand.New(rand.NewSource(seed + 1))
		r := daemon.NewRunner[bool](p, cfg, daemon.NewDistributed[bool](0.5, drng))
		res := r.Run(200 * n)
		return cell{
			cost:  float64(res.Steps),
			valid: res.Stable && verify.IsMaximalIndependentSet(g, core.SetOf(r.Config())) == nil,
		}
	}))

	return t
}

func identityPerm(n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := range p {
		p[i] = graph.NodeID(i)
	}
	return p
}

func reversePerm(n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := range p {
		p[i] = graph.NodeID(n - 1 - i)
	}
	return p
}
