package harness

import (
	"math/rand"
	"strings"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

func TestTableAddRowArity(t *testing.T) {
	tbl := &Table{Cols: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch accepted")
		}
	}()
	tbl.AddRow("only one")
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "EX", Title: "demo", Claim: "c", Passed: true,
		Cols:  []string{"col", "value"},
		Notes: []string{"a note"},
	}
	tbl.AddRow("r1", "7")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EX: demo [PASS]", "claim: c", "col", "r1", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	tbl.Passed = false
	sb.Reset()
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "[FAIL]") {
		t.Error("FAIL status not rendered")
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := &Table{ID: "EX", Title: "demo", Claim: "c", Passed: true, Cols: []string{"a"}}
	tbl.AddRow("1")
	var sb strings.Builder
	if err := tbl.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### EX — demo (**PASS**)", "| a |", "| --- |", "| 1 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{ID: "EX", Cols: []string{"a", "b"}}
	tbl.AddRow("1", "x")
	tbl.AddRow("2", "y")
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,x\n2,y\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 found")
	}
	if len(All()) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(All()))
	}
}

func TestE1Quick(t *testing.T) {
	tbl := E1SMMConvergence(QuickOptions())
	if !tbl.Passed {
		t.Fatal("E1 failed")
	}
	if len(tbl.Rows) != 3*3 { // 3 quick topologies x 3 sizes
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE2Quick(t *testing.T) {
	tbl := E2TypeCensus(QuickOptions())
	if !tbl.Passed {
		t.Fatal("E2 failed")
	}
}

func TestE3Quick(t *testing.T) {
	if !E3MatchingGrowth(QuickOptions()).Passed {
		t.Fatal("E3 failed")
	}
}

func TestE4Quick(t *testing.T) {
	tbl := E4Counterexample(QuickOptions())
	if !tbl.Passed {
		t.Fatal("E4 failed")
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE5Quick(t *testing.T) {
	if !E5SMIConvergence(QuickOptions()).Passed {
		t.Fatal("E5 failed")
	}
}

func TestE6Quick(t *testing.T) {
	tbl := E6SMIWave(QuickOptions())
	if !tbl.Passed {
		t.Fatal("E6 failed")
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE7Quick(t *testing.T) {
	if !E7Baseline(QuickOptions()).Passed {
		t.Fatal("E7 failed")
	}
}

func TestE8Quick(t *testing.T) {
	if !E8Restabilization(QuickOptions()).Passed {
		t.Fatal("E8 failed")
	}
}

func TestE9Quick(t *testing.T) {
	if !E9BeaconModel(QuickOptions()).Passed {
		t.Fatal("E9 failed")
	}
}

func TestE10Quick(t *testing.T) {
	if !E10Extensions(QuickOptions()).Passed {
		t.Fatal("E10 failed")
	}
}

func TestE11Quick(t *testing.T) {
	tbl := E11Exhaustive(QuickOptions())
	if !tbl.Passed {
		var sb strings.Builder
		tbl.Render(&sb)
		t.Fatalf("E11 failed:\n%s", sb.String())
	}
}

func TestE12Quick(t *testing.T) {
	if !E12Staleness(QuickOptions()).Passed {
		t.Fatal("E12 failed")
	}
}

func TestE13Quick(t *testing.T) {
	if !E13RuleCensus(QuickOptions()).Passed {
		t.Fatal("E13 failed")
	}
}

func TestE14Quick(t *testing.T) {
	if !E14AdversarialSearch(QuickOptions()).Passed {
		t.Fatal("E14 failed")
	}
}

func TestE15Quick(t *testing.T) {
	tbl := E15FaultRecovery(QuickOptions())
	if !tbl.Passed {
		var sb strings.Builder
		tbl.Render(&sb)
		t.Fatalf("E15 failed:\n%s", sb.String())
	}
}

// TestWorkersDeterminism is the golden equivalence check of the worker
// pool: every experiment table must render byte-identically whether the
// cells run on 1, 2, or 8 workers, because each (topology, n, trial)
// cell draws from its own derived seed stream.
func TestWorkersDeterminism(t *testing.T) {
	for _, e := range All() {
		var golden string
		for _, w := range []int{1, 2, 8} {
			opt := QuickOptions()
			opt.Workers = w
			var sb strings.Builder
			tbl := e.Run(opt)
			if err := tbl.Render(&sb); err != nil {
				t.Fatal(err)
			}
			if w == 1 {
				golden = sb.String()
				continue
			}
			if sb.String() != golden {
				t.Errorf("%s: table with Workers=%d differs from Workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s",
					e.ID, w, golden, w, sb.String())
			}
		}
	}
}

// TestDerivedSeedsDistinct is the regression test for the correlated
// trial seeds the serial harness used (opt.Seed+trial reused the
// identical seed sequence in every (topology, n) cell): derived seeds
// must be unique across cells, and cells sharing a trial index must draw
// distinct initial states.
func TestDerivedSeedsDistinct(t *testing.T) {
	opt := DefaultOptions()
	seen := make(map[int64]string)
	for _, topo := range Topologies() {
		for _, n := range opt.Sizes {
			for trial := -1; trial < 4; trial++ {
				s := DeriveSeed(opt.Seed, "E1", topo.Name, n, trial)
				key := topo.Name + "/" + itoa(n) + "/" + itoa(trial)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
	// Same trial index, different cells => different initial states.
	g := graph.Path(32)
	randomize := func(expID, topo string, n, trial int) []core.Pointer {
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(core.NewSMM(), rand.New(rand.NewSource(DeriveSeed(opt.Seed, expID, topo, n, trial))))
		return cfg.States
	}
	a := randomize("E1", "path", 8, 0)
	b := randomize("E1", "path", 16, 0)
	c := randomize("E1", "cycle", 8, 0)
	if equalStates(a, b) || equalStates(a, c) {
		t.Fatal("cells with the same trial index drew identical initial states")
	}
}

func TestRunAllQuick(t *testing.T) {
	var sb strings.Builder
	failed, err := RunAll(QuickOptions(), &sb, false)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("%d experiments failed:\n%s", failed, sb.String())
	}
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(sb.String(), id+":") {
			t.Errorf("output missing %s", id)
		}
	}
}
