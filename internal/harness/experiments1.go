package harness

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/stats"
	"selfstab/internal/verify"
)

// E1SMMConvergence reproduces Theorem 1: Algorithm SMM stabilizes within
// n+1 rounds from every initial state and its fixed point is a maximal
// matching. One row per (topology, n): mean and max rounds across trials,
// against the bound. Trials fan out across the worker pool, one derived
// seed per cell.
func E1SMMConvergence(opt Options) *Table {
	t := &Table{
		ID:    "E1",
		Title: "SMM convergence (Theorem 1)",
		Claim: "SMM stabilizes in at most n+1 rounds and yields a maximal matching",
		Cols:  []string{"topology", "n", "trials", "rounds mean", "rounds max", "bound n+1", "maximal"},
	}
	t.Passed = true
	type cell struct {
		rounds  int
		inBound bool
		maximal bool
	}
	res, _ := trialGrid(opt, "E1", func(_ Topology, g *graph.Graph, n, _ int, seed int64) cell {
		l, r := runSMM(g, seed, core.NewSMM())
		return cell{
			rounds:  r.Rounds,
			inBound: r.Stable && r.Rounds <= n+1,
			maximal: verify.IsMaximalMatching(g, core.MatchingOf(l.Config())) == nil,
		}
	})
	for ti, topo := range opt.topologies() {
		for si, n := range opt.Sizes {
			rounds := make([]int, 0, opt.Trials)
			allMaximal := true
			for _, c := range res[ti][si] {
				if !c.inBound {
					t.Passed = false
				}
				if !c.maximal {
					allMaximal = false
					t.Passed = false
				}
				rounds = append(rounds, c.rounds)
				t.Cells++
			}
			s := stats.Summarize(stats.Ints(rounds))
			t.AddRow(topo.Name, itoa(n), itoa(opt.Trials),
				fmt.Sprintf("%.1f", s.Mean), itoa(int(s.Max)), itoa(n+1), boolMark(allMaximal))
		}
	}
	return t
}

// E2TypeCensus reproduces Lemma 7 and the Figure 3 transition diagram:
// after round 1 the sets A' and PA are empty, and every observed type
// transition is an arrow of the diagram. One row per topology with
// aggregate counts; per-trial matrices are merged deterministically in
// (size, trial) order.
func E2TypeCensus(opt Options) *Table {
	t := &Table{
		ID:    "E2",
		Title: "SMM node types (Lemma 7 / Figure 3)",
		Claim: "A' and PA are empty for all t ≥ 1; observed transitions ⊆ diagram",
		Cols:  []string{"topology", "transitions", "violations", "A'+PA after t=0", "distinct arrows"},
	}
	t.Passed = true
	type cell struct {
		m        core.TransitionMatrix
		lateA1PA int
	}
	res, _ := trialGrid(opt, "E2", func(_ Topology, g *graph.Graph, n, _ int, seed int64) cell {
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(core.NewSMM(), rand.New(rand.NewSource(seed)))
		before := core.ClassifySMM(cfg)
		var c cell
		l := newLockstepSMM(cfg)
		l.RunHook(n+2, func(_ int, cf core.Config[core.Pointer]) {
			after := core.ClassifySMM(cf)
			c.m.Record(before, after)
			cen := core.CensusOf(after)
			c.lateA1PA += cen[core.TypeA1] + cen[core.TypePA]
			before = after
		})
		return c
	})
	for ti, topo := range opt.topologies() {
		var m core.TransitionMatrix
		lateA1PA := 0
		for si := range opt.Sizes {
			for _, c := range res[ti][si] {
				m.Add(&c.m)
				lateA1PA += c.lateA1PA
				t.Cells++
			}
		}
		viol := m.Violations()
		total := 0
		for _, tc := range m.Observed() {
			total += tc.Count
		}
		if len(viol) != 0 || lateA1PA != 0 {
			t.Passed = false
		}
		t.AddRow(topo.Name, itoa(total), itoa(len(viol)), itoa(lateA1PA), itoa(len(m.Observed())))
	}
	t.Notes = append(t.Notes,
		"distinct arrows counts the diagram edges actually exercised (diagram has 10 arrows incl. self-loops)")
	return t
}

// E3MatchingGrowth reproduces Lemmas 9–10: from t ≥ 1, whenever moves
// happen in two consecutive rounds the matched-node count grows by at
// least 2.
func E3MatchingGrowth(opt Options) *Table {
	t := &Table{
		ID:    "E3",
		Title: "Matching growth rate (Lemmas 9–10)",
		Claim: "|M| grows by ≥ 2 over any two consecutive active rounds after t=1",
		Cols:  []string{"topology", "windows checked", "min growth", "violations"},
	}
	t.Passed = true
	type cell struct {
		windows    int
		minGrowth  int
		violations int
	}
	res, _ := trialGrid(opt, "E3", func(_ Topology, g *graph.Graph, n, _ int, seed int64) cell {
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(core.NewSMM(), rand.New(rand.NewSource(seed)))
		l := newLockstepSMM(cfg)
		var sizes []int
		l.RunHook(n+2, func(_ int, cf core.Config[core.Pointer]) {
			sizes = append(sizes, 2*len(core.MatchingOf(cf)))
		})
		// sizes[k] is |M| after active round k+1; Lemma 10 windows start
		// at t >= 1.
		c := cell{minGrowth: 1 << 30}
		for k := 0; k+2 < len(sizes); k++ {
			c.windows++
			growth := sizes[k+2] - sizes[k]
			if growth < c.minGrowth {
				c.minGrowth = growth
			}
			if growth < 2 {
				c.violations++
			}
		}
		return c
	})
	for ti, topo := range opt.topologies() {
		windows, minGrowth, violations := 0, 1<<30, 0
		for si := range opt.Sizes {
			for _, c := range res[ti][si] {
				windows += c.windows
				if c.minGrowth < minGrowth {
					minGrowth = c.minGrowth
				}
				violations += c.violations
				t.Cells++
			}
		}
		if violations > 0 {
			t.Passed = false
		}
		if windows == 0 {
			minGrowth = 0
		}
		t.AddRow(topo.Name, itoa(windows), itoa(minGrowth), itoa(violations))
	}
	return t
}

// E4Counterexample reproduces the Section 3 counterexample: SMM with
// arbitrary (cyclic-successor) proposals oscillates forever on the
// four-cycle, while published SMM stabilizes; and the arbitrary variant
// also fails on larger even cycles. The six cases are deterministic and
// tiny, so they stay serial.
func E4Counterexample(opt Options) *Table {
	t := &Table{
		ID:    "E4",
		Title: "Arbitrary-proposal counterexample (Section 3)",
		Claim: "without min-ID proposals SMM may never stabilize; with them it always does",
		Cols:  []string{"graph", "variant", "rounds", "outcome", "period-2 oscillation"},
	}
	t.Passed = true
	limit := 1000
	if opt.Quick {
		limit = 200
	}
	cases := []int{4, 8, 16}
	for _, n := range cases {
		g := cycleGraph(n)
		// Arbitrary proposals from the all-null state.
		cfgA := core.NewConfig[core.Pointer](g)
		for i := range cfgA.States {
			cfgA.States[i] = core.Null
		}
		snap0 := append([]core.Pointer(nil), cfgA.States...)
		lA := newLockstepVariant(cfgA, core.NewSMMArbitrary())
		lA.Step()
		lA.Step()
		period2 := equalStates(cfgA.States, snap0)
		resA := lA.Run(limit - 2)
		if resA.Stable || !period2 {
			t.Passed = false
		}
		outcomeA := "oscillates"
		if resA.Stable {
			outcomeA = "stable"
		}
		t.AddRow(fmt.Sprintf("C%d", n), "successor", itoa(limit), outcomeA, boolMark(period2))

		// Published SMM from the same state.
		cfgB := core.NewConfig[core.Pointer](g)
		for i := range cfgB.States {
			cfgB.States[i] = core.Null
		}
		lB := newLockstepSMM(cfgB)
		resB := lB.Run(n + 2)
		ok := resB.Stable && verify.IsMaximalMatching(g, core.MatchingOf(lB.Config())) == nil
		if !ok {
			t.Passed = false
		}
		outcomeB := "oscillates"
		if resB.Stable {
			outcomeB = "stable"
		}
		t.AddRow(fmt.Sprintf("C%d", n), "min-id", itoa(resB.Rounds), outcomeB, "-")
		t.Cells += 2
	}
	t.Notes = append(t.Notes,
		"successor variant run from the all-null state with the clockwise tie-break of the paper's example")
	return t
}

// E5SMIConvergence reproduces Theorem 2: Algorithm SMI stabilizes in O(n)
// rounds (measured against the bound n+1) and its fixed point is a
// maximal independent set; on small graphs the MIS size is also compared
// with the optimum independent set.
func E5SMIConvergence(opt Options) *Table {
	t := &Table{
		ID:    "E5",
		Title: "SMI convergence (Theorem 2)",
		Claim: "SMI stabilizes in O(n) rounds (≤ n+1 measured) and yields a maximal independent set",
		Cols:  []string{"topology", "n", "trials", "rounds mean", "rounds max", "bound n+1", "MIS", "|S|/opt"},
	}
	t.Passed = true
	type cell struct {
		rounds  int
		inBound bool
		isMIS   bool
		size    float64
	}
	res, graphs := trialGrid(opt, "E5", func(_ Topology, g *graph.Graph, n, _ int, seed int64) cell {
		l, r := runSMI(g, seed)
		set := core.SetOf(l.Config())
		return cell{
			rounds:  r.Rounds,
			inBound: r.Stable && r.Rounds <= n+1,
			isMIS:   verify.IsMaximalIndependentSet(g, set) == nil,
			size:    float64(len(set)),
		}
	})
	for ti, topo := range opt.topologies() {
		for si, n := range opt.Sizes {
			rounds := make([]int, 0, opt.Trials)
			allMIS := true
			ratio := "-"
			var sizes []float64
			for _, c := range res[ti][si] {
				if !c.inBound {
					t.Passed = false
				}
				if !c.isMIS {
					allMIS = false
					t.Passed = false
				}
				rounds = append(rounds, c.rounds)
				sizes = append(sizes, c.size)
				t.Cells++
			}
			if n <= 16 { // brute-force optimum only on small graphs
				if best := verify.MaxIndependentSetSize(graphs[ti][si]); best > 0 {
					ratio = fmt.Sprintf("%.2f", stats.Mean(sizes)/float64(best))
				}
			}
			s := stats.Summarize(stats.Ints(rounds))
			t.AddRow(topo.Name, itoa(n), itoa(opt.Trials),
				fmt.Sprintf("%.1f", s.Mean), itoa(int(s.Max)), itoa(n+1), boolMark(allMIS), ratio)
		}
	}
	return t
}
