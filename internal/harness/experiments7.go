package harness

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
	"selfstab/internal/stats"
)

// E15FaultRecovery measures re-convergence after injected faults, per
// fault kind and burst size, under the deterministic fault engine's
// recovery monitor on the lockstep model. Every epoch must re-converge
// to a legitimate configuration within the enforced bound — n+1 rounds
// for SMM (Theorem 1), 2n+2 for SMI (the recorded O(n) constant) — and
// closure must hold between faults; any monitor violation fails the
// experiment.
func E15FaultRecovery(opt Options) *Table {
	t := &Table{
		ID:    "E15",
		Title: "Fault-injection recovery (deterministic schedules, lockstep model)",
		Claim: "after crash, corruption, beacon loss, partition, staleness and churn the protocols re-converge within the paper's bound, and closure holds between faults",
		Cols:  []string{"protocol", "fault", "burst", "re-rounds mean", "re-rounds max", "bound max", "epochs", "n"},
	}
	t.Passed = true
	n := opt.Sizes[len(opt.Sizes)-1]
	if n > 64 {
		n = 64
	}
	protos := []string{"SMM", "SMI"}
	kinds := []faults.Kind{faults.Crash, faults.Corrupt, faults.Drop, faults.Partition, faults.Stale, faults.Churn}
	bursts := []int{1, 3}
	type cell struct {
		sumRounds float64
		epochs    int
		maxRounds int
		maxBound  int
		viol      int
		ok        bool
	}
	total := len(protos) * len(kinds) * len(bursts) * opt.Trials
	res := mapCells(opt.workers(), total, func(i int) cell {
		trial := i % opt.Trials
		bi := (i / opt.Trials) % len(bursts)
		ki := (i / (opt.Trials * len(bursts))) % len(kinds)
		proto := protos[i/(opt.Trials*len(bursts)*len(kinds))]
		kind := kinds[ki]
		burst := bursts[bi]
		stream := proto + "/" + kind.String()
		g := graph.RandomConnected(n, 0.1, cellRand(opt.Seed, "E15", stream+"/graph", burst, trial))
		sched := faults.Generate(DeriveSeed(opt.Seed, "E15", stream, burst, trial), g,
			faults.GenParams{Events: 4, MaxBurst: burst, Start: n + 2, Kinds: []faults.Kind{kind}})
		stateSeed := DeriveSeed(opt.Seed, "E15", stream+"/state", burst, trial)
		var rep faults.Report
		switch proto {
		case "SMM":
			rep = e15Run[core.Pointer](core.NewSMM(), faults.SMMChecker, g, stateSeed, sched,
				faults.Options{BoundFactor: 1, BoundSlack: 1})
		case "SMI":
			rep = e15Run[bool](core.NewSMI(), faults.SMIChecker, g, stateSeed, sched,
				faults.Options{BoundFactor: 2, BoundSlack: 2})
		}
		c := cell{ok: !rep.Failed(), viol: rep.ClosureViolations}
		for _, ep := range rep.Epochs {
			if ep.Kind == faults.Init || !ep.Converged {
				continue
			}
			c.sumRounds += float64(ep.Rounds)
			c.epochs++
			if ep.Rounds > c.maxRounds {
				c.maxRounds = ep.Rounds
			}
			if ep.Bound > c.maxBound {
				c.maxBound = ep.Bound
			}
		}
		return c
	})
	for pi, proto := range protos {
		for ki, kind := range kinds {
			for bi, burst := range bursts {
				var rounds []float64
				agg := cell{}
				for trial := 0; trial < opt.Trials; trial++ {
					c := res[((pi*len(kinds)+ki)*len(bursts)+bi)*opt.Trials+trial]
					if !c.ok || c.viol > 0 {
						t.Passed = false
					}
					if c.epochs > 0 {
						rounds = append(rounds, c.sumRounds/float64(c.epochs))
					}
					if c.maxRounds > agg.maxRounds {
						agg.maxRounds = c.maxRounds
					}
					if c.maxBound > agg.maxBound {
						agg.maxBound = c.maxBound
					}
					agg.epochs += c.epochs
					t.Cells++
				}
				rs := stats.Summarize(rounds)
				t.AddRow(proto, kind.String(), itoa(burst), fmt.Sprintf("%.1f", rs.Mean),
					itoa(agg.maxRounds), itoa(agg.maxBound), itoa(agg.epochs), itoa(n))
			}
		}
	}
	t.Notes = append(t.Notes,
		"bound = ceil(f*n)+slack+duration per epoch: SMM f=1 slack=1 (Theorem 1's n+1), SMI f=2 slack=2 (recorded O(n) constant)",
		"epochs counts converged fault epochs (crash epochs pair with their resurrection epochs); closure violations between faults fail the experiment")
	return t
}

// e15Run replays one generated schedule on a fresh lockstep target.
func e15Run[S comparable](p core.Protocol[S], check faults.Checker[S],
	g *graph.Graph, stateSeed int64, sched faults.Schedule, mopt faults.Options) faults.Report {

	cfg := core.NewConfig[S](g.Clone())
	cfg.Randomize(p, rand.New(rand.NewSource(stateSeed)))
	tgt := sim.NewFaultLockstep(p, cfg)
	defer tgt.Close()
	return faults.RunSchedule(p, tgt, sched, check, mopt)
}
