package harness

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"selfstab/internal/graph"
)

// DeriveSeed hashes the run seed together with a cell's coordinates —
// experiment ID, topology (or stream) name, size, and trial index —
// into an independent 64-bit seed. Every (topology, n, trial) cell
// draws from its own stream, so neither the worker count nor the
// scheduling order can change any cell's randomness, and distinct cells
// no longer share the correlated Seed+trial sequence the serial harness
// reused in every (topology, n) cell. Negative trial values name
// auxiliary streams (graph generation, permutations, churn).
func DeriveSeed(seed int64, expID, stream string, n, trial int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(expID))
	h.Write([]byte{0})
	h.Write([]byte(stream))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(n)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(trial)))
	h.Write(buf[:])
	return int64(splitmix64(h.Sum64()))
}

// splitmix64 finalizes the FNV hash with full avalanche so seeds of
// neighboring cells differ in about half their bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cellRand is shorthand for a generator seeded by DeriveSeed.
func cellRand(seed int64, expID, stream string, n, trial int) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, expID, stream, n, trial)))
}

// workers resolves Options.Workers: zero or negative selects all CPUs.
func (opt Options) workers() int {
	if opt.Workers > 0 {
		return opt.Workers
	}
	return runtime.NumCPU()
}

// forEachCell runs body(i) for every i in [0, count) across a pool of
// worker goroutines and waits for completion. Bodies must be mutually
// independent and write only to per-index slots, so the gathered output
// is identical no matter how the pool schedules them.
func forEachCell(workers, count int, body func(i int)) {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachCell is the exported face of forEachCell, reused by campaign
// runners outside the harness (the soak driver); the same contract
// applies.
func ForEachCell(workers, count int, body func(i int)) {
	forEachCell(workers, count, body)
}

// mapCells fans body over [0, count) and gathers its results in index
// order — the deterministic scatter/gather behind every parallel
// experiment.
func mapCells[T any](workers, count int, body func(i int) T) []T {
	out := make([]T, count)
	forEachCell(workers, count, func(i int) { out[i] = body(i) })
	return out
}

// trialGrid fans body over every (topology, size, trial) cell of the
// sweep and returns results indexed [topoIdx][sizeIdx][trial] plus the
// graphs indexed [topoIdx][sizeIdx]. Graphs are generated serially, one
// per (topology, size), each from its own derived seed; the trial cells
// then spread across the worker pool, each receiving its own derived
// per-cell seed.
func trialGrid[T any](opt Options, expID string,
	body func(topo Topology, g *graph.Graph, n, trial int, seed int64) T) ([][][]T, [][]*graph.Graph) {

	topos := opt.topologies()
	graphs := make([][]*graph.Graph, len(topos))
	out := make([][][]T, len(topos))
	for ti, topo := range topos {
		graphs[ti] = make([]*graph.Graph, len(opt.Sizes))
		out[ti] = make([][]T, len(opt.Sizes))
		for si, n := range opt.Sizes {
			graphs[ti][si] = topo.Gen(n, cellRand(opt.Seed, expID, topo.Name+"/graph", n, -1))
			out[ti][si] = make([]T, opt.Trials)
		}
	}
	total := len(topos) * len(opt.Sizes) * opt.Trials
	forEachCell(opt.workers(), total, func(i int) {
		trial := i % opt.Trials
		si := (i / opt.Trials) % len(opt.Sizes)
		ti := i / (opt.Trials * len(opt.Sizes))
		topo := topos[ti]
		n := opt.Sizes[si]
		out[ti][si][trial] = body(topo, graphs[ti][si], n, trial,
			DeriveSeed(opt.Seed, expID, topo.Name, n, trial))
	})
	return out, graphs
}
