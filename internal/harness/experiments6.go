package harness

import (
	"fmt"

	"selfstab/internal/adversary"
	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/modelcheck"
)

// E14AdversarialSearch closes the gap between E1/E5's sampled averages
// and E11's exact-but-small worst cases: a hill climber searches the
// initial-configuration space for slow starts. On small instances the
// climber is validated against the exhaustive optimum; on larger
// instances its result is an empirical lower bound on the true worst
// case, to be read against the theorems' n+1 ceiling. Each search case
// is one cell of the worker pool with its own derived seed.
func E14AdversarialSearch(opt Options) *Table {
	t := &Table{
		ID:    "E14",
		Title: "Adversarial-start search (hill climbing vs. exact)",
		Claim: "searched worst cases stay within the n+1 bound; on enumerable instances the climber reaches the exhaustive optimum",
		Cols:  []string{"protocol", "graph", "n", "found rounds", "exact worst", "bound n+1"},
	}
	t.Passed = true
	budget := adversary.DefaultOptions()
	if opt.Quick {
		budget = adversary.Options{Restarts: 3, Steps: 60}
	}

	type caseResult struct {
		row []string
		ok  bool
	}
	var cases []func() caseResult

	// Small instances: climber vs. exhaustive optimum.
	smalls := []struct {
		name string
		g    *graph.Graph
	}{
		{"P6", graph.Path(6)},
		{"C6", graph.Cycle(6)},
		{"K4", graph.Complete(4)},
	}
	for _, c := range smalls {
		c := c
		cases = append(cases, func() caseResult {
			exact, err := modelcheck.Explore[core.Pointer](core.NewSMM(), c.g, modelcheck.SMMDomain, 1<<22, nil)
			if err != nil {
				return caseResult{ok: false}
			}
			rng := cellRand(opt.Seed, "E14", "SMM/"+c.name, c.g.N(), -1)
			found := adversary.Search[core.Pointer](core.NewSMM(), c.g, budget, rng)
			return caseResult{
				row: []string{"SMM", c.name, itoa(c.g.N()), itoa(found.Rounds), itoa(exact.MaxRounds), itoa(c.g.N() + 1)},
				ok:  !found.Diverged && found.Rounds <= exact.MaxRounds,
			}
		})
	}

	// Larger instances: climber vs. the theorem bound only.
	sizes := []int{32, 64}
	if opt.Quick {
		sizes = []int{16}
	}
	for _, n := range sizes {
		n := n
		for _, proto := range []string{"SMM", "SMI"} {
			proto := proto
			cases = append(cases, func() caseResult {
				rng := cellRand(opt.Seed, "E14", proto+"/gnp", n, -1)
				g := graph.RandomConnected(n, 0.1, rng)
				var found adversary.Result
				switch proto {
				case "SMM":
					found = adversary.Search[core.Pointer](core.NewSMM(), g, budget, rng)
				case "SMI":
					found = adversary.Search[bool](core.NewSMI(), g, budget, rng)
				}
				return caseResult{
					row: []string{proto, fmt.Sprintf("gnp(%d)", n), itoa(n), itoa(found.Rounds), "-", itoa(n + 1)},
					ok:  !found.Diverged && found.Rounds <= n+1,
				}
			})
		}
		// The descending path: the climber should approach n for SMI.
		cases = append(cases, func() caseResult {
			rng := cellRand(opt.Seed, "E14", "SMI/path", n, -1)
			found := adversary.Search[bool](core.NewSMI(), graph.Path(n), budget, rng)
			return caseResult{
				row: []string{"SMI", fmt.Sprintf("P%d", n), itoa(n), itoa(found.Rounds), "-", itoa(n + 1)},
				ok:  !found.Diverged && found.Rounds <= n+1,
			}
		})
	}

	for _, r := range mapCells(opt.workers(), len(cases), func(i int) caseResult { return cases[i]() }) {
		if !r.ok {
			t.Passed = false
		}
		if r.row != nil {
			t.AddRow(r.row...)
		}
		t.Cells++
	}
	t.Notes = append(t.Notes,
		"'found rounds' is the slowest start the hill climber located; '-' marks instances too large to enumerate exactly")
	return t
}
