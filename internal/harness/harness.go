// Package harness defines the reproduction experiments E1–E10: one per
// claim of the paper (theorems, lemmas, the transition diagram, the
// counterexample, and the baseline comparison), each regenerating a table
// that EXPERIMENTS.md records. Experiments are deterministic given
// Options.Seed.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
)

// Options scopes an experiment run.
type Options struct {
	// Seed derives all randomness. Runs with equal options are identical.
	Seed int64
	// Trials is the number of random initial states per cell.
	Trials int
	// Sizes is the node-count sweep.
	Sizes []int
	// Quick shrinks sweeps for use in unit tests.
	Quick bool
	// Workers is the goroutine pool size each experiment fans its
	// (topology, n, trial) cells out to; 0 selects runtime.NumCPU().
	// Every cell draws from its own DeriveSeed stream, so the rendered
	// tables are byte-identical for any worker count.
	Workers int
}

// DefaultOptions is the full sweep the committed EXPERIMENTS.md uses.
func DefaultOptions() Options {
	return Options{Seed: 1, Trials: 100, Sizes: []int{8, 16, 32, 64, 128, 256}}
}

// QuickOptions is a reduced sweep for tests.
func QuickOptions() Options {
	return Options{Seed: 1, Trials: 8, Sizes: []int{8, 16, 32}, Quick: true}
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Cols   []string
	Rows   [][]string
	Notes  []string
	Passed bool

	// Cells counts the independent work items (trial cells, or explored
	// configurations for the exhaustive experiments) behind the table —
	// the numerator of the cells/sec footer.
	Cells int
	// Elapsed, when set by the caller (cmd/experiments stamps it around
	// Run), makes Render emit a wall-clock footer. It is NOT part of the
	// experiment's deterministic output: tests leave it zero so rendered
	// tables stay byte-identical across worker counts.
	Elapsed time.Duration
}

// AddRow appends a row; it panics if the arity disagrees with Cols.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Cols) {
		panic(fmt.Sprintf("harness: row arity %d != %d columns", len(cells), len(t.Cols)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	status := "PASS"
	if !t.Passed {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "== %s: %s [%s]\n   claim: %s\n", t.ID, t.Title, status, t.Claim); err != nil {
		return err
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "   " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Cols)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "   note: %s\n", n); err != nil {
			return err
		}
	}
	if f := t.footer(); f != "" {
		if _, err := fmt.Fprintf(w, "   %s\n", f); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// footer formats the wall-clock line; empty unless Elapsed was stamped.
func (t *Table) footer() string {
	if t.Elapsed <= 0 {
		return ""
	}
	f := fmt.Sprintf("time: %s", t.Elapsed.Round(time.Millisecond))
	if t.Cells > 0 {
		f += fmt.Sprintf("  cells: %d  (%.0f cells/sec)", t.Cells,
			float64(t.Cells)/t.Elapsed.Seconds())
	}
	return f
}

// RenderMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	status := "PASS"
	if !t.Passed {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "### %s — %s (**%s**)\n\n*Claim:* %s\n\n", t.ID, t.Title, status, t.Claim); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Cols, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*Note:* %s\n", n); err != nil {
			return err
		}
	}
	if f := t.footer(); f != "" {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", f); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV exports the table's rows as CSV with the column names as
// header — the series data behind any plotted figure.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Topology is a named graph generator, parameterized by size.
type Topology struct {
	Name string
	Gen  func(n int, rng *rand.Rand) *graph.Graph
}

// Topologies is the standard sweep: the structured families plus random
// connected and geometric graphs.
func Topologies() []Topology {
	return []Topology{
		{"path", func(n int, _ *rand.Rand) *graph.Graph { return graph.Path(n) }},
		{"cycle", func(n int, _ *rand.Rand) *graph.Graph { return graph.Cycle(n) }},
		{"complete", func(n int, _ *rand.Rand) *graph.Graph { return graph.Complete(n) }},
		{"star", func(n int, _ *rand.Rand) *graph.Graph { return graph.Star(n) }},
		{"tree", func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomTree(n, rng) }},
		{"gnp-sparse", func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomConnected(n, 2.0/float64(n), rng) }},
		{"gnp-dense", func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomConnected(n, 0.3, rng) }},
		{"unit-disk", func(n int, rng *rand.Rand) *graph.Graph {
			g, _ := graph.RandomUnitDisk(n, 1.2/float64(n), rng)
			return g
		}},
	}
}

// quickTopologies is the reduced set used when Options.Quick is set.
func quickTopologies() []Topology {
	all := Topologies()
	return []Topology{all[0], all[1], all[6]}
}

func (opt Options) topologies() []Topology {
	if opt.Quick {
		return quickTopologies()
	}
	return Topologies()
}

// runSMM executes one SMM trial and returns the lockstep handle and
// result.
func runSMM(g *graph.Graph, seed int64, variant *core.SMM) (*sim.Lockstep[core.Pointer], sim.Result) {
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(variant, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[core.Pointer](variant, cfg)
	return l, l.Run(g.N() + 2)
}

// runSMI executes one SMI trial.
func runSMI(g *graph.Graph, seed int64) (*sim.Lockstep[bool], sim.Result) {
	p := core.NewSMI()
	cfg := core.NewConfig[bool](g)
	cfg.Randomize(p, rand.New(rand.NewSource(seed)))
	l := sim.NewLockstep[bool](p, cfg)
	return l, l.Run(g.N() + 2)
}
