package harness

import (
	"math/rand"
	"sync"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/modelcheck"
	"selfstab/internal/sim"
)

// TestConcurrentExecutorsStress is a race-detector target: it drives the
// three concurrent subsystems — the data-parallel round executor, the
// harness worker pool, and the sharded model checker — at the same time,
// each itself multi-threaded, so `go test -race` observes their shared
// state (round barriers, the atomic cell counter, the atomic memo table)
// under contention.
func TestConcurrentExecutorsStress(t *testing.T) {
	var wg sync.WaitGroup

	// 1. sim.Parallel stepping a mid-size SMM instance to stability.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(DeriveSeed(1, "race", "parallel", 128, 0)))
		g := graph.RandomConnected(128, 0.05, rng)
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(core.NewSMM(), rng)
		l := sim.NewParallel[core.Pointer](core.NewSMM(), cfg, 4)
		for i := 0; i < 200 && l.Step() > 0; i++ {
		}
	}()

	// 2. The harness pool fanning cells that mutate per-cell state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sums := mapCells(4, 64, func(i int) int {
			rng := rand.New(rand.NewSource(DeriveSeed(1, "race", "pool", i, 0)))
			g := graph.Path(16)
			cfg := core.NewConfig[bool](g)
			cfg.Randomize(core.NewSMI(), rng)
			l := sim.NewLockstep[bool](core.NewSMI(), cfg)
			l.Run(17)
			return l.Rounds()
		})
		if len(sums) != 64 {
			t.Errorf("pool returned %d results, want 64", len(sums))
		}
	}()

	// 3. The sharded model checker over C8's full configuration space.
	wg.Add(1)
	go func() {
		defer wg.Done()
		g := graph.Cycle(8)
		rep, err := modelcheck.ExploreWorkers[core.Pointer](core.NewSMM(), g, modelcheck.SMMDomain, 1<<22, nil, 4)
		if err != nil {
			t.Errorf("sharded explore: %v", err)
			return
		}
		if rep.Divergent != 0 {
			t.Errorf("SMM on C8 reported %d divergent configurations", rep.Divergent)
		}
	}()

	wg.Wait()
}
