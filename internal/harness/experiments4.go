package harness

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
	"selfstab/internal/stats"
	"selfstab/internal/verify"
)

// E12Staleness probes beyond the paper's model: the beacon protocol
// guarantees nodes act only on fresh neighbor states, and the proofs use
// that freshness (Lemma 1's closure breaks under lagged views — a node
// can back off a real match after reading a stale pointer). E12 measures
// what happens when views may be up to MaxLag rounds old, uniformly at
// random per observation: both protocols still converge empirically,
// with stabilization time growing roughly linearly in the bound.
func E12Staleness(opt Options) *Table {
	t := &Table{
		ID:    "E12",
		Title: "Bounded-staleness robustness (beyond the paper)",
		Claim: "with views up to K rounds stale (uniform per observation), SMM and SMI still reach verified fixed points; rounds grow ~linearly in K",
		Cols:  []string{"protocol", "K", "n", "trials", "stabilized", "rounds mean", "rounds max"},
	}
	t.Passed = true
	n := opt.Sizes[len(opt.Sizes)-1]
	if n > 64 {
		n = 64
	}
	trials := opt.Trials
	if trials > 50 {
		trials = 50
	}
	lags := []int{0, 1, 2, 4, 8}
	if opt.Quick {
		lags = []int{0, 2}
	}
	protos := []string{"SMM", "SMI"}
	type cell struct {
		rounds int
		ok     bool
	}
	total := len(protos) * len(lags) * trials
	res := mapCells(opt.workers(), total, func(i int) cell {
		trial := i % trials
		li := (i / trials) % len(lags)
		proto := protos[i/(trials*len(lags))]
		lag := lags[li]
		seed := DeriveSeed(opt.Seed, "E12", proto, lag, trial)
		rng := cellRand(opt.Seed, "E12", proto+"/lag", lag, trial)
		g := graph.RandomConnected(n, 0.15, rng)
		limit := 500 * (lag + 1)
		switch proto {
		case "SMM":
			p := core.NewSMM()
			cfg := core.NewConfig[core.Pointer](g)
			cfg.Randomize(p, rand.New(rand.NewSource(seed)))
			s := sim.NewStaleLockstep[core.Pointer](p, cfg, lag, rng)
			r := s.Run(limit)
			return cell{rounds: r.Rounds,
				ok: r.Stable && verify.IsMaximalMatching(g, core.MatchingOf(cfg)) == nil}
		default:
			p := core.NewSMI()
			cfg := core.NewConfig[bool](g)
			cfg.Randomize(p, rand.New(rand.NewSource(seed)))
			s := sim.NewStaleLockstep[bool](p, cfg, lag, rng)
			r := s.Run(limit)
			return cell{rounds: r.Rounds,
				ok: r.Stable && verify.IsMaximalIndependentSet(g, core.SetOf(cfg)) == nil}
		}
	})
	for pi, proto := range protos {
		for li, lag := range lags {
			var rounds []float64
			stabilized := 0
			for trial := 0; trial < trials; trial++ {
				c := res[(pi*len(lags)+li)*trials+trial]
				if c.ok {
					stabilized++
					rounds = append(rounds, float64(c.rounds))
				} else {
					t.Passed = false
				}
				t.Cells++
			}
			mean, maxR := 0.0, 0
			if len(rounds) > 0 {
				s := stats.Summarize(rounds)
				mean, maxR = s.Mean, int(s.Max)
			}
			t.AddRow(proto, itoa(lag), itoa(n), itoa(trials),
				fmt.Sprintf("%d/%d", stabilized, trials), fmt.Sprintf("%.1f", mean), itoa(maxR))
		}
	}
	t.Notes = append(t.Notes,
		"K=0 is the paper's synchronous model; staleness voids Lemma 1 (matches can transiently break) yet convergence survives randomized lags")
	return t
}
