package harness

import (
	"strings"
	"testing"

	"selfstab/internal/sim"
)

// The experiment tables must also be byte-identical when every
// sim-package executor runs sharded: sharding, like frontier
// scheduling, is an optimization, never an observable change. The
// SetShards seam reroutes every lockstep executor built during the
// campaign through the sharded engine at an odd shard count (so range
// boundaries land unaligned inside frontier words).
func TestExperimentTablesByteIdenticalSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	render := func() string {
		var sb strings.Builder
		if _, err := RunAll(QuickOptions(), &sb, false); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	frontier := render()

	sim.SetShards(3)
	defer sim.SetShards(1)
	sharded := render()

	if frontier != sharded {
		d := firstDiffLine(frontier, sharded)
		t.Fatalf("experiment tables diverged under sharding at line %d:\nfrontier: %q\nsharded:  %q",
			d.line, d.a, d.b)
	}
}
