package harness

import (
	"fmt"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/rules"
	"selfstab/internal/sim"
)

// E13RuleCensus runs the Figure 1 and Figure 4 pseudocode transcriptions
// and reports how the rules divide the work: the fraction of moves each
// rule performs, per topology, from random starts and from the canonical
// all-null/all-zero start. Two facts the census pins down: (1) the
// engine's totals equal the executor's move counts (the transcription is
// faithful), and (2) from the all-null start SMM's R1 never fires —
// min-ID proposals are always mutual, so matches form by simultaneous
// R2s and R1 only matters when recovering from arbitrary corruption.
// Trials share one rule engine per row: its firing counters are atomic,
// so the concurrent totals are order-independent sums.
func E13RuleCensus(opt Options) *Table {
	t := &Table{
		ID:    "E13",
		Title: "Rule firing census (Figures 1 and 4, executable)",
		Claim: "per-rule work split of the published pseudocode; R1 is corruption-recovery only (never fires from the all-null start)",
		Cols:  []string{"algorithm", "topology", "start", "R1", "R2", "R3", "moves"},
	}
	t.Passed = true
	n := opt.Sizes[len(opt.Sizes)-1]
	if n > 64 {
		n = 64
	}
	trials := opt.Trials
	if trials > 30 {
		trials = 30
	}
	for _, topo := range opt.topologies() {
		g := topo.Gen(n, cellRand(opt.Seed, "E13", topo.Name+"/graph", n, -1))
		for _, start := range []string{"random", "null"} {
			eng := rules.SMMRules()
			perTrial := mapCells(opt.workers(), trials, func(trial int) int {
				cfg := core.NewConfig[core.Pointer](g)
				if start == "random" {
					cfg.Randomize(eng, cellRand(opt.Seed, "E13", topo.Name+"/"+start, n, trial))
				} else {
					for i := range cfg.States {
						cfg.States[i] = core.Null
					}
				}
				l := sim.NewLockstep[core.Pointer](eng, cfg)
				res := l.Run(n + 2)
				if !res.Stable {
					return -1
				}
				return l.Moves()
			})
			moves := 0
			for _, m := range perTrial {
				if m < 0 {
					t.Passed = false
					continue
				}
				moves += m
				t.Cells++
			}
			f := eng.Firings()
			if f["R1"]+f["R2"]+f["R3"] != int64(moves) {
				t.Passed = false // transcription must account for every move
			}
			if start == "null" && f["R1"] != 0 {
				t.Passed = false // the mutual-proposal fact
			}
			t.AddRow("SMM", topo.Name, start,
				share(f["R1"], moves), share(f["R2"], moves), share(f["R3"], moves), itoa(moves))
		}
	}
	// SMI census on a sparse random topology.
	g := graph.RandomConnected(n, 2.0/float64(n), cellRand(opt.Seed, "E13", "smi/graph", n, -1))
	for _, start := range []string{"random", "zero"} {
		eng := rules.SMIRules()
		perTrial := mapCells(opt.workers(), trials, func(trial int) int {
			cfg := core.NewConfig[bool](g)
			if start == "random" {
				cfg.Randomize(eng, cellRand(opt.Seed, "E13", "smi/"+start, n, trial))
			}
			l := sim.NewLockstep[bool](eng, cfg)
			res := l.Run(n + 2)
			if !res.Stable {
				return -1
			}
			return l.Moves()
		})
		moves := 0
		for _, m := range perTrial {
			if m < 0 {
				t.Passed = false
				continue
			}
			moves += m
			t.Cells++
		}
		f := eng.Firings()
		if f["R1"]+f["R2"] != int64(moves) {
			t.Passed = false
		}
		t.AddRow("SMI", "gnp-sparse", start,
			share(f["R1"], moves), share(f["R2"], moves), "-", itoa(moves))
	}
	t.Notes = append(t.Notes,
		"shares are rule firings / total moves, aggregated over all trials; totals cross-check the executor's move counter")
	return t
}

func share(firings int64, moves int) string {
	if moves == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(firings)/float64(moves))
}
