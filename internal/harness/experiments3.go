package harness

import (
	"fmt"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/modelcheck"
	"selfstab/internal/verify"
)

// E11Exhaustive upgrades the sampled experiments to machine-checked
// exhaustive facts on small instances: every configuration of SMM and
// SMI is enumerated and followed to its fixed point, yielding the EXACT
// worst-case round count (compared against the theorems' bounds), a
// validity check of every reachable fixed point, and — for the
// arbitrary-proposal variant — the exact number of divergent
// configurations behind the paper's counterexample.
func E11Exhaustive(opt Options) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Exhaustive state-space verification (small instances)",
		Claim: "from EVERY configuration: SMM ≤ n+1 rounds to a maximal matching, SMI ≤ n+1 to an MIS; the successor variant diverges on C4",
		Cols:  []string{"protocol", "graph", "configs", "exact worst rounds", "bound n+1", "fixed points", "divergent"},
	}
	t.Passed = true

	smmCases := []struct {
		name string
		g    *graph.Graph
	}{
		{"P5", graph.Path(5)},
		{"P7", graph.Path(7)},
		{"C6", graph.Cycle(6)},
		{"C7", graph.Cycle(7)},
		{"K4", graph.Complete(4)},
		{"K5", graph.Complete(5)},
		{"star6", graph.Star(6)},
		{"grid2x3", graph.Grid(2, 3)},
	}
	if !opt.Quick {
		smmCases = append(smmCases,
			struct {
				name string
				g    *graph.Graph
			}{"C9", graph.Cycle(9)},
			struct {
				name string
				g    *graph.Graph
			}{"lollipop(4,3)", graph.Lollipop(4, 3)},
		)
	}
	for _, c := range smmCases {
		check := func(states []core.Pointer) error {
			cfg := core.Config[core.Pointer]{G: c.g, States: states}
			return verify.IsMaximalMatching(c.g, core.MatchingOf(cfg))
		}
		rep, err := modelcheck.ExploreWorkers[core.Pointer](core.NewSMM(), c.g, modelcheck.SMMDomain, 1<<24, check, opt.workers())
		if err != nil {
			t.Passed = false
			t.Notes = append(t.Notes, fmt.Sprintf("SMM %s: %v", c.name, err))
			continue
		}
		t.Cells += int(rep.Configs)
		bound := c.g.N() + 1
		if rep.Divergent != 0 || rep.MaxRounds > bound {
			t.Passed = false
		}
		t.AddRow("SMM", c.name, fmt.Sprintf("%d", rep.Configs), itoa(rep.MaxRounds),
			itoa(bound), itoa(rep.FixedPoints), fmt.Sprintf("%d", rep.Divergent))
	}

	// The counterexample variant on even cycles: divergence must exist.
	for _, n := range []int{4, 6} {
		g := graph.Cycle(n)
		rep, err := modelcheck.ExploreWorkers[core.Pointer](core.NewSMMArbitrary(), g, modelcheck.SMMDomain, 1<<24, nil, opt.workers())
		if err != nil {
			t.Passed = false
			t.Notes = append(t.Notes, fmt.Sprintf("SMM-arbitrary C%d: %v", n, err))
			continue
		}
		t.Cells += int(rep.Configs)
		if rep.Divergent == 0 {
			t.Passed = false // the paper's counterexample must be reproducible
		}
		t.AddRow("SMM-successor", fmt.Sprintf("C%d", n), fmt.Sprintf("%d", rep.Configs),
			itoa(rep.MaxRounds), "-", itoa(rep.FixedPoints), fmt.Sprintf("%d", rep.Divergent))
	}

	smiCases := []struct {
		name string
		g    *graph.Graph
	}{
		{"P10", graph.Path(10)},
		{"C12", graph.Cycle(12)},
		{"K6", graph.Complete(6)},
		{"grid3x3", graph.Grid(3, 3)},
		{"star8", graph.Star(8)},
	}
	if !opt.Quick {
		smiCases = append(smiCases,
			struct {
				name string
				g    *graph.Graph
			}{"P16", graph.Path(16)},
			struct {
				name string
				g    *graph.Graph
			}{"wheel8", graph.Wheel(8)},
		)
	}
	for _, c := range smiCases {
		check := func(states []bool) error {
			cfg := core.Config[bool]{G: c.g, States: states}
			return verify.IsMaximalIndependentSet(c.g, core.SetOf(cfg))
		}
		rep, err := modelcheck.ExploreWorkers[bool](core.NewSMI(), c.g, modelcheck.SMIDomain, 1<<24, check, opt.workers())
		if err != nil {
			t.Passed = false
			t.Notes = append(t.Notes, fmt.Sprintf("SMI %s: %v", c.name, err))
			continue
		}
		t.Cells += int(rep.Configs)
		bound := c.g.N() + 1
		if rep.Divergent != 0 || rep.MaxRounds > bound {
			t.Passed = false
		}
		t.AddRow("SMI", c.name, fmt.Sprintf("%d", rep.Configs), itoa(rep.MaxRounds),
			itoa(bound), itoa(rep.FixedPoints), fmt.Sprintf("%d", rep.Divergent))
	}

	t.Notes = append(t.Notes,
		"exact worst rounds is over ALL configurations (not sampled); SMI always has exactly 1 fixed point (the greedy descending-ID MIS)")
	return t
}
