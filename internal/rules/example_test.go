package rules_test

import (
	"fmt"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/rules"
	"selfstab/internal/sim"
)

// ExampleSMMRules runs the executable Figure 1 pseudocode and prints the
// per-rule firing census — from the all-null start R1 never fires,
// because min-ID proposals are always mutual.
func ExampleSMMRules() {
	eng := rules.SMMRules()
	g := graph.Path(6)
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	l := sim.NewLockstep[core.Pointer](eng, cfg)
	res := l.Run(g.N() + 1)
	f := eng.Firings()
	fmt.Println("stable:", res.Stable)
	fmt.Printf("R1=%d R2=%d R3=%d\n", f["R1"], f["R2"], f["R3"])
	// Output:
	// stable: true
	// R1=0 R2=12 R3=6
}
