// Package rules is an executable transcription of the paper's pseudocode
// figures: a protocol is a guarded-command list — exactly the shape of
// Figure 1 (Algorithm SMM) and Figure 4 (Algorithm SMI) — evaluated
// first-enabled-rule-fires. The engine counts rule firings, giving the
// per-rule census the experiments report (how much work R1/R2/R3 each
// perform), and the transcriptions are differentially tested against the
// hand-optimized implementations in internal/core: two independently
// written versions of the same figures must agree move for move.
package rules

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Rule is one guarded command: if Guard holds at the node, Action
// produces its next state.
type Rule[S comparable] struct {
	// Name labels the rule in censuses ("R1", "R2", ...).
	Name string
	// Comment is the paper's bracket annotation ("accept proposal").
	Comment string
	// Guard reports whether the rule is enabled.
	Guard func(v core.View[S]) bool
	// Action computes the new state; invoked only when Guard holds.
	Action func(v core.View[S]) S
}

// Engine executes a rule list as a core.Protocol: the first enabled rule
// fires, matching the paper's pseudocode semantics (the rule guards of
// SMM and SMI are mutually exclusive, so order is immaterial there, but
// the engine preserves order for rule systems where it is not).
type Engine[S comparable] struct {
	name    string
	rules   []Rule[S]
	random  func(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) S
	firings []atomic.Int64
}

// NewEngine builds an engine. random supplies the arbitrary-initial-state
// distribution (the protocol's full state space).
func NewEngine[S comparable](name string, random func(graph.NodeID, []graph.NodeID, *rand.Rand) S, rs ...Rule[S]) *Engine[S] {
	if len(rs) == 0 {
		panic("rules: NewEngine with no rules")
	}
	return &Engine[S]{name: name, rules: rs, random: random, firings: make([]atomic.Int64, len(rs))}
}

// Name implements core.Protocol.
func (e *Engine[S]) Name() string { return e.name }

// Random implements core.Protocol.
func (e *Engine[S]) Random(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) S {
	return e.random(id, nbrs, rng)
}

// Move implements core.Protocol: first enabled rule fires.
func (e *Engine[S]) Move(v core.View[S]) (S, bool) {
	for i := range e.rules {
		if e.rules[i].Guard(v) {
			e.firings[i].Add(1)
			return e.rules[i].Action(v), true
		}
	}
	return v.Self, false
}

// Firings returns the per-rule firing counts accumulated so far, in rule
// order. Counters are atomic, so concurrent executors may share an
// engine.
func (e *Engine[S]) Firings() map[string]int64 {
	out := make(map[string]int64, len(e.rules))
	for i := range e.rules {
		out[e.rules[i].Name] = e.firings[i].Load()
	}
	return out
}

// ResetFirings zeroes the counters.
func (e *Engine[S]) ResetFirings() {
	for i := range e.firings {
		e.firings[i].Store(0)
	}
}

// Rules exposes the rule list (for documentation tooling).
func (e *Engine[S]) Rules() []Rule[S] { return e.rules }

// String renders the rule system like the paper's figures.
func (e *Engine[S]) String() string {
	s := "Algorithm " + e.name + ":\n"
	for _, r := range e.rules {
		s += fmt.Sprintf("  %s: ... [%s]\n", r.Name, r.Comment)
	}
	return s
}

// SMMRules transcribes Figure 1 verbatim. proposers(v) is the set
// {j ∈ N(i) : j → i}; the rule text follows the paper's notation.
func SMMRules() *Engine[core.Pointer] {
	proposerMin := func(v core.View[core.Pointer]) (graph.NodeID, bool) {
		for _, j := range v.Nbrs { // ascending: first hit is the minimum
			pj := v.Peer(j)
			if !pj.IsNull() && pj.Node() == v.ID {
				return j, true
			}
		}
		return 0, false
	}
	minNull := func(v core.View[core.Pointer]) (graph.NodeID, bool) {
		for _, j := range v.Nbrs {
			if v.Peer(j).IsNull() {
				return j, true
			}
		}
		return 0, false
	}
	return NewEngine[core.Pointer]("SMM-figure1",
		func(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) core.Pointer {
			return core.NewSMM().Random(id, nbrs, rng)
		},
		Rule[core.Pointer]{
			Name:    "R1",
			Comment: "accept proposal",
			// (i→Λ) ∧ (∃j ∈ N(i) : j→i)  ⇒  i→j
			Guard: func(v core.View[core.Pointer]) bool {
				if !v.Self.IsNull() {
					return false
				}
				_, ok := proposerMin(v)
				return ok
			},
			Action: func(v core.View[core.Pointer]) core.Pointer {
				j, _ := proposerMin(v)
				return core.PointAt(j)
			},
		},
		Rule[core.Pointer]{
			Name:    "R2",
			Comment: "make proposal",
			// (i→Λ) ∧ (∀k ∈ N(i): k↛i) ∧ (∃j ∈ N(i): j→Λ)  ⇒  i→min{j ∈ N(i): j→Λ}
			Guard: func(v core.View[core.Pointer]) bool {
				if !v.Self.IsNull() {
					return false
				}
				if _, anyProposer := proposerMin(v); anyProposer {
					return false
				}
				_, ok := minNull(v)
				return ok
			},
			Action: func(v core.View[core.Pointer]) core.Pointer {
				j, _ := minNull(v)
				return core.PointAt(j)
			},
		},
		Rule[core.Pointer]{
			Name:    "R3",
			Comment: "back-off",
			// (i→j ∧ j→k, k ∉ {Λ, i})  ⇒  i→Λ
			// (plus the dangling-pointer repair of the message-passing
			// executors: a pointer at a non-neighbor backs off too)
			Guard: func(v core.View[core.Pointer]) bool {
				if v.Self.IsNull() {
					return false
				}
				j := v.Self.Node()
				if !contains(v.Nbrs, j) {
					return true
				}
				pj := v.Peer(j)
				return !pj.IsNull() && pj.Node() != v.ID
			},
			Action: func(core.View[core.Pointer]) core.Pointer { return core.Null },
		},
	)
}

// SMIRules transcribes Figure 4 verbatim.
func SMIRules() *Engine[bool] {
	biggerIn := func(v core.View[bool]) bool {
		for _, j := range v.Nbrs {
			if j > v.ID && v.Peer(j) {
				return true
			}
		}
		return false
	}
	return NewEngine[bool]("SMI-figure4",
		func(id graph.NodeID, nbrs []graph.NodeID, rng *rand.Rand) bool {
			return core.NewSMI().Random(id, nbrs, rng)
		},
		Rule[bool]{
			Name:    "R1",
			Comment: "enter the set",
			// (x(i)=0) ∧ (¬∃j ∈ N(i): j>i ∧ x(j)=1)  ⇒  x(i)=1
			Guard:  func(v core.View[bool]) bool { return !v.Self && !biggerIn(v) },
			Action: func(core.View[bool]) bool { return true },
		},
		Rule[bool]{
			Name:    "R2",
			Comment: "leave the set",
			// (x(i)=1) ∧ (∃j ∈ N(i): j>i ∧ x(j)=1)  ⇒  x(i)=0
			Guard:  func(v core.View[bool]) bool { return v.Self && biggerIn(v) },
			Action: func(core.View[bool]) bool { return false },
		},
	)
}

func contains(nbrs []graph.NodeID, j graph.NodeID) bool {
	for _, k := range nbrs {
		if k == j {
			return true
		}
	}
	return false
}
