package rules

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
	"selfstab/internal/verify"
)

// Differential test: the Figure 1 transcription and the hand-coded SMM
// must agree move for move on every node of every configuration along
// whole executions.
func TestSMMRulesMatchHandCoded(t *testing.T) {
	eng := SMMRules()
	hand := core.NewSMM()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomConnected(12, 0.3, rng)
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(hand, rng)
		for round := 0; round < g.N()+2; round++ {
			next := make([]core.Pointer, g.N())
			anyMoved := false
			for v := 0; v < g.N(); v++ {
				id := graph.NodeID(v)
				ne, me := eng.Move(cfg.View(id))
				nh, mh := hand.Move(cfg.View(id))
				if ne != nh || me != mh {
					t.Fatalf("trial %d round %d node %d: engine (%v,%v) vs hand (%v,%v) in %v",
						trial, round, v, ne, me, nh, mh, cfg.States)
				}
				next[v] = nh
				anyMoved = anyMoved || mh
			}
			copy(cfg.States, next)
			if !anyMoved {
				break
			}
		}
	}
}

// Same differential test for Figure 4 vs. the hand-coded SMI.
func TestSMIRulesMatchHandCoded(t *testing.T) {
	eng := SMIRules()
	hand := core.NewSMI()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomConnected(14, 0.25, rng)
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(hand, rng)
		for round := 0; round < g.N()+2; round++ {
			next := make([]bool, g.N())
			anyMoved := false
			for v := 0; v < g.N(); v++ {
				id := graph.NodeID(v)
				ne, me := eng.Move(cfg.View(id))
				nh, mh := hand.Move(cfg.View(id))
				if ne != nh || me != mh {
					t.Fatalf("trial %d round %d node %d: engine (%v,%v) vs hand (%v,%v)",
						trial, round, v, ne, me, nh, mh)
				}
				next[v] = nh
				anyMoved = anyMoved || mh
			}
			copy(cfg.States, next)
			if !anyMoved {
				break
			}
		}
	}
}

// The engine is itself a full protocol: run it end to end.
func TestEngineRunsAsProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomConnected(16, 0.2, rng)
	eng := SMMRules()
	cfg := core.NewConfig[core.Pointer](g)
	cfg.Randomize(eng, rng)
	l := sim.NewLockstep[core.Pointer](eng, cfg)
	res := l.Run(g.N() + 2)
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	if err := verify.IsMaximalMatching(g, core.MatchingOf(cfg)); err != nil {
		t.Fatal(err)
	}
}

func TestFiringCensus(t *testing.T) {
	g := graph.Path(6)
	eng := SMMRules()
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	l := sim.NewLockstep[core.Pointer](eng, cfg)
	if res := l.Run(g.N() + 2); !res.Stable {
		t.Fatalf("%v", res)
	}
	f := eng.Firings()
	total := f["R1"] + f["R2"] + f["R3"]
	if total != int64(l.Moves()) {
		t.Fatalf("firings %v total %d != moves %d", f, total, l.Moves())
	}
	// From the all-null state min-ID proposals are always mutual, so
	// matches form without R1 ever firing — a dynamical fact worth
	// pinning down: only R2 and R3 fire here.
	if f["R1"] != 0 || f["R2"] == 0 || f["R3"] == 0 {
		t.Fatalf("unexpected census from all-null start: %v", f)
	}
	// R1 fires when a proposal arrives at a node that did not propose:
	// seed leaves already pointing at a null-pointer star center.
	eng.ResetFirings()
	star := graph.Star(4)
	cfg2 := core.NewConfig[core.Pointer](star)
	cfg2.States[0] = core.Null
	for v := 1; v < 4; v++ {
		cfg2.States[v] = core.PointAt(0)
	}
	l2 := sim.NewLockstep[core.Pointer](eng, cfg2)
	if res := l2.Run(star.N() + 2); !res.Stable {
		t.Fatalf("%v", res)
	}
	if f2 := eng.Firings(); f2["R1"] != 1 {
		t.Fatalf("expected exactly one R1 accept: %v", f2)
	}
	eng.ResetFirings()
	for _, c := range eng.Firings() {
		if c != 0 {
			t.Fatal("ResetFirings did not zero counters")
		}
	}
}

func TestEngineStringAndRules(t *testing.T) {
	eng := SMIRules()
	s := eng.String()
	for _, want := range []string{"Algorithm SMI-figure4", "R1", "enter the set", "R2", "leave the set"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if len(eng.Rules()) != 2 {
		t.Fatal("rule count")
	}
}

func TestNewEngineRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEngine[bool]("empty", nil)
}

// Property: on random graphs and states, the one-round successor of the
// Figure 1 engine equals the hand-coded successor (pointwise quick
// check, complementing the trajectory test above).
func TestQuickSMMOneRoundEquivalence(t *testing.T) {
	eng := SMMRules()
	hand := core.NewSMM()
	f := func(seed int64, size uint8) bool {
		n := 3 + int(size%12)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, 0.3, rng)
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(hand, rng)
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			ne, me := eng.Move(cfg.View(id))
			nh, mh := hand.Move(cfg.View(id))
			if ne != nh || me != mh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
