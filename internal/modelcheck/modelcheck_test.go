package modelcheck

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/protocols"
	"selfstab/internal/verify"
)

func checkMaximalMatching(g *graph.Graph) func([]core.Pointer) error {
	return func(states []core.Pointer) error {
		cfg := core.Config[core.Pointer]{G: g, States: states}
		return verify.IsMaximalMatching(g, core.MatchingOf(cfg))
	}
}

func checkMIS(g *graph.Graph) func([]bool) error {
	return func(states []bool) error {
		cfg := core.Config[bool]{G: g, States: states}
		return verify.IsMaximalIndependentSet(g, core.SetOf(cfg))
	}
}

func TestExhaustiveSMMOnPath(t *testing.T) {
	g := graph.Path(5)
	rep, err := Explore[core.Pointer](core.NewSMM(), g, SMMDomain, 1<<20, checkMaximalMatching(g))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Configs != 2*3*3*3*2 {
		t.Fatalf("configs = %d", rep.Configs)
	}
	if rep.Divergent != 0 {
		t.Fatalf("divergent = %d", rep.Divergent)
	}
	if rep.MaxRounds > g.N()+1 {
		t.Fatalf("exhaustive worst case %d exceeds Theorem 1 bound %d", rep.MaxRounds, g.N()+1)
	}
	if rep.MaxRounds == 0 || rep.FixedPoints == 0 {
		t.Fatalf("degenerate report %v", rep)
	}
	if rep.WorstStart == nil || len(rep.WorstStart) != 5 {
		t.Fatalf("worst start %v", rep.WorstStart)
	}
}

func TestExhaustiveSMMOnCycleAndClique(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(6), graph.Complete(4), graph.Star(5)} {
		rep, err := Explore[core.Pointer](core.NewSMM(), g, SMMDomain, 1<<22, checkMaximalMatching(g))
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if rep.Divergent != 0 {
			t.Fatalf("%v: divergent = %d", g, rep.Divergent)
		}
		if rep.MaxRounds > g.N()+1 {
			t.Fatalf("%v: worst case %d > bound %d", g, rep.MaxRounds, g.N()+1)
		}
	}
}

func TestExhaustiveCounterexampleOnC4(t *testing.T) {
	g := graph.Cycle(4)
	rep, err := Explore[core.Pointer](core.NewSMMArbitrary(), g, SMMDomain, 1<<20, checkMaximalMatching(g))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent == 0 {
		t.Fatal("counterexample variant shows no divergence — the paper's example must appear")
	}
	if rep.CycleLen != 2 {
		t.Fatalf("cycle length = %d, want the period-2 oscillation", rep.CycleLen)
	}
	// The all-null configuration must be among the divergent ones: it is
	// the paper's exact example. Verify by stepping it twice.
	if !strings.Contains(rep.String(), "divergent") {
		t.Fatalf("String() = %q", rep.String())
	}
	// The published SMM on the same graph has no divergence at all.
	rep2, err := Explore[core.Pointer](core.NewSMM(), g, SMMDomain, 1<<20, checkMaximalMatching(g))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Divergent != 0 {
		t.Fatalf("published SMM divergent on %d configs", rep2.Divergent)
	}
}

func TestExhaustiveSMI(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(10), graph.Cycle(9), graph.Complete(6), graph.Grid(3, 3)} {
		rep, err := Explore[bool](core.NewSMI(), g, SMIDomain, 1<<20, checkMIS(g))
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if rep.Divergent != 0 {
			t.Fatalf("%v: divergent = %d", g, rep.Divergent)
		}
		if rep.MaxRounds > g.N()+1 {
			t.Fatalf("%v: worst case %d > bound %d", g, rep.MaxRounds, g.N()+1)
		}
		if rep.Configs != 1<<uint(g.N()) {
			t.Fatalf("%v: configs = %d", g, rep.Configs)
		}
	}
}

func TestExhaustiveSMIFixedPointIsUnique(t *testing.T) {
	// SMI's stable set is determined by the ID order alone (greedy by
	// descending ID), so every start converges to the SAME fixed point.
	g := graph.Path(8)
	rep, err := Explore[bool](core.NewSMI(), g, SMIDomain, 1<<20, checkMIS(g))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FixedPoints != 1 {
		t.Fatalf("fixed points = %d, want 1", rep.FixedPoints)
	}
}

func TestExhaustiveColoring(t *testing.T) {
	g := graph.Cycle(5)
	rep, err := Explore[int](protocols.NewColoring(), g, ColoringDomain, 1<<22, func(states []int) error {
		return verify.IsProperColoring(g, states)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent != 0 {
		t.Fatalf("divergent = %d", rep.Divergent)
	}
	if rep.FixedPoints != 1 {
		t.Fatalf("fixed points = %d, want 1 (mex coloring is unique)", rep.FixedPoints)
	}
}

func TestExploreLimit(t *testing.T) {
	g := graph.Complete(8)
	if _, err := Explore[core.Pointer](core.NewSMM(), g, SMMDomain, 1000, nil); err == nil {
		t.Fatal("limit not enforced")
	}
}

func TestExploreEmptyGraph(t *testing.T) {
	rep, err := Explore[bool](core.NewSMI(), graph.New(0), SMIDomain, 10, nil)
	if err != nil || rep.Configs != 1 {
		t.Fatalf("rep=%v err=%v", rep, err)
	}
}

func TestExploreRejectsBadDomain(t *testing.T) {
	g := graph.Path(2)
	dup := func(_ graph.NodeID, _ []graph.NodeID) []bool { return []bool{true, true} }
	if _, err := Explore[bool](core.NewSMI(), g, dup, 100, nil); err == nil {
		t.Fatal("duplicate domain accepted")
	}
	empty := func(_ graph.NodeID, _ []graph.NodeID) []bool { return nil }
	if _, err := Explore[bool](core.NewSMI(), g, empty, 100, nil); err == nil {
		t.Fatal("empty domain accepted")
	}
}

// TestShardedExploreMatchesSerial is the shard-merge property test:
// every field of the Report — exact worst-case rounds, worst start,
// fixed-point count, divergence count, cycle shape — must be identical
// whether the configuration space was walked by one worker or eight.
func TestShardedExploreMatchesSerial(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"P5", graph.Path(5)},
		{"C4", graph.Cycle(4)},
		{"K4", graph.Complete(4)},
	}
	for _, c := range graphs {
		serial, err := Explore[core.Pointer](core.NewSMM(), c.g, SMMDomain, 1<<22, checkMaximalMatching(c.g))
		if err != nil {
			t.Fatalf("SMM %s serial: %v", c.name, err)
		}
		sharded, err := ExploreWorkers[core.Pointer](core.NewSMM(), c.g, SMMDomain, 1<<22, checkMaximalMatching(c.g), 8)
		if err != nil {
			t.Fatalf("SMM %s sharded: %v", c.name, err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("SMM %s: sharded report differs from serial:\nserial:  %+v\nsharded: %+v", c.name, serial, sharded)
		}

		serialI, err := Explore[bool](core.NewSMI(), c.g, SMIDomain, 1<<22, checkMIS(c.g))
		if err != nil {
			t.Fatalf("SMI %s serial: %v", c.name, err)
		}
		shardedI, err := ExploreWorkers[bool](core.NewSMI(), c.g, SMIDomain, 1<<22, checkMIS(c.g), 8)
		if err != nil {
			t.Fatalf("SMI %s sharded: %v", c.name, err)
		}
		if !reflect.DeepEqual(serialI, shardedI) {
			t.Errorf("SMI %s: sharded report differs from serial:\nserial:  %+v\nsharded: %+v", c.name, serialI, shardedI)
		}
	}

	// The divergent case: the successor variant on C4 must report the
	// identical divergence census from any worker count.
	g := graph.Cycle(4)
	serial, err := Explore[core.Pointer](core.NewSMMArbitrary(), g, SMMDomain, 1<<22, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		sharded, err := ExploreWorkers[core.Pointer](core.NewSMMArbitrary(), g, SMMDomain, 1<<22, nil, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("SMM-successor C4 workers=%d: sharded report differs:\nserial:  %+v\nsharded: %+v", w, serial, sharded)
		}
	}
}

func TestExploreCheckFixedFailurePropagates(t *testing.T) {
	g := graph.Path(3)
	boom := errors.New("boom")
	_, err := Explore[bool](core.NewSMI(), g, SMIDomain, 100, func([]bool) error { return boom })
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
