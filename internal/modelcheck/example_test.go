package modelcheck_test

import (
	"fmt"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/modelcheck"
	"selfstab/internal/verify"
)

// ExampleExplore verifies Theorem 1 exhaustively on the five-node path:
// every one of the 108 configurations stabilizes to a maximal matching
// within the bound.
func ExampleExplore() {
	g := graph.Path(5)
	rep, err := modelcheck.Explore[core.Pointer](core.NewSMM(), g, modelcheck.SMMDomain, 1<<16,
		func(states []core.Pointer) error {
			cfg := core.Config[core.Pointer]{G: g, States: states}
			return verify.IsMaximalMatching(g, core.MatchingOf(cfg))
		})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)
	fmt.Println("within Theorem 1 bound:", rep.MaxRounds <= g.N()+1)
	// Output:
	// exhaustive: 108 configs, 3 fixed points, worst case 4 rounds
	// within Theorem 1 bound: true
}

// ExampleExplore_counterexample quantifies the paper's Section 3
// counterexample: the arbitrary-proposal variant diverges from exactly
// three of C4's 81 configurations.
func ExampleExplore_counterexample() {
	g := graph.Cycle(4)
	rep, err := modelcheck.Explore[core.Pointer](core.NewSMMArbitrary(), g, modelcheck.SMMDomain, 1<<16, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)
	// Output:
	// exhaustive: 81 configs, 3 divergent (cycle length 2), 2 fixed points, worst case 3 rounds
}
