// Package modelcheck exhaustively verifies deterministic synchronous
// protocols on small graphs: it enumerates EVERY configuration, follows
// the (deterministic) synchronous successor function, and reports the
// exact worst-case stabilization time, every reachable fixed point, and
// any divergence (configurations that cycle forever). On instances small
// enough to enumerate this upgrades the paper's empirical round counts
// to machine-checked exhaustive facts — e.g. "from all 108 states of SMM
// on P5, stabilization takes at most 4 rounds and every fixed point is a
// maximal matching", or "exactly 2 of the 81 states of the
// arbitrary-proposal variant on C4 never stabilize".
//
// The exploration shards the initial-configuration space across a worker
// pool (ExploreWorkers). All shards publish into one shared memo table
// with atomic operations; because a configuration's distance-to-fixpoint
// (or divergence) is a pure function of the configuration, concurrent
// publishes always write the same value, and the final report is derived
// from a deterministic scan of the completed table — so the sharded
// result is byte-identical to the serial one.
//
// Only deterministic protocols may be checked (SMM, SMI, the
// counterexample variant, coloring, the spanning tree): randomized
// protocols have no single successor function.
package modelcheck

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// DomainFunc enumerates the full per-node state space of a protocol:
// every value a node's variable can hold given its neighbor list. It
// must cover every state Random can draw, or the check is not
// exhaustive.
type DomainFunc[S comparable] func(id graph.NodeID, nbrs []graph.NodeID) []S

// Report is the result of an exhaustive exploration.
type Report[S comparable] struct {
	// Configs is the number of configurations explored (the product of
	// the per-node domain sizes).
	Configs uint64
	// FixedPoints is the number of distinct fixed points reachable.
	FixedPoints int
	// MaxRounds is the exact worst-case number of rounds to reach a
	// fixed point, over all non-divergent starting configurations.
	MaxRounds int
	// WorstStart is the lowest-indexed starting configuration attaining
	// MaxRounds.
	WorstStart []S
	// Divergent is the number of configurations from which the protocol
	// NEVER stabilizes (they enter or lead into a cycle).
	Divergent uint64
	// CycleLen is the length of one example cycle (0 when none exists).
	CycleLen int
	// CycleExample is a configuration on that cycle.
	CycleExample []S
}

// String summarizes the report.
func (r *Report[S]) String() string {
	if r.Divergent == 0 {
		return fmt.Sprintf("exhaustive: %d configs, %d fixed points, worst case %d rounds",
			r.Configs, r.FixedPoints, r.MaxRounds)
	}
	return fmt.Sprintf("exhaustive: %d configs, %d divergent (cycle length %d), %d fixed points, worst case %d rounds",
		r.Configs, r.Divergent, r.CycleLen, r.FixedPoints, r.MaxRounds)
}

// space is the indexed configuration space: per-node domains plus the
// encode/decode bijection between configurations and [0, Total).
type space[S comparable] struct {
	g       *graph.Graph
	p       core.Protocol[S]
	domains [][]S
	index   []map[S]uint64
	total   uint64
}

func newSpace[S comparable](p core.Protocol[S], g *graph.Graph, domain DomainFunc[S], maxConfigs uint64) (*space[S], error) {
	n := g.N()
	sp := &space[S]{g: g, p: p, domains: make([][]S, n), index: make([]map[S]uint64, n), total: 1}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		sp.domains[v] = domain(id, g.Neighbors(id))
		if len(sp.domains[v]) == 0 {
			return nil, fmt.Errorf("modelcheck: empty domain for node %d", v)
		}
		sp.index[v] = make(map[S]uint64, len(sp.domains[v]))
		for i, s := range sp.domains[v] {
			if _, dup := sp.index[v][s]; dup {
				return nil, fmt.Errorf("modelcheck: duplicate domain value %v at node %d", s, v)
			}
			sp.index[v][s] = uint64(i)
		}
		if sp.total > maxConfigs/uint64(len(sp.domains[v])) {
			return nil, fmt.Errorf("modelcheck: state space exceeds limit %d", maxConfigs)
		}
		sp.total *= uint64(len(sp.domains[v]))
	}
	return sp, nil
}

func (sp *space[S]) decode(idx uint64, into []S) {
	for v := range sp.domains {
		d := uint64(len(sp.domains[v]))
		into[v] = sp.domains[v][idx%d]
		idx /= d
	}
}

func (sp *space[S]) encode(from []S) (uint64, error) {
	idx := uint64(0)
	mul := uint64(1)
	for v := range sp.domains {
		i, ok := sp.index[v][from[v]]
		if !ok {
			return 0, fmt.Errorf("modelcheck: protocol produced state %v outside node %d's domain", from[v], v)
		}
		idx += i * mul
		mul *= uint64(len(sp.domains[v]))
	}
	return idx, nil
}

func (sp *space[S]) successor(cur []S, into []S) {
	for v := range sp.domains {
		id := graph.NodeID(v)
		into[v], _ = sp.p.Move(core.View[S]{
			ID:    id,
			Self:  cur[v],
			Nbrs:  sp.g.Neighbors(id),
			Peer:  func(j graph.NodeID) S { return cur[j] },
			Peers: cur,
		})
	}
}

const (
	memoUnknown   = int32(-2)
	memoDivergent = int32(-1)
)

// memoTable is the shared distance table the shards publish into. A
// slot holds memoUnknown, memoDivergent, or the configuration's exact
// distance to its fixed point; because that value is a pure function of
// the configuration, concurrent publishes always agree, and the table
// needs no locking — only atomic slot access, which the guarded
// analyzer enforces on the annotated field.
type memoTable struct {
	slots []int32 // guarded by atomic
}

func newMemoTable(total uint64) *memoTable {
	// The slice is filled before the table is published to any shard, so
	// plain writes are safe here — and keeping them on the local slice
	// rather than the annotated field keeps the atomic contract total.
	slots := make([]int32, total)
	for i := range slots {
		slots[i] = memoUnknown
	}
	return &memoTable{slots: slots}
}

func (t *memoTable) load(i uint64) int32 {
	return atomic.LoadInt32(&t.slots[i])
}

func (t *memoTable) store(i uint64, v int32) {
	atomic.StoreInt32(&t.slots[i], v)
}

// claim marks slot i resolved with value v if still unknown, reporting
// whether this caller won the publication race.
func (t *memoTable) claim(i uint64, v int32) bool {
	return atomic.CompareAndSwapInt32(&t.slots[i], memoUnknown, v)
}

// failure collects the abort state shared by all shards: the error of
// the lowest-numbered erroring start wins, so the reported failure is
// deterministic no matter which shard trips first.
type failure struct {
	mu       sync.Mutex
	firstErr error  // guarded by mu
	errAt    uint64 // guarded by mu
	stop     atomic.Bool
}

// fail records err for start position at and halts all shards.
func (f *failure) fail(at uint64, err error) {
	f.mu.Lock()
	if f.firstErr == nil || at < f.errAt {
		f.firstErr, f.errAt = err, at
	}
	f.mu.Unlock()
	f.stop.Store(true)
}

func (f *failure) stopped() bool { return f.stop.Load() }

// err returns the winning error after the shards have joined.
func (f *failure) err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// Explore enumerates every configuration of p on g with a single worker.
// maxConfigs bounds the state-space size Explore is willing to touch
// (the product of domain sizes); exceeding it returns an error rather
// than thrashing. checkFixed, if non-nil, is invoked once per distinct
// fixed point and its error aborts the exploration — use it to assert
// the paper's predicate (maximal matching, MIS, ...) on every stable
// state.
func Explore[S comparable](p core.Protocol[S], g *graph.Graph, domain DomainFunc[S],
	maxConfigs uint64, checkFixed func([]S) error) (*Report[S], error) {
	return ExploreWorkers(p, g, domain, maxConfigs, checkFixed, 1)
}

// ExploreWorkers is Explore sharded over the initial-configuration
// space: workers goroutines claim chunks of start indices and publish
// resolved distances into a shared atomic memo table. workers <= 0
// selects GOMAXPROCS. The returned report is identical for every worker
// count. checkFixed may be invoked concurrently from several shards (for
// distinct fixed points), so it must be safe for concurrent use.
func ExploreWorkers[S comparable](p core.Protocol[S], g *graph.Graph, domain DomainFunc[S],
	maxConfigs uint64, checkFixed func([]S) error, workers int) (*Report[S], error) {

	n := g.N()
	if n == 0 {
		return &Report[S]{Configs: 1, FixedPoints: 1}, nil
	}
	sp, err := newSpace(p, g, domain, maxConfigs)
	if err != nil {
		return nil, err
	}
	total := sp.total
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > total {
		workers = int(total)
	}

	memo := newMemoTable(total)
	fails := new(failure)
	var nextChunk atomic.Uint64
	chunk := total / uint64(workers*8)
	if chunk < 64 {
		chunk = 64
	}

	worker := func() {
		states := make([]S, n)
		next := make([]S, n)
		var path []uint64
		pos := make(map[uint64]int)
		for !fails.stopped() {
			lo := nextChunk.Add(chunk) - chunk
			if lo >= total {
				return
			}
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			for start := lo; start < hi; start++ {
				if fails.stopped() {
					return
				}
				if memo.load(start) != memoUnknown {
					continue
				}
				path = path[:0]
				clear(pos)
				cur := start
				tail := int32(0)
				for {
					path = append(path, cur)
					pos[cur] = len(path) - 1
					sp.decode(cur, states)
					sp.successor(states, next)
					succ, err := sp.encode(next)
					if err != nil {
						fails.fail(start, err)
						return
					}
					if succ == cur {
						// cur is a fixed point; the CAS winner runs the
						// caller's predicate exactly once per fixed point.
						if memo.claim(cur, 0) && checkFixed != nil {
							if err := checkFixed(states); err != nil {
								fails.fail(start, fmt.Errorf("modelcheck: invalid fixed point %v: %w", states, err))
								return
							}
						}
						tail = 0
						path = path[:len(path)-1] // distance 0 already published
						break
					}
					if _, seen := pos[succ]; seen {
						// A cycle within the current path: everything on
						// the path diverges (the cycle plus the prefix
						// leading into it).
						for _, idx := range path {
							memo.store(idx, memoDivergent)
						}
						path = path[:0]
						break
					}
					if m := memo.load(succ); m != memoUnknown {
						if m == memoDivergent {
							for _, idx := range path {
								memo.store(idx, memoDivergent)
							}
							path = path[:0]
						} else {
							tail = m
						}
						break
					}
					cur = succ
				}
				// Backfill distances along the path. Another shard may
				// have published some of these concurrently — with the
				// same values, since a configuration's distance is unique
				// — so unconditional stores are safe.
				for i := len(path) - 1; i >= 0; i-- {
					tail++
					memo.store(path[i], tail)
				}
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	if err := fails.err(); err != nil {
		return nil, err
	}

	// Deterministic merge: the report is a pure function of the finished
	// memo table, independent of which shard resolved what. Reads stay
	// atomic — free on every supported architecture — so the guarded
	// contract holds by construction rather than by barrier reasoning.
	rep := &Report[S]{Configs: total}
	maxR := int32(-1)
	worst := uint64(0)
	for i := uint64(0); i < total; i++ {
		v := memo.load(i)
		if v == memoDivergent {
			rep.Divergent++
			continue
		}
		if v == 0 {
			rep.FixedPoints++
		}
		if v > maxR {
			maxR, worst = v, i
		}
	}
	if maxR >= 0 {
		rep.MaxRounds = int(maxR)
		rep.WorstStart = make([]S, n)
		sp.decode(worst, rep.WorstStart)
	}
	if rep.Divergent > 0 {
		// Walk from the lowest divergent configuration into its cycle —
		// a deterministic choice of example.
		var d uint64
		for i := uint64(0); i < total; i++ {
			if memo.load(i) == memoDivergent {
				d = i
				break
			}
		}
		states := make([]S, n)
		next := make([]S, n)
		pos := make(map[uint64]int)
		cur := d
		for {
			if at, seen := pos[cur]; seen {
				rep.CycleLen = len(pos) - at
				rep.CycleExample = make([]S, n)
				sp.decode(cur, rep.CycleExample)
				break
			}
			pos[cur] = len(pos)
			sp.decode(cur, states)
			sp.successor(states, next)
			cur, _ = sp.encode(next) // already encoded once during exploration
		}
	}
	return rep, nil
}

// SMMDomain enumerates SMM's pointer domain: Null plus every neighbor.
func SMMDomain(_ graph.NodeID, nbrs []graph.NodeID) []core.Pointer {
	out := []core.Pointer{core.Null}
	for _, j := range nbrs {
		out = append(out, core.PointAt(j))
	}
	return out
}

// SMIDomain enumerates SMI's bit domain.
func SMIDomain(_ graph.NodeID, _ []graph.NodeID) []bool {
	return []bool{false, true}
}

// ColoringDomain enumerates colors 0..deg+1 — a superset of every color
// the protocol can produce or that Random draws by default.
func ColoringDomain(_ graph.NodeID, nbrs []graph.NodeID) []int {
	out := make([]int, len(nbrs)+2)
	for i := range out {
		out[i] = i
	}
	return out
}
