// Package modelcheck exhaustively verifies deterministic synchronous
// protocols on small graphs: it enumerates EVERY configuration, follows
// the (deterministic) synchronous successor function, and reports the
// exact worst-case stabilization time, every reachable fixed point, and
// any divergence (configurations that cycle forever). On instances small
// enough to enumerate this upgrades the paper's empirical round counts
// to machine-checked exhaustive facts — e.g. "from all 108 states of SMM
// on P5, stabilization takes at most 4 rounds and every fixed point is a
// maximal matching", or "exactly 2 of the 81 states of the
// arbitrary-proposal variant on C4 never stabilize".
//
// Only deterministic protocols may be checked (SMM, SMI, the
// counterexample variant, coloring, the spanning tree): randomized
// protocols have no single successor function.
package modelcheck

import (
	"fmt"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// DomainFunc enumerates the full per-node state space of a protocol:
// every value a node's variable can hold given its neighbor list. It
// must cover every state Random can draw, or the check is not
// exhaustive.
type DomainFunc[S comparable] func(id graph.NodeID, nbrs []graph.NodeID) []S

// Report is the result of an exhaustive exploration.
type Report[S comparable] struct {
	// Configs is the number of configurations explored (the product of
	// the per-node domain sizes).
	Configs uint64
	// FixedPoints is the number of distinct fixed points reachable.
	FixedPoints int
	// MaxRounds is the exact worst-case number of rounds to reach a
	// fixed point, over all non-divergent starting configurations.
	MaxRounds int
	// WorstStart is a starting configuration attaining MaxRounds.
	WorstStart []S
	// Divergent is the number of configurations from which the protocol
	// NEVER stabilizes (they enter or lead into a cycle).
	Divergent uint64
	// CycleLen is the length of one example cycle (0 when none exists).
	CycleLen int
	// CycleExample is a configuration on that cycle.
	CycleExample []S
}

// String summarizes the report.
func (r *Report[S]) String() string {
	if r.Divergent == 0 {
		return fmt.Sprintf("exhaustive: %d configs, %d fixed points, worst case %d rounds",
			r.Configs, r.FixedPoints, r.MaxRounds)
	}
	return fmt.Sprintf("exhaustive: %d configs, %d divergent (cycle length %d), %d fixed points, worst case %d rounds",
		r.Configs, r.Divergent, r.CycleLen, r.FixedPoints, r.MaxRounds)
}

// Explore enumerates every configuration of p on g. maxConfigs bounds
// the state-space size Explore is willing to touch (the product of
// domain sizes); exceeding it returns an error rather than thrashing.
// checkFixed, if non-nil, is invoked once per distinct fixed point and
// its error aborts the exploration — use it to assert the paper's
// predicate (maximal matching, MIS, ...) on every stable state.
func Explore[S comparable](p core.Protocol[S], g *graph.Graph, domain DomainFunc[S],
	maxConfigs uint64, checkFixed func([]S) error) (*Report[S], error) {

	n := g.N()
	if n == 0 {
		return &Report[S]{Configs: 1, FixedPoints: 1}, nil
	}
	domains := make([][]S, n)
	index := make([]map[S]uint64, n)
	total := uint64(1)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		domains[v] = domain(id, g.Neighbors(id))
		if len(domains[v]) == 0 {
			return nil, fmt.Errorf("modelcheck: empty domain for node %d", v)
		}
		index[v] = make(map[S]uint64, len(domains[v]))
		for i, s := range domains[v] {
			if _, dup := index[v][s]; dup {
				return nil, fmt.Errorf("modelcheck: duplicate domain value %v at node %d", s, v)
			}
			index[v][s] = uint64(i)
		}
		if total > maxConfigs/uint64(len(domains[v])) {
			return nil, fmt.Errorf("modelcheck: state space exceeds limit %d", maxConfigs)
		}
		total *= uint64(len(domains[v]))
	}

	const (
		unknown   = int32(-2)
		divergent = int32(-1)
	)
	memo := make([]int32, total)
	for i := range memo {
		memo[i] = unknown
	}

	rep := &Report[S]{Configs: total, MaxRounds: -1}
	states := make([]S, n)
	next := make([]S, n)

	decode := func(idx uint64, into []S) {
		for v := 0; v < n; v++ {
			d := uint64(len(domains[v]))
			into[v] = domains[v][idx%d]
			idx /= d
		}
	}
	encode := func(from []S) (uint64, error) {
		idx := uint64(0)
		mul := uint64(1)
		for v := 0; v < n; v++ {
			i, ok := index[v][from[v]]
			if !ok {
				return 0, fmt.Errorf("modelcheck: protocol produced state %v outside node %d's domain", from[v], v)
			}
			idx += i * mul
			mul *= uint64(len(domains[v]))
		}
		return idx, nil
	}
	successor := func(cur []S, into []S) {
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			into[v], _ = p.Move(core.View[S]{
				ID:   id,
				Self: cur[v],
				Nbrs: g.Neighbors(id),
				Peer: func(j graph.NodeID) S { return cur[j] },
			})
		}
	}

	var path []uint64
	pos := make(map[uint64]int)
	for start := uint64(0); start < total; start++ {
		if memo[start] != unknown {
			continue
		}
		path = path[:0]
		clear(pos)
		cur := start
		var tail int32 // rounds from the end of the path to a fixed point
		for {
			path = append(path, cur)
			pos[cur] = len(path) - 1
			decode(cur, states)
			successor(states, next)
			succ, err := encode(next)
			if err != nil {
				return nil, err
			}
			if succ == cur {
				// cur is a fixed point.
				memo[cur] = 0
				rep.FixedPoints++
				if checkFixed != nil {
					if err := checkFixed(states); err != nil {
						return nil, fmt.Errorf("modelcheck: invalid fixed point %v: %w", states, err)
					}
				}
				tail = 0
				break
			}
			if at, seen := pos[succ]; seen {
				// A new cycle within the current path: everything from
				// the cycle entry onward diverges, and so does the
				// prefix leading into it.
				if rep.CycleLen == 0 {
					rep.CycleLen = len(path) - at
					rep.CycleExample = make([]S, n)
					decode(succ, rep.CycleExample)
				}
				for _, idx := range path {
					memo[idx] = divergent
				}
				rep.Divergent += uint64(len(path))
				path = path[:0]
				break
			}
			if m := memo[succ]; m != unknown {
				if m == divergent {
					for _, idx := range path {
						memo[idx] = divergent
					}
					rep.Divergent += uint64(len(path))
					path = path[:0]
				} else {
					tail = m
				}
				break
			}
			cur = succ
		}
		// Backfill distances along the path (skipped when the path was
		// marked divergent above). The fixed point itself may be the
		// last element (distance 0 already set).
		for i := len(path) - 1; i >= 0; i-- {
			idx := path[i]
			if memo[idx] != unknown {
				continue // the fixed point at the path's end
			}
			tail++
			memo[idx] = tail
			if int(tail) > rep.MaxRounds {
				rep.MaxRounds = int(tail)
				if rep.WorstStart == nil {
					rep.WorstStart = make([]S, n)
				}
				decode(idx, rep.WorstStart)
			}
		}
		if rep.MaxRounds < 0 && memo[start] == 0 {
			rep.MaxRounds = 0
			rep.WorstStart = make([]S, n)
			decode(start, rep.WorstStart)
		}
	}
	if rep.MaxRounds < 0 {
		rep.MaxRounds = 0
	}
	return rep, nil
}

// SMMDomain enumerates SMM's pointer domain: Null plus every neighbor.
func SMMDomain(_ graph.NodeID, nbrs []graph.NodeID) []core.Pointer {
	out := []core.Pointer{core.Null}
	for _, j := range nbrs {
		out = append(out, core.PointAt(j))
	}
	return out
}

// SMIDomain enumerates SMI's bit domain.
func SMIDomain(_ graph.NodeID, _ []graph.NodeID) []bool {
	return []bool{false, true}
}

// ColoringDomain enumerates colors 0..deg+1 — a superset of every color
// the protocol can produce or that Random draws by default.
func ColoringDomain(_ graph.NodeID, nbrs []graph.NodeID) []int {
	out := make([]int, len(nbrs)+2)
	for i := range out {
		out[i] = i
	}
	return out
}
