package daemon

import (
	"math/rand"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/verify"
)

func nullCfg(g *graph.Graph) core.Config[core.Pointer] {
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	return cfg
}

func TestCentralPickStrategies(t *testing.T) {
	g := graph.Path(6)
	p := core.NewSMM()
	cfg := nullCfg(g)
	privileged := cfg.PrivilegedNodes(p)
	if len(privileged) == 0 {
		t.Fatal("no privileged nodes on all-null path")
	}
	rng := rand.New(rand.NewSource(1))

	min := NewCentral[core.Pointer](PickMin, nil)
	if got := min.Select(cfg, p, privileged); len(got) != 1 || got[0] != privileged[0] {
		t.Fatalf("PickMin selected %v", got)
	}
	max := NewCentral[core.Pointer](PickMax, nil)
	if got := max.Select(cfg, p, privileged); len(got) != 1 || got[0] != privileged[len(privileged)-1] {
		t.Fatalf("PickMax selected %v", got)
	}
	rnd := NewCentral[core.Pointer](PickRandom, rng)
	if got := rnd.Select(cfg, p, privileged); len(got) != 1 {
		t.Fatalf("PickRandom selected %v", got)
	}
	adv := NewCentral[core.Pointer](PickAdversarial, nil)
	if got := adv.Select(cfg, p, privileged); len(got) != 1 {
		t.Fatalf("PickAdversarial selected %v", got)
	}
}

func TestPickStrings(t *testing.T) {
	wants := map[Pick]string{
		PickRandom: "random", PickMin: "min", PickMax: "max", PickAdversarial: "adversarial",
	}
	for p, want := range wants {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// On an all-null path every node is privileged; the round-robin
	// daemon must cycle through them rather than starving anyone.
	g := graph.Path(5)
	p := core.NewSMM()
	cfg := nullCfg(g)
	rr := NewRoundRobin[core.Pointer]()
	if rr.Name() != "central-roundrobin" {
		t.Fatal(rr.Name())
	}
	privileged := cfg.PrivilegedNodes(p)
	seen := map[graph.NodeID]bool{}
	for i := 0; i < len(privileged); i++ {
		got := rr.Select(cfg, p, privileged)
		if len(got) != 1 {
			t.Fatalf("selected %v", got)
		}
		if seen[got[0]] {
			t.Fatalf("node %d activated twice before others ran", got[0])
		}
		seen[got[0]] = true
	}
	if len(seen) != len(privileged) {
		t.Fatalf("only %d of %d nodes activated in one cycle", len(seen), len(privileged))
	}
}

func TestRoundRobinRunnerConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(12, 0.25, rng)
		p := core.NewSMM()
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rng)
		r := NewRunner[core.Pointer](p, cfg, NewRoundRobin[core.Pointer]())
		res := r.Run(20 * g.N() * g.N())
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if err := verify.IsMaximalMatching(g, core.MatchingOf(r.Config())); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDistributedSelectsNonemptySubset(t *testing.T) {
	g := graph.Path(8)
	p := core.NewSMM()
	cfg := nullCfg(g)
	privileged := cfg.PrivilegedNodes(p)
	rng := rand.New(rand.NewSource(2))
	d := NewDistributed[core.Pointer](0.0, rng) // forces the fallback branch
	for i := 0; i < 20; i++ {
		got := d.Select(cfg, p, privileged)
		if len(got) != 1 {
			t.Fatalf("p=0 selected %v", got)
		}
	}
	d1 := NewDistributed[core.Pointer](1.0, rng)
	if got := d1.Select(cfg, p, privileged); len(got) != len(privileged) {
		t.Fatalf("p=1 selected %d of %d", len(got), len(privileged))
	}
}

func TestSynchronousSelectsAll(t *testing.T) {
	g := graph.Path(8)
	p := core.NewSMM()
	cfg := nullCfg(g)
	privileged := cfg.PrivilegedNodes(p)
	var s Synchronous[core.Pointer]
	if got := s.Select(cfg, p, privileged); len(got) != len(privileged) {
		t.Fatalf("synchronous selected %d of %d", len(got), len(privileged))
	}
	if s.Name() != "synchronous" {
		t.Fatal(s.Name())
	}
}

func TestRunnerCentralDaemonSMM(t *testing.T) {
	// SMM is also correct under a central daemon (serial moves are a
	// special case of the convergence argument).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(10, 0.3, rng)
		p := core.NewSMM()
		cfg := core.NewConfig[core.Pointer](g)
		cfg.Randomize(p, rng)
		r := NewRunner[core.Pointer](p, cfg, NewCentral[core.Pointer](PickRandom, rng))
		res := r.Run(10 * g.N() * g.N())
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if res.Steps != res.Moves {
			t.Fatalf("central daemon: steps %d != moves %d", res.Steps, res.Moves)
		}
		if err := verify.IsMaximalMatching(g, core.MatchingOf(r.Config())); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRunnerDistributedDaemonSMI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(12, 0.25, rng)
		p := core.NewSMI()
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rng)
		r := NewRunner[bool](p, cfg, NewDistributed[bool](0.5, rng))
		res := r.Run(100 * g.N())
		if !res.Stable {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if err := verify.IsMaximalIndependentSet(g, core.SetOf(r.Config())); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRunnerStopsAtFixedPoint(t *testing.T) {
	g := graph.Path(2)
	cfg := core.NewConfig[core.Pointer](g)
	cfg.States[0] = core.PointAt(1)
	cfg.States[1] = core.PointAt(0)
	r := NewRunner[core.Pointer](core.NewSMM(), cfg, NewCentral[core.Pointer](PickMin, nil))
	if got := r.Step(); got != 0 {
		t.Fatalf("Step on fixed point moved %d nodes", got)
	}
	res := r.Run(10)
	if !res.Stable || res.Steps != 0 {
		t.Fatalf("Run on fixed point: %v", res)
	}
}

func TestRunnerHonorsStepLimit(t *testing.T) {
	// Synchronous scheduler + the divergent successor policy on C4.
	g := graph.Cycle(4)
	p := core.NewSMMArbitrary()
	cfg := nullCfg(g)
	r := NewRunner[core.Pointer](p, cfg, Synchronous[core.Pointer]{})
	res := r.Run(9)
	if res.Stable || res.Steps != 9 {
		t.Fatalf("res = %v", res)
	}
	if r.Steps() != 9 || r.Moves() != 9*4 {
		t.Fatalf("Steps=%d Moves=%d", r.Steps(), r.Moves())
	}
}

func TestResultString(t *testing.T) {
	r := Result{Steps: 3, Moves: 3, Stable: true}
	if r.String() != "stable in 3 steps (3 moves)" {
		t.Fatalf("%q", r.String())
	}
	r.Stable = false
	if r.String() != "NOT stable after 3 steps (3 moves)" {
		t.Fatalf("%q", r.String())
	}
}

func TestNames(t *testing.T) {
	if NewCentral[bool](PickAdversarial, nil).Name() != "central-adversarial" {
		t.Fatal("central name")
	}
	if NewDistributed[bool](0.25, nil).Name() != "distributed-0.25" {
		t.Fatal("distributed name")
	}
}
