// Package daemon implements the classical self-stabilization execution
// models the paper contrasts its synchronous beacon model with: a central
// daemon that activates exactly one privileged node per step, and a
// distributed daemon that activates an arbitrary nonempty subset. The
// baselines (the Hsu–Huang central-daemon matching algorithm) and the
// daemon-refinement comparison of experiment E7/E10 run under these
// schedulers.
package daemon

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// Scheduler chooses which privileged nodes move in one step. The
// privileged slice is ascending and nonempty; the returned slice must be
// a nonempty subset of it. Schedulers may consult the configuration and
// protocol to act adversarially.
type Scheduler[S comparable] interface {
	Name() string
	Select(cfg core.Config[S], p core.Protocol[S], privileged []graph.NodeID) []graph.NodeID
}

// Pick selects a single node for the central daemon.
type Pick uint8

// Central daemon picking strategies.
const (
	// PickRandom activates a uniformly random privileged node.
	PickRandom Pick = iota
	// PickMin activates the smallest-ID privileged node.
	PickMin
	// PickMax activates the largest-ID privileged node.
	PickMax
	// PickAdversarial greedily activates the privileged node whose move
	// leaves the most privileged nodes afterwards — a simple adversary
	// heuristic that lengthens executions.
	PickAdversarial
)

// String names the strategy.
func (p Pick) String() string {
	switch p {
	case PickRandom:
		return "random"
	case PickMin:
		return "min"
	case PickMax:
		return "max"
	case PickAdversarial:
		return "adversarial"
	}
	return fmt.Sprintf("Pick(%d)", uint8(p))
}

// Central is the central daemon: exactly one privileged node moves per
// step.
type Central[S comparable] struct {
	Strategy Pick
	Rng      *rand.Rand // required for PickRandom
}

// NewCentral returns a central daemon with the given strategy. rng may be
// nil for deterministic strategies.
func NewCentral[S comparable](strategy Pick, rng *rand.Rand) *Central[S] {
	return &Central[S]{Strategy: strategy, Rng: rng}
}

// Name implements Scheduler.
func (c *Central[S]) Name() string { return "central-" + c.Strategy.String() }

// Select implements Scheduler.
func (c *Central[S]) Select(cfg core.Config[S], p core.Protocol[S], privileged []graph.NodeID) []graph.NodeID {
	switch c.Strategy {
	case PickRandom:
		i := c.Rng.Intn(len(privileged))
		return privileged[i : i+1]
	case PickMin:
		return privileged[:1]
	case PickMax:
		return privileged[len(privileged)-1:]
	case PickAdversarial:
		best := privileged[:1]
		bestCount := -1
		for i := range privileged {
			trial := cfg.Clone()
			next, _ := p.Move(trial.View(privileged[i]))
			trial.States[privileged[i]] = next
			count := len(trial.PrivilegedNodes(p))
			if count > bestCount {
				bestCount = count
				best = privileged[i : i+1]
			}
		}
		return best
	}
	panic(fmt.Sprintf("daemon: unknown strategy %v", c.Strategy))
}

// RoundRobin is the fair central daemon: it cycles through node IDs and
// activates the next privileged node at or after its cursor, so every
// continuously privileged node is activated within n steps — the
// textbook fairness assumption.
type RoundRobin[S comparable] struct {
	cursor graph.NodeID
}

// NewRoundRobin returns a fair round-robin central daemon.
func NewRoundRobin[S comparable]() *RoundRobin[S] { return &RoundRobin[S]{} }

// Name implements Scheduler.
func (*RoundRobin[S]) Name() string { return "central-roundrobin" }

// Select implements Scheduler.
func (r *RoundRobin[S]) Select(cfg core.Config[S], _ core.Protocol[S], privileged []graph.NodeID) []graph.NodeID {
	n := graph.NodeID(cfg.G.N())
	// First privileged node at or after the cursor, wrapping around.
	pick := privileged[0]
	for _, v := range privileged {
		if v >= r.cursor {
			pick = v
			break
		}
	}
	r.cursor = (pick + 1) % n
	return []graph.NodeID{pick}
}

// Distributed is the distributed daemon: every privileged node is
// activated independently with probability P; if none is chosen, one
// random privileged node is activated so the step is productive (a
// weakly-fair daemon never stalls a privileged system).
type Distributed[S comparable] struct {
	P   float64
	Rng *rand.Rand
}

// NewDistributed returns a distributed daemon activating each privileged
// node with probability p.
func NewDistributed[S comparable](p float64, rng *rand.Rand) *Distributed[S] {
	return &Distributed[S]{P: p, Rng: rng}
}

// Name implements Scheduler.
func (d *Distributed[S]) Name() string { return fmt.Sprintf("distributed-%.2f", d.P) }

// Select implements Scheduler.
func (d *Distributed[S]) Select(_ core.Config[S], _ core.Protocol[S], privileged []graph.NodeID) []graph.NodeID {
	var chosen []graph.NodeID
	for _, v := range privileged {
		if d.Rng.Float64() < d.P {
			chosen = append(chosen, v)
		}
	}
	if len(chosen) == 0 {
		chosen = append(chosen, privileged[d.Rng.Intn(len(privileged))])
	}
	return chosen
}

// Synchronous activates every privileged node — the paper's model,
// provided for uniform comparisons against the other daemons.
type Synchronous[S comparable] struct{}

// Name implements Scheduler.
func (Synchronous[S]) Name() string { return "synchronous" }

// Select implements Scheduler.
func (Synchronous[S]) Select(_ core.Config[S], _ core.Protocol[S], privileged []graph.NodeID) []graph.NodeID {
	return privileged
}

// Result summarizes a daemon-driven run.
type Result struct {
	// Steps is the number of daemon activations (for the central daemon,
	// the classical "moves" count).
	Steps int
	// Moves is the total number of node moves across all steps.
	Moves int
	// Stable reports whether a fixed point was reached within the limit.
	Stable bool
}

// String renders e.g. "stable in 12 steps (12 moves)".
func (r Result) String() string {
	if r.Stable {
		return fmt.Sprintf("stable in %d steps (%d moves)", r.Steps, r.Moves)
	}
	return fmt.Sprintf("NOT stable after %d steps (%d moves)", r.Steps, r.Moves)
}

// Runner executes a protocol under a scheduler. Selected nodes move
// simultaneously against the pre-step configuration, which for the
// central daemon coincides with serial semantics and for the distributed
// daemon models concurrent activation.
type Runner[S comparable] struct {
	p     core.Protocol[S]
	cfg   core.Config[S]
	sch   Scheduler[S]
	steps int
	moves int
}

// NewRunner wraps protocol p on cfg under scheduler sch. The
// configuration is used in place.
func NewRunner[S comparable](p core.Protocol[S], cfg core.Config[S], sch Scheduler[S]) *Runner[S] {
	return &Runner[S]{p: p, cfg: cfg, sch: sch}
}

// Config exposes the evolving configuration.
func (r *Runner[S]) Config() core.Config[S] { return r.cfg }

// Steps returns the number of daemon activations so far.
func (r *Runner[S]) Steps() int { return r.steps }

// Moves returns the total node moves so far.
func (r *Runner[S]) Moves() int { return r.moves }

// Step performs one daemon activation. It returns the number of nodes
// moved; zero means the configuration is a fixed point.
func (r *Runner[S]) Step() int {
	privileged := r.cfg.PrivilegedNodes(r.p)
	if len(privileged) == 0 {
		return 0
	}
	chosen := r.sch.Select(r.cfg, r.p, privileged)
	if len(chosen) == 0 {
		panic("daemon: scheduler selected no nodes")
	}
	next := make([]S, len(chosen))
	for i, v := range chosen {
		next[i], _ = r.p.Move(r.cfg.View(v))
	}
	for i, v := range chosen {
		r.cfg.States[v] = next[i]
	}
	r.steps++
	r.moves += len(chosen)
	return len(chosen)
}

// Run drives Step until quiescence or maxSteps activations.
func (r *Runner[S]) Run(maxSteps int) Result {
	start := r.steps
	for r.steps-start < maxSteps {
		if r.Step() == 0 {
			return Result{Steps: r.steps - start, Moves: r.moves, Stable: true}
		}
	}
	stable := len(r.cfg.PrivilegedNodes(r.p)) == 0
	return Result{Steps: r.steps - start, Moves: r.moves, Stable: stable}
}
