package runtime

import (
	"selfstab/internal/core"
	"selfstab/internal/faults"
	"selfstab/internal/graph"
)

// FaultNetwork adapts Network to faults.Target, making the concurrent
// executor injectable. All fault mutations happen on the coordinator
// between rounds — exactly where ApplyEvents already mutates the
// topology — so no additional synchronization is needed: the round
// handshake orders every injection before the node goroutines' reads.
// Stale views (beacon loss, frozen tables) are served by an overlay
// wired into the per-round peer filter.
type FaultNetwork[S comparable] struct {
	net *Network[S]
	ov  *faults.Overlay[S]
}

// NewFaultNetwork starts a goroutine-per-node network with fault hooks
// installed. Callers must Close it.
func NewFaultNetwork[S comparable](p core.Protocol[S], g *graph.Graph, states []S) *FaultNetwork[S] {
	net := New(p, g, states)
	ov := faults.NewOverlay[S]()
	net.peerFilter = ov.Peer
	return &FaultNetwork[S]{net: net, ov: ov}
}

// Network returns the wrapped executor.
func (f *FaultNetwork[S]) Network() *Network[S] { return f.net }

// Model implements faults.Target.
func (f *FaultNetwork[S]) Model() string { return "runtime" }

// Topology implements faults.Target.
func (f *FaultNetwork[S]) Topology() *graph.Graph { return f.net.g }

// Config implements faults.Target (a snapshot; see Network.Config).
func (f *FaultNetwork[S]) Config() core.Config[S] { return f.net.Config() }

// ReadState implements faults.Target.
func (f *FaultNetwork[S]) ReadState(v graph.NodeID) S { return f.net.states[v] }

// WriteState implements faults.Target. Must only be called between
// rounds (the engine is sequential, so it always is). The overwrite
// re-dirties v's closed neighborhood.
func (f *FaultNetwork[S]) WriteState(v graph.NodeID, s S) {
	f.net.states[v] = s
	f.net.DirtyState(v)
}

// SetLink implements faults.Target, with the same repair semantics as
// ApplyEvents plus clearing stale pins on a removed link. Either
// direction of the flip re-dirties the closed neighborhoods of both
// endpoints precisely (instead of the full re-dirty an unhooked
// topology edit triggers).
func (f *FaultNetwork[S]) SetLink(e graph.Edge, present bool) {
	if present {
		if f.net.g.AddEdge(e.U, e.V) {
			f.net.DirtyEdge(e.U, e.V)
		}
		return
	}
	if f.net.g.RemoveEdge(e.U, e.V) {
		f.ov.Unpin(e.U, e.V)
		for _, v := range [2]graph.NodeID{e.U, e.V} {
			other := e.U ^ e.V ^ v
			f.net.states[v] = core.RepairState(f.net.p, v, f.net.states[v], other)
		}
		f.net.DirtyEdge(e.U, e.V)
	}
}

// DropLink implements faults.Target. Only the two viewers' reads change.
func (f *FaultNetwork[S]) DropLink(e graph.Edge, rounds int) {
	st := f.net.states
	f.ov.PinLink(e.U, e.V, st[e.U], st[e.V], rounds)
	f.net.DirtyView(e.U)
	f.net.DirtyView(e.V)
}

// Freeze implements faults.Target. Only v's reads change.
func (f *FaultNetwork[S]) Freeze(v graph.NodeID, rounds int) {
	st := f.net.states
	f.ov.PinView(v, f.net.g.Neighbors(v), func(j graph.NodeID) S { return st[j] }, rounds)
	f.net.DirtyView(v)
}

// Step implements faults.Target: one bulk-synchronous round, then one
// overlay tick. The overlay is only read by node goroutines during the
// round and only mutated here between rounds. Viewers whose pins
// expired read fresh again without any state change, so they are
// re-dirtied.
func (f *FaultNetwork[S]) Step() int {
	moved := f.net.Step()
	for _, v := range f.ov.Tick() {
		f.net.DirtyView(v)
	}
	return moved
}

// Warmup implements faults.Target: the runtime model has built-in
// topology knowledge.
func (f *FaultNetwork[S]) Warmup() int { return 0 }

// DetectionLag implements faults.Target: link changes are published at
// the next round snapshot.
func (f *FaultNetwork[S]) DetectionLag() int { return 0 }

// QuietRounds implements faults.Target: rounds are bulk-synchronous, so
// one zero-move round is a fixed point, as in lockstep.
func (f *FaultNetwork[S]) QuietRounds() int { return 1 }

// Close implements faults.Target.
func (f *FaultNetwork[S]) Close() { f.net.Close() }

var _ faults.Target[bool] = (*FaultNetwork[bool])(nil)
