// Package runtime executes a protocol with one goroutine per network
// node and Go channels as the logical links — the "nodes are processes,
// beacons are messages" reading of the paper's system model. Rounds are
// bulk-synchronous: in each round every node goroutine broadcasts its
// state to the inboxes of its neighbors that will evaluate this round
// (the beacons), waits for the barrier, drains exactly one beacon per
// neighbor, evaluates its rules, and reports the move to the
// coordinator, which commits all new states at once. The semantics
// therefore coincide with sim.Lockstep (verified by the equivalence
// tests) while the execution is genuinely concurrent.
//
// The coordinator schedules rounds with the same active frontier as
// sim.Lockstep: a node whose last evaluation was a no-op and whose view
// has not changed since is published as clean, skips the gather and
// Move phases, and receives no beacons (none of its neighbors would be
// heard by anyone). Purity of Move makes the skip exact — every state
// sequence and move count matches the full scan (see DESIGN.md,
// "Active-frontier scheduling").
//
// Topology changes are applied by the coordinator between rounds, which
// models the link layer updating the neighbor lists before the next
// beacon exchange; states referencing a departed neighbor are repaired
// through core.NeighborAware.
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
)

// beaconMsg is one beacon: the sender and the state it carried.
type beaconMsg[S comparable] struct {
	from  graph.NodeID
	state S
}

// roundCmd tells a node goroutine to run one round (or stop).
type roundCmd uint8

const (
	cmdRound roundCmd = iota
	cmdStop
)

// moveReport is a node's per-round result.
type moveReport[S comparable] struct {
	id     graph.NodeID
	next   S
	active bool
}

// Network runs one protocol over a mutable topology with one goroutine
// per node. Create with New, drive with Step/Run, always Close.
type Network[S comparable] struct {
	p      core.Protocol[S]
	g      *graph.Graph
	states []S

	inboxes []chan beaconMsg[S]
	cmds    []chan roundCmd
	reports chan moveReport[S]
	sent    *sync.WaitGroup // beacons of the current round all sent

	// Round snapshot handed to node goroutines: the adjacency (a CSR,
	// rebuilt when the topology's version moves), the pre-round states,
	// and the round's dirty set. All are written by the coordinator
	// strictly before the cmdRound sends and read by node goroutines
	// strictly after the receives, so the channel handshake orders every
	// write before every read.
	roundCSR    *graph.CSR
	roundStates []S
	dirty       []bool

	frontier *graph.Frontier
	dirtyBuf []graph.NodeID // drained frontier of the current round
	fullScan bool           // reference mode: every node every round

	// peerFilter, when non-nil, intercepts every neighbor-state read with
	// (viewer, neighbor, fresh state); the fault layer uses it to serve
	// stale views. Published under the same handshake as the snapshot.
	peerFilter func(viewer, nbr graph.NodeID, fresh S) S

	rounds int
	moves  int
	closed bool
}

// New starts one goroutine per node of g with the given initial states
// (used in place). Callers must Close the network when done.
func New[S comparable](p core.Protocol[S], g *graph.Graph, states []S) *Network[S] {
	n := g.N()
	if len(states) != n {
		panic(fmt.Sprintf("runtime: %d states for %d nodes", len(states), n))
	}
	net := &Network[S]{
		p:           p,
		g:           g,
		states:      states,
		inboxes:     make([]chan beaconMsg[S], n),
		cmds:        make([]chan roundCmd, n),
		reports:     make(chan moveReport[S], n),
		sent:        &sync.WaitGroup{},
		roundStates: make([]S, n),
		dirty:       make([]bool, n),
		frontier:    graph.NewFrontier(n),
		fullScan:    referenceScan.Load(),
	}
	for v := 0; v < n; v++ {
		net.inboxes[v] = make(chan beaconMsg[S], n) // capacity ≥ max degree
		net.cmds[v] = make(chan roundCmd)
	}
	for v := 0; v < n; v++ {
		go net.nodeLoop(graph.NodeID(v))
	}
	return net
}

// nodeLoop is the per-node process: beacon, gather, move, report. The
// gather buffer and the peer closures live across rounds, so steady
// state allocates nothing per round.
func (net *Network[S]) nodeLoop(id graph.NodeID) {
	var (
		nbrs  []graph.NodeID
		heard []S
	)
	// lookup resolves a neighbor's beacon by binary search over the
	// sorted neighbor list — replacing the per-round map.
	lookup := func(j graph.NodeID) S {
		i := sort.Search(len(nbrs), func(k int) bool { return nbrs[k] >= j })
		return heard[i]
	}
	filtered := func(j graph.NodeID) S { return net.peerFilter(id, j, lookup(j)) }
	for cmd := range net.cmds[id] {
		if cmd == cmdStop {
			return
		}
		nbrs = net.roundCSR.Neighbors(id)
		self := net.roundStates[id]
		// Beacon phase: broadcast our state to every neighbor that will
		// evaluate this round. Clean neighbors consume no beacons.
		for _, j := range nbrs {
			if net.dirty[j] {
				net.inboxes[j] <- beaconMsg[S]{from: id, state: self}
			}
		}
		net.sent.Done()
		net.sent.Wait() // barrier: all beacons of this round are in flight
		if !net.dirty[id] {
			// Clean: our last evaluation was a no-op and our view is
			// unchanged, so Move would return (self, false) again.
			net.reports <- moveReport[S]{id: id, next: self, active: false}
			continue
		}
		// Gather phase: exactly one beacon per neighbor (every neighbor
		// sent to us — we are dirty).
		if cap(heard) < len(nbrs) {
			heard = make([]S, len(nbrs))
		}
		heard = heard[:len(nbrs)]
		for range nbrs {
			m := <-net.inboxes[id]
			i := sort.Search(len(nbrs), func(k int) bool { return nbrs[k] >= m.from })
			heard[i] = m.state
		}
		peer := lookup
		if net.peerFilter != nil {
			peer = filtered
		}
		next, active := net.p.Move(core.View[S]{
			ID:   id,
			Self: self,
			Nbrs: nbrs,
			Peer: peer,
		})
		net.reports <- moveReport[S]{id: id, next: next, active: active}
	}
}

// DirtyState marks node v's closed neighborhood for re-evaluation after
// an external write to its state between rounds.
func (net *Network[S]) DirtyState(v graph.NodeID) {
	net.frontier.Add(v)
	for _, w := range net.g.Neighbors(v) {
		net.frontier.Add(w)
	}
}

// DirtyView marks node v alone for re-evaluation: its effective view
// changed without any state changing (a stale-read pin installed or
// expired).
func (net *Network[S]) DirtyView(v graph.NodeID) {
	net.frontier.Add(v)
}

// DirtyEdge re-syncs the adjacency snapshot after a hooked topology
// mutation on edge {u,v} and re-dirties the affected closed
// neighborhoods (see sim.Lockstep.DirtyEdge).
func (net *Network[S]) DirtyEdge(u, v graph.NodeID) {
	if !net.roundCSR.Fresh(net.g) {
		net.roundCSR = net.g.Snapshot()
	}
	for _, x := range [2]graph.NodeID{u, v} {
		net.frontier.Add(x)
		for _, w := range net.roundCSR.Neighbors(x) {
			net.frontier.Add(w)
		}
	}
}

// Step runs one synchronous round and returns the number of active
// nodes.
func (net *Network[S]) Step() int {
	if net.closed {
		panic("runtime: Step after Close")
	}
	if !net.roundCSR.Fresh(net.g) {
		// Unhooked topology change (ApplyEvents, a test editing the
		// graph): re-snapshot and re-evaluate everyone.
		net.roundCSR = net.g.Snapshot()
		net.frontier.AddAll()
	}
	if net.fullScan {
		net.frontier.AddAll()
	}
	n := net.g.N()
	// Publish the round snapshot: reset the previous round's dirty bits
	// (O(frontier), not O(n)), then raise this round's.
	for _, v := range net.dirtyBuf {
		net.dirty[v] = false
	}
	ids := net.frontier.Drain(net.dirtyBuf, n)
	net.dirtyBuf = ids
	for _, v := range ids {
		net.dirty[v] = true
	}
	copy(net.roundStates, net.states)
	net.sent.Add(n)
	for v := 0; v < n; v++ {
		net.cmds[v] <- cmdRound
	}
	active := 0
	for i := 0; i < n; i++ {
		// Reports arrive in goroutine-scheduling order, but the frontier
		// deduplicates through a bitset and drains sorted, so the next
		// round is independent of arrival order.
		rep := <-net.reports
		if rep.active {
			active++
			net.frontier.Add(rep.id)
		}
		if rep.next != net.states[rep.id] {
			net.states[rep.id] = rep.next
			net.frontier.Add(rep.id)
			for _, w := range net.roundCSR.Neighbors(rep.id) {
				net.frontier.Add(w)
			}
		}
	}
	if active > 0 {
		net.rounds++
		net.moves += active
	}
	return active
}

// Run drives Step until a quiet round or until maxRounds active rounds.
// The result mirrors sim.Result.
func (net *Network[S]) Run(maxRounds int) (rounds, moves int, stable bool) {
	// Run is the boundary at which callers may have edited states
	// directly; re-dirty everything (see sim.Lockstep.RunHook).
	net.frontier.AddAll()
	start := net.rounds
	for net.rounds-start < maxRounds {
		if net.Step() == 0 {
			return net.rounds - start, net.moves, true
		}
	}
	return net.rounds - start, net.moves, false
}

// Config snapshots the current configuration.
func (net *Network[S]) Config() core.Config[S] {
	cfg := core.NewConfig[S](net.g)
	copy(cfg.States, net.states)
	return cfg
}

// Rounds returns the number of active rounds executed.
func (net *Network[S]) Rounds() int { return net.rounds }

// Moves returns the total number of active node evaluations.
func (net *Network[S]) Moves() int { return net.moves }

// ApplyEvents mutates the topology between rounds (the link layer
// reporting created/destroyed links) and repairs states that referenced
// departed neighbors. The version bump makes the next Step re-snapshot
// the adjacency and re-evaluate everyone.
func (net *Network[S]) ApplyEvents(events []mobility.Event) {
	for _, ev := range events {
		if ev.Add {
			net.g.AddEdge(ev.Edge.U, ev.Edge.V)
			continue
		}
		net.g.RemoveEdge(ev.Edge.U, ev.Edge.V)
		for _, v := range [2]graph.NodeID{ev.Edge.U, ev.Edge.V} {
			other := ev.Edge.U ^ ev.Edge.V ^ v
			net.states[v] = core.RepairState(net.p, v, net.states[v], other)
		}
	}
}

// Close stops all node goroutines. The network is unusable afterwards.
func (net *Network[S]) Close() {
	if net.closed {
		return
	}
	net.closed = true
	for _, c := range net.cmds {
		c <- cmdStop
		close(c)
	}
}
