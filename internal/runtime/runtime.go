// Package runtime executes a protocol with one goroutine per network
// node and Go channels as the logical links — the "nodes are processes,
// beacons are messages" reading of the paper's system model. Rounds are
// bulk-synchronous: in each round every node goroutine broadcasts its
// state to its neighbors' inboxes (the beacons), waits for the barrier,
// drains exactly one beacon per neighbor, evaluates its rules, and
// reports the move to the coordinator, which commits all new states at
// once. The semantics therefore coincide with sim.Lockstep (verified by
// the equivalence tests) while the execution is genuinely concurrent.
//
// Topology changes are applied by the coordinator between rounds, which
// models the link layer updating the neighbor lists before the next
// beacon exchange; states referencing a departed neighbor are repaired
// through core.NeighborAware.
package runtime

import (
	"fmt"
	"sync"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
)

// beaconMsg is one beacon: the sender and the state it carried.
type beaconMsg[S comparable] struct {
	from  graph.NodeID
	state S
}

// roundCmd tells a node goroutine to run one round (or stop).
type roundCmd uint8

const (
	cmdRound roundCmd = iota
	cmdStop
)

// moveReport is a node's per-round result.
type moveReport[S comparable] struct {
	id     graph.NodeID
	next   S
	active bool
}

// Network runs one protocol over a mutable topology with one goroutine
// per node. Create with New, drive with Step/Run, always Close.
type Network[S comparable] struct {
	p      core.Protocol[S]
	g      *graph.Graph
	states []S

	inboxes []chan beaconMsg[S]
	cmds    []chan roundCmd
	reports chan moveReport[S]
	sent    *sync.WaitGroup // beacons of the current round all sent

	// snapshot handed to node goroutines for the current round.
	roundNbrs   [][]graph.NodeID
	roundStates []S

	// peerFilter, when non-nil, intercepts every neighbor-state read with
	// (viewer, neighbor, fresh state); the fault layer uses it to serve
	// stale views. Like roundNbrs/roundStates it is written by the
	// coordinator strictly before the cmdRound sends and read by node
	// goroutines strictly after the receives, so the channel handshake
	// orders every write before every read.
	peerFilter func(viewer, nbr graph.NodeID, fresh S) S

	rounds int
	moves  int
	closed bool
}

// New starts one goroutine per node of g with the given initial states
// (used in place). Callers must Close the network when done.
func New[S comparable](p core.Protocol[S], g *graph.Graph, states []S) *Network[S] {
	n := g.N()
	if len(states) != n {
		panic(fmt.Sprintf("runtime: %d states for %d nodes", len(states), n))
	}
	net := &Network[S]{
		p:           p,
		g:           g,
		states:      states,
		inboxes:     make([]chan beaconMsg[S], n),
		cmds:        make([]chan roundCmd, n),
		reports:     make(chan moveReport[S], n),
		sent:        &sync.WaitGroup{},
		roundNbrs:   make([][]graph.NodeID, n),
		roundStates: make([]S, n),
	}
	for v := 0; v < n; v++ {
		net.inboxes[v] = make(chan beaconMsg[S], n) // capacity ≥ max degree
		net.cmds[v] = make(chan roundCmd)
	}
	for v := 0; v < n; v++ {
		go net.nodeLoop(graph.NodeID(v))
	}
	return net
}

// nodeLoop is the per-node process: beacon, gather, move, report.
func (net *Network[S]) nodeLoop(id graph.NodeID) {
	for cmd := range net.cmds[id] {
		if cmd == cmdStop {
			return
		}
		nbrs := net.roundNbrs[id]
		self := net.roundStates[id]
		// Beacon phase: broadcast our state to every neighbor.
		for _, j := range nbrs {
			net.inboxes[j] <- beaconMsg[S]{from: id, state: self}
		}
		net.sent.Done()
		net.sent.Wait() // barrier: all beacons of this round are in flight
		// Gather phase: exactly one beacon per neighbor.
		heard := make(map[graph.NodeID]S, len(nbrs))
		for range nbrs {
			m := <-net.inboxes[id]
			heard[m.from] = m.state
		}
		peer := func(j graph.NodeID) S { return heard[j] }
		if filter := net.peerFilter; filter != nil {
			peer = func(j graph.NodeID) S { return filter(id, j, heard[j]) }
		}
		next, active := net.p.Move(core.View[S]{
			ID:   id,
			Self: self,
			Nbrs: nbrs,
			Peer: peer,
		})
		net.reports <- moveReport[S]{id: id, next: next, active: active}
	}
}

// Step runs one synchronous round and returns the number of active
// nodes.
func (net *Network[S]) Step() int {
	if net.closed {
		panic("runtime: Step after Close")
	}
	n := net.g.N()
	// Publish the round snapshot: neighbor lists and states are stable
	// while node goroutines run.
	for v := 0; v < n; v++ {
		net.roundNbrs[v] = net.g.Neighbors(graph.NodeID(v))
	}
	copy(net.roundStates, net.states)
	net.sent.Add(n)
	for v := 0; v < n; v++ {
		net.cmds[v] <- cmdRound
	}
	active := 0
	for i := 0; i < n; i++ {
		rep := <-net.reports
		net.states[rep.id] = rep.next
		if rep.active {
			active++
		}
	}
	if active > 0 {
		net.rounds++
		net.moves += active
	}
	return active
}

// Run drives Step until a quiet round or until maxRounds active rounds.
// The result mirrors sim.Result.
func (net *Network[S]) Run(maxRounds int) (rounds, moves int, stable bool) {
	start := net.rounds
	for net.rounds-start < maxRounds {
		if net.Step() == 0 {
			return net.rounds - start, net.moves, true
		}
	}
	return net.rounds - start, net.moves, false
}

// Config snapshots the current configuration.
func (net *Network[S]) Config() core.Config[S] {
	cfg := core.NewConfig[S](net.g)
	copy(cfg.States, net.states)
	return cfg
}

// Rounds returns the number of active rounds executed.
func (net *Network[S]) Rounds() int { return net.rounds }

// Moves returns the total number of active node evaluations.
func (net *Network[S]) Moves() int { return net.moves }

// ApplyEvents mutates the topology between rounds (the link layer
// reporting created/destroyed links) and repairs states that referenced
// departed neighbors.
func (net *Network[S]) ApplyEvents(events []mobility.Event) {
	for _, ev := range events {
		if ev.Add {
			net.g.AddEdge(ev.Edge.U, ev.Edge.V)
			continue
		}
		net.g.RemoveEdge(ev.Edge.U, ev.Edge.V)
		for _, v := range [2]graph.NodeID{ev.Edge.U, ev.Edge.V} {
			other := ev.Edge.U ^ ev.Edge.V ^ v
			net.states[v] = core.RepairState(net.p, v, net.states[v], other)
		}
	}
}

// Close stops all node goroutines. The network is unusable afterwards.
func (net *Network[S]) Close() {
	if net.closed {
		return
	}
	net.closed = true
	for _, c := range net.cmds {
		c <- cmdStop
		close(c)
	}
}
