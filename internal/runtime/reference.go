package runtime

import "sync/atomic"

// referenceScan, when set, makes every Network built afterwards
// re-evaluate all nodes every round instead of only the active
// frontier. Test seam for the metamorphic equivalence suite (see
// sim.SetReferenceScan); production code never sets it.
var referenceScan atomic.Bool

// SetReferenceScan toggles reference mode for networks constructed
// afterwards.
func SetReferenceScan(on bool) { referenceScan.Store(on) }
