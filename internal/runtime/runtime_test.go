package runtime

import (
	"math/rand"
	goruntime "runtime"
	"testing"
	"time"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/mobility"
	"selfstab/internal/protocols"
	"selfstab/internal/sim"
	"selfstab/internal/verify"
)

func randomStates[S comparable](p core.Protocol[S], g *graph.Graph, seed int64) []S {
	rng := rand.New(rand.NewSource(seed))
	s := make([]S, g.N())
	for v := range s {
		s[v] = p.Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), rng)
	}
	return s
}

func TestSMMConcurrentMatchesLockstep(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := graph.RandomConnected(20, 0.2, rng)
		p := core.NewSMM()
		states := randomStates[core.Pointer](p, g, int64(trial))

		// Reference lockstep run.
		ref := core.NewConfig[core.Pointer](g)
		copy(ref.States, states)
		l := sim.NewLockstep[core.Pointer](p, ref)
		lres := l.Run(g.N() + 2)

		// Concurrent run on the same inputs.
		net := New[core.Pointer](p, g.Clone(), append([]core.Pointer(nil), states...))
		defer net.Close()
		rounds, _, stable := net.Run(g.N() + 2)

		if !lres.Stable || !stable {
			t.Fatalf("trial %d: lockstep %v, runtime stable=%v", trial, lres, stable)
		}
		if rounds != lres.Rounds {
			t.Fatalf("trial %d: runtime rounds %d != lockstep %d", trial, rounds, lres.Rounds)
		}
		for v := range states {
			if net.Config().States[v] != ref.States[v] {
				t.Fatalf("trial %d: state divergence at node %d: %v vs %v",
					trial, v, net.Config().States[v], ref.States[v])
			}
		}
	}
}

func TestSMIConcurrentMatchesLockstep(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(100 + int64(trial)))
		g := graph.RandomConnected(25, 0.15, rng)
		p := core.NewSMI()
		states := randomStates[bool](p, g, int64(trial))

		ref := core.NewConfig[bool](g)
		copy(ref.States, states)
		l := sim.NewLockstep[bool](p, ref)
		lres := l.Run(g.N() + 2)

		net := New[bool](p, g.Clone(), append([]bool(nil), states...))
		defer net.Close()
		rounds, _, stable := net.Run(g.N() + 2)

		if !lres.Stable || !stable || rounds != lres.Rounds {
			t.Fatalf("trial %d: lockstep %v vs runtime rounds=%d stable=%v", trial, lres, rounds, stable)
		}
		if err := verify.IsMaximalIndependentSet(g, core.SetOf(net.Config())); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentReproducesCounterexample(t *testing.T) {
	g := graph.Cycle(4)
	states := []core.Pointer{core.Null, core.Null, core.Null, core.Null}
	net := New[core.Pointer](core.NewSMMArbitrary(), g, states)
	defer net.Close()
	rounds, _, stable := net.Run(100)
	if stable || rounds != 100 {
		t.Fatalf("rounds=%d stable=%v, want 100 unstable", rounds, stable)
	}
}

func TestApplyEventsRepairsPointers(t *testing.T) {
	g := graph.Path(2)
	states := []core.Pointer{core.PointAt(1), core.PointAt(0)}
	net := New[core.Pointer](core.NewSMM(), g, states)
	defer net.Close()
	net.ApplyEvents([]mobility.Event{{Add: false, Edge: graph.NewEdge(0, 1)}})
	cfg := net.Config()
	if cfg.States[0] != core.Null || cfg.States[1] != core.Null {
		t.Fatalf("states after link loss: %v", cfg.States)
	}
	if active := net.Step(); active != 0 {
		t.Fatalf("isolated pair still active: %d", active)
	}
}

func TestMobilityLoopRestabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(15, 0.25, rng)
	p := core.NewSMM()
	net := New[core.Pointer](p, g, randomStates[core.Pointer](p, g, 7))
	defer net.Close()

	for epoch := 0; epoch < 5; epoch++ {
		rounds, _, stable := net.Run(g.N() + 2)
		if !stable {
			t.Fatalf("epoch %d: not stable after %d rounds", epoch, rounds)
		}
		if err := verify.IsMaximalMatching(g, core.MatchingOf(net.Config())); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		churn := mobility.NewChurn(g, rng)
		net.ApplyEvents(churn.Apply(2))
	}
}

// TestCloseReleasesNodeGoroutines verifies Close reaps every node
// goroutine after a mid-run stop: steps are taken, the network is
// abandoned before reaching a fixed point, and Close must still return
// the process to its baseline goroutine count — no goroutine parked on
// a round channel forever.
func TestCloseReleasesNodeGoroutines(t *testing.T) {
	baseline := goruntime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := graph.RandomConnected(30, 0.2, rng)
		p := core.NewSMM()
		net := New[core.Pointer](p, g, randomStates[core.Pointer](p, g, int64(trial)))
		// Stop mid-run: a handful of rounds, nowhere near convergence.
		for i := 0; i < 3; i++ {
			net.Step()
		}
		net.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		goruntime.GC() // nudge the scheduler so exiting goroutines finish
		if n := goruntime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				goruntime.NumGoroutine(), baseline, buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseIdempotent(t *testing.T) {
	net := New[bool](core.NewSMI(), graph.Path(3), make([]bool, 3))
	net.Close()
	net.Close() // must not panic or deadlock
}

func TestStepAfterClosePanics(t *testing.T) {
	net := New[bool](core.NewSMI(), graph.Path(3), make([]bool, 3))
	net.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	net.Step()
}

func TestWrongStateCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New[bool](core.NewSMI(), graph.Path(3), make([]bool, 2))
}

func TestRandomizedProtocolConcurrent(t *testing.T) {
	// RandMIS exercises per-node RNGs from concurrent goroutines; run
	// under -race this validates the race-freedom contract.
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(12, 0.3, rng)
	p := protocols.NewRandMIS(g.N(), 42)
	net := New[bool](p, g, randomStates[bool](p, g, 9))
	defer net.Close()
	rounds, _, stable := net.Run(500 * g.N())
	if !stable {
		t.Fatalf("RandMIS not stable after %d rounds", rounds)
	}
	if err := verify.IsMaximalIndependentSet(g, core.SetOf(net.Config())); err != nil {
		t.Fatal(err)
	}
}
