package adversary_test

import (
	"fmt"
	"math/rand"

	"selfstab/internal/adversary"
	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// ExampleSearch hunts for the slowest initial configuration of SMI on a
// monotone path — the hill climber finds the full n-round wave of the
// Theorem 2 worst case.
func ExampleSearch() {
	g := graph.Path(12)
	rng := rand.New(rand.NewSource(1))
	found := adversary.Search[bool](core.NewSMI(), g,
		adversary.Options{Restarts: 4, Steps: 200}, rng)
	fmt.Println("worst rounds found:", found.Rounds)
	fmt.Println("within bound:", found.Rounds <= g.N()+1)
	// Output:
	// worst rounds found: 12
	// within bound: true
}
