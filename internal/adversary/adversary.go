// Package adversary searches for worst-case *initial configurations* by
// stochastic hill climbing: start from a random configuration, measure
// the rounds-to-stabilize, repeatedly mutate one node's state and keep
// mutations that slow convergence. On instances small enough for the
// exhaustive checker the climber's results can be validated against the
// exact worst case; on larger instances it provides an empirical lower
// bound on the true worst case, tightening the picture between the
// sampled averages of E1/E5 and the proven n+1 ceiling.
package adversary

import (
	"fmt"
	"math/rand"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
)

// Result is the outcome of a search.
type Result struct {
	// Rounds is the slowest stabilization found.
	Rounds int
	// Start is a configuration achieving it.
	Start []any // formatted states, for reporting
	// Evaluations counts protocol runs performed.
	Evaluations int
	// Diverged reports that a start exceeding the round limit was found
	// (only possible for non-stabilizing protocols).
	Diverged bool
}

// String summarizes the result.
func (r Result) String() string {
	if r.Diverged {
		return fmt.Sprintf("found non-stabilizing start after %d evaluations", r.Evaluations)
	}
	return fmt.Sprintf("worst found: %d rounds (%d evaluations)", r.Rounds, r.Evaluations)
}

// Options tunes the climber.
type Options struct {
	// Restarts is the number of independent climbs.
	Restarts int
	// Steps is the mutation budget per climb.
	Steps int
	// Limit caps rounds per evaluation; runs hitting it count as
	// divergence. Zero means n+1 (the theorems' ceiling, +1 slack).
	Limit int
}

// DefaultOptions returns a budget suitable for n ≤ a few hundred.
func DefaultOptions() Options { return Options{Restarts: 8, Steps: 300} }

// Search hill-climbs for slow initial configurations of protocol p on g.
func Search[S comparable](p core.Protocol[S], g *graph.Graph, opt Options, rng *rand.Rand) Result {
	limit := opt.Limit
	if limit == 0 {
		limit = g.N() + 2
	}
	evaluate := func(states []S) (int, bool) {
		cfg := core.Config[S]{G: g, States: append([]S(nil), states...)}
		l := sim.NewLockstep[S](p, cfg)
		res := l.Run(limit)
		return res.Rounds, res.Stable
	}

	best := Result{Rounds: -1}
	cur := make([]S, g.N())
	for restart := 0; restart < opt.Restarts; restart++ {
		for v := range cur {
			id := graph.NodeID(v)
			cur[v] = p.Random(id, g.Neighbors(id), rng)
		}
		curRounds, stable := evaluate(cur)
		best.Evaluations++
		if !stable {
			return divergedResult(cur, best.Evaluations)
		}
		record(&best, curRounds, cur)
		for step := 0; step < opt.Steps; step++ {
			v := graph.NodeID(rng.Intn(g.N()))
			old := cur[v]
			cur[v] = p.Random(v, g.Neighbors(v), rng)
			rounds, stable := evaluate(cur)
			best.Evaluations++
			if !stable {
				return divergedResult(cur, best.Evaluations)
			}
			if rounds >= curRounds { // plateau moves keep the walk alive
				curRounds = rounds
				record(&best, rounds, cur)
			} else {
				cur[v] = old
			}
		}
	}
	return best
}

func record[S comparable](best *Result, rounds int, states []S) {
	if rounds <= best.Rounds {
		return
	}
	best.Rounds = rounds
	best.Start = formatStates(states)
}

func divergedResult[S comparable](states []S, evals int) Result {
	return Result{Diverged: true, Start: formatStates(states), Evaluations: evals}
}

func formatStates[S comparable](states []S) []any {
	out := make([]any, len(states))
	for i, s := range states {
		out[i] = s
	}
	return out
}
