package adversary

import (
	"math/rand"
	"strings"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/modelcheck"
)

func TestSearchNeverExceedsExhaustiveWorstCase(t *testing.T) {
	// On instances small enough to enumerate, the climber must find at
	// most the exact worst case — and with a decent budget it should get
	// close to it.
	cases := []*graph.Graph{graph.Path(6), graph.Cycle(6), graph.Complete(4)}
	for _, g := range cases {
		exact, err := modelcheck.Explore[core.Pointer](core.NewSMM(), g, modelcheck.SMMDomain, 1<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		found := Search[core.Pointer](core.NewSMM(), g, Options{Restarts: 6, Steps: 150}, rng)
		if found.Diverged {
			t.Fatalf("%v: SMM reported divergent", g)
		}
		if found.Rounds > exact.MaxRounds {
			t.Fatalf("%v: climber found %d rounds > exhaustive worst %d — evaluation mismatch",
				g, found.Rounds, exact.MaxRounds)
		}
		if found.Rounds < exact.MaxRounds-1 {
			t.Fatalf("%v: climber found only %d of exact worst %d", g, found.Rounds, exact.MaxRounds)
		}
	}
}

func TestSearchSMIMatchesExhaustive(t *testing.T) {
	g := graph.Path(10)
	exact, err := modelcheck.Explore[bool](core.NewSMI(), g, modelcheck.SMIDomain, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	found := Search[bool](core.NewSMI(), g, Options{Restarts: 6, Steps: 200}, rng)
	if found.Rounds > exact.MaxRounds {
		t.Fatalf("found %d > exact %d", found.Rounds, exact.MaxRounds)
	}
	// The monotone path's worst case (the all-zero wave) is easy to hit.
	if found.Rounds < exact.MaxRounds-1 {
		t.Fatalf("found only %d of exact %d", found.Rounds, exact.MaxRounds)
	}
}

func TestSearchFindsDivergenceOfCounterexample(t *testing.T) {
	// The arbitrary-proposal variant diverges from 3 of C4's 81
	// configurations; a climber with restarts should stumble into one.
	g := graph.Cycle(4)
	rng := rand.New(rand.NewSource(3))
	found := Search[core.Pointer](core.NewSMMArbitrary(), g,
		Options{Restarts: 64, Steps: 50, Limit: 300}, rng)
	if !found.Diverged {
		t.Fatalf("no divergent start found: %v", found)
	}
	if !strings.Contains(found.String(), "non-stabilizing") {
		t.Fatalf("String = %q", found.String())
	}
}

func TestSearchResultString(t *testing.T) {
	r := Result{Rounds: 7, Evaluations: 42}
	if r.String() != "worst found: 7 rounds (42 evaluations)" {
		t.Fatalf("%q", r.String())
	}
}

func TestDefaultOptions(t *testing.T) {
	opt := DefaultOptions()
	if opt.Restarts <= 0 || opt.Steps <= 0 {
		t.Fatal("degenerate defaults")
	}
}
