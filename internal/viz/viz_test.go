package viz

import (
	"strings"
	"testing"

	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/sim"
)

func TestSMMLine(t *testing.T) {
	g := graph.Path(5)
	cfg := core.NewConfig[core.Pointer](g)
	cfg.States[0] = core.PointAt(1)
	cfg.States[1] = core.PointAt(0)
	cfg.States[2] = core.PointAt(1)
	cfg.States[3] = core.Null
	cfg.States[4] = core.PointAt(3)
	got := SMMLine(cfg)
	want := "0↔1 2→1 3· 4→3"
	if got != want {
		t.Fatalf("SMMLine = %q, want %q", got, want)
	}
}

func TestSMILine(t *testing.T) {
	g := graph.Path(4)
	cfg := core.NewConfig[bool](g)
	cfg.States[0] = true
	cfg.States[3] = true
	if got := SMILine(cfg); got != "●○○●" {
		t.Fatalf("SMILine = %q", got)
	}
}

func TestTypeLine(t *testing.T) {
	g := graph.Path(3)
	cfg := core.NewConfig[core.Pointer](g)
	cfg.States[0] = core.PointAt(1)
	cfg.States[1] = core.PointAt(0)
	cfg.States[2] = core.Null
	if got := TypeLine(cfg); got != "M M A°" {
		t.Fatalf("TypeLine = %q", got)
	}
}

func TestTimelineOverRun(t *testing.T) {
	g := graph.Path(6)
	cfg := core.NewConfig[core.Pointer](g)
	for i := range cfg.States {
		cfg.States[i] = core.Null
	}
	tl := NewTimeline("SMM on P6")
	tl.Add(SMMLine(cfg))
	l := sim.NewLockstep[core.Pointer](core.NewSMM(), cfg)
	res := l.RunHook(g.N()+2, func(_ int, c core.Config[core.Pointer]) {
		tl.Add(SMMLine(c))
	})
	if !res.Stable {
		t.Fatalf("%v", res)
	}
	out := tl.String()
	if tl.Len() != res.Rounds+1 {
		t.Fatalf("timeline rows %d, rounds %d", tl.Len(), res.Rounds)
	}
	if !strings.HasPrefix(out, "SMM on P6\n") || !strings.Contains(out, "t=0") {
		t.Fatalf("timeline:\n%s", out)
	}
	// Final line must show everyone matched on an even path.
	last := tl.lines[len(tl.lines)-1]
	if strings.ContainsAny(last, "·") || strings.Contains(last, "→") {
		t.Fatalf("final line not fully matched: %q", last)
	}
}
