// Package viz renders protocol configurations as compact ASCII lines for
// terminal inspection of executions: matched pairs and pointers for SMM,
// membership dots for SMI, parent arrows for the spanning tree, and a
// Timeline that collects one line per round — the poor man's Figure 2.
package viz

import (
	"fmt"
	"strings"

	"selfstab/internal/core"
	"selfstab/internal/graph"
)

// SMMLine renders an SMM configuration: "0↔1" for matched pairs, "2→3"
// for one-sided pointers, and "4·" for aloof nodes, in node order with
// each pair reported once.
func SMMLine(cfg core.Config[core.Pointer]) string {
	var parts []string
	reported := make([]bool, len(cfg.States))
	for v, p := range cfg.States {
		if reported[v] {
			continue
		}
		i := graph.NodeID(v)
		switch {
		case p.IsNull():
			parts = append(parts, fmt.Sprintf("%d·", v))
		case core.Matched(cfg, i):
			j := p.Node()
			reported[j] = true
			parts = append(parts, fmt.Sprintf("%d↔%d", v, j))
		default:
			parts = append(parts, fmt.Sprintf("%d→%s", v, p))
		}
	}
	return strings.Join(parts, " ")
}

// SMILine renders an SMI configuration as one rune per node: '●' for
// members and '○' for non-members.
func SMILine(cfg core.Config[bool]) string {
	var sb strings.Builder
	for _, x := range cfg.States {
		if x {
			sb.WriteRune('●')
		} else {
			sb.WriteRune('○')
		}
	}
	return sb.String()
}

// TypeLine renders the per-node SMM types ("M M PM A° ...").
func TypeLine(cfg core.Config[core.Pointer]) string {
	types := core.ClassifySMM(cfg)
	parts := make([]string, len(types))
	for v, t := range types {
		parts[v] = t.String()
	}
	return strings.Join(parts, " ")
}

// Timeline accumulates one rendered line per round.
type Timeline struct {
	header string
	lines  []string
}

// NewTimeline starts a timeline with a header (e.g. the protocol name).
func NewTimeline(header string) *Timeline {
	return &Timeline{header: header}
}

// Add records the rendering of one round.
func (t *Timeline) Add(line string) {
	t.lines = append(t.lines, line)
}

// Len returns the number of recorded rounds.
func (t *Timeline) Len() int { return len(t.lines) }

// String renders the timeline with 0-based round numbers; round 0 is the
// initial configuration.
func (t *Timeline) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.header)
	for i, l := range t.lines {
		fmt.Fprintf(&sb, "  t=%-3d %s\n", i, l)
	}
	return sb.String()
}
