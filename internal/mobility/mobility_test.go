package mobility

import (
	"math/rand"
	"testing"

	"selfstab/internal/graph"
)

func TestEventString(t *testing.T) {
	add := Event{Add: true, Edge: graph.NewEdge(1, 2)}
	rem := Event{Add: false, Edge: graph.NewEdge(1, 2)}
	if add.String() != "+{1,2}" || rem.String() != "-{1,2}" {
		t.Fatalf("%q %q", add.String(), rem.String())
	}
}

func TestDiff(t *testing.T) {
	old := graph.Path(4) // 0-1,1-2,2-3
	next := old.Clone()
	next.RemoveEdge(1, 2)
	next.AddEdge(0, 3)
	events := Diff(old, next)
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if events[0].Add || events[0].Edge != graph.NewEdge(1, 2) {
		t.Fatalf("first event = %v", events[0])
	}
	if !events[1].Add || events[1].Edge != graph.NewEdge(0, 3) {
		t.Fatalf("second event = %v", events[1])
	}
	if len(Diff(old, old)) != 0 {
		t.Fatal("self-diff nonempty")
	}
}

func TestDiffDifferentSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Diff(graph.Path(3), graph.Path(4))
}

func TestWaypointStartsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewWaypoint(25, 0.2, 0.02, rng)
	if !graph.IsConnected(w.Graph()) {
		t.Fatal("initial topology disconnected")
	}
	if len(w.Positions()) != 25 {
		t.Fatal("positions count")
	}
}

func TestWaypointStepEmitsConsistentEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWaypoint(20, 0.25, 0.05, rng)
	before := w.Graph().Clone()
	for step := 0; step < 30; step++ {
		events := w.Step()
		// Replaying the events on the old graph must yield the new one.
		for _, ev := range events {
			if ev.Add {
				if !before.AddEdge(ev.Edge.U, ev.Edge.V) {
					t.Fatalf("step %d: add of existing edge %v", step, ev.Edge)
				}
			} else if !before.RemoveEdge(ev.Edge.U, ev.Edge.V) {
				t.Fatalf("step %d: removal of absent edge %v", step, ev.Edge)
			}
		}
		if !before.Equal(w.Graph()) {
			t.Fatalf("step %d: event replay diverges from topology", step)
		}
	}
}

func TestWaypointNodesStayInUnitSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWaypoint(10, 0.3, 0.1, rng)
	for step := 0; step < 200; step++ {
		w.Step()
		for i, p := range w.Positions() {
			if p.X < -1e-9 || p.X > 1+1e-9 || p.Y < -1e-9 || p.Y > 1+1e-9 {
				t.Fatalf("step %d: node %d escaped to %+v", step, i, p)
			}
		}
	}
}

func TestChurnPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomConnected(15, 0.2, rng)
	c := NewChurn(g, rng)
	for i := 0; i < 50; i++ {
		events := c.Apply(3)
		if len(events) != 3 {
			t.Fatalf("iteration %d: got %d events", i, len(events))
		}
		if !graph.IsConnected(g) {
			t.Fatalf("iteration %d: disconnected after %v", i, events)
		}
		if err := graph.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChurnOnTreeOnlyAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Path(6) // every edge is a cut edge
	c := NewChurn(g, rng)
	events := c.Apply(1)
	if len(events) != 1 || !events[0].Add {
		t.Fatalf("events = %v", events)
	}
}

func TestChurnOnCompleteOnlyRemoves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Complete(5)
	c := NewChurn(g, rng)
	events := c.Apply(1)
	if len(events) != 1 || events[0].Add {
		t.Fatalf("events = %v", events)
	}
}

func TestChurnExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Complete(2) // K2: only edge is a cut edge, no missing edges
	c := NewChurn(g, rng)
	if events := c.Apply(5); len(events) != 0 {
		t.Fatalf("expected no events, got %v", events)
	}
}

func TestNewChurnRejectsDisconnected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewChurn(graph.New(3), rand.New(rand.NewSource(1)))
}
