// Package mobility generates the topology-change workloads of the
// fault-tolerance experiments: a random-waypoint model over the unit
// square with unit-disk connectivity (host movement), and a
// connectivity-preserving edge-churn generator matching the paper's
// assumption that "the movement of nodes is co-ordinated to ensure that
// the topology does not get disconnected".
package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"selfstab/internal/graph"
)

// Event is one link-layer topology change: a logical link created or
// destroyed by node movement.
type Event struct {
	Add  bool
	Edge graph.Edge
}

// String renders "+{u,v}" or "-{u,v}".
func (e Event) String() string {
	sign := "-"
	if e.Add {
		sign = "+"
	}
	return sign + e.Edge.String()
}

// Waypoint is the random-waypoint mobility model: every node moves in a
// straight line toward a uniformly random waypoint at a fixed speed,
// picking a new waypoint upon arrival. The induced topology is the
// unit-disk graph of the current positions.
type Waypoint struct {
	Radius float64
	Speed  float64

	pts     []graph.Point
	targets []graph.Point
	g       *graph.Graph
	rng     *rand.Rand
}

// NewWaypoint places n nodes uniformly in the unit square. radius is the
// communication range; speed is the distance covered per Step. The
// initial radius is grown just enough to make the starting topology
// connected (mirroring deployments that tune transmit power for
// connectivity).
func NewWaypoint(n int, radius, speed float64, rng *rand.Rand) *Waypoint {
	if n <= 0 {
		panic(fmt.Sprintf("mobility: NewWaypoint(%d): need n > 0", n))
	}
	g, pts := graph.RandomUnitDisk(n, radius, rng)
	w := &Waypoint{Radius: radius, Speed: speed, pts: pts, g: g, rng: rng}
	// RandomUnitDisk may have grown the radius; recover the grown value
	// by finding the longest current edge.
	for _, e := range g.Edges() {
		if d := math.Sqrt(pts[e.U].Dist2(pts[e.V])); d > w.Radius {
			w.Radius = d
		}
	}
	w.targets = graph.RandomPoints(n, rng)
	return w
}

// Graph returns the current topology. Callers must not mutate it.
func (w *Waypoint) Graph() *graph.Graph { return w.g }

// Positions returns the current node positions. Callers must not mutate.
func (w *Waypoint) Positions() []graph.Point { return w.pts }

// Step advances every node by Speed toward its waypoint and returns the
// resulting link events (edge set difference old → new).
func (w *Waypoint) Step() []Event {
	for i := range w.pts {
		w.pts[i] = w.advance(i)
	}
	next := graph.UnitDisk(w.pts, w.Radius)
	events := Diff(w.g, next)
	w.g = next
	return events
}

func (w *Waypoint) advance(i int) graph.Point {
	p, t := w.pts[i], w.targets[i]
	dx, dy := t.X-p.X, t.Y-p.Y
	d := math.Sqrt(dx*dx + dy*dy)
	if d <= w.Speed {
		// Arrived: pick the next waypoint and stay put this step.
		w.targets[i] = graph.Point{X: w.rng.Float64(), Y: w.rng.Float64()}
		return t
	}
	return graph.Point{X: p.X + dx/d*w.Speed, Y: p.Y + dy/d*w.Speed}
}

// Diff returns the events transforming topology old into topology new:
// removals first, then additions, both in deterministic edge order.
func Diff(old, new *graph.Graph) []Event {
	if old.N() != new.N() {
		panic("mobility: Diff over different node sets")
	}
	var events []Event
	for _, e := range old.Edges() {
		if !new.HasEdge(e.U, e.V) {
			events = append(events, Event{Add: false, Edge: e})
		}
	}
	for _, e := range new.Edges() {
		if !old.HasEdge(e.U, e.V) {
			events = append(events, Event{Add: true, Edge: e})
		}
	}
	return events
}

// Churn mutates a graph in place with random single-edge events while
// preserving connectivity, for experiments that need precisely k topology
// changes between stabilizations.
type Churn struct {
	G   *graph.Graph
	Rng *rand.Rand
	// PAdd is the probability a generated event is an addition (when both
	// kinds are possible). Default 0.5.
	PAdd float64
}

// NewChurn wraps g. The graph must be connected.
func NewChurn(g *graph.Graph, rng *rand.Rand) *Churn {
	if !graph.IsConnected(g) {
		panic("mobility: NewChurn on disconnected graph")
	}
	return &Churn{G: g, Rng: rng, PAdd: 0.5}
}

// Apply performs k random events and returns them. Removals never pick
// cut edges, so the graph stays connected. If the graph is complete only
// removals occur; if it is a tree only additions occur; if neither kind
// is possible (a single node or a 2-node tree that is also complete)
// Apply returns fewer events than requested.
func (c *Churn) Apply(k int) []Event {
	var events []Event
	for i := 0; i < k; i++ {
		ev, ok := c.one()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	return events
}

func (c *Churn) one() (Event, bool) {
	missing := c.missingEdges()
	removable := c.removableEdges()
	switch {
	case len(missing) == 0 && len(removable) == 0:
		return Event{}, false
	case len(missing) == 0:
		e := removable[c.Rng.Intn(len(removable))]
		c.G.RemoveEdge(e.U, e.V)
		return Event{Add: false, Edge: e}, true
	case len(removable) == 0:
		e := missing[c.Rng.Intn(len(missing))]
		c.G.AddEdge(e.U, e.V)
		return Event{Add: true, Edge: e}, true
	case c.Rng.Float64() < c.PAdd:
		e := missing[c.Rng.Intn(len(missing))]
		c.G.AddEdge(e.U, e.V)
		return Event{Add: true, Edge: e}, true
	default:
		e := removable[c.Rng.Intn(len(removable))]
		c.G.RemoveEdge(e.U, e.V)
		return Event{Add: false, Edge: e}, true
	}
}

func (c *Churn) missingEdges() []graph.Edge {
	var out []graph.Edge
	n := c.G.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !c.G.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				out = append(out, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)})
			}
		}
	}
	return out
}

// removableEdges returns the non-cut edges: one Tarjan bridge pass
// (O(n+m)) instead of a per-edge connectivity probe (O(m·(n+m))).
func (c *Churn) removableEdges() []graph.Edge {
	bridge := make(map[graph.Edge]bool)
	for _, e := range graph.Bridges(c.G) {
		bridge[e] = true
	}
	var out []graph.Edge
	for _, e := range c.G.Edges() {
		if !bridge[e] {
			out = append(out, e)
		}
	}
	return out
}
