package graph

import "fmt"

// IsConnected reports whether g is connected. The empty graph and the
// single-node graph are considered connected.
func IsConnected(g *Graph) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	return len(bfsOrder(g, 0)) == n
}

// Components returns the connected components of g, each as a sorted slice
// of node IDs; components are ordered by their smallest member.
func Components(g *Graph) [][]NodeID {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]NodeID
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		comp := bfsOrder(g, NodeID(v))
		for _, u := range comp {
			seen[u] = true
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// BFSDistances returns the hop distance from src to every node; -1 marks
// unreachable nodes.
func BFSDistances(g *Graph, src NodeID) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Diameter returns the largest hop distance between any two nodes, or -1
// if g is disconnected or empty.
func Diameter(g *Graph) int {
	n := g.N()
	if n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < n; v++ {
		for _, d := range BFSDistances(g, NodeID(v)) {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// DegreeStats summarizes the degree sequence of a graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees returns the degree statistics of g. For the empty graph all
// fields are zero.
func Degrees(g *Graph) DegreeStats {
	n := g.N()
	if n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: g.Degree(0), Max: g.Degree(0)}
	total := 0
	for v := 0; v < n; v++ {
		d := g.Degree(NodeID(v))
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(n)
	return st
}

// IsCutEdge reports whether removing {u,v} disconnects the component
// containing u and v. It panics if the edge is absent, since asking about
// a phantom edge is always a caller bug.
func IsCutEdge(g *Graph, u, v NodeID) bool {
	if !g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: IsCutEdge(%d,%d): edge not present", u, v))
	}
	g.RemoveEdge(u, v)
	reach := bfsOrder(g, u)
	g.AddEdge(u, v)
	for _, w := range reach {
		if w == v {
			return false
		}
	}
	return true
}

// Validate checks internal invariants (sorted adjacency, symmetry, no
// self-loops, edge count) and returns an error describing the first
// violation. It is used by tests and by fuzz-style churn harnesses.
func Validate(g *Graph) error {
	count := 0
	for v, ns := range g.adj {
		for i, u := range ns {
			if u == NodeID(v) {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && ns[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if !containsSorted(g.adj[u], NodeID(v)) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", v, u)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency total %d", g.m, count)
	}
	return nil
}

func bfsOrder(g *Graph, src NodeID) []NodeID {
	seen := make([]bool, g.N())
	seen[src] = true
	order := []NodeID{src}
	for i := 0; i < len(order); i++ {
		for _, u := range g.Neighbors(order[i]) {
			if !seen[u] {
				seen[u] = true
				order = append(order, u)
			}
		}
	}
	return order
}

func sortNodeIDs(s []NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
