package graph

import "sort"

// Partition splits a CSR snapshot into K contiguous node-ID ranges for
// sharded execution. Shard s owns the half-open range [Start(s),
// Start(s+1)); ranges are balanced by node count (|range| differs by at
// most one across shards), cover every node exactly once, and depend
// only on (n, K) — never on the edge set — so edge churn under fault
// injection cannot move a node between shards and dirty marks routed by
// owner stay valid across topology re-snapshots.
//
// Beyond the ranges, a Partition carries the boundary index the sharded
// executor's merge phase leans on: per shard, the halo — the sorted set
// of non-owned neighbors of owned nodes — and, per ordered shard pair
// (s, t), the subrange of t's range that s's halo touches. Everything a
// shard writes outside its own range during the mark phase lands inside
// its halo, so absorbing those spans is a complete cross-shard exchange.
//
// A Partition is immutable after NewPartition returns and safe to share
// between goroutines.
type Partition struct {
	csr    *CSR
	starts []int32 // len K+1; shard s owns nodes [starts[s], starts[s+1])
	halos  [][]NodeID
	// spans[s*K+t] is the subrange [lo, hi) of shard t's node range that
	// shard s's halo covers (zero-length when s has no neighbor in t).
	spans [][2]int32
}

// NewPartition partitions c into k contiguous ranges. k is clamped to
// [1, max(1, n)]: more shards than nodes would leave empty ranges, and
// at least one shard always exists (even over the empty graph).
func NewPartition(c *CSR, k int) *Partition {
	n := c.N()
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	p := &Partition{
		csr:    c,
		starts: make([]int32, k+1),
		halos:  make([][]NodeID, k),
		spans:  make([][2]int32, k*k),
	}
	for s := 0; s <= k; s++ {
		p.starts[s] = int32(s * n / k)
	}
	for s := 0; s < k; s++ {
		p.halos[s] = buildHalo(c, int(p.starts[s]), int(p.starts[s+1]))
	}
	for s := 0; s < k; s++ {
		for t := 0; t < k; t++ {
			p.spans[s*k+t] = [2]int32{p.starts[t+1], p.starts[t]} // empty (lo > hi) until extended
		}
		for _, h := range p.halos[s] {
			t := p.Owner(h)
			sp := &p.spans[s*k+t]
			if int32(h) < sp[0] {
				sp[0] = int32(h)
			}
			if int32(h)+1 > sp[1] {
				sp[1] = int32(h) + 1
			}
		}
	}
	return p
}

// buildHalo collects the sorted, deduplicated neighbors of [lo, hi)
// that lie outside [lo, hi).
func buildHalo(c *CSR, lo, hi int) []NodeID {
	var halo []NodeID
	offs, nbrs := c.Rows()
	for v := lo; v < hi; v++ {
		for _, w := range nbrs[offs[v]:offs[v+1]] {
			if int(w) < lo || int(w) >= hi {
				halo = append(halo, w)
			}
		}
	}
	sort.Slice(halo, func(i, j int) bool { return halo[i] < halo[j] })
	out := halo[:0]
	for i, h := range halo {
		if i == 0 || h != halo[i-1] {
			out = append(out, h)
		}
	}
	return out
}

// K returns the shard count.
//
//selfstab:noalloc
func (p *Partition) K() int { return len(p.starts) - 1 }

// Range returns shard s's owned node range [lo, hi).
//
//selfstab:noalloc
func (p *Partition) Range(s int) (lo, hi NodeID) {
	return NodeID(p.starts[s]), NodeID(p.starts[s+1])
}

// Owner returns the shard owning node v. The binary search is written
// out (rather than sort.Search with a closure) so the hot path carries
// no function value and no capture.
//
//selfstab:noalloc
func (p *Partition) Owner(v NodeID) int {
	lo, hi := 0, p.K()-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.starts[mid+1] > int32(v) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Halo returns shard s's halo: the sorted non-owned neighbors of its
// owned nodes. Read-only.
//
//selfstab:noalloc
func (p *Partition) Halo(s int) []NodeID { return p.halos[s] }

// AbsorbSpan returns the subrange [lo, hi) of shard t's node range that
// shard s's halo covers: the only part of t's range shard s can mark
// during the install phase, hence the only part t must absorb from s at
// the round barrier. lo >= hi means no overlap.
//
//selfstab:noalloc
func (p *Partition) AbsorbSpan(s, t int) (lo, hi NodeID) {
	sp := p.spans[s*p.K()+t]
	return NodeID(sp[0]), NodeID(sp[1])
}

// ShardView is a shard's window onto the CSR snapshot: the owned node
// range plus the read-only boundary index. Offs and Nbrs are subslices
// of the global CSR arrays (no copying): the neighbor list of owned
// node v is Nbrs[Offs[v-Lo]-base : Offs[v-Lo+1]-base] with base =
// Offs[0], and concatenating every shard's Nbrs in shard order
// reproduces the CSR's neighbor array byte for byte (the fuzz tier pins
// this reassembly invariant).
type ShardView struct {
	// Lo, Hi delimit the owned node range [Lo, Hi).
	Lo, Hi NodeID
	// Offs is the CSR offset array window offs[Lo : Hi+1]; offsets are
	// global (into the full CSR neighbor array), so rebase by Offs[0]
	// when indexing Nbrs.
	Offs []int32
	// Nbrs holds the owned rows back to back.
	Nbrs []NodeID
	// Halo is the sorted set of non-owned nodes visible from the range.
	Halo []NodeID
}

// View returns shard s's window.
//
//selfstab:noalloc
func (p *Partition) View(s int) ShardView {
	lo, hi := p.starts[s], p.starts[s+1]
	return ShardView{
		Lo:   NodeID(lo),
		Hi:   NodeID(hi),
		Offs: p.csr.offs[lo : hi+1],
		Nbrs: p.csr.nbrs[p.csr.offs[lo]:p.csr.offs[hi]],
		Halo: p.halos[s],
	}
}

// Neighbors returns owned node v's neighbor list. v must be in [Lo, Hi).
//
//selfstab:noalloc
func (v ShardView) Neighbors(u NodeID) []NodeID {
	base := v.Offs[0]
	return v.Nbrs[v.Offs[u-v.Lo]-base : v.Offs[u-v.Lo+1]-base]
}
