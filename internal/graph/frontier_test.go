package graph

import (
	"reflect"
	"testing"
)

// oddSizes are the word-scan edge cases the per-range frontier paths
// lean on: a single node, one short of a word, exactly one word, one
// over, and one short of two words.
var oddSizes = []int{1, 63, 64, 65, 127}

func drained(f *Frontier, n int) []NodeID {
	return f.Drain(nil, n)
}

func TestFrontierOddSizesDrainLenAddMask(t *testing.T) {
	for _, n := range oddSizes {
		f := NewFrontier(n)
		if got := f.Len(n); got != n {
			t.Fatalf("n=%d: fresh frontier Len = %d, want %d", n, got, n)
		}
		if got := drained(f, n); len(got) != n || (n > 0 && int(got[n-1]) != n-1) {
			t.Fatalf("n=%d: full drain = %v", n, got)
		}
		if !f.Empty() {
			t.Fatalf("n=%d: not empty after drain", n)
		}

		// Mark the boundary-prone IDs: first, last, and both sides of
		// every word edge within range.
		want := map[NodeID]bool{0: true, NodeID(n - 1): true}
		for _, v := range []int{62, 63, 64, 65} {
			if v < n {
				want[NodeID(v)] = true
			}
		}
		for v := range want {
			f.AddMask(v, true)
		}
		f.AddMask(0, true) // duplicate must not double-count
		if n > 1 {
			f.AddMask(1, false) // false mask must not mark
		}
		if got := f.Len(n); got != len(want) {
			t.Fatalf("n=%d: Len = %d, want %d", n, got, len(want))
		}
		got := drained(f, n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: drain = %v, want %d members", n, got, len(want))
		}
		for i, v := range got {
			if !want[v] {
				t.Fatalf("n=%d: unexpected member %d", n, v)
			}
			if i > 0 && got[i-1] >= v {
				t.Fatalf("n=%d: drain not ascending: %v", n, got)
			}
		}
		if !f.Empty() || f.Len(n) != 0 {
			t.Fatalf("n=%d: drain did not clear", n)
		}
	}
}

func TestFrontierAddAllThenDrainIntoUndersizedBuffer(t *testing.T) {
	for _, n := range oddSizes {
		f := NewFrontier(n)
		f.Drain(make([]NodeID, 0, n), n)
		f.AddAll()
		// An undersized buffer must grow, not truncate: every node comes
		// out, ascending, regardless of the caller's capacity guess.
		buf := make([]NodeID, 0, 1)
		got := f.Drain(buf, n)
		if len(got) != n {
			t.Fatalf("n=%d: drain into undersized buffer returned %d members", n, len(got))
		}
		for v := 0; v < n; v++ {
			if got[v] != NodeID(v) {
				t.Fatalf("n=%d: position %d holds %d", n, v, got[v])
			}
		}
		if !f.Empty() {
			t.Fatalf("n=%d: AddAll survived the drain", n)
		}
	}
}

func TestFrontierDrainRange(t *testing.T) {
	for _, n := range oddSizes {
		// Split [0, n) at deliberately unaligned points and check that
		// per-range drains partition the full drain exactly.
		cuts := []int{0, n / 3, 2*n/3 + 1, n}
		f := NewFrontier(n)
		f.Reset()
		marked := []NodeID{}
		for v := 0; v < n; v += 2 {
			f.Add(NodeID(v))
			marked = append(marked, NodeID(v))
		}
		var got []NodeID
		for c := 0; c+1 < len(cuts); c++ {
			lo, hi := cuts[c], cuts[c+1]
			if lo > hi {
				continue
			}
			part := f.DrainRange(nil, lo, hi)
			for _, v := range part {
				if int(v) < lo || int(v) >= hi {
					t.Fatalf("n=%d: DrainRange(%d,%d) leaked %d", n, lo, hi, v)
				}
			}
			got = append(got, part...)
		}
		if !reflect.DeepEqual(got, marked) {
			t.Fatalf("n=%d: ranged drains = %v, want %v", n, got, marked)
		}
		if !f.Empty() {
			t.Fatalf("n=%d: ranged drains did not clear", n)
		}
		// Draining a clean subrange must not disturb marks outside it.
		f.Add(NodeID(n - 1))
		if part := f.DrainRange(nil, 0, n-1); len(part) != 0 {
			t.Fatalf("n=%d: clean range drained %v", n, part)
		}
		if f.Len(n) != 1 {
			t.Fatalf("n=%d: outside mark lost", n)
		}
	}
}

func TestFrontierDrainRangePanicsOnFull(t *testing.T) {
	f := NewFrontier(8)
	defer func() {
		if recover() == nil {
			t.Fatal("DrainRange on a full frontier did not panic")
		}
	}()
	f.DrainRange(nil, 0, 8)
}

func TestFrontierAbsorb(t *testing.T) {
	for _, n := range oddSizes {
		dst := NewFrontier(n)
		dst.Reset()
		src := NewFrontier(n)
		src.Reset()
		for v := 0; v < n; v += 3 {
			src.Add(NodeID(v))
		}
		if n > 1 {
			dst.Add(NodeID(1)) // pre-existing mark must survive the OR
		}
		lo, hi := n/4, n-n/4
		dst.Absorb(src, lo, hi)
		for v := 0; v < n; v++ {
			inWindow := v >= lo && v < hi
			wantSrc := v%3 == 0 && !inWindow
			wantDst := (v%3 == 0 && inWindow) || (v == 1 && n > 1)
			gotSrc := contains(drainedCopy(src, n), NodeID(v))
			gotDst := contains(drainedCopy(dst, n), NodeID(v))
			if gotSrc != wantSrc || gotDst != wantDst {
				t.Fatalf("n=%d lo=%d hi=%d node %d: src=%v (want %v) dst=%v (want %v)",
					n, lo, hi, v, gotSrc, wantSrc, gotDst, wantDst)
			}
		}
	}
}

// drainedCopy peeks at membership without consuming the frontier.
func drainedCopy(f *Frontier, n int) []NodeID {
	members := f.Drain(nil, n)
	for _, v := range members {
		f.Add(v)
	}
	return members
}

func contains(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestFrontierAbsorbPanicsOnFullSource(t *testing.T) {
	dst := NewFrontier(8)
	dst.Reset()
	src := NewFrontier(8) // full by construction
	defer func() {
		if recover() == nil {
			t.Fatal("Absorb from a full frontier did not panic")
		}
	}()
	dst.Absorb(src, 0, 8)
}

func TestFrontierReset(t *testing.T) {
	f := NewFrontier(16) // full
	f.Reset()
	if !f.Empty() || f.Len(16) != 0 {
		t.Fatal("Reset left a full frontier non-empty")
	}
	f.Add(3)
	f.Reset()
	if !f.Empty() {
		t.Fatal("Reset left a mark behind")
	}
	if got := f.Drain(nil, 16); len(got) != 0 {
		t.Fatalf("drain after Reset = %v", got)
	}
}
