package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkPartition asserts every structural invariant of a Partition
// against its CSR: exact range cover, owner consistency, halo
// soundness/completeness, absorb-span coverage, and byte-for-byte view
// reassembly. Shared by the unit tests and FuzzShardPartition.
func checkPartition(t *testing.T, c *CSR, p *Partition) {
	t.Helper()
	n := c.N()
	k := p.K()
	if k < 1 {
		t.Fatalf("K = %d", k)
	}

	// Ranges: contiguous, balanced to within one node, covering exactly.
	prev := NodeID(0)
	for s := 0; s < k; s++ {
		lo, hi := p.Range(s)
		if lo != prev || hi < lo {
			t.Fatalf("shard %d: range [%d,%d) does not continue from %d", s, lo, hi, prev)
		}
		if n > 0 && (int(hi-lo) < n/k || int(hi-lo) > n/k+1) {
			t.Fatalf("shard %d: unbalanced range [%d,%d) for n=%d k=%d", s, lo, hi, n, k)
		}
		for v := lo; v < hi; v++ {
			if p.Owner(v) != s {
				t.Fatalf("node %d: Owner = %d, want %d", v, p.Owner(v), s)
			}
		}
		prev = hi
	}
	if int(prev) != n {
		t.Fatalf("ranges end at %d, want %d", prev, n)
	}

	// Halos: sorted, deduplicated, exactly the out-of-range neighbors;
	// every cross-shard edge appears in both endpoints' shards' halos.
	inHalo := func(s int, v NodeID) bool {
		h := p.Halo(s)
		for i := 0; i < len(h); i++ {
			if h[i] == v {
				return true
			}
		}
		return false
	}
	for s := 0; s < k; s++ {
		lo, hi := p.Range(s)
		h := p.Halo(s)
		want := map[NodeID]bool{}
		for v := lo; v < hi; v++ {
			for _, w := range c.Neighbors(v) {
				if w < lo || w >= hi {
					want[w] = true
				}
			}
		}
		if len(h) != len(want) {
			t.Fatalf("shard %d: halo %v, want the %d out-of-range neighbors", s, h, len(want))
		}
		for i, x := range h {
			if !want[x] {
				t.Fatalf("shard %d: halo member %d is not an out-of-range neighbor", s, x)
			}
			if i > 0 && h[i-1] >= x {
				t.Fatalf("shard %d: halo not strictly ascending: %v", s, h)
			}
			// Every halo member lies inside the absorb span aimed at its
			// owner — the mark-exchange completeness invariant.
			d := p.Owner(x)
			alo, ahi := p.AbsorbSpan(s, d)
			if x < alo || x >= ahi {
				t.Fatalf("shard %d: halo member %d outside AbsorbSpan(%d,%d) = [%d,%d)", s, x, s, d, alo, ahi)
			}
			dlo, dhi := p.Range(d)
			if alo < dlo || ahi > dhi {
				t.Fatalf("AbsorbSpan(%d,%d) = [%d,%d) leaves owner range [%d,%d)", s, d, alo, ahi, dlo, dhi)
			}
		}
	}
	for u := NodeID(0); int(u) < n; u++ {
		su := p.Owner(u)
		for _, w := range c.Neighbors(u) {
			if sw := p.Owner(w); sw != su {
				if !inHalo(su, w) || !inHalo(sw, u) {
					t.Fatalf("cross-shard edge {%d,%d} missing from a halo", u, w)
				}
			}
		}
	}

	// Reassembly: concatenating the shard views' rows reproduces the CSR
	// neighbor array byte for byte, and per-node rows agree.
	_, nbrs := c.Rows()
	var rebuilt []NodeID
	for s := 0; s < k; s++ {
		v := p.View(s)
		if v.Lo != NodeID(p.starts[s]) || v.Hi != NodeID(p.starts[s+1]) {
			t.Fatalf("shard %d: view range [%d,%d)", s, v.Lo, v.Hi)
		}
		rebuilt = append(rebuilt, v.Nbrs...)
		for u := v.Lo; u < v.Hi; u++ {
			if got, want := v.Neighbors(u), c.Neighbors(u); !reflect.DeepEqual(got, want) {
				t.Fatalf("shard %d: Neighbors(%d) = %v, want %v", s, u, got, want)
			}
		}
		if !reflect.DeepEqual(v.Halo, p.Halo(s)) {
			t.Fatalf("shard %d: view halo mismatch", s)
		}
	}
	if len(rebuilt) != len(nbrs) {
		t.Fatalf("reassembled %d row entries, want %d", len(rebuilt), len(nbrs))
	}
	for i := range rebuilt {
		if rebuilt[i] != nbrs[i] {
			t.Fatalf("reassembled row entry %d = %d, want %d", i, rebuilt[i], nbrs[i])
		}
	}
}

func TestPartitionInvariantsOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []*Graph{
		Path(1), Path(2), Path(17), Cycle(64), Star(65),
		Grid(9, 14), Complete(12), RandomConnected(100, 0.05, rng),
		New(10), // edgeless: empty halos everywhere
	}
	for _, g := range graphs {
		c := g.Snapshot()
		for _, k := range []int{1, 2, 3, 4, 7, 8, 100} {
			p := NewPartition(c, k)
			if p.K() > 1 && p.K() != min(k, g.N()) {
				t.Fatalf("n=%d k=%d: K = %d", g.N(), k, p.K())
			}
			checkPartition(t, c, p)
		}
	}
}

func TestPartitionClamps(t *testing.T) {
	c := Path(5).Snapshot()
	if got := NewPartition(c, 0).K(); got != 1 {
		t.Fatalf("k=0 clamps to %d, want 1", got)
	}
	if got := NewPartition(c, 99).K(); got != 5 {
		t.Fatalf("k=99 over 5 nodes clamps to %d, want 5", got)
	}
	empty := New(0).Snapshot()
	if got := NewPartition(empty, 4).K(); got != 1 {
		t.Fatalf("empty graph partitions into %d shards, want 1", got)
	}
}

func TestRandomSparseConnected(t *testing.T) {
	g := RandomSparseConnected(500, 8, rand.New(rand.NewSource(3)))
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if !IsConnected(g) {
		t.Fatal("not connected")
	}
	wantM := 499 + int(500*(8.0-2)/2)
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	// Deterministic per seed.
	h := RandomSparseConnected(500, 8, rand.New(rand.NewSource(3)))
	if !g.Equal(h) {
		t.Fatal("same seed produced different graphs")
	}
	// avgDeg below 2 yields just the attachment tree.
	tree := RandomSparseConnected(64, 1, rand.New(rand.NewSource(4)))
	if tree.M() != 63 || !IsConnected(tree) {
		t.Fatalf("tree fallback: M = %d", tree.M())
	}
}

func TestUnitDiskGridMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(200)
		r := 0.01 + rng.Float64()*0.5
		pts := RandomPoints(n, rng)
		fast := UnitDiskGrid(pts, r)
		slow := UnitDisk(pts, r)
		if !fast.Equal(slow) {
			t.Fatalf("trial %d (n=%d, r=%v): grid and quadratic unit-disk graphs differ", trial, n, r)
		}
	}
	if g := UnitDiskGrid(nil, 0.1); g.N() != 0 {
		t.Fatal("empty point set")
	}
	if g := UnitDiskGrid([]Point{{0.5, 0.5}}, 0); g.M() != 0 {
		t.Fatal("r=0 must yield no edges")
	}
}
