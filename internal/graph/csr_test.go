package graph

import (
	"math/rand"
	"testing"
)

func TestVersionCountsMutations(t *testing.T) {
	g := New(4)
	if g.Version() != 0 {
		t.Fatalf("fresh graph version %d", g.Version())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	v := g.Version()
	if v != 2 {
		t.Fatalf("after 2 adds: version %d", v)
	}
	// No-op mutations must not move the version: caches stay valid.
	g.AddEdge(0, 1)
	g.RemoveEdge(2, 3)
	if g.Version() != v {
		t.Fatalf("no-op mutations moved version %d -> %d", v, g.Version())
	}
	g.RemoveEdge(0, 1)
	if g.Version() != v+1 {
		t.Fatalf("remove: version %d", g.Version())
	}
}

func TestCSRMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := RandomConnected(2+rng.Intn(40), 0.2, rng)
		c := BuildCSR(g)
		if !c.Fresh(g) {
			t.Fatal("fresh CSR not Fresh")
		}
		if c.N() != g.N() {
			t.Fatalf("N %d != %d", c.N(), g.N())
		}
		for v := 0; v < g.N(); v++ {
			id := NodeID(v)
			want := g.Neighbors(id)
			got := c.Neighbors(id)
			if len(got) != len(want) || c.Degree(id) != g.Degree(id) {
				t.Fatalf("node %d: %v vs %v", v, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("node %d: %v vs %v", v, got, want)
				}
			}
		}
	}
}

func TestCSRStaleAfterMutation(t *testing.T) {
	g := Cycle(5)
	c := BuildCSR(g)
	g.RemoveEdge(0, 1)
	if c.Fresh(g) {
		t.Fatal("CSR still Fresh after edge removal")
	}
	if !BuildCSR(g).Fresh(g) {
		t.Fatal("rebuilt CSR not Fresh")
	}
}

func TestFrontierStartsFull(t *testing.T) {
	f := NewFrontier(7)
	if f.Empty() || f.Len(7) != 7 {
		t.Fatalf("fresh frontier: empty=%v len=%d", f.Empty(), f.Len(7))
	}
	got := f.Drain(nil, 7)
	if len(got) != 7 {
		t.Fatalf("drained %v", got)
	}
	for i, v := range got {
		if v != NodeID(i) {
			t.Fatalf("drained %v", got)
		}
	}
	if !f.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestFrontierDedupAndOrder(t *testing.T) {
	f := NewFrontier(100)
	f.Drain(nil, 100) // discharge the initial full state
	for _, v := range []NodeID{42, 3, 99, 3, 42, 0, 64, 63} {
		f.Add(v)
	}
	if f.Len(100) != 6 {
		t.Fatalf("len %d", f.Len(100))
	}
	got := f.Drain(nil, 100)
	want := []NodeID{0, 3, 42, 63, 64, 99}
	if len(got) != len(want) {
		t.Fatalf("drained %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v want %v", got, want)
		}
	}
	// The bitset must be fully cleared: re-adding works afresh.
	f.Add(42)
	if got := f.Drain(nil, 100); len(got) != 1 || got[0] != 42 {
		t.Fatalf("after re-add: %v", got)
	}
}

func TestFrontierAddAll(t *testing.T) {
	f := NewFrontier(5)
	f.Drain(nil, 5)
	f.Add(2)
	f.AddAll()
	f.Add(4) // absorbed: already fully dirty
	got := f.Drain(nil, 5)
	if len(got) != 5 {
		t.Fatalf("drained %v", got)
	}
	if !f.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestFrontierDrainReusesBuffer(t *testing.T) {
	f := NewFrontier(10)
	f.Drain(nil, 10)
	f.Add(1)
	buf := make([]NodeID, 0, 16)
	got := f.Drain(buf, 10)
	if &got[:1][0] != &buf[:1][0] {
		t.Fatal("drain did not reuse the buffer")
	}
}
