package graph

import (
	"strings"
	"testing"
)

func TestWriteDOTBasic(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, Path(3), DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph G {", "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTOptions(t *testing.T) {
	var sb strings.Builder
	opt := DOTOptions{
		Name:      "M",
		Highlight: map[Edge]bool{NewEdge(0, 1): true},
		FillNodes: map[NodeID]bool{2: true},
		Labels:    map[NodeID]string{0: "root"},
	}
	if err := WriteDOT(&sb, Path(3), opt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph M {", "style=bold", "fillcolor=gray80", `label="root"`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := WriteDOT(&sb, Complete(4), DOTOptions{}); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("WriteDOT output not deterministic")
	}
}
