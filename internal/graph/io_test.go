package graph

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := Cycle(5)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatalf("round trip differs:\n%s", sb.String())
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n3\n# another\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(Path(3)) {
		t.Fatalf("parsed %v", g.Edges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad count":    "x\n",
		"neg count":    "-2\n",
		"bad edge":     "3\n0 x\n",
		"out of range": "3\n0 7\n",
		"self-loop":    "3\n1 1\n",
		"duplicate":    "3\n0 1\n1 0\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := Grid(3, 3)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&back) {
		t.Fatal("JSON round trip differs")
	}
}

func TestGraphJSONErrors(t *testing.T) {
	cases := []string{
		`{nope`,
		`{"n": -1, "edges": []}`,
		`{"n": 3, "edges": [[0, 5]]}`,
		`{"n": 3, "edges": [[1, 1]]}`,
		`{"n": 3, "edges": [[0, 1], [1, 0]]}`,
	}
	for i, in := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(in), &g); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: both serializations round-trip arbitrary random graphs.
func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(seed int64, size uint8, pTenths uint8) bool {
		n := int(size % 20)
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(n, float64(pTenths%11)/10, rng)

		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			return false
		}
		back, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil || !g.Equal(back) {
			return false
		}

		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var jback Graph
		if err := json.Unmarshal(data, &jback); err != nil {
			return false
		}
		return g.Equal(&jback)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
