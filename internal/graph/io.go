package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList emits the graph in the plain interchange format
//
//	# optional comments
//	<n>
//	<u> <v>
//	...
//
// with one edge per line, normalized u < v, in deterministic order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format WriteEdgeList emits. Blank lines and
// lines starting with '#' are ignored. Duplicate edges are rejected, as
// are self-loops and out-of-range endpoints.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if g == nil {
			var n int
			if _, err := fmt.Sscanf(text, "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, text)
			}
			g = New(n)
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
		}
		if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range in %q", line, text)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop %q", line, text)
		}
		if !g.AddEdge(NodeID(u), NodeID(v)) {
			return nil, fmt.Errorf("graph: line %d: duplicate edge %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty edge-list input")
	}
	return g, nil
}

// jsonGraph is the wire form of a Graph.
type jsonGraph struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as {"n": ..., "edges": [[u,v], ...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{N: g.N(), Edges: make([][2]int, 0, g.M())}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, [2]int{int(e.U), int(e.V)})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes the MarshalJSON form, validating every edge.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decoding JSON: %w", err)
	}
	if jg.N < 0 {
		return fmt.Errorf("graph: negative node count %d", jg.N)
	}
	*g = *New(jg.N)
	for _, e := range jg.Edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= jg.N || v >= jg.N || u == v {
			return fmt.Errorf("graph: invalid edge [%d,%d]", u, v)
		}
		if !g.AddEdge(NodeID(u), NodeID(v)) {
			return fmt.Errorf("graph: duplicate edge [%d,%d]", u, v)
		}
	}
	return nil
}
