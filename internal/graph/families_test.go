package graph

import "testing"

func TestBarbell(t *testing.T) {
	g := Barbell(4, 2)
	if g.N() != 10 {
		t.Fatalf("N = %d", g.N())
	}
	wantM := 2*6 + 3 // two K4s + path of 2 bridge nodes (3 edges)
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	// Zero bridge: cliques joined by one edge.
	g0 := Barbell(3, 0)
	if g0.N() != 6 || g0.M() != 2*3+1 {
		t.Fatalf("Barbell(3,0): n=%d m=%d", g0.N(), g0.M())
	}
	if !g0.HasEdge(2, 3) {
		t.Fatal("joining edge missing")
	}
}

func TestBarbellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Barbell(1, 0)
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 7)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 10+7 {
		t.Fatalf("M = %d", g.M())
	}
	if d := Diameter(g); d != 8 { // across the clique (1) + tail (7)
		t.Fatalf("diameter = %d, want 8", d)
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.N() != 4+8 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 3+8 { // a tree
		t.Fatalf("M = %d", g.M())
	}
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
	// Spine interior nodes have degree 2 + legs.
	if d := g.Degree(1); d != 4 {
		t.Fatalf("spine degree = %d, want 4", d)
	}
	// Legless caterpillar is a path.
	if !Caterpillar(5, 0).Equal(Path(5)) {
		t.Fatal("Caterpillar(5,0) != Path(5)")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(7)
	if g.M() != 6 || !IsConnected(g) {
		t.Fatalf("m=%d", g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(6) != 1 {
		t.Fatal("degrees wrong")
	}
	if d := Diameter(g); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
	// Single node and empty cases.
	if CompleteBinaryTree(1).M() != 0 {
		t.Fatal("n=1")
	}
	if CompleteBinaryTree(0).N() != 0 {
		t.Fatal("n=0")
	}
}

func TestWheel(t *testing.T) {
	g := Wheel(6) // hub + C5
	if g.N() != 6 || g.M() != 10 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 5 {
		t.Fatalf("hub degree = %d", g.Degree(0))
	}
	for v := 1; v < 6; v++ {
		if g.Degree(NodeID(v)) != 3 {
			t.Fatalf("rim degree = %d", g.Degree(NodeID(v)))
		}
	}
	if d := Diameter(g); d != 2 {
		t.Fatalf("diameter = %d", d)
	}
}

func TestWheelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Wheel(3)
}
