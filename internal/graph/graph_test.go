package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
	for v := 0; v < 5; v++ {
		if d := g.Degree(NodeID(v)); d != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, d)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdge(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false on fresh graph")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("AddEdge(1,0) = true for duplicate edge")
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge(0,2) = true for absent edge")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("HasEdge(2,2) = true for self-loop query")
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(1,1) did not panic")
		}
	}()
	New(3).AddEdge(1, 1)
}

func TestRemoveEdge(t *testing.T) {
	g := Path(4)
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) = false for present edge")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) = true for absent edge")
	}
	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2", g.M())
	}
	if g.HasEdge(1, 2) {
		t.Fatal("edge {1,2} still present after removal")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(6)
	g.AddEdge(3, 5)
	g.AddEdge(3, 0)
	g.AddEdge(3, 4)
	g.AddEdge(3, 1)
	want := []NodeID{0, 1, 4, 5}
	got := g.Neighbors(3)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(3) = %v, want %v", got, want)
		}
	}
}

func TestEdges(t *testing.T) {
	g := Cycle(4)
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("len(Edges) = %d, want 4", len(es))
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %v not normalized", e)
		}
	}
}

func TestNewEdgeNormalizes(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want {2,5}", e)
	}
	if s := e.String(); s != "{2,5}" {
		t.Fatalf("String() = %q", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.AddEdge(0, 3)
	if g.Equal(c) {
		t.Fatal("mutating clone affected equality unexpectedly")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("mutating clone mutated original")
	}
}

func TestEqual(t *testing.T) {
	if !Path(4).Equal(Path(4)) {
		t.Fatal("identical paths not Equal")
	}
	if Path(4).Equal(Path(5)) {
		t.Fatal("different sizes Equal")
	}
	if Path(4).Equal(Cycle(4)) {
		t.Fatal("path Equal to cycle")
	}
}

func TestRelabel(t *testing.T) {
	g := Path(3) // 0-1-2
	h := g.Relabel([]NodeID{2, 0, 1})
	// 0->2, 1->0, 2->1: edges {2,0} and {0,1}
	if !h.HasEdge(0, 2) || !h.HasEdge(0, 1) || h.HasEdge(1, 2) {
		t.Fatalf("Relabel produced wrong edges: %v", h.Edges())
	}
}

func TestRelabelRejectsNonPermutation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Relabel with duplicate did not panic")
		}
	}()
	Path(3).Relabel([]NodeID{0, 0, 1})
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"Path(1)", Path(1), 1, 0},
		{"Path(5)", Path(5), 5, 4},
		{"Cycle(3)", Cycle(3), 3, 3},
		{"Cycle(6)", Cycle(6), 6, 6},
		{"Complete(5)", Complete(5), 5, 10},
		{"Star(5)", Star(5), 5, 4},
		{"K33", CompleteBipartite(3, 3), 6, 9},
		{"Grid(3,4)", Grid(3, 4), 12, 17},
		{"Torus(3,3)", Torus(3, 3), 9, 18},
		{"Hypercube(3)", Hypercube(3), 8, 12},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: (n,m) = (%d,%d), want (%d,%d)", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
		if err := Validate(c.g); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 17, 64} {
		g := RandomTree(n, rng)
		if g.N() != n {
			t.Fatalf("n=%d: N() = %d", n, g.N())
		}
		wantM := n - 1
		if n == 0 || n == 1 {
			wantM = 0
		}
		if g.M() != wantM {
			t.Fatalf("n=%d: M() = %d, want %d", n, g.M(), wantM)
		}
		if !IsConnected(g) {
			t.Fatalf("n=%d: tree not connected", n)
		}
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := RandomConnected(20, 0.1, rng)
		if !IsConnected(g) {
			t.Fatal("RandomConnected produced disconnected graph")
		}
		if err := Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := RandomGNP(10, 0, rng); g.M() != 0 {
		t.Fatalf("G(10,0) has %d edges", g.M())
	}
	if g := RandomGNP(10, 1, rng); g.M() != 45 {
		t.Fatalf("G(10,1) has %d edges, want 45", g.M())
	}
}

func TestUnitDisk(t *testing.T) {
	pts := []Point{{0, 0}, {0.5, 0}, {1, 0}}
	g := UnitDisk(pts, 0.6)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("unit disk edges wrong: %v", g.Edges())
	}
}

func TestRandomUnitDiskConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, pts := RandomUnitDisk(30, 0.05, rng)
	if len(pts) != 30 || g.N() != 30 {
		t.Fatal("wrong node count")
	}
	if !IsConnected(g) {
		t.Fatal("RandomUnitDisk returned disconnected graph")
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(New(0)) || !IsConnected(New(1)) {
		t.Fatal("trivial graphs should be connected")
	}
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if IsConnected(g) {
		t.Fatal("two components reported connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	comps := Components(g)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if comps[0][0] != 0 || comps[1][0] != 2 || comps[2][0] != 3 {
		t.Fatalf("component ordering wrong: %v", comps)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(4)
	d := BFSDistances(g, 0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist = %v, want %v", d, want)
		}
	}
	g2 := New(3)
	g2.AddEdge(0, 1)
	d2 := BFSDistances(g2, 0)
	if d2[2] != -1 {
		t.Fatalf("unreachable node distance = %d, want -1", d2[2])
	}
}

func TestDiameter(t *testing.T) {
	if d := Diameter(Path(5)); d != 4 {
		t.Fatalf("Diameter(P5) = %d, want 4", d)
	}
	if d := Diameter(Cycle(6)); d != 3 {
		t.Fatalf("Diameter(C6) = %d, want 3", d)
	}
	if d := Diameter(Complete(7)); d != 1 {
		t.Fatalf("Diameter(K7) = %d, want 1", d)
	}
	g := New(2)
	if d := Diameter(g); d != -1 {
		t.Fatalf("Diameter(disconnected) = %d, want -1", d)
	}
}

func TestDegrees(t *testing.T) {
	st := Degrees(Star(5))
	if st.Min != 1 || st.Max != 4 {
		t.Fatalf("Degrees(Star(5)) = %+v", st)
	}
	if st.Mean != 8.0/5.0 {
		t.Fatalf("mean = %v, want 1.6", st.Mean)
	}
	if z := Degrees(New(0)); z != (DegreeStats{}) {
		t.Fatalf("Degrees(empty) = %+v", z)
	}
}

func TestIsCutEdge(t *testing.T) {
	g := Path(4)
	if !IsCutEdge(g, 1, 2) {
		t.Fatal("path middle edge should be a cut edge")
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("IsCutEdge must restore the edge")
	}
	c := Cycle(4)
	if IsCutEdge(c, 0, 1) {
		t.Fatal("cycle edge should not be a cut edge")
	}
}

func TestIsCutEdgeAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IsCutEdge on absent edge did not panic")
		}
	}()
	IsCutEdge(Path(4), 0, 3)
}

func TestRandomPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	perm := RandomPermutation(50, rng)
	seen := make([]bool, 50)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("duplicate in permutation")
		}
		seen[p] = true
	}
}

// Property: random mutation sequences keep the invariants Validate checks.
func TestQuickMutationInvariants(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(10)
		for i := 0; i < int(ops); i++ {
			u := NodeID(rng.Intn(10))
			v := NodeID(rng.Intn(10))
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				g.AddEdge(u, v)
			} else {
				g.RemoveEdge(u, v)
			}
		}
		return Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: relabeling preserves edge count, degree multiset, and
// connectivity.
func TestQuickRelabelPreserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(12, 0.2, rng)
		h := g.Relabel(RandomPermutation(12, rng))
		if g.M() != h.M() || !IsConnected(h) {
			return false
		}
		dg := make([]int, 13)
		dh := make([]int, 13)
		for v := 0; v < 12; v++ {
			dg[g.Degree(NodeID(v))]++
			dh[h.Degree(NodeID(v))]++
		}
		for i := range dg {
			if dg[i] != dh[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
