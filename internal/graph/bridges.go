package graph

// Bridges returns all cut edges of g — edges whose removal disconnects
// their component — via a single iterative Tarjan low-link DFS in
// O(n + m). The churn generator calls this once per event instead of
// probing every edge with a BFS, turning an O(m²) scan into linear work.
// Edges are returned normalized (U < V) in discovery order.
func Bridges(g *Graph) []Edge {
	n := g.N()
	disc := make([]int, n) // discovery time, 0 = unvisited
	low := make([]int, n)  // low-link
	parent := make([]NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	var bridges []Edge
	timer := 0

	// Iterative DFS: a frame tracks the node and the index into its
	// adjacency list so the walk resumes after child returns.
	type frame struct {
		v   NodeID
		idx int
	}
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack := []frame{{v: NodeID(start)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nbrs := g.Neighbors(f.v)
			if f.idx < len(nbrs) {
				u := nbrs[f.idx]
				f.idx++
				if disc[u] == 0 {
					parent[u] = f.v
					timer++
					disc[u] = timer
					low[u] = timer
					stack = append(stack, frame{v: u})
				} else if u != parent[f.v] {
					if disc[u] < low[f.v] {
						low[f.v] = disc[u]
					}
				}
				continue
			}
			// f.v is finished: propagate low-link to the parent and
			// test the tree edge for bridgehood.
			stack = stack[:len(stack)-1]
			p := parent[f.v]
			if p < 0 {
				continue
			}
			if low[f.v] < low[p] {
				low[p] = low[f.v]
			}
			if low[f.v] > disc[p] {
				bridges = append(bridges, NewEdge(p, f.v))
			}
		}
	}
	return bridges
}

// Note on parallel edges: the Graph type is simple (no multi-edges), so
// the `u != parent[f.v]` test is exact — there cannot be a second edge
// back to the parent that would make the tree edge a non-bridge.
