package graph

// CSR is a compressed-sparse-row snapshot of a Graph's adjacency: every
// neighbor list, in ascending ID order, laid out back to back in one
// flat slice, addressed by per-node offsets. Executors build one per
// topology and read neighbor lists from it on the hot path — one
// contiguous allocation instead of n small ones, and no second pointer
// hop per node — rebuilding only when Graph.Version moves.
//
// A CSR is immutable after BuildCSR returns and therefore safe to share
// between goroutines (the data-parallel executor hands the same CSR to
// every worker).
type CSR struct {
	offs    []int32 // len n+1; neighbor list of v is nbrs[offs[v]:offs[v+1]]
	nbrs    []NodeID
	nbrs32  []int32 // nbrs narrowed to int32, same layout: batch kernels walk this copy to halve the row cache footprint
	version uint64
}

// BuildCSR snapshots g's adjacency. The snapshot is tied to g's current
// Version; use Fresh to test whether it still reflects g.
func BuildCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{
		offs:    make([]int32, n+1),
		nbrs:    make([]NodeID, 0, 2*g.M()),
		version: g.Version(),
	}
	for v := 0; v < n; v++ {
		c.nbrs = append(c.nbrs, g.Neighbors(NodeID(v))...)
		c.offs[v+1] = int32(len(c.nbrs))
	}
	c.nbrs32 = make([]int32, len(c.nbrs))
	for i, w := range c.nbrs {
		c.nbrs32[i] = int32(w)
	}
	return c
}

// Snapshot returns a CSR of g's current adjacency, cached on the graph:
// as long as no edge mutates, every caller — several executors over one
// topology, run after run of an experiment — shares one immutable
// snapshot instead of rebuilding it. Concurrent Snapshot calls are safe;
// concurrent calls with graph mutation are not (Graph mutation is not
// thread-safe in general).
func (g *Graph) Snapshot() *CSR {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	if !g.snap.Fresh(g) {
		g.snap = BuildCSR(g)
	}
	return g.snap
}

// Fresh reports whether the snapshot still matches g: same node count
// and no edge mutation since BuildCSR.
//
//selfstab:noalloc
func (c *CSR) Fresh(g *Graph) bool {
	return c != nil && c.version == g.Version() && len(c.offs) == g.N()+1
}

// N returns the number of nodes in the snapshot.
//
//selfstab:noalloc
func (c *CSR) N() int { return len(c.offs) - 1 }

// Neighbors returns v's neighbor list in ascending ID order, as a
// subslice of the shared flat array. Callers must not modify it.
//
//selfstab:noalloc
func (c *CSR) Neighbors(v NodeID) []NodeID {
	return c.nbrs[c.offs[v]:c.offs[v+1]]
}

// Degree returns the number of neighbors of v.
//
//selfstab:noalloc
func (c *CSR) Degree(v NodeID) int {
	return int(c.offs[v+1] - c.offs[v])
}

// Rows exposes the raw arrays for batch kernels that slice neighbor
// lists inline: the neighbor list of v is nbrs[offs[v]:offs[v+1]]. Both
// slices are read-only.
//
//selfstab:noalloc
func (c *CSR) Rows() (offs []int32, nbrs []NodeID) {
	return c.offs, c.nbrs
}

// Rows32 is Rows with the neighbor array narrowed to int32 — half the
// bytes per row, which keeps the whole adjacency L1-resident on graphs
// where the NodeID-width copy does not fit. Node IDs always fit in int32
// (the dense ID space is bounded by the node count). Both slices are
// read-only.
//
//selfstab:noalloc
func (c *CSR) Rows32() (offs []int32, nbrs []int32) {
	return c.offs, c.nbrs32
}
