package graph

import "fmt"

// Barbell returns two K_k cliques joined by a path of bridge nodes:
// clique nodes 0..k-1 and k..2k-1, path nodes 2k..2k+bridge-1 between
// node k-1 and node k. With bridge = 0 the cliques share one edge
// directly. Barbells maximize the mixing penalty between dense regions —
// a stress case for wave-based protocols.
func Barbell(k, bridge int) *Graph {
	if k < 2 {
		panic(fmt.Sprintf("graph: Barbell(%d,%d): need k >= 2", k, bridge))
	}
	g := New(2*k + bridge)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
			g.AddEdge(NodeID(k+i), NodeID(k+j))
		}
	}
	if bridge == 0 {
		g.AddEdge(NodeID(k-1), NodeID(k))
		return g
	}
	prev := NodeID(k - 1)
	for b := 0; b < bridge; b++ {
		cur := NodeID(2*k + b)
		g.AddEdge(prev, cur)
		prev = cur
	}
	g.AddEdge(prev, NodeID(k))
	return g
}

// Lollipop returns a K_k clique with a path of tail nodes attached:
// clique 0..k-1, tail k..k+tail-1 hanging off node k-1. The lollipop is
// the classical worst case for cover-time-like dynamics.
func Lollipop(k, tail int) *Graph {
	if k < 2 {
		panic(fmt.Sprintf("graph: Lollipop(%d,%d): need k >= 2", k, tail))
	}
	g := New(k + tail)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
		}
	}
	prev := NodeID(k - 1)
	for t := 0; t < tail; t++ {
		cur := NodeID(k + t)
		g.AddEdge(prev, cur)
		prev = cur
	}
	return g
}

// Caterpillar returns a spine path of length spine with legs leaf nodes
// attached to every spine node: spine nodes 0..spine-1, legs appended in
// spine order. Caterpillars are the trees on which many domination-type
// parameters are extremal.
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic(fmt.Sprintf("graph: Caterpillar(%d,%d): need spine >= 1, legs >= 0", spine, legs))
	}
	g := New(spine + spine*legs)
	for i := 0; i < spine-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(NodeID(i), NodeID(next))
			next++
		}
	}
	return g
}

// CompleteBinaryTree returns the complete binary tree on n nodes with
// node 0 as the root and node i's children at 2i+1 and 2i+2.
func CompleteBinaryTree(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			g.AddEdge(NodeID(i), NodeID(l))
		}
		if r := 2*i + 2; r < n {
			g.AddEdge(NodeID(i), NodeID(r))
		}
	}
	return g
}

// Wheel returns the wheel W_n: a cycle on nodes 1..n-1 plus a hub (node
// 0) adjacent to every cycle node. Needs n >= 4.
func Wheel(n int) *Graph {
	if n < 4 {
		panic(fmt.Sprintf("graph: Wheel(%d): need n >= 4", n))
	}
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i))
		next := i + 1
		if next == n {
			next = 1
		}
		g.AddEdge(NodeID(i), NodeID(next))
	}
	return g
}
