package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedEdges(es []Edge) []Edge {
	out := append([]Edge(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// bridgesBrute recomputes bridges by per-edge connectivity probing.
func bridgesBrute(g *Graph) []Edge {
	var out []Edge
	for _, e := range g.Edges() {
		if IsCutEdge(g, e.U, e.V) {
			out = append(out, e)
		}
	}
	return out
}

func TestBridgesKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", Path(5), 4},           // every edge
		{"cycle5", Cycle(5), 0},         // none
		{"star6", Star(6), 5},           // every spoke
		{"complete5", Complete(5), 0},   // none
		{"lollipop", Lollipop(4, 3), 3}, // the tail
		{"barbell", Barbell(3, 1), 2},   // the two bridge links
		{"tree", CompleteBinaryTree(7), 6},
		{"empty", New(4), 0},
	}
	for _, c := range cases {
		got := Bridges(c.g)
		if len(got) != c.want {
			t.Errorf("%s: %d bridges, want %d (%v)", c.name, len(got), c.want, got)
		}
	}
}

func TestBridgesDisconnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1) // bridge in component 1
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(2, 4) // triangle: no bridges in component 2
	got := Bridges(g)
	if len(got) != 1 || got[0] != NewEdge(0, 1) {
		t.Fatalf("bridges = %v", got)
	}
}

// Property: Tarjan agrees with the brute-force probe on random graphs.
func TestQuickBridgesMatchBruteForce(t *testing.T) {
	f := func(seed int64, size, pTenths uint8) bool {
		n := 2 + int(size%16)
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(n, float64(pTenths%11)/10, rng)
		fast := sortedEdges(Bridges(g))
		slow := sortedEdges(bridgesBrute(g))
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
