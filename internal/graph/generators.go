package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path P_n: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

// Cycle returns the cycle C_n. It panics for n < 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle(%d): need n >= 3", n))
	}
	g := Path(n)
	g.AddEdge(NodeID(n-1), 0)
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return g
}

// Star returns the star K_{1,n-1} with node 0 as the center.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i))
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(NodeID(i), NodeID(a+j))
		}
	}
	return g
}

// Grid returns the rows x cols grid graph; node (r,c) has ID r*cols+c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols torus (grid with wraparound). Both
// dimensions must be at least 3 to keep the graph simple.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: Torus(%d,%d): need both >= 3", rows, cols))
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
			g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << d
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if v < u {
				g.AddEdge(NodeID(v), NodeID(u))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n nodes, built by
// decoding a random Prüfer sequence. For n <= 1 the tree has no edges.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.AddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, p := range prufer {
		degree[p]++
	}
	for _, p := range prufer {
		for v := 0; v < n; v++ {
			if degree[v] == 1 {
				g.AddEdge(NodeID(v), NodeID(p))
				degree[v]--
				degree[p]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			if u == -1 {
				u = v
			} else {
				w = v
			}
		}
	}
	g.AddEdge(NodeID(u), NodeID(w))
	return g
}

// RandomGNP returns an Erdős–Rényi graph G(n,p): each of the n(n-1)/2
// possible edges is present independently with probability p.
func RandomGNP(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// RandomConnected returns a connected random graph on n nodes: a uniform
// random spanning tree plus every remaining edge independently with
// probability p. This is the workhorse topology for convergence sweeps,
// since the paper assumes the network stays connected.
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := RandomTree(n, rng)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.HasEdge(NodeID(i), NodeID(j)) && rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// Point is a position in the unit square used by geometric graphs.
type Point struct {
	X, Y float64
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// RandomPoints returns n uniform points in the unit square.
func RandomPoints(n int, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64()}
	}
	return pts
}

// UnitDisk returns the unit-disk graph of pts with communication radius r:
// nodes i and j are adjacent iff their distance is at most r. This is the
// standard abstraction of an ad hoc radio network.
func UnitDisk(pts []Point, r float64) *Graph {
	g := New(len(pts))
	r2 := r * r
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) <= r2 {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// RandomUnitDisk places n uniform points in the unit square and grows the
// radius from r0 until the unit-disk graph is connected, returning the
// graph and the point set. It panics only if n <= 0.
func RandomUnitDisk(n int, r0 float64, rng *rand.Rand) (*Graph, []Point) {
	if n <= 0 {
		panic(fmt.Sprintf("graph: RandomUnitDisk(%d): need n > 0", n))
	}
	pts := RandomPoints(n, rng)
	r := r0
	for {
		g := UnitDisk(pts, r)
		if IsConnected(g) {
			return g, pts
		}
		r *= 1.25
	}
}

// RandomSparseConnected returns a connected random graph on n nodes with
// expected average degree avgDeg, in O(n·avgDeg) time: a random
// attachment tree (each node i >= 1 links to a uniform earlier node)
// plus n·(avgDeg-2)/2 sampled extra edges. RandomConnected enumerates
// all n(n-1)/2 pairs and is quadratic; this is the million-node
// workhorse for the sharded executor's benchmarks, where the pair sweep
// would never finish. avgDeg below 2 yields just the tree.
func RandomSparseConnected(n int, avgDeg float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID(rng.Intn(i)))
	}
	extra := int(float64(n) * (avgDeg - 2) / 2)
	for e := 0; e < extra; {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v)
		e++
	}
	return g
}

// UnitDiskGrid returns exactly the graph UnitDisk(pts, r) — same nodes,
// same edges — in O(n·deg) expected time instead of O(n²), by hashing
// points into an r-sized cell grid and testing only the 3x3 cell
// neighborhood of each point (any pair within distance r lands in
// adjacent cells). It is the million-node unit-disk generator; the unit
// tests pin its equality with the quadratic definition.
func UnitDiskGrid(pts []Point, r float64) *Graph {
	g := New(len(pts))
	if len(pts) == 0 || r <= 0 {
		return g
	}
	cols := int(1/r) + 1
	cell := func(p Point) (int, int) {
		cx, cy := int(p.X/r), int(p.Y/r)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= cols {
			cy = cols - 1
		}
		return cx, cy
	}
	buckets := make(map[int][]int, len(pts))
	for i, p := range pts {
		cx, cy := cell(p)
		key := cy*cols + cx
		buckets[key] = append(buckets[key], i)
	}
	r2 := r * r
	for i, p := range pts {
		cx, cy := cell(p)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || nx >= cols || ny < 0 || ny >= cols {
					continue
				}
				for _, j := range buckets[ny*cols+nx] {
					if j > i && p.Dist2(pts[j]) <= r2 {
						g.AddEdge(NodeID(i), NodeID(j))
					}
				}
			}
		}
	}
	return g
}

// RandomPermutation returns a uniformly random permutation of 0..n-1 as
// NodeIDs, for use with Graph.Relabel.
func RandomPermutation(n int, rng *rand.Rand) []NodeID {
	perm := make([]NodeID, n)
	for i := range perm {
		perm[i] = NodeID(i)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}
