package graph

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the parser never panics and that everything
// it accepts is a valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3\n0 1\n1 2\n")
	f.Add("# comment\n2\n0 1\n")
	f.Add("")
	f.Add("0\n")
	f.Add("5\n0 1\n0 1\n")
	f.Add("1\n0 0\n")
	f.Add("4\n-1 2\n")
	f.Add("x\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if vErr := Validate(g); vErr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", vErr, input)
		}
		var sb strings.Builder
		if wErr := WriteEdgeList(&sb, g); wErr != nil {
			t.Fatal(wErr)
		}
		back, rErr := ReadEdgeList(strings.NewReader(sb.String()))
		if rErr != nil || !g.Equal(back) {
			t.Fatalf("round trip failed: %v\ninput: %q", rErr, input)
		}
	})
}

// FuzzGraphJSON asserts the JSON decoder never panics and that accepted
// graphs are valid and round-trip.
func FuzzGraphJSON(f *testing.F) {
	f.Add(`{"n":3,"edges":[[0,1],[1,2]]}`)
	f.Add(`{"n":0,"edges":[]}`)
	f.Add(`{"n":-1}`)
	f.Add(`{"n":2,"edges":[[0,0]]}`)
	f.Add(`{"n":2,"edges":[[0,1],[1,0]]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		var g Graph
		if err := json.Unmarshal([]byte(input), &g); err != nil {
			return
		}
		if vErr := Validate(&g); vErr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", vErr, input)
		}
		data, mErr := json.Marshal(&g)
		if mErr != nil {
			t.Fatal(mErr)
		}
		var back Graph
		if uErr := json.Unmarshal(data, &back); uErr != nil || !g.Equal(&back) {
			t.Fatalf("round trip failed: %v", uErr)
		}
	})
}

// FuzzShardPartition asserts the partitioner's structural invariants on
// arbitrary graphs and shard counts: every node has exactly one owner,
// every cross-shard edge appears in both shards' halos, every halo
// member is covered by an absorb span, and reassembling the shard views
// reproduces the original CSR rows byte for byte. The graph is derived
// from the fuzzed bytes as a random edge set over a fuzzed node count.
func FuzzShardPartition(f *testing.F) {
	f.Add(uint8(0), uint8(1), int64(0))
	f.Add(uint8(1), uint8(4), int64(1))
	f.Add(uint8(64), uint8(3), int64(7))
	f.Add(uint8(65), uint8(8), int64(42))
	f.Add(uint8(200), uint8(16), int64(1234))
	f.Fuzz(func(t *testing.T, n uint8, k uint8, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		g := New(int(n))
		for e := 0; e < int(n)*2; e++ {
			u := NodeID(rng.Intn(int(n) + 1))
			v := NodeID(rng.Intn(int(n) + 1))
			if u != v && int(u) < g.N() && int(v) < g.N() && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		c := g.Snapshot()
		p := NewPartition(c, int(k))
		checkPartition(t, c, p)
	})
}
