package graph

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the parser never panics and that everything
// it accepts is a valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3\n0 1\n1 2\n")
	f.Add("# comment\n2\n0 1\n")
	f.Add("")
	f.Add("0\n")
	f.Add("5\n0 1\n0 1\n")
	f.Add("1\n0 0\n")
	f.Add("4\n-1 2\n")
	f.Add("x\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if vErr := Validate(g); vErr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", vErr, input)
		}
		var sb strings.Builder
		if wErr := WriteEdgeList(&sb, g); wErr != nil {
			t.Fatal(wErr)
		}
		back, rErr := ReadEdgeList(strings.NewReader(sb.String()))
		if rErr != nil || !g.Equal(back) {
			t.Fatalf("round trip failed: %v\ninput: %q", rErr, input)
		}
	})
}

// FuzzGraphJSON asserts the JSON decoder never panics and that accepted
// graphs are valid and round-trip.
func FuzzGraphJSON(f *testing.F) {
	f.Add(`{"n":3,"edges":[[0,1],[1,2]]}`)
	f.Add(`{"n":0,"edges":[]}`)
	f.Add(`{"n":-1}`)
	f.Add(`{"n":2,"edges":[[0,0]]}`)
	f.Add(`{"n":2,"edges":[[0,1],[1,0]]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		var g Graph
		if err := json.Unmarshal([]byte(input), &g); err != nil {
			return
		}
		if vErr := Validate(&g); vErr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", vErr, input)
		}
		data, mErr := json.Marshal(&g)
		if mErr != nil {
			t.Fatal(mErr)
		}
		var back Graph
		if uErr := json.Unmarshal(data, &back); uErr != nil || !g.Equal(&back) {
			t.Fatalf("round trip failed: %v", uErr)
		}
	})
}
