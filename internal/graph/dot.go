package graph

import (
	"fmt"
	"io"
	"sort"
)

// DOTOptions controls WriteDOT output.
type DOTOptions struct {
	// Name is the graph name in the DOT header; "G" if empty.
	Name string
	// Highlight marks edges to render bold (e.g. the current matching).
	Highlight map[Edge]bool
	// FillNodes marks nodes to render filled (e.g. the independent set).
	FillNodes map[NodeID]bool
	// Labels overrides node labels; defaults to the numeric ID.
	Labels map[NodeID]string
}

// WriteDOT renders g in Graphviz DOT format. Output is deterministic:
// nodes ascending, edges lexicographic.
func WriteDOT(w io.Writer, g *Graph, opt DOTOptions) error {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		attrs := ""
		if opt.FillNodes[NodeID(v)] {
			attrs = ` [style=filled, fillcolor=gray80]`
		}
		label, ok := opt.Labels[NodeID(v)]
		if ok {
			if attrs == "" {
				attrs = fmt.Sprintf(" [label=%q]", label)
			} else {
				attrs = fmt.Sprintf(" [style=filled, fillcolor=gray80, label=%q]", label)
			}
		}
		if _, err := fmt.Fprintf(w, "  %d%s;\n", v, attrs); err != nil {
			return err
		}
	}
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	for _, e := range es {
		attrs := ""
		if opt.Highlight[e] {
			attrs = ` [style=bold, penwidth=2]`
		}
		if _, err := fmt.Fprintf(w, "  %d -- %d%s;\n", e.U, e.V, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
