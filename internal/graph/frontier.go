package graph

import (
	"encoding/binary"
	"math/bits"
)

// Frontier is the active-set scheduler's dirty set: the nodes that must
// be re-evaluated in the next round because their local view may have
// changed. It is a dense byte-per-node flag array: insertion is a plain
// one-byte store (no membership test, no queue, no read-modify-write —
// duplicates are free and marks to different nodes carry no data
// dependency between them, unlike a shared bitset word), and Drain scans
// the flags eight bytes at a time in index order, so members come out in
// ascending ID order with no sorting and executors iterate the frontier
// in the same order the full-scan loop visits nodes, keeping every
// observable output byte-identical. A drain costs O(n/8 + f) in the node
// count n and frontier size f.
//
// A Frontier is confined to its executor's coordinator; it is not safe
// for concurrent use.
type Frontier struct {
	// flags has one byte per node (padded to a multiple of 8 so Drain can
	// read whole words); nonzero means dirty.
	flags []byte
	// full marks "every node is dirty" without materializing the flags —
	// the state after construction and after an unattributed topology
	// change. Flags set while full are stray and discharged by the next
	// Drain or AddAll, which both clear the array.
	full bool
}

// NewFrontier returns a frontier over n nodes with every node dirty
// (round 0 must evaluate everyone: any node may be privileged in an
// arbitrary initial configuration).
func NewFrontier(n int) *Frontier {
	return &Frontier{flags: make([]byte, (n+7)&^7), full: true}
}

// Add marks node v dirty. Unconditional on purpose: the store absorbs
// duplicates, and stray flags set while the frontier is full are cleared
// when the full state discharges — this is the hot-path insert of the
// install phase, so it carries no branches and no read-modify-write.
//
//selfstab:noalloc
func (f *Frontier) Add(v NodeID) {
	f.flags[v] = 1
}

// AddMask marks node v dirty when mark is true and is a no-op otherwise,
// compiled to an unconditional byte OR rather than a branch. Batch
// installers use it for per-neighbor dependency tests whose outcomes are
// too data-dependent for the branch predictor.
//
//selfstab:noalloc
func (f *Frontier) AddMask(v NodeID, mark bool) {
	var m byte
	if mark {
		m = 1
	}
	f.flags[v] |= m
}

// AddAll marks every node dirty — the response to any event whose
// footprint the caller cannot (or does not care to) bound, e.g. a
// topology edit made directly on the Graph rather than through a fault
// hook.
//
//selfstab:noalloc
func (f *Frontier) AddAll() {
	f.full = true
	f.clear()
}

// Len returns the number of dirty nodes, where n is the node count
// (needed because a full frontier stores no explicit flags).
//
//selfstab:noalloc
func (f *Frontier) Len(n int) int {
	if f.full {
		return n
	}
	c := 0
	for _, b := range f.flags {
		if b != 0 {
			c++
		}
	}
	return c
}

// Empty reports whether no node is dirty.
//
//selfstab:noalloc
func (f *Frontier) Empty() bool {
	if f.full {
		return false
	}
	for i := 0; i < len(f.flags); i += 8 {
		if binary.LittleEndian.Uint64(f.flags[i:]) != 0 {
			return false
		}
	}
	return true
}

// Drain appends the dirty set to buf[:0] in ascending ID order, resets
// the frontier to empty, and returns the slice. n is the node count
// used to expand a full frontier.
//
//selfstab:noalloc
func (f *Frontier) Drain(buf []NodeID, n int) []NodeID {
	buf = buf[:0]
	if f.full {
		f.full = false
		f.clear()
		for v := 0; v < n; v++ {
			//lint:ignore noalloc the drain contract requires cap(buf) >= the drained range, so append never grows
			buf = append(buf, NodeID(v))
		}
		return buf
	}
	for i := 0; i < len(f.flags); i += 8 {
		w := binary.LittleEndian.Uint64(f.flags[i:])
		if w == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(f.flags[i:], 0)
		// Little-endian load: byte k of the chunk sits in bits 8k..8k+7,
		// so walking set bits low to high yields ascending node IDs.
		for w != 0 {
			k := bits.TrailingZeros64(w) >> 3
			//lint:ignore noalloc the drain contract requires cap(buf) >= the drained range, so append never grows
			buf = append(buf, NodeID(i+k))
			w &^= 0xff << (uint(k) << 3)
		}
	}
	return buf
}

// Reset empties the frontier: every flag cleared and the full state
// discharged. Sharded executors use it where a full frontier would be
// ambiguous — per-shard frontiers never go full; the executor carries a
// single "evaluate everyone" flag instead (see internal/sim).
//
//selfstab:noalloc
func (f *Frontier) Reset() {
	f.full = false
	f.clear()
}

// DrainRange appends the dirty members of [lo, hi) to buf[:0] in
// ascending ID order, clears exactly that range, and returns the slice.
// It is the per-shard drain: concurrent DrainRange calls on one frontier
// are safe when their ranges do not overlap (byte stores on the shared
// edge words touch disjoint bytes). It panics on a full frontier — a
// full frontier has no materialized flags to scan, and sharded executors
// expand their full rounds explicitly.
//
//selfstab:noalloc
func (f *Frontier) DrainRange(buf []NodeID, lo, hi int) []NodeID {
	if f.full {
		panic("graph: DrainRange on a full frontier")
	}
	buf = buf[:0]
	i := lo
	// Byte steps up to the first word boundary, then whole words, then
	// byte steps over the tail: word loads never cross the range edges,
	// so a neighboring shard draining the adjacent range cannot observe
	// (or clobber) this range's flags.
	for ; i < hi && i%8 != 0; i++ {
		if f.flags[i] != 0 {
			f.flags[i] = 0
			//lint:ignore noalloc the drain contract requires cap(buf) >= the drained range, so append never grows
			buf = append(buf, NodeID(i))
		}
	}
	for ; i+8 <= hi; i += 8 {
		w := binary.LittleEndian.Uint64(f.flags[i:])
		if w == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(f.flags[i:], 0)
		for w != 0 {
			k := bits.TrailingZeros64(w) >> 3
			//lint:ignore noalloc the drain contract requires cap(buf) >= the drained range, so append never grows
			buf = append(buf, NodeID(i+k))
			w &^= 0xff << (uint(k) << 3)
		}
	}
	for ; i < hi; i++ {
		if f.flags[i] != 0 {
			f.flags[i] = 0
			//lint:ignore noalloc the drain contract requires cap(buf) >= the drained range, so append never grows
			buf = append(buf, NodeID(i))
		}
	}
	return buf
}

// Absorb ORs src's dirty flags over [lo, hi) into f and clears them in
// src. It is the cross-shard merge: after the mark phase each shard
// absorbs, from every other shard's frontier, the marks that landed in
// its own range. Concurrent Absorb calls are safe when their [lo, hi)
// ranges do not overlap, for the same edge-byte reason as DrainRange.
// It panics when src is full (a full source has no flags to move; the
// executor's full flag already covers every range).
//
//selfstab:noalloc
func (f *Frontier) Absorb(src *Frontier, lo, hi int) {
	if src.full {
		panic("graph: Absorb from a full frontier")
	}
	i := lo
	for ; i < hi && i%8 != 0; i++ {
		f.flags[i] |= src.flags[i]
		src.flags[i] = 0
	}
	for ; i+8 <= hi; i += 8 {
		w := binary.LittleEndian.Uint64(src.flags[i:])
		if w == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(src.flags[i:], 0)
		fw := binary.LittleEndian.Uint64(f.flags[i:])
		binary.LittleEndian.PutUint64(f.flags[i:], fw|w)
	}
	for ; i < hi; i++ {
		f.flags[i] |= src.flags[i]
		src.flags[i] = 0
	}
}

// clear zeroes the flags.
//
//selfstab:noalloc
func (f *Frontier) clear() {
	for i := range f.flags {
		f.flags[i] = 0
	}
}
