// Package graph provides the topology substrate for the self-stabilizing
// protocol simulators: an undirected graph over a fixed node set, the
// generators used by the experiments (paths, cycles, random, geometric
// unit-disk), structural analysis (connectivity, diameter, degree
// statistics), and mutation primitives modeling ad hoc link churn.
//
// Nodes are identified by dense integer IDs 0..n-1. The paper assumes every
// node carries a unique ID and that protocols may compare IDs; the dense
// integer space keeps the simulators allocation-free while still letting
// experiments permute the order relation by relabeling (see Relabel).
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node. IDs are dense: a Graph with n nodes uses IDs
// 0..n-1. Protocols compare IDs as integers, matching the paper's
// assumption that "each node is assigned a unique ID".
type NodeID int

// Graph is an undirected simple graph on a fixed node set. The zero value
// is an empty graph with no nodes; use New to allocate one with n nodes.
//
// Neighbor sets are kept sorted so protocol rules that break ties by
// minimum ID (SMM rule R2) can scan deterministically, and so tests are
// reproducible.
type Graph struct {
	adj [][]NodeID // adj[v] sorted ascending
	m   int        // number of edges
	// version counts edge mutations. Executors cache derived structures
	// (the CSR adjacency snapshot, frontier validity) keyed on it, so a
	// topology change made behind their back — by the fault engine, by
	// mobility churn, by a test poking the graph directly — is detected
	// at the next round without any callback wiring.
	version uint64

	// snap caches the CSR adjacency snapshot served by Snapshot, keyed on
	// version, so every executor and run over one topology shares a single
	// immutable snapshot instead of each rebuilding it.
	snap   *CSR
	snapMu sync.Mutex
}

// New returns an empty graph (no edges) on n nodes with IDs 0..n-1.
// It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: New(%d): negative node count", n))
	}
	return &Graph{adj: make([][]NodeID, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Version returns the edge-mutation counter: it increases on every
// successful AddEdge or RemoveEdge and never otherwise. Equal versions
// of the same Graph value imply an identical edge set, so callers may
// cache adjacency-derived structures against it.
func (g *Graph) Version() uint64 { return g.version }

// Nodes returns the node IDs 0..n-1 as a fresh slice.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, len(g.adj))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return ids
}

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified; callers that mutate must
// copy first.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[v]
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	return containsSorted(g.adj[u], v)
}

// AddEdge inserts the undirected edge {u,v}. It reports whether the edge
// was newly added (false if it already existed). Self-loops are rejected
// with a panic since the paper's network model has none.
func (g *Graph) AddEdge(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d): self-loop", u, v))
	}
	if containsSorted(g.adj[u], v) {
		return false
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.m++
	g.version++
	return true
}

// RemoveEdge deletes the undirected edge {u,v}. It reports whether the
// edge was present.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	if u == v || !containsSorted(g.adj[u], v) {
		return false
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	g.m--
	g.version++
	return true
}

// Edges returns all edges as ordered pairs (u < v), sorted
// lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				es = append(es, Edge{NodeID(u), v})
			}
		}
	}
	return es
}

// Edge is an undirected edge. Constructors normalize so U < V.
type Edge struct {
	U, V NodeID
}

// NewEdge returns the normalized edge with U < V. It panics on self-loops.
func NewEdge(u, v NodeID) Edge {
	if u == v {
		panic(fmt.Sprintf("graph: NewEdge(%d,%d): self-loop", u, v))
	}
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// String renders the edge as "{u,v}".
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.U, e.V) }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]NodeID, len(g.adj)), m: g.m}
	for v, ns := range g.adj {
		c.adj[v] = append([]NodeID(nil), ns...)
	}
	return c
}

// Equal reports whether g and h have identical node sets and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.m != h.m {
		return false
	}
	for v := range g.adj {
		a, b := g.adj[v], h.adj[v]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// Relabel returns a new graph in which node v of g becomes perm[v]. perm
// must be a permutation of 0..n-1; Relabel panics otherwise. Relabeling
// changes the ID order relation protocols observe, which is how the
// experiments construct adversarial ID placements (E6).
func (g *Graph) Relabel(perm []NodeID) *Graph {
	n := g.N()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: Relabel: perm has %d entries for %d nodes", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			panic("graph: Relabel: not a permutation")
		}
		seen[p] = true
	}
	h := New(n)
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				h.AddEdge(perm[u], perm[v])
			}
		}
	}
	return h
}

// String renders a compact description such as "graph(n=4, m=3)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.m)
}

func (g *Graph) check(v NodeID) {
	if v < 0 || int(v) >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.adj)))
	}
}

func containsSorted(s []NodeID, v NodeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
