// Package stats provides the small statistical toolkit the experiment
// harness aggregates results with: summary statistics, percentiles,
// histograms, and least-squares linear fits (used to confirm the O(n)
// round-complexity scaling the paper proves).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Std     float64
	P50, P90, P95 float64
	P99, P100     float64
}

// Summarize computes summary statistics using Welford's online algorithm
// (numerically stable; no sum-of-squares overflow). Inputs must be finite.
// It panics on an empty sample — an experiment that produced no data is a
// harness bug, not a statistic.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mean, m2 := 0.0, 0.0
	for i, x := range s {
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	variance := m2 / float64(len(s))
	if variance < 0 {
		variance = 0 // guard against floating-point cancellation
	}
	return Summary{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: mean,
		Std:  math.Sqrt(variance),
		P50:  Percentile(s, 50),
		P90:  Percentile(s, 90),
		P95:  Percentile(s, 95),
		P99:  Percentile(s, 99),
		P100: s[len(s)-1],
	}
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%g mean=%.2f p50=%g p95=%g max=%g std=%.2f",
		s.N, s.Min, s.Mean, s.P50, s.P95, s.Max, s.Std)
}

// Percentile returns the p-th percentile (0..100) of a *sorted* sample
// using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ints converts an int sample for the float64-based helpers.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Histogram buckets a sample into k equal-width bins across [min,max].
type Histogram struct {
	Min, Max, Width float64
	Counts          []int
}

// NewHistogram builds a k-bin histogram. k must be positive; a sample of
// identical values produces a single fully-loaded bin.
func NewHistogram(xs []float64, k int) Histogram {
	if k <= 0 {
		panic("stats: NewHistogram needs k > 0")
	}
	if len(xs) == 0 {
		panic("stats: NewHistogram of empty sample")
	}
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	h := Histogram{Min: mn, Max: mx, Counts: make([]int, k)}
	if mn == mx {
		h.Counts[0] = len(xs)
		h.Width = 0
		return h
	}
	h.Width = (mx - mn) / float64(k)
	for _, x := range xs {
		// Compute by proportion and clamp; protects against rounding at
		// the edges and against huge ranges where the width saturates.
		frac := (x - mn) / (mx - mn)
		bin := int(frac * float64(k))
		if math.IsNaN(frac) || bin < 0 {
			bin = 0
		}
		if bin >= k {
			bin = k - 1 // max value lands in the last bin
		}
		h.Counts[bin]++
	}
	return h
}

// LinearFit is the least-squares line y = Slope*x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine computes the least-squares fit of y on x. It panics unless both
// slices have the same length >= 2.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: FitLine needs two equal-length samples of size >= 2")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: FitLine with constant x")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	// R² = 1 - SSres/SStot.
	meanY := sy / n
	ssTot, ssRes := 0.0, 0.0
	for i := range x {
		pred := slope*x[i] + intercept
		ssTot += (y[i] - meanY) * (y[i] - meanY)
		ssRes += (y[i] - pred) * (y[i] - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// String renders e.g. "y = 0.50x + 1.00 (R²=0.998)".
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.2fx + %.2f (R²=%.3f)", f.Slope, f.Intercept, f.R2)
}

// Mean returns the arithmetic mean; it panics on an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxInt returns the maximum of an int sample; it panics on empty input.
func MaxInt(xs []int) int {
	if len(xs) == 0 {
		panic("stats: MaxInt of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
