package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Mean, 2.5) {
		t.Fatalf("mean = %v", s.Mean)
	}
	wantStd := math.Sqrt(1.25)
	if !almost(s.Std, wantStd) {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
	if !almost(s.P50, 2.5) {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntsConversion(t *testing.T) {
	fs := Ints([]int{1, 2})
	if len(fs) != 2 || fs[0] != 1.0 || fs[1] != 2.0 {
		t.Fatalf("Ints = %v", fs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d = %d, want 2 (%v)", i, c, h.Counts)
		}
	}
	// Constant sample: one loaded bin.
	hc := NewHistogram([]float64{3, 3, 3}, 4)
	if hc.Counts[0] != 3 || hc.Width != 0 {
		t.Fatalf("constant histogram = %+v", hc)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	f := FitLine(x, y)
	if !almost(f.Slope, 2) || !almost(f.Intercept, 1) || !almost(f.R2, 1) {
		t.Fatalf("fit = %+v", f)
	}
	if f.String() != "y = 2.00x + 1.00 (R²=1.000)" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestFitLineConstantY(t *testing.T) {
	f := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !almost(f.Slope, 0) || !almost(f.Intercept, 5) || !almost(f.R2, 1) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestFitLineConstantXPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FitLine([]float64{2, 2}, []float64{1, 3})
}

func TestMeanAndMaxInt(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean")
	}
	if MaxInt([]int{3, 9, 1}) != 9 {
		t.Fatal("MaxInt")
	}
}

// Property: min <= p50 <= p95 <= max and mean within [min,max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram bin counts sum to the sample size.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := 1 + int(kRaw%16)
		h := NewHistogram(xs, k)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
