package cli

import (
	"math/rand"
	"strings"
	"testing"

	"selfstab/internal/graph"
)

func TestBuildTopologyAllNames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range TopologyNames {
		g, err := BuildTopology(name, 12, 0.2, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() < 12 {
			t.Fatalf("%s: n = %d", name, g.N())
		}
		if err := graph.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := BuildTopology("moebius", 10, 0, rng); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := BuildTopology("cycle", 2, 0, rng); err == nil {
		t.Fatal("tiny cycle accepted")
	}
}

func TestDefaultLimit(t *testing.T) {
	if DefaultLimit("smm", 10) != 14 {
		t.Fatal("smm limit")
	}
	if DefaultLimit("tree", 10) != 60 {
		t.Fatal("tree limit")
	}
	if DefaultLimit("hsuhuang", 10) != 500 {
		t.Fatal("hsuhuang limit")
	}
	if DefaultLimit("refined-hh", 10) != 5000 {
		t.Fatal("fallback limit")
	}
}

func TestRunTrialAllProtocolsLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := BuildTopology("gnp", 16, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range ProtocolNames {
		out, err := RunTrial(g, TrialOptions{Protocol: proto, Executor: "lockstep", Seed: 1}, rng)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		// The arbitrary-proposal variants may legitimately diverge when
		// run synchronously — that is the paper's counterexample.
		divergent := proto == "smm-arbitrary" || proto == "hsuhuang"
		if !divergent && !strings.Contains(out, "stable in") {
			t.Fatalf("%s: unexpected summary %q", proto, out)
		}
		if strings.Contains(out, "INVALID") {
			t.Fatalf("%s: invalid result: %q", proto, out)
		}
	}
	if _, err := RunTrial(g, TrialOptions{Protocol: "nope", Executor: "lockstep"}, rng); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunTrialExecutors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := BuildTopology("gnp", 12, 0.25, rng)
	for _, exec := range ExecutorNames {
		for _, proto := range []string{"smm", "smi"} {
			out, err := RunTrial(g, TrialOptions{Protocol: proto, Executor: exec, Seed: 2, Jitter: 0.1}, rng)
			if err != nil {
				t.Fatalf("%s/%s: %v", proto, exec, err)
			}
			if !strings.Contains(out, "stable") {
				t.Fatalf("%s/%s: %q", proto, exec, out)
			}
		}
	}
	if _, err := RunTrial(g, TrialOptions{Protocol: "smm", Executor: "quantum"}, rng); err == nil {
		t.Fatal("unknown executor accepted")
	}
	if _, err := RunTrial(g, TrialOptions{Protocol: "smi", Executor: "quantum"}, rng); err == nil {
		t.Fatal("unknown executor accepted for smi")
	}
}

func TestRunTrialTraceAndViz(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _ := BuildTopology("path", 8, 0, rng)
	var traceOut, vizOut strings.Builder
	_, err := RunTrial(g, TrialOptions{
		Protocol: "smm", Executor: "lockstep", Seed: 1,
		Trace: &traceOut, Viz: &vizOut,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(traceOut.String(), "round,moves,") {
		t.Fatalf("trace CSV header missing: %q", traceOut.String()[:40])
	}
	if !strings.Contains(vizOut.String(), "t=0") {
		t.Fatalf("viz timeline missing: %q", vizOut.String())
	}

	traceOut.Reset()
	vizOut.Reset()
	_, err = RunTrial(g, TrialOptions{
		Protocol: "smi", Executor: "lockstep", Seed: 1,
		Trace: &traceOut, Viz: &vizOut,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(traceOut.String(), "inset") || !strings.Contains(vizOut.String(), "●") {
		t.Fatal("SMI trace/viz missing")
	}
}

func TestRunTrialCounterexampleReportsUnstable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _ := BuildTopology("cycle", 4, 0, rng)
	// The all-null start only arises with seed-dependent probability via
	// Random; force many rounds and accept either outcome, but the
	// summary must parse.
	out, err := RunTrial(g, TrialOptions{Protocol: "smm-arbitrary", Executor: "lockstep", Seed: 1, MaxRounds: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seed 1:") {
		t.Fatalf("summary %q", out)
	}
}
