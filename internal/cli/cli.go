// Package cli implements the logic behind the command-line tools so it
// can be tested like any other library code: topology construction from
// name + parameters, protocol trial dispatch across executors, and the
// report lines the tools print.
package cli

import (
	"fmt"
	"io"
	"math/rand"

	"selfstab/internal/beacon"
	"selfstab/internal/core"
	"selfstab/internal/graph"
	"selfstab/internal/protocols"
	"selfstab/internal/runtime"
	"selfstab/internal/sim"
	"selfstab/internal/trace"
	"selfstab/internal/viz"
)

// TopologyNames lists the accepted -topology values.
var TopologyNames = []string{"path", "cycle", "complete", "star", "grid", "tree", "gnp", "disk", "lollipop", "barbell"}

// BuildTopology constructs the named topology on n nodes. p is the edge
// probability for gnp, the radius hint for disk, and ignored elsewhere.
func BuildTopology(name string, n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	switch name {
	case "path":
		return graph.Path(n), nil
	case "cycle":
		if n < 3 {
			return nil, fmt.Errorf("cli: cycle needs n >= 3")
		}
		return graph.Cycle(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "star":
		return graph.Star(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	case "gnp":
		return graph.RandomConnected(n, p, rng), nil
	case "disk":
		g, _ := graph.RandomUnitDisk(n, p, rng)
		return g, nil
	case "lollipop":
		k := n / 2
		if k < 2 {
			k = 2
		}
		return graph.Lollipop(k, n-k), nil
	case "barbell":
		k := n / 2
		if k < 2 {
			k = 2
		}
		return graph.Barbell(k, n-2*k), nil
	}
	return nil, fmt.Errorf("cli: unknown topology %q", name)
}

// ProtocolNames lists the accepted -protocol values.
var ProtocolNames = []string{"smm", "smi", "smm-arbitrary", "hsuhuang", "refined-hh", "coloring", "randmis", "tree", "clustering"}

// ExecutorNames lists the accepted -executor values.
var ExecutorNames = []string{"lockstep", "beacon", "runtime", "stale"}

// TrialOptions configures one RunTrial call.
type TrialOptions struct {
	Protocol  string
	Executor  string
	Seed      int64
	MaxRounds int // 0 = protocol-derived default
	Jitter    float64
	Loss      float64
	Trace     io.Writer // per-round CSV for smm/smi on lockstep (nil = off)
	Viz       io.Writer // ASCII timeline for smm/smi on lockstep (nil = off)
	MaxLag    int       // staleness bound (executor=stale)
}

// DefaultLimit returns the round limit used when MaxRounds is zero.
func DefaultLimit(protocol string, n int) int {
	switch protocol {
	case "smm", "smi", "coloring", "clustering":
		return n + 4
	case "tree":
		return 5*n + 10
	case "smm-arbitrary", "hsuhuang":
		return 50 * n
	default:
		return 500 * n
	}
}

// RunTrial executes one protocol trial and returns the one-line summary
// the CLI prints. The graph is never mutated.
func RunTrial(g *graph.Graph, opt TrialOptions, rng *rand.Rand) (string, error) {
	limit := opt.MaxRounds
	if limit == 0 {
		limit = DefaultLimit(opt.Protocol, g.N())
	}
	switch opt.Protocol {
	case "smm", "smm-arbitrary", "hsuhuang":
		return runPointerTrial(g, opt, limit, rng)
	case "smi":
		return runSMITrial(g, opt, limit, rng)
	case "refined-hh":
		ref := protocols.Refine[core.Pointer](protocols.NewHsuHuang(), g.N(), opt.Seed)
		cfg := core.NewConfig[protocols.RefState[core.Pointer]](g)
		cfg.Randomize(ref, rand.New(rand.NewSource(opt.Seed)))
		l := sim.NewLockstep[protocols.RefState[core.Pointer]](ref, cfg)
		return fmt.Sprintf("seed %d: %v", opt.Seed, l.Run(limit)), nil
	case "coloring":
		p := protocols.NewColoring()
		cfg := core.NewConfig[int](g)
		cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed)))
		l := sim.NewLockstep[int](p, cfg)
		res := l.Run(limit)
		return fmt.Sprintf("seed %d: %v, colors<=%d", opt.Seed, res, maxColor(cfg.States)+1), nil
	case "randmis":
		p := protocols.NewRandMIS(g.N(), opt.Seed)
		cfg := core.NewConfig[bool](g)
		cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed)))
		l := sim.NewLockstep[bool](p, cfg)
		res := l.Run(limit)
		return fmt.Sprintf("seed %d: %v, |S|=%d", opt.Seed, res, len(core.SetOf(cfg))), nil
	case "tree":
		p := protocols.NewSpanningTree(g.N())
		cfg := core.NewConfig[protocols.TreeState](g)
		cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed)))
		l := sim.NewLockstep[protocols.TreeState](p, cfg)
		res := l.Run(limit)
		suffix := ""
		if err := protocols.VerifyTree(g, cfg.States); err != nil {
			suffix = fmt.Sprintf(" INVALID: %v", err)
		}
		return fmt.Sprintf("seed %d: %v%s", opt.Seed, res, suffix), nil
	case "clustering":
		p := protocols.NewClustering()
		cfg := core.NewConfig[protocols.LayerState[bool, core.Pointer]](g)
		cfg.Randomize(p, rand.New(rand.NewSource(opt.Seed)))
		l := sim.NewLockstep[protocols.LayerState[bool, core.Pointer]](p, cfg)
		res := l.Run(limit)
		heads := 0
		for _, st := range cfg.States {
			if st.A {
				heads++
			}
		}
		suffix := ""
		if err := protocols.VerifyClustering(g, cfg.States); err != nil {
			suffix = fmt.Sprintf(" INVALID: %v", err)
		}
		return fmt.Sprintf("seed %d: %v, heads=%d%s", opt.Seed, res, heads, suffix), nil
	}
	return "", fmt.Errorf("cli: unknown protocol %q", opt.Protocol)
}

func maxColor(colors []int) int {
	m := 0
	for _, c := range colors {
		if c > m {
			m = c
		}
	}
	return m
}

func pointerProtocol(name string) core.Protocol[core.Pointer] {
	switch name {
	case "smm":
		return core.NewSMM()
	case "smm-arbitrary":
		return core.NewSMMArbitrary()
	case "hsuhuang":
		return protocols.NewHsuHuang()
	}
	return nil
}

func randomStates[S comparable](p core.Protocol[S], g *graph.Graph, seed int64) []S {
	srng := rand.New(rand.NewSource(seed))
	states := make([]S, g.N())
	for v := range states {
		states[v] = p.Random(graph.NodeID(v), g.Neighbors(graph.NodeID(v)), srng)
	}
	return states
}

func runPointerTrial(g *graph.Graph, opt TrialOptions, limit int, rng *rand.Rand) (string, error) {
	p := pointerProtocol(opt.Protocol)
	states := randomStates[core.Pointer](p, g, opt.Seed)
	switch opt.Executor {
	case "lockstep":
		cfg := core.Config[core.Pointer]{G: g, States: states}
		l := sim.NewLockstep[core.Pointer](p, cfg)
		var tr *trace.Trace
		if opt.Trace != nil {
			tr = trace.New(p.Name(), trace.SMMColumns...)
			if err := trace.RecordSMM(tr, 0, 0, cfg); err != nil {
				return "", err
			}
		}
		var tl *viz.Timeline
		if opt.Viz != nil {
			tl = viz.NewTimeline(p.Name() + " timeline")
			tl.Add(viz.SMMLine(cfg))
		}
		res := l.RunHook(limit, func(round int, c core.Config[core.Pointer]) {
			if tr != nil {
				_ = trace.RecordSMM(tr, round, 0, c)
			}
			if tl != nil {
				tl.Add(viz.SMMLine(c))
			}
		})
		if tr != nil {
			if err := tr.WriteCSV(opt.Trace); err != nil {
				return "", err
			}
		}
		if tl != nil {
			if _, err := io.WriteString(opt.Viz, tl.String()); err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("seed %d: %v, matching %d, %v", opt.Seed, res,
			len(core.MatchingOf(cfg)), core.CensusOf(core.ClassifySMM(cfg))), nil
	case "beacon":
		prm := beacon.DefaultParams()
		prm.Jitter = opt.Jitter
		prm.Loss = opt.Loss
		net := beacon.NewNetwork[core.Pointer](p, g.Clone(), states, prm, rng)
		res := net.Run(float64(4*limit), 6)
		return fmt.Sprintf("seed %d: %v, matching %d", opt.Seed, res,
			len(core.MatchingOf(net.Config()))), nil
	case "runtime":
		net := runtime.New[core.Pointer](p, g.Clone(), states)
		defer net.Close()
		rounds, moves, stable := net.Run(limit)
		return fmt.Sprintf("seed %d: rounds=%d moves=%d stable=%v, matching %d",
			opt.Seed, rounds, moves, stable, len(core.MatchingOf(net.Config()))), nil
	case "stale":
		cfg := core.Config[core.Pointer]{G: g, States: states}
		l := sim.NewStaleLockstep[core.Pointer](p, cfg, opt.MaxLag, rng)
		res := l.Run(50 * (opt.MaxLag + 1) * limit)
		return fmt.Sprintf("seed %d (lag %d): %v, matching %d",
			opt.Seed, opt.MaxLag, res, len(core.MatchingOf(cfg))), nil
	}
	return "", fmt.Errorf("cli: unknown executor %q", opt.Executor)
}

func runSMITrial(g *graph.Graph, opt TrialOptions, limit int, rng *rand.Rand) (string, error) {
	p := core.NewSMI()
	states := randomStates[bool](p, g, opt.Seed)
	switch opt.Executor {
	case "lockstep":
		cfg := core.Config[bool]{G: g, States: states}
		l := sim.NewLockstep[bool](p, cfg)
		var tr *trace.Trace
		if opt.Trace != nil {
			tr = trace.New(p.Name(), trace.SMIColumns...)
			if err := trace.RecordSMI(tr, 0, 0, cfg); err != nil {
				return "", err
			}
		}
		var tl *viz.Timeline
		if opt.Viz != nil {
			tl = viz.NewTimeline(p.Name() + " timeline")
			tl.Add(viz.SMILine(cfg))
		}
		res := l.RunHook(limit, func(round int, c core.Config[bool]) {
			if tr != nil {
				_ = trace.RecordSMI(tr, round, 0, c)
			}
			if tl != nil {
				tl.Add(viz.SMILine(c))
			}
		})
		if tr != nil {
			if err := tr.WriteCSV(opt.Trace); err != nil {
				return "", err
			}
		}
		if tl != nil {
			if _, err := io.WriteString(opt.Viz, tl.String()); err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("seed %d: %v, |S|=%d", opt.Seed, res, len(core.SetOf(cfg))), nil
	case "beacon":
		prm := beacon.DefaultParams()
		prm.Jitter = opt.Jitter
		prm.Loss = opt.Loss
		net := beacon.NewNetwork[bool](p, g.Clone(), states, prm, rng)
		res := net.Run(float64(4*limit), 6)
		return fmt.Sprintf("seed %d: %v, |S|=%d", opt.Seed, res, len(core.SetOf(net.Config()))), nil
	case "runtime":
		net := runtime.New[bool](p, g.Clone(), states)
		defer net.Close()
		rounds, moves, stable := net.Run(limit)
		return fmt.Sprintf("seed %d: rounds=%d moves=%d stable=%v, |S|=%d",
			opt.Seed, rounds, moves, stable, len(core.SetOf(net.Config()))), nil
	case "stale":
		cfg := core.Config[bool]{G: g, States: states}
		l := sim.NewStaleLockstep[bool](p, cfg, opt.MaxLag, rng)
		res := l.Run(50 * (opt.MaxLag + 1) * limit)
		return fmt.Sprintf("seed %d (lag %d): %v, |S|=%d",
			opt.Seed, opt.MaxLag, res, len(core.SetOf(cfg))), nil
	}
	return "", fmt.Errorf("cli: unknown executor %q", opt.Executor)
}
