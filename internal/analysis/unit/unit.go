// Package unit implements the compilation-unit protocol that `go vet
// -vettool=` speaks, driving the lint framework over one package per
// invocation. It is a standard-library re-implementation of the part of
// golang.org/x/tools/go/analysis/unitchecker this repository needs:
//
//	-V=full    describe the executable (for the build cache)
//	-flags     describe supported flags as JSON
//	foo.cfg    analyze the compilation unit described by a JSON config
//
// The go command hands the tool a config naming the unit's Go files and
// the export-data files of every dependency; types are imported with
// go/importer's gc reader, so no network, module downloads, or source
// re-typechecking of dependencies is needed.
//
// # Cross-package facts
//
// Analyzers may export facts (lint.Fact) about package-level objects or
// whole packages; the go command threads the per-unit fact files
// (PackageVetx in, VetxOutput out) between units in dependency order, so
// a fact exported while analyzing package a is visible when analyzing
// any package that imports a. Dependency units the pattern did not match
// (VetxOnly) are analyzed too — diagnostics discarded, facts kept — but
// only for packages inside this module (FactPrefixes): facts about the
// standard library would cost a full re-typecheck of GOROOT for no
// benefit, since the analyzers carry built-in summaries for it.
//
// # Machine-readable output
//
// With -json (what `go vet -json` passes), diagnostics are printed to
// stdout in the unitchecker JSON shape instead of text on stderr. With
// -sarifdir=DIR, every unit with findings also drops a fragment file
// into DIR; `selfstablint -sarif DIR` merges the fragments into one
// SARIF 2.1.0 report on stdout (see internal/analysis/sarif).
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"selfstab/internal/analysis/lint"
	"selfstab/internal/analysis/sarif"
)

// FactPrefixes lists the import-path prefixes whose dependency units are
// analyzed for facts even when they are not part of the vet pattern
// (VetxOnly). Everything else — in practice the standard library — is
// recorded as fact-free.
var FactPrefixes = []string{"selfstab"}

// Config mirrors the JSON compilation-unit description produced by the
// go command for a vet tool. Field names form the protocol; unknown
// fields are ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it handles the -V/-flags
// handshake, registers analyzer flags, runs the unit named on the
// command line, prints diagnostics (text on stderr, or JSON on stdout
// under -json), and exits (0 clean, 1 diagnostics, 2 protocol or
// type-check failure). `selfstablint -sarif DIR` instead merges the
// SARIF fragments a -sarifdir run produced and prints the report.
func Main(analyzers ...*lint.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("selfstablint: ")

	fs := flag.NewFlagSet("selfstablint", flag.ExitOnError)
	version := fs.String("V", "", "if 'full', print the executable fingerprint and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print the supported flags as JSON and exit (go vet protocol)")
	jsonFlagSet := fs.Bool("json", false, "emit diagnostics as JSON on stdout (go vet -json protocol)")
	sarifDir := fs.String("sarifdir", "", "directory to drop per-unit SARIF fragments into (see -sarif)")
	sarifMerge := fs.String("sarif", "", "merge the SARIF fragments in this directory and print the report to stdout")
	sarifRoot := fs.String("sarifroot", "", "path findings are reported relative to in the merged SARIF (default: current directory)")
	// Legacy vet flag shims, so scripted `go vet` invocations keep working.
	fs.Bool("source", false, "no effect (legacy)")
	fs.Bool("v", false, "no effect (legacy)")
	fs.Bool("all", false, "no effect (legacy)")
	fs.String("tags", "", "no effect (legacy)")
	fs.Int("c", -1, "no effect (accepted for compatibility)")
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if *version == "full" {
		describeExecutable()
		os.Exit(0)
	}
	if *printFlags {
		describeFlags(fs)
		os.Exit(0)
	}
	if *sarifMerge != "" {
		root := *sarifRoot
		if root == "" {
			root, _ = os.Getwd()
		}
		var rules []sarif.Rule
		for _, a := range analyzers {
			rules = append(rules, sarif.Rule{ID: a.Name, Doc: a.Doc})
		}
		report, err := sarif.Merge(*sarifMerge, root, rules)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: invoked by the go command as `go vet -vettool=selfstablint`; got args %q", args)
	}
	diags, fset, importPath, err := RunUnit(args[0], analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if *sarifDir != "" && len(diags) > 0 {
		frag := sarif.Fragment{ImportPath: importPath}
		for _, d := range diags {
			p := fset.Position(d.Pos)
			frag.Findings = append(frag.Findings, sarif.Finding{
				File: p.Filename, Line: p.Line, Col: p.Column,
				Message: d.Message, Analyzer: d.Analyzer,
			})
		}
		if err := sarif.WriteFragment(*sarifDir, frag); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonFlagSet {
		writeJSONDiagnostics(os.Stdout, importPath, fset, diags)
		os.Exit(0) // the go command inspects the JSON, not the exit code
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// Run analyzes the compilation unit described by the config file and
// returns the surviving diagnostics. It is the legacy two-result form of
// RunUnit, kept for tests and scripted callers.
func Run(cfgPath string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, *token.FileSet, error) {
	diags, fset, _, err := RunUnit(cfgPath, analyzers)
	return diags, fset, err
}

// RunUnit analyzes the compilation unit described by the config file,
// reading dependency facts and writing the unit's fact file. Dependency
// units (VetxOnly) inside the module are analyzed with diagnostics
// discarded so their facts exist for dependents; other dependency units
// are recorded as fact-free without analysis.
func RunUnit(cfgPath string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, *token.FileSet, string, error) {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		return nil, nil, "", err
	}
	fset := token.NewFileSet()
	if cfg.VetxOnly && !factsWanted(cfg.ImportPath) {
		return nil, fset, cfg.ImportPath, writeVetx(cfg, nil)
	}

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, fset, cfg.ImportPath, writeVetx(cfg, nil)
			}
			return nil, nil, "", err
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  configImporter(cfg, fset),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, fset, cfg.ImportPath, writeVetx(cfg, nil)
		}
		return nil, nil, "", err
	}

	imported, err := readFacts(cfg)
	if err != nil {
		return nil, nil, "", err
	}
	diags, exported, err := lint.RunWithFacts(fset, files, pkg, info, analyzers, imported)
	if err != nil {
		return nil, nil, "", err
	}
	if cfg.VetxOnly {
		diags = nil // dependency unit: facts only, findings belong to its own vet run
	}
	return diags, fset, cfg.ImportPath, writeVetx(cfg, exported)
}

// factsWanted reports whether dependency units of this import path are
// worth analyzing for facts.
func factsWanted(importPath string) bool {
	for _, p := range FactPrefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// readFacts loads and merges the fact files of every dependency unit the
// go command handed us. A zero-length file is a valid "no facts" marker;
// anything else that fails to decode aborts the run with an error naming
// the file, because silently treating a corrupt file as empty would
// disable cross-package checks without a trace.
func readFacts(cfg *Config) (*lint.FactStore, error) {
	store := lint.NewFactStore()
	// Iterate the import paths in sorted order for deterministic merge
	// (later merges win, so order must be stable).
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		file := cfg.PackageVetx[p]
		data, err := os.ReadFile(file)
		if err != nil {
			if os.IsNotExist(err) {
				continue // dependency vetted by an older tool build: no facts
			}
			return nil, fmt.Errorf("reading facts of %s: %v", p, err)
		}
		dep, err := lint.DecodeFactStore(data)
		if err != nil {
			return nil, fmt.Errorf("facts of %s (%s): %v", p, file, err)
		}
		store.Merge(dep)
	}
	return store, nil
}

// writeVetx records the unit's fact file: the facts the analyzers
// exported (which include re-exported dependency facts), or an empty
// file for fact-free units, which is what the go command expects to
// cache and thread to dependents.
func writeVetx(cfg *Config, facts *lint.FactStore) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := facts.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

// writeJSONDiagnostics prints diagnostics in the unitchecker -json
// shape: an object keyed by package path, then analyzer name.
func writeJSONDiagnostics(w io.Writer, importPath string, fset *token.FileSet, diags []lint.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{importPath: byAnalyzer}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	w.Write(data)
	io.WriteString(w, "\n")
}

// configImporter resolves imports through the unit's ImportMap and reads
// type information from the compiler export data the go command names in
// PackageFile.
func configImporter(cfg *Config, fset *token.FileSet) types.Importer {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	exportReader := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return exportReader.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s has no files", cfg.ImportPath)
	}
	return cfg, nil
}

// describeExecutable prints the -V=full fingerprint the go command uses
// as a cache key: a content hash, so rebuilding the tool with different
// analyzers invalidates cached vet results.
func describeExecutable() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// describeFlags prints the JSON flag inventory `go vet` validates user
// flags against.
func describeFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}
