// Package unit implements the compilation-unit protocol that `go vet
// -vettool=` speaks, driving the lint framework over one package per
// invocation. It is a standard-library re-implementation of the part of
// golang.org/x/tools/go/analysis/unitchecker this repository needs:
//
//	-V=full    describe the executable (for the build cache)
//	-flags     describe supported flags as JSON
//	foo.cfg    analyze the compilation unit described by a JSON config
//
// The go command hands the tool a config naming the unit's Go files and
// the export-data files of every dependency; types are imported with
// go/importer's gc reader, so no network, module downloads, or source
// re-typechecking of dependencies is needed. Our analyzers neither
// produce nor consume cross-package facts, so for dependency units
// (VetxOnly) the driver records an empty fact file and exits without
// analyzing.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"

	"selfstab/internal/analysis/lint"
)

// Config mirrors the JSON compilation-unit description produced by the
// go command for a vet tool. Field names form the protocol; unknown
// fields are ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it handles the -V/-flags
// handshake, registers analyzer flags, runs the unit named on the
// command line, prints diagnostics to stderr, and exits (0 clean, 1
// diagnostics, 2 protocol or type-check failure).
func Main(analyzers ...*lint.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("selfstablint: ")

	fs := flag.NewFlagSet("selfstablint", flag.ExitOnError)
	version := fs.String("V", "", "if 'full', print the executable fingerprint and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print the supported flags as JSON and exit (go vet protocol)")
	// Legacy vet flag shims, so scripted `go vet` invocations keep working.
	fs.Bool("source", false, "no effect (legacy)")
	fs.Bool("v", false, "no effect (legacy)")
	fs.Bool("all", false, "no effect (legacy)")
	fs.String("tags", "", "no effect (legacy)")
	fs.Bool("json", false, "no effect (accepted for compatibility)")
	fs.Int("c", -1, "no effect (accepted for compatibility)")
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if *version == "full" {
		describeExecutable()
		os.Exit(0)
	}
	if *printFlags {
		describeFlags(fs)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: invoked by the go command as `go vet -vettool=selfstablint`; got args %q", args)
	}
	diags, fset, err := Run(args[0], analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// Run analyzes the compilation unit described by the config file and
// returns the surviving diagnostics. Dependency units (VetxOnly) are
// not analyzed: the driver only records the empty fact file the go
// command expects.
func Run(cfgPath string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, *token.FileSet, error) {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	if cfg.VetxOnly {
		return nil, fset, writeVetx(cfg)
	}

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, fset, writeVetx(cfg)
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  configImporter(cfg, fset),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, fset, writeVetx(cfg)
		}
		return nil, nil, err
	}

	diags, err := lint.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, nil, err
	}
	return diags, fset, writeVetx(cfg)
}

// configImporter resolves imports through the unit's ImportMap and reads
// type information from the compiler export data the go command names in
// PackageFile.
func configImporter(cfg *Config, fset *token.FileSet) types.Importer {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	exportReader := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return exportReader.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s has no files", cfg.ImportPath)
	}
	return cfg, nil
}

// writeVetx records the (empty) fact file for this unit. The go command
// caches and threads these files between units; our analyzers are
// fact-free, so the content is an empty byte string.
func writeVetx(cfg *Config) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}

// describeExecutable prints the -V=full fingerprint the go command uses
// as a cache key: a content hash, so rebuilding the tool with different
// analyzers invalidates cached vet results.
func describeExecutable() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// describeFlags prints the JSON flag inventory `go vet` validates user
// flags against.
func describeFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}
