package unit

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"selfstab/internal/analysis/detrand"
	"selfstab/internal/analysis/lint"
)

// TestRunConfig exercises the compilation-unit path end to end: a
// synthetic package with a detrand violation, export data produced by
// the real toolchain, and a config shaped like the go command's.
func TestRunConfig(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	const body = `package p

import "math/rand"

func Draw() int { return rand.Intn(6) }
`
	if err := os.WriteFile(src, []byte(body), 0o666); err != nil {
		t.Fatal(err)
	}

	// Produce export data for math/rand with the installed toolchain.
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "math/rand").Output()
	if err != nil {
		t.Skipf("cannot obtain export data: %v", err)
	}
	exportFile := strings.TrimSpace(string(out))
	if exportFile == "" {
		t.Skip("no export data for math/rand")
	}

	vetx := filepath.Join(dir, "p.vetx")
	cfg := &Config{
		ID:         "p",
		Compiler:   "gc",
		ImportPath: "p",
		GoFiles:    []string{src},
		ImportMap:  map[string]string{"math/rand": "math/rand"},
		PackageFile: map[string]string{
			"math/rand": exportFile,
		},
		VetxOutput: vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	a := detrand.New()
	if err := a.Flags.Set("pkgs", "all"); err != nil {
		t.Fatal(err)
	}
	diags, fset, err := Run(cfgPath, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "rand.Intn") {
		t.Fatalf("diagnostics = %+v, want one global-rand finding", diags)
	}
	if fset.Position(diags[0].Pos).Filename != src {
		t.Fatalf("diagnostic at %v, want %s", fset.Position(diags[0].Pos), src)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx fact file not written: %v", err)
	}
}

// TestVetxOnlyShortCircuits checks dependency units are not analyzed.
func TestVetxOnlyShortCircuits(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	// Would fail type-checking: the shortcut must win.
	if err := os.WriteFile(src, []byte("package p\n\nvar X undefined\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	cfg := &Config{ID: "p", ImportPath: "p", GoFiles: []string{src}, VetxOnly: true, VetxOutput: vetx}
	data, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	diags, _, err := Run(cfgPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %+v, want none for a VetxOnly unit", diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx fact file not written: %v", err)
	}
}
