// Package shardsafe checks the ShardKernel phase discipline that makes
// the 4-phase sharded barrier round race-free and byte-identical to the
// reference scan.
//
// The sharded executor hands each worker a batch of node IDs drawn from
// its own contiguous owned range. Soundness rests on two write rules:
//
//   - CommitBatch may write the protocol state vectors (states, next,
//     moved) only at indices derived from the batch's ids slice, and may
//     read them only at such indices — a commit that peeked at another
//     shard's slot would race with that shard's writes.
//   - MarkBatch must never write post-round state. It reads states/moved
//     at indices derived from the ids slice or from the CSR rows of its
//     topology argument (marking is proven order-independent against
//     post-round state, so cross-shard reads through the CSR are safe),
//     and records dirtiness only through the sanctioned Frontier entry
//     points Add and AddMask on its own full-length frontier, which the
//     absorb phase merges along precomputed spans.
//
// The analyzer identifies CommitBatch/MarkBatch method bodies by name
// and shape, then runs a forward must-analysis over the CFG tracking
// which local values are proven to be owned indices (derived from ids),
// topology indices (derived from the CSR rows), or slices thereof. The
// join is intersection: a value owned on only one path is not owned.
// Any state-vector index not proven, any state write in MarkBatch, any
// unsanctioned Frontier method, and any escape of a state vector or the
// frontier into a call is reported.
package shardsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"selfstab/internal/analysis/cfg"
	"selfstab/internal/analysis/lint"
)

// New returns the shardsafe analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "shardsafe",
		Doc:  "check ShardKernel CommitBatch/MarkBatch write-ownership and phase discipline",
		Run:  run,
	}
}

// Value classification bits. The analysis is a must-analysis: a bit is
// set only when the value provably has that provenance on every path.
const (
	bOwned     uint8 = 1 << iota // index derived from the ids slice
	bTopo                        // index derived from the CSR rows
	bIdsSlice                    // the ids slice or a subslice of it
	bTopoSlice                   // a CSR row slice (Rows32/Rows/Neighbors result)
	bTopoSrc                     // the CSR topology value itself
)

type kernelKind int

const (
	kindCommit kernelKind = iota
	kindMark
)

type kernel struct {
	kind kernelKind
	decl *ast.FuncDecl
	desc string

	ids      *types.Var
	topo     *types.Var            // mark only: the CSR argument
	frontier *types.Var            // mark only
	stateVec map[*types.Var]string // state vectors by param object → display name
}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		if lint.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			k := matchKernel(pass, fd)
			if k == nil {
				continue
			}
			checkKernel(pass, k)
		}
	}
	return nil, nil
}

// matchKernel recognizes a ShardKernel phase method by name and
// signature shape, returning nil for unrelated methods that merely
// share the name.
func matchKernel(pass *lint.Pass, fd *ast.FuncDecl) *kernel {
	var kind kernelKind
	switch fd.Name.Name {
	case "CommitBatch":
		kind = kindCommit
	case "MarkBatch":
		kind = kindMark
	default:
		return nil
	}

	// Flatten parameters to (name, object, type) triples. Blank or
	// anonymous parameters have a nil object but still carry a type.
	type param struct {
		name string
		obj  *types.Var
		typ  types.Type
	}
	var params []param
	for _, field := range fd.Type.Params.List {
		ft := pass.TypesInfo.Types[field.Type].Type
		if len(field.Names) == 0 {
			params = append(params, param{name: "_", typ: ft})
			continue
		}
		for _, name := range field.Names {
			var obj *types.Var
			if name.Name != "_" {
				obj, _ = pass.TypesInfo.Defs[name].(*types.Var)
			}
			params = append(params, param{name: name.Name, obj: obj, typ: ft})
		}
	}

	isNodeIDSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		n, ok := s.Elem().(*types.Named)
		return ok && n.Obj().Name() == "NodeID"
	}
	isSlice := func(t types.Type) bool {
		_, ok := t.Underlying().(*types.Slice)
		return ok
	}
	namedPtr := func(t types.Type, name string) bool {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return false
		}
		n, ok := p.Elem().(*types.Named)
		return ok && n.Obj().Name() == name
	}

	k := &kernel{kind: kind, decl: fd, desc: methodDesc(fd), stateVec: make(map[*types.Var]string)}
	display := func(p param, fallback string) string {
		if p.name != "" && p.name != "_" {
			return p.name
		}
		return fallback
	}
	switch kind {
	case kindCommit:
		// CommitBatch(ids []NodeID, states, next []S, moved []bool) int
		if len(params) != 4 || !isNodeIDSlice(params[0].typ) ||
			!isSlice(params[1].typ) || !isSlice(params[2].typ) || !isSlice(params[3].typ) {
			return nil
		}
		k.ids = params[0].obj
		fallbacks := []string{"", "states", "next", "moved"}
		for i := 1; i <= 3; i++ {
			if params[i].obj != nil {
				k.stateVec[params[i].obj] = display(params[i], fallbacks[i])
			}
		}
	case kindMark:
		// MarkBatch(ids []NodeID, csr *CSR, states []S, moved []bool, f *Frontier)
		if len(params) != 5 || !isNodeIDSlice(params[0].typ) ||
			!namedPtr(params[1].typ, "CSR") ||
			!isSlice(params[2].typ) || !isSlice(params[3].typ) ||
			!namedPtr(params[4].typ, "Frontier") {
			return nil
		}
		k.ids = params[0].obj
		k.topo = params[1].obj
		k.frontier = params[4].obj
		fallbacks := []string{"", "", "states", "moved", ""}
		for i := 2; i <= 3; i++ {
			if params[i].obj != nil {
				k.stateVec[params[i].obj] = display(params[i], fallbacks[i])
			}
		}
	}
	return k
}

// state is the dataflow fact: provenance bits for each tracked local.
// Absence means no proven provenance.
type state map[*types.Var]uint8

func cloneState(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func equalState(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// joinState is intersection: keep only keys present in both, with the
// bitwise AND of their provenance (must-analysis).
func joinState(a, b state) state {
	out := make(state)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if m := va & vb; m != 0 {
				out[k] = m
			}
		}
	}
	return out
}

type checker struct {
	pass *lint.Pass
	k    *kernel
}

// ownProblem adapts the checker to the cfg dataflow interface.
type ownProblem struct{ c *checker }

func (p ownProblem) Init() state           { return state{} }
func (p ownProblem) Join(a, b state) state { return joinState(a, b) }
func (p ownProblem) Equal(a, b state) bool { return equalState(a, b) }
func (p ownProblem) Transfer(b *cfg.Block, in state) state {
	st := cloneState(in)
	for _, n := range b.Nodes {
		p.c.step(n, st, nil)
	}
	return st
}

func checkKernel(pass *lint.Pass, k *kernel) {
	c := &checker{pass: pass, k: k}
	g := cfg.New(k.decl.Body)
	ins := cfg.Solve[state](g, ownProblem{c})

	// Replay each block from its fixpoint IN with diagnostics on.
	for i, b := range g.Blocks {
		st := cloneState(ins[i])
		for _, n := range b.Nodes {
			c.step(n, st, func(pos token.Pos, msg string) {
				pass.Reportf(pos, "%s %s", c.k.desc, msg)
			})
		}
	}
}

type reporter func(pos token.Pos, msg string)

// step applies one CFG node's transfer function, emitting diagnostics
// when report is non-nil.
func (c *checker) step(n ast.Node, st state, report reporter) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.assign(n, st, report)
	case *ast.RangeStmt:
		c.rangeStmt(n, st, report)
	case *ast.IncDecStmt:
		c.checkWrite(n.X, st, report)
		// ++/-- on a tracked plain variable destroys owned/topo
		// provenance only if it was index-valued; an incremented
		// owned index is no longer a proven owned index.
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				delete(st, v)
			}
		}
		c.checkExpr(n.X, st, report)
	case *ast.ExprStmt:
		c.checkExpr(n.X, st, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.checkExpr(r, st, report)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						c.checkExpr(vs.Values[i], st, report)
						c.bind(name, c.class(st, vs.Values[i]), st)
					}
				}
			}
		}
	case ast.Expr:
		// Bare branch condition.
		c.checkExpr(n, st, report)
	case ast.Stmt:
		// Other statements (send, etc.): check embedded expressions.
		ast.Inspect(n, func(x ast.Node) bool {
			if e, ok := x.(ast.Expr); ok {
				c.checkExpr(e, st, report)
				return false
			}
			return true
		})
	}
}

func (c *checker) assign(n *ast.AssignStmt, st state, report reporter) {
	// Check RHS reads first, then LHS writes, then bind.
	for _, r := range n.Rhs {
		c.checkExpr(r, st, report)
	}
	for _, lhs := range n.Lhs {
		c.checkWrite(lhs, st, report)
		// Index/selector parts of the LHS are reads.
		switch l := unparen(lhs).(type) {
		case *ast.IndexExpr:
			c.checkExpr(l.Index, st, report)
		case *ast.StarExpr:
			c.checkExpr(l.X, st, report)
		case *ast.SelectorExpr:
			c.checkExpr(l.X, st, report)
		}
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				c.bind(id, c.class(st, n.Rhs[i]), st)
			}
		}
	} else {
		// Multi-value RHS. A tuple-returning CSR accessor (Rows,
		// Rows32) hands out row slices for every result; anything
		// else clears provenance.
		bits := uint8(0)
		if len(n.Rhs) == 1 {
			if call, ok := unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				if c.class(st, call)&bTopoSlice != 0 {
					bits = bTopoSlice
				}
			}
		}
		for _, lhs := range n.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				c.bind(id, bits, st)
			}
		}
	}
}

// bind records the provenance of a freshly assigned variable.
func (c *checker) bind(id *ast.Ident, bits uint8, st state) {
	if id.Name == "_" {
		return
	}
	v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	if bits == 0 {
		delete(st, v)
		return
	}
	st[v] = bits
}

func (c *checker) rangeStmt(n *ast.RangeStmt, st state, report reporter) {
	over := c.class(st, n.X)
	if v := c.stateVecOf(n.X); v != "" {
		if report != nil {
			report(n.X.Pos(), fmt.Sprintf("iterates over the whole state vector %s instead of the shard's ids", v))
		}
	}
	c.checkExpr(n.X, st, report)
	bindIdent := func(e ast.Expr, bits uint8) {
		if e == nil {
			return
		}
		if id, ok := unparen(e).(*ast.Ident); ok {
			c.bind(id, bits, st)
		}
	}
	switch {
	case over&bIdsSlice != 0:
		bindIdent(n.Key, 0)
		bindIdent(n.Value, bOwned)
	case over&bTopoSlice != 0:
		bindIdent(n.Key, 0)
		bindIdent(n.Value, bTopo)
	default:
		bindIdent(n.Key, 0)
		bindIdent(n.Value, 0)
	}
}

// class computes the provenance bits of an expression under st.
func (c *checker) class(st state, e ast.Expr) uint8 {
	info := c.pass.TypesInfo
	switch e := unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.ObjectOf(e).(*types.Var)
		if !ok {
			return 0
		}
		switch v {
		case c.k.ids:
			return bIdsSlice
		case c.k.topo:
			return bTopoSrc
		}
		return st[v]
	case *ast.IndexExpr:
		base := c.class(st, e.X)
		if base&bIdsSlice != 0 {
			return bOwned
		}
		if base&bTopoSlice != 0 {
			return bTopo
		}
		return 0
	case *ast.SliceExpr:
		// Subslicing preserves slice provenance.
		return c.class(st, e.X) & (bIdsSlice | bTopoSlice)
	case *ast.CallExpr:
		// Conversions preserve provenance: int(id) is still owned.
		if tv, ok := info.Types[unparen(e.Fun)]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.class(st, e.Args[0]) & (bOwned | bTopo)
		}
		// Method calls on the topology yield row slices: csr.Rows32()
		// and friends. Any accessor rooted at the CSR is sanctioned as
		// a topology source.
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
			if c.class(st, sel.X)&(bTopoSrc|bTopoSlice) != 0 {
				return bTopoSlice
			}
		}
		return 0
	case *ast.BinaryExpr:
		// Arithmetic on proven indices (id+1, offset math) is not a
		// proven index; only direct derivation counts. But combining
		// two values both proven the same way keeps slice bits off
		// anyway, so return 0.
		return 0
	case *ast.StarExpr:
		return c.class(st, e.X)
	}
	return 0
}

// stateVecOf returns the display name if e is (a subslice of) a state
// vector parameter, else "".
func (c *checker) stateVecOf(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			if name, ok := c.k.stateVec[v]; ok {
				return name
			}
		}
	case *ast.SliceExpr:
		return c.stateVecOf(e.X)
	}
	return ""
}

// isFrontier reports whether e is the frontier parameter.
func (c *checker) isFrontier(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	return ok && c.k.frontier != nil && v == c.k.frontier
}

// checkWrite enforces the write rules on one assignment target.
func (c *checker) checkWrite(lhs ast.Expr, st state, report reporter) {
	if report == nil {
		return
	}
	e := unparen(lhs)
	// Peel selectors and derefs to find an index into a state vector.
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = unparen(x.X)
			continue
		case *ast.SelectorExpr:
			e = unparen(x.X)
			continue
		}
		break
	}
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return
	}
	name := c.stateVecOf(idx.X)
	if name == "" {
		return
	}
	if c.k.kind == kindMark {
		report(lhs.Pos(), fmt.Sprintf("writes post-round state %s in the mark phase; marks must be side-effect-free except for the frontier", name))
		return
	}
	if c.class(st, idx.Index)&bOwned == 0 {
		report(lhs.Pos(), fmt.Sprintf("writes %s at an index not derived from the shard's ids; commits may touch only owned slots", name))
	}
}

// checkExpr enforces the read and escape rules inside one expression.
func (c *checker) checkExpr(e ast.Expr, st state, report reporter) {
	if report == nil || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			name := c.stateVecOf(n.X)
			if name == "" {
				return true
			}
			bits := c.class(st, n.Index)
			if c.k.kind == kindCommit {
				if bits&bOwned == 0 {
					report(n.Pos(), fmt.Sprintf("reads %s at an index not derived from the shard's ids", name))
				}
			} else {
				if bits&(bOwned|bTopo) == 0 {
					report(n.Pos(), fmt.Sprintf("reads %s at an index derived from neither the shard's ids nor the CSR rows", name))
				}
			}
			return true
		case *ast.CallExpr:
			c.checkCall(n, st, report)
			// Still descend to catch nested index reads inside args.
			return true
		}
		return true
	})
}

// checkCall enforces the frontier sanction list and the no-escape rule
// for state vectors and the frontier.
func (c *checker) checkCall(call *ast.CallExpr, st state, report reporter) {
	info := c.pass.TypesInfo
	fun := unparen(call.Fun)

	// Frontier method calls.
	if sel, ok := fun.(*ast.SelectorExpr); ok && c.isFrontier(sel.X) {
		switch sel.Sel.Name {
		case "Add":
			if len(call.Args) == 1 && c.class(st, call.Args[0])&(bOwned|bTopo) == 0 {
				report(call.Args[0].Pos(), "calls Frontier.Add with an index derived from neither the shard's ids nor the CSR rows")
			}
		case "AddMask":
			if len(call.Args) >= 1 && c.class(st, call.Args[0])&(bOwned|bTopo) == 0 {
				report(call.Args[0].Pos(), "calls Frontier.AddMask with an index derived from neither the shard's ids nor the CSR rows")
			}
		default:
			report(call.Pos(), fmt.Sprintf("calls Frontier.%s in the mark phase; only Add and AddMask are sanctioned", sel.Sel.Name))
		}
		return
	}

	// len/cap on state vectors is harmless.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "len" || b.Name() == "cap" {
				return
			}
		}
	}

	// Escapes: a state vector or the frontier passed to any other call
	// leaves the analyzer's view of the phase discipline.
	for _, arg := range call.Args {
		if name := c.stateVecOf(arg); name != "" {
			report(arg.Pos(), fmt.Sprintf("passes the state vector %s to a call, escaping the shard's write-ownership discipline", name))
		}
		if c.isFrontier(arg) {
			report(arg.Pos(), "passes the frontier to a call; dirtiness must flow through Frontier.Add/AddMask only")
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// methodDesc renders "(T).M" for diagnostics.
func methodDesc(d *ast.FuncDecl) string {
	name := "?"
	if len(d.Recv.List) > 0 {
		t := d.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		switch t := t.(type) {
		case *ast.Ident:
			name = t.Name
		case *ast.IndexExpr:
			if id, ok := t.X.(*ast.Ident); ok {
				name = id.Name
			}
		case *ast.IndexListExpr:
			if id, ok := t.X.(*ast.Ident); ok {
				name = id.Name
			}
		}
	}
	return "(" + name + ")." + d.Name.Name
}
