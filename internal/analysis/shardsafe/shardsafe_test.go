package shardsafe_test

import (
	"path/filepath"
	"testing"

	"selfstab/internal/analysis/linttest"
	"selfstab/internal/analysis/shardsafe"
)

func TestShardsafe(t *testing.T) {
	linttest.Run(t, "testdata/src/a", shardsafe.New())
}

// TestShardsafeAcceptsRepoKernels is the regression pin: the SMM/SMI
// CommitBatch/MarkBatch implementations the sharded executor actually
// runs must satisfy the ownership discipline with zero diagnostics. A
// new diagnostic here means either a kernel gained a real cross-shard
// access or the analyzer gained a false positive; both need a human
// before the pin moves.
func TestShardsafeAcceptsRepoKernels(t *testing.T) {
	resolve := linttest.ModuleResolver("selfstab", filepath.Join("..", "..", ".."))
	linttest.RunPackages(t, resolve,
		[]string{
			"selfstab/internal/core",
			"selfstab/internal/sim",
		},
		shardsafe.New())
}
