// Fixture for the shardsafe analyzer: well-disciplined shard kernels
// that must stay diagnostic-free, plus one violation per rule.
package a

// Local mirrors of the graph-layer types the matcher recognizes by
// name and shape.

type NodeID int32

type CSR struct {
	offs []int32
	nbrs []int32
}

func (c *CSR) Rows32() ([]int32, []int32) { return c.offs, c.nbrs }

type Frontier struct{ dirty []byte }

func (f *Frontier) Add(v int)             { f.dirty[v] = 1 }
func (f *Frontier) AddMask(v int, m byte) { f.dirty[v] |= m }
func (f *Frontier) Reset()                { clear(f.dirty) }

// ---------------------------------------------------------------------
// Good kernels: the real SMM/SMI shapes, zero diagnostics.

type Good struct{}

func (Good) CommitBatch(ids []NodeID, states, next []int32, moved []bool) int {
	n := 0
	for _, id := range ids {
		if moved[id] {
			states[id] = next[id]
			n++
		}
	}
	return n
}

func (Good) MarkBatch(ids []NodeID, csr *CSR, states []int32, moved []bool, f *Frontier) {
	offs, nbrs := csr.Rows32()
	for _, id := range ids {
		if !moved[id] {
			continue
		}
		f.Add(int(id))
		row := nbrs[offs[id]:offs[id+1]]
		for _, w := range row {
			if states[w] == states[id] {
				f.AddMask(int(w), 1)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Bad kernels: one per rule.

type BadCommit struct{}

// CommitBatch touching slot 0 unconditionally races with the shard
// that owns node 0.
func (BadCommit) CommitBatch(ids []NodeID, states, next []int32, moved []bool) int {
	states[0] = next[0] // want `writes states at an index not derived from the shard's ids` `reads next at an index not derived from the shard's ids`
	n := 0
	for i := range states { // want `iterates over the whole state vector states instead of the shard's ids`
		states[i] = next[i] // want `writes states at an index not derived from the shard's ids` `reads next at an index not derived from the shard's ids`
		n++
	}
	return n
}

type BadMarkWrite struct{}

// MarkBatch writing post-round state breaks order-independence.
func (BadMarkWrite) MarkBatch(ids []NodeID, csr *CSR, states []int32, moved []bool, f *Frontier) {
	for _, id := range ids {
		states[id] = 0 // want `writes post-round state states in the mark phase`
		f.Add(int(id))
	}
}

type BadMarkFrontier struct{}

// Only Add/AddMask may touch the frontier; Reset would erase other
// batches' marks, and unproven indices may cross shard ranges.
func (BadMarkFrontier) MarkBatch(ids []NodeID, csr *CSR, states []int32, moved []bool, f *Frontier) {
	f.Reset() // want `calls Frontier.Reset in the mark phase; only Add and AddMask are sanctioned`
	for i := 0; i < len(ids); i++ {
		f.Add(i) // want `calls Frontier.Add with an index derived from neither the shard's ids nor the CSR rows`
	}
}

type BadMarkRead struct{}

// Reading state at a loop counter is not proven: i indexes the batch,
// not the node space.
func (BadMarkRead) MarkBatch(ids []NodeID, csr *CSR, states []int32, moved []bool, f *Frontier) {
	for i := 0; i < len(states); i++ {
		if moved[i] { // want `reads moved at an index derived from neither the shard's ids nor the CSR rows`
			f.Add(int(ids[0]))
		}
	}
}

type BadEscape struct{}

func consume(xs []int32)   {}
func consumeF(f *Frontier) {}

// Handing the state vector or the frontier to a helper escapes the
// discipline the analyzer can see.
func (BadEscape) MarkBatch(ids []NodeID, csr *CSR, states []int32, moved []bool, f *Frontier) {
	consume(states) // want `passes the state vector states to a call, escaping the shard's write-ownership discipline`
	consumeF(f)     // want `passes the frontier to a call; dirtiness must flow through Frontier.Add/AddMask only`
}

// ---------------------------------------------------------------------
// Negative shape: a CommitBatch with a different signature is not a
// shard kernel and must be ignored.

type Unrelated struct{}

func (Unrelated) CommitBatch(names []string) int {
	names[0] = "x"
	return 0
}

// Suppression must silence a finding like any other analyzer's.

type Suppressed struct{}

func (Suppressed) MarkBatch(ids []NodeID, csr *CSR, states []int32, moved []bool, f *Frontier) {
	//lint:ignore shardsafe scratch index proven owned by construction elsewhere
	f.Add(len(ids) - 1)
}
