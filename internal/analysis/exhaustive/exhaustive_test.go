package exhaustive_test

import (
	"testing"

	"selfstab/internal/analysis/exhaustive"
	"selfstab/internal/analysis/linttest"
)

func TestExhaustive(t *testing.T) {
	linttest.Run(t, "testdata/src/a", exhaustive.New())
}
