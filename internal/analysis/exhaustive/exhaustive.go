// Package exhaustive defines an analyzer requiring switches over
// enum-like types to cover every member or to opt out explicitly. The
// repository leans on small closed enumerations — the six-way SMM node
// classification (paper Proposition 2), faults.Kind, the trace metric
// kinds — and a switch that silently ignores a member is exactly how a
// new fault kind or node class slips past the protocol logic unnoticed:
// Go compiles it without complaint and the default behavior (nothing)
// looks like a decision.
//
// An enum-like type is a defined (named, non-alias) type with a basic
// underlying type that has at least two package-level constants of
// exactly that type declared in its package. Sentinel constants used
// for array sizing or iteration bounds (numSMMTypes) are excluded by a
// configurable name pattern. Membership is read from the defining
// package's scope, which works across package boundaries through export
// data — no facts needed.
//
// A switch over such a type must either list every member (matching is
// by constant value, so renamed aliases count) or carry a default
// clause that visibly means something: a default with statements, or an
// empty default with a comment explaining the waiver. A bare empty
// default is reported — it reads as "handled elsewhere" while handling
// nothing.
package exhaustive

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"selfstab/internal/analysis/lint"
)

// New returns the exhaustive analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "exhaustive",
		Doc: "switches over enum-like constant sets must cover every member\n\n" +
			"A switch whose tag is a defined basic type with >=2 package-level\n" +
			"constants must list every constant value, or carry a default that\n" +
			"either does work or is commented with the reason the gap is safe.",
	}
	ignore := a.Flags.String("ignore", `^(num|Num)`,
		"regexp of sentinel constant names excluded from enum membership")
	maxMembers := a.Flags.Int("maxmembers", 24,
		"largest constant set treated as an enum (beyond it, token.Token-style\n"+
			"vocabularies, exhaustiveness is not a meaningful contract)")
	a.Run = func(pass *lint.Pass) (any, error) {
		re, err := regexp.Compile(*ignore)
		if err != nil {
			return nil, fmt.Errorf("bad -exhaustive.ignore pattern: %v", err)
		}
		run(pass, re, *maxMembers)
		return nil, nil
	}
	return a
}

func run(pass *lint.Pass, ignore *regexp.Regexp, maxMembers int) {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, file, sw, ignore, maxMembers)
			return true
		})
	}
}

// member is one enum constant: its canonical name and value key.
type member struct {
	name string
	key  string
}

func checkSwitch(pass *lint.Pass, file *ast.File, sw *ast.SwitchStmt, ignore *regexp.Regexp, maxMembers int) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	if _, ok := named.Underlying().(*types.Basic); !ok {
		return
	}
	if b := named.Underlying().(*types.Basic); b.Kind() == types.Bool || b.Kind() == types.UntypedBool {
		return // two-member bools are if/else in switch clothing
	}
	members := enumMembers(named, ignore)
	if len(members) < 2 || len(members) > maxMembers {
		return
	}

	covered := map[string]bool{}
	hasDefault := false
	sanctioned := false
	for i, clause := range sw.Body.List {
		c, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
			// A default sanctions the gap when it visibly does or says
			// something: statements, or a comment anywhere in the
			// clause's extent (which runs to the next clause or the end
			// of the switch — an empty clause's own End is just past the
			// colon, before any comment under it).
			end := sw.Body.End()
			if i+1 < len(sw.Body.List) {
				end = sw.Body.List[i+1].Pos()
			}
			sanctioned = len(c.Body) > 0 || hasCommentIn(file, c.Pos(), end)
			continue
		}
		for _, e := range c.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage is not decidable
			}
			covered[valueKey(tv.Value)] = true
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.key] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	typeName := named.Obj().Name()
	if named.Obj().Pkg() != pass.Pkg {
		typeName = named.Obj().Pkg().Name() + "." + typeName
	}
	list := strings.Join(missing, ", ")
	switch {
	case !hasDefault:
		pass.Reportf(sw.Switch, "switch over %s misses %s; add the cases or a default with a reason",
			typeName, list)
	case !sanctioned:
		pass.Reportf(sw.Switch, "switch over %s has a bare empty default but misses %s; handle them or comment the default with why the gap is safe",
			typeName, list)
	}
}

// enumMembers collects the package-level constants of exactly the named
// type from its defining package, deduplicated by value (the first name
// in scope order speaks for aliases), excluding sentinels.
func enumMembers(named *types.Named, ignore *regexp.Regexp) []member {
	scope := named.Obj().Pkg().Scope()
	byKey := map[string]string{}
	var order []string
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if ignore.MatchString(name) {
			continue
		}
		key := valueKey(c.Val())
		if _, seen := byKey[key]; !seen {
			byKey[key] = name
			order = append(order, key)
		}
	}
	members := make([]member, 0, len(byKey))
	for _, key := range order {
		members = append(members, member{name: byKey[key], key: key})
	}
	// Present members in value order where values are numeric, so
	// "misses A, B" reads in declaration (iota) order rather than
	// alphabetical.
	sort.SliceStable(members, func(i, j int) bool { return numLess(members[i].key, members[j].key) })
	return members
}

// valueKey canonicalizes a constant value for coverage matching.
func valueKey(v constant.Value) string { return v.ExactString() }

// numLess orders numeric value keys numerically, others lexically.
func numLess(a, b string) bool {
	if len(a) != len(b) && isNum(a) && isNum(b) {
		return len(a) < len(b)
	}
	return a < b
}

func isNum(s string) bool {
	for i := 0; i < len(s); i++ {
		if (s[i] < '0' || s[i] > '9') && !(i == 0 && s[i] == '-') {
			return false
		}
	}
	return len(s) > 0
}

// hasCommentIn reports whether any comment lies within [from, to).
func hasCommentIn(file *ast.File, from, to token.Pos) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= from && cg.End() <= to {
			return true
		}
	}
	return false
}
