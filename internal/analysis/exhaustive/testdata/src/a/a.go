// Fixture for the exhaustive analyzer: switches over enum-like
// constant sets.
package a

// Color is enum-like: a defined basic type with >=2 constants.
type Color uint8

const (
	Red Color = iota
	Green
	Blue
	numColors // sentinel: excluded from membership by -exhaustive.ignore
)

// Crimson aliases Red's value; covering either name covers the member.
const Crimson Color = 0

func complete(c Color) string {
	switch c {
	case Red:
		return "r"
	case Green:
		return "g"
	case Blue:
		return "b"
	}
	return "?"
}

func aliasCovers(c Color) string {
	switch c { // Crimson == Red by value, so the member is covered
	case Crimson:
		return "r"
	case Green, Blue:
		return "gb"
	}
	return "?"
}

func missing(c Color) string {
	switch c { // want `switch over Color misses Blue`
	case Red:
		return "r"
	case Green:
		return "g"
	}
	return "?"
}

func bareDefault(c Color) string {
	switch c { // want `bare empty default but misses Green, Blue`
	case Red:
		return "r"
	default:
	}
	return "?"
}

func defaultWithBody(c Color) string {
	switch c { // default does work: sanctioned
	case Red:
		return "r"
	default:
		return "other"
	}
}

func defaultWithReason(c Color) string {
	switch c {
	case Red:
		return "r"
	default:
		// Green and Blue render identically downstream.
	}
	return "?"
}

// Non-enum tags and undecidable switches stay silent.

func plainInt(n int) string {
	switch n {
	case 0:
		return "zero"
	}
	return "?"
}

func nonConstantCase(c Color, wild Color) string {
	switch c { // a non-constant case may cover anything
	case wild:
		return "w"
	}
	return "?"
}

type Flag bool

func boolSwitch(f Flag) string {
	switch f { // bool-kinded: if/else in disguise, not an enum
	case true:
		return "t"
	}
	return "f"
}

func suppressed(c Color) string {
	//lint:ignore exhaustive demonstration that suppression applies here too
	switch c {
	case Red:
		return "r"
	}
	return "?"
}
