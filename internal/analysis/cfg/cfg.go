// Package cfg builds intraprocedural control-flow graphs from go/ast
// function bodies and solves forward dataflow problems over them. It is
// the dataflow tier under the lint framework: analyzers that need
// flow-sensitive facts — which values may alias the protocol View at a
// program point, which locks are held at an acquisition site — build a
// Graph per function and run a Solver over it, instead of reasoning
// about raw syntax.
//
// The package is a standard-library re-implementation of the slice of
// golang.org/x/tools/go/cfg this repository needs (the module builds
// from a network-free checkout). Each basic block holds the statements
// and control expressions that execute unconditionally together, in
// source order; edges follow Go's control constructs, including labeled
// break/continue, goto, fallthrough, and the no-successor endings
// (return, panic, os.Exit).
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is a basic block: a maximal sequence of statements with a
// single entry and a single exit point. Nodes holds statements plus the
// control expressions evaluated in the block (an if or switch
// condition), in execution order.
type Block struct {
	// Index is the block's position in Graph.Blocks (entry is 0).
	Index int
	// Kind labels the block's origin for debugging ("entry", "if.then",
	// "for.body", ...).
	Kind string
	// Nodes are the statements and control expressions of the block.
	Nodes []ast.Node
	// Succs are the possible successors in execution order.
	Succs []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, entry first. Unreachable blocks are
	// retained (their statements still typecheck and analyzers may want
	// to visit them) but have no predecessors.
	Blocks []*Block
}

// Entry returns the function's entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// String renders the graph compactly, one block per line.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%s ->", b)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// builder threads the construction state: the block under construction
// and the jump targets of enclosing loops, switches, and labels.
type builder struct {
	g       *Graph
	current *Block // nil when the path is terminated (return/panic/jump)

	// breakTarget/continueTarget are the innermost unlabeled targets.
	breakTarget, continueTarget *Block
	// labeled maps label names to their break/continue targets and, for
	// gotos, the label's own block.
	labeledBreak    map[string]*Block
	labeledContinue map[string]*Block
	gotoTarget      map[string]*Block
	// pendingGotos are forward gotos awaiting their label's block.
	pendingGotos map[string][]*Block
	// pendingLabel is the name of the label wrapping the statement being
	// translated, consumed by the loop and switch builders so labeled
	// break/continue resolve.
	pendingLabel string
}

// New builds the control-flow graph of a function body. body may be nil
// (a bodyless declaration), in which case the graph is a single empty
// entry block.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:               &Graph{},
		labeledBreak:    map[string]*Block{},
		labeledContinue: map[string]*Block{},
		gotoTarget:      map[string]*Block{},
		pendingGotos:    map[string][]*Block{},
	}
	b.current = b.newBlock("entry")
	if body != nil {
		b.stmtList(body.List)
	}
	return b.g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add appends a node to the block under construction. Nodes on a
// terminated path are placed in a fresh unreachable block so analyzers
// still see them.
func (b *builder) add(n ast.Node) {
	if b.current == nil {
		b.current = b.newBlock("unreachable")
	}
	b.current.Nodes = append(b.current.Nodes, n)
}

// jump adds an edge from the current block to target and terminates the
// current path.
func (b *builder) jump(target *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, target)
	}
	b.current = nil
}

// branch adds an edge from the current block to target without
// terminating the path (conditional control flow).
func (b *builder) branch(target *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, target)
	}
}

// startBlock terminates the current path into blk and resumes
// construction there.
func (b *builder) startBlock(blk *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, blk)
	}
	b.current = blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.branch(then)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.branch(els)
			b.current = then
			b.stmt(s.Body)
			b.jump(done)
			b.current = els
			b.stmt(s.Else)
			b.startBlock(done)
		} else {
			b.branch(done)
			b.current = then
			b.stmt(s.Body)
			b.startBlock(done)
		}

	case *ast.ForStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		loop := b.newBlock("for.loop")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := loop
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.startBlock(loop)
		if s.Cond != nil {
			b.add(s.Cond)
			b.branch(done)
		}
		b.branch(body)
		b.current = body
		b.withTargets(done, post, lbl, func() { b.stmt(s.Body) })
		b.jump(post)
		if s.Post != nil {
			b.current = post
			b.stmt(s.Post)
			b.jump(loop)
		}
		b.current = done

	case *ast.RangeStmt:
		lbl := b.takeLabel()
		b.add(s.X)
		loop := b.newBlock("range.loop")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.startBlock(loop)
		// The per-iteration key/value assignment happens in the loop
		// head; record the range statement itself so transfer functions
		// see the iteration variables being written.
		b.add(s)
		b.branch(done)
		b.branch(body)
		b.current = body
		b.withTargets(done, loop, lbl, func() { b.stmt(s.Body) })
		b.jump(loop)
		b.current = done

	case *ast.SwitchStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, lbl, func(c *ast.CaseClause) {
			for _, e := range c.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, lbl, func(*ast.CaseClause) {})

	case *ast.SelectStmt:
		done := b.newBlock("select.done")
		head := b.current
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			blk := b.newBlock("select.case")
			if head != nil {
				head.Succs = append(head.Succs, blk)
			}
			b.current = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			old := b.breakTarget
			b.breakTarget = done
			b.stmtList(comm.Body)
			b.breakTarget = old
			b.jump(done)
		}
		b.current = done

	case *ast.LabeledStmt:
		name := s.Label.Name
		blk := b.newBlock("label." + name)
		b.startBlock(blk)
		b.gotoTarget[name] = blk
		for _, from := range b.pendingGotos[name] {
			from.Succs = append(from.Succs, blk)
		}
		delete(b.pendingGotos, name)
		b.pendingLabel = name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			t := b.breakTarget
			if s.Label != nil {
				t = b.labeledBreak[s.Label.Name]
			}
			if t != nil {
				b.jump(t)
			} else {
				b.current = nil
			}
		case token.CONTINUE:
			t := b.continueTarget
			if s.Label != nil {
				t = b.labeledContinue[s.Label.Name]
			}
			if t != nil {
				b.jump(t)
			} else {
				b.current = nil
			}
		case token.GOTO:
			name := s.Label.Name
			if t, ok := b.gotoTarget[name]; ok {
				b.jump(t)
			} else if b.current != nil {
				b.pendingGotos[name] = append(b.pendingGotos[name], b.current)
				b.current = nil
			}
		case token.FALLTHROUGH:
			// switchBody wires the fallthrough edge; nothing to do here.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.current = nil

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.current = nil
		}

	default:
		// Assignments, declarations, sends, go/defer, inc/dec, empty:
		// straight-line.
		b.add(s)
	}
}

// switchBody builds the clauses of an expression or type switch. heads
// receives each clause to record its case expressions in the dispatch
// block.
func (b *builder) switchBody(body *ast.BlockStmt, lbl string, heads func(*ast.CaseClause)) {
	done := b.newBlock("switch.done")
	head := b.current
	var blocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cc := range body.List {
		c := cc.(*ast.CaseClause)
		if c.List == nil {
			hasDefault = true
		}
		heads(c)
		blocks = append(blocks, b.newBlock("switch.case"))
		clauses = append(clauses, c)
	}
	for i, blk := range blocks {
		if head != nil {
			head.Succs = append(head.Succs, blk)
		}
		b.current = blk
		old, oldLB := b.breakTarget, b.labeledBreak[lbl]
		b.breakTarget = done
		if lbl != "" {
			b.labeledBreak[lbl] = done
		}
		b.stmtList(clauses[i].Body)
		b.breakTarget = old
		if lbl != "" {
			if oldLB == nil {
				delete(b.labeledBreak, lbl)
			} else {
				b.labeledBreak[lbl] = oldLB
			}
		}
		if endsInFallthrough(clauses[i].Body) && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(done)
		}
	}
	if head != nil && !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.current = done
}

// withTargets runs f with break/continue targets (and their labeled
// aliases) installed.
func (b *builder) withTargets(brk, cont *Block, lbl string, f func()) {
	oldB, oldC := b.breakTarget, b.continueTarget
	b.breakTarget, b.continueTarget = brk, cont
	var oldLB, oldLC *Block
	if lbl != "" {
		oldLB, oldLC = b.labeledBreak[lbl], b.labeledContinue[lbl]
		b.labeledBreak[lbl], b.labeledContinue[lbl] = brk, cont
	}
	f()
	b.breakTarget, b.continueTarget = oldB, oldC
	if lbl != "" {
		restore(b.labeledBreak, lbl, oldLB)
		restore(b.labeledContinue, lbl, oldLC)
	}
}

func restore(m map[string]*Block, k string, v *Block) {
	if v == nil {
		delete(m, k)
	} else {
		m[k] = v
	}
}

// takeLabel consumes the label pending for the statement being
// translated (set by the LabeledStmt case), so labeled break/continue
// on loops and switches resolve to the right targets.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isTerminalCall reports whether e is a call that never returns: panic,
// os.Exit, log.Fatal*, runtime.Goexit, testing's t.Fatal* are the common
// cases; only the syntactic ones recognizable without type information
// for panic are handled, plus selector names for the rest.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			return true
		}
	}
	return false
}

// endsInFallthrough reports whether a case body's last statement is
// fallthrough.
func endsInFallthrough(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	s := list[len(list)-1]
	for {
		if ls, ok := s.(*ast.LabeledStmt); ok {
			s = ls.Stmt
			continue
		}
		break
	}
	br, ok := s.(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}
