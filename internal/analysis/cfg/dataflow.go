package cfg

// A Problem describes a forward dataflow analysis over a Graph: a join
// semilattice of facts T plus a transfer function. Facts must be treated
// as immutable values by Transfer and Join (return fresh values rather
// than mutating inputs), so the solver can reuse them across blocks.
type Problem[T any] interface {
	// Init is the fact entering the function (the entry block's IN).
	Init() T
	// Join combines facts flowing in over multiple edges. It must be
	// commutative, associative, and monotone for the solver to
	// terminate.
	Join(a, b T) T
	// Equal reports whether two facts are the same, ending iteration.
	Equal(a, b T) bool
	// Transfer pushes a fact through one block, returning the OUT fact.
	Transfer(b *Block, in T) T
}

// Solve runs a forward worklist iteration to a fixpoint and returns the
// IN fact of every block, indexed like Graph.Blocks. Unreachable blocks
// receive Init (analyzers typically still want to inspect their
// statements under the weakest assumption).
func Solve[T any](g *Graph, p Problem[T]) []T {
	n := len(g.Blocks)
	in := make([]T, n)
	out := make([]T, n)
	hasIn := make([]bool, n)  // a real fact has flowed into in[i]
	hasOut := make([]bool, n) // out[i] has been computed at least once
	for i := range in {
		in[i] = p.Init()
	}
	hasIn[0] = true

	// Worklist seeded in index order (blocks are created roughly in
	// reverse-postorder by construction), iterated deterministically.
	work := make([]int, n)
	inWork := make([]bool, n)
	for i := range work {
		work[i] = i
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		blk := g.Blocks[i]
		newOut := p.Transfer(blk, in[i])
		if hasOut[i] && p.Equal(newOut, out[i]) {
			continue
		}
		out[i] = newOut
		hasOut[i] = true
		for _, s := range blk.Succs {
			j := s.Index
			// The first real inflow replaces the placeholder Init fact;
			// later inflows join with what is already there.
			joined := newOut
			if hasIn[j] {
				joined = p.Join(in[j], newOut)
			}
			if !hasIn[j] || !p.Equal(joined, in[j]) {
				in[j] = joined
				hasIn[j] = true
				if !inWork[j] {
					work = append(work, j)
					inWork[j] = true
				}
			}
		}
	}
	return in
}
