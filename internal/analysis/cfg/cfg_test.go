package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src (a complete function declaration) and builds its
// CFG.
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// reachable returns the set of block indices reachable from the entry.
func reachable(g *Graph) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry())
	return seen
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, `func f() { x := 1; y := x; _ = y }`)
	if len(g.Entry().Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3:\n%s", len(g.Entry().Nodes), g)
	}
	if len(g.Entry().Succs) != 0 {
		t.Fatalf("straight-line entry should have no successors:\n%s", g)
	}
}

func TestIfElse(t *testing.T) {
	g := buildFunc(t, `func f(c bool) int {
		if c {
			return 1
		} else {
			return 2
		}
	}`)
	// Entry (cond) branches to then and else; both return, so the done
	// block is unreachable.
	if got := len(g.Entry().Succs); got != 2 {
		t.Fatalf("if entry has %d successors, want 2:\n%s", got, g)
	}
	r := reachable(g)
	for _, b := range g.Blocks {
		if b.Kind == "if.done" && r[b.Index] {
			t.Fatalf("if.done should be unreachable when both arms return:\n%s", g)
		}
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := buildFunc(t, `func f() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}`)
	// The post block must feed back into the loop head.
	var loop, post *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.loop":
			loop = b
		case "for.post":
			post = b
		}
	}
	if loop == nil || post == nil {
		t.Fatalf("missing loop/post blocks:\n%s", g)
	}
	found := false
	for _, s := range post.Succs {
		if s == loop {
			found = true
		}
	}
	if !found {
		t.Fatalf("no back edge from post to loop:\n%s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := buildFunc(t, `func f(xs []int) {
		for _, x := range xs {
			if x == 0 {
				continue
			}
			if x < 0 {
				break
			}
			_ = x
		}
	}`)
	r := reachable(g)
	var done int = -1
	for _, b := range g.Blocks {
		if b.Kind == "range.done" {
			done = b.Index
		}
	}
	if done < 0 || !r[done] {
		t.Fatalf("range.done missing or unreachable:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, `func f(m [][]int) {
	outer:
		for _, row := range m {
			for _, x := range row {
				if x == 0 {
					break outer
				}
			}
		}
		_ = m
	}`)
	// The statement after the loops must be reachable via the labeled
	// break path.
	r := reachable(g)
	var after *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					after = b
				}
			}
		}
	}
	if after == nil || !r[after.Index] {
		t.Fatalf("statement after labeled break unreachable:\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `func f(x int) int {
		r := 0
		switch x {
		case 1:
			r = 1
			fallthrough
		case 2:
			r = 2
		default:
			r = 3
		}
		return r
	}`)
	// Find the case blocks; the first must have the second as its only
	// successor (fallthrough), not switch.done.
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("want 3 case blocks, got %d:\n%s", len(cases), g)
	}
	if len(cases[0].Succs) != 1 || cases[0].Succs[0] != cases[1] {
		t.Fatalf("fallthrough edge missing:\n%s", g)
	}
}

func TestSwitchNoDefaultSkipEdge(t *testing.T) {
	g := buildFunc(t, `func f(x int) {
		switch x {
		case 1:
		}
		_ = x
	}`)
	// Without a default, the dispatch block must be able to skip
	// straight to switch.done.
	entry := g.Entry()
	toDone := false
	for _, s := range entry.Succs {
		if s.Kind == "switch.done" {
			toDone = true
		}
	}
	if !toDone {
		t.Fatalf("missing skip edge for defaultless switch:\n%s", g)
	}
}

func TestPanicTerminates(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
		if !c {
			panic("no")
		}
		_ = c
	}`)
	// The block containing panic must have no successors.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isTerminalCall(es.X) {
				if len(b.Succs) != 0 {
					t.Fatalf("panic block has successors:\n%s", g)
				}
			}
		}
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	top:
		if c {
			goto done
		}
		goto top
	done:
		_ = c
	}`)
	r := reachable(g)
	var doneBlk *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.done" {
			doneBlk = b
		}
	}
	if doneBlk == nil || !r[doneBlk.Index] {
		t.Fatalf("goto target unreachable:\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, `func f(a, b chan int) int {
		select {
		case x := <-a:
			return x
		case b <- 1:
			return 1
		}
	}`)
	if got := len(g.Entry().Succs); got != 2 {
		t.Fatalf("select entry has %d successors, want 2:\n%s", got, g)
	}
}

// TestSolveReachingTaint exercises the forward solver with a tiny taint
// problem: a variable is tainted after `x = src` and cleared by `x = 0`.
type taintProblem struct{}

func (taintProblem) Init() map[string]bool { return map[string]bool{} }
func (taintProblem) Join(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
func (taintProblem) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
func (taintProblem) Transfer(b *Block, in map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range in {
		out[k] = true
	}
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			continue
		}
		if rhs, ok := as.Rhs[0].(*ast.Ident); ok && rhs.Name == "src" {
			out[lhs.Name] = true
		} else {
			delete(out, lhs.Name)
		}
	}
	return out
}

func TestSolveReachingTaint(t *testing.T) {
	g := buildFunc(t, `func f(c bool, src int) {
		x := 0
		if c {
			x = src
		}
		sink(x)
	}`)
	ins := Solve[map[string]bool](g, taintProblem{})
	// The block containing sink(x) must see x possibly tainted (joined
	// over both branches).
	var sinkBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
						sinkBlk = b
					}
				}
			}
		}
	}
	if sinkBlk == nil {
		t.Fatalf("sink call not found:\n%s", g)
	}
	if !ins[sinkBlk.Index]["x"] {
		t.Fatalf("x not tainted at sink; in=%v\n%s", ins[sinkBlk.Index], g)
	}
	// And inside the loop-free graph the entry starts clean.
	if len(ins[0]) != 0 {
		t.Fatalf("entry IN not empty: %v", ins[0])
	}
}

func TestLoopFixpoint(t *testing.T) {
	g := buildFunc(t, `func f(src int) {
		x := 0
		for i := 0; i < 3; i++ {
			sink(x)
			x = src
		}
	}`)
	ins := Solve[map[string]bool](g, taintProblem{})
	// sink(x) on the second iteration sees tainted x: the loop body's IN
	// must include the back-edge contribution.
	var body *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.body" {
			body = b
		}
	}
	if body == nil {
		t.Fatalf("no for.body:\n%s", g)
	}
	if !ins[body.Index]["x"] {
		t.Fatalf("back-edge taint lost; in=%v\n%s", ins[body.Index], g)
	}
}

func TestGraphString(t *testing.T) {
	g := buildFunc(t, `func f() {}`)
	if !strings.Contains(g.String(), "b0(entry)") {
		t.Fatalf("String: %q", g.String())
	}
}
