// Fixture dependency package: exports a //selfstab:journal durability
// function for the cross-package fact round-trip.
package ctxdep

import "os"

type Journal struct{ f *os.File }

//selfstab:journal
func (j *Journal) Append(rec []byte) error {
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	return j.f.Sync()
}
