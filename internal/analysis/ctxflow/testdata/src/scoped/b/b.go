// Out-of-scope fixture: the same violations as package a, with no want
// expectations — the -ctxflow.pkgs scope must keep the analyzer silent
// here.
package b

import (
	"context"
	"os"
)

func wait(ctx context.Context) {
	<-ctx.Done()
}

func bad(ctx context.Context) {
	wait(context.Background())
}

func dropRename(a, b string) {
	os.Rename(a, b)
}
