// Fixture dependent package: the durability obligation arrives as a
// fact from ctxdep.
package ctxapp

import "ctxdep"

func Bad(j *ctxdep.Journal, rec []byte) {
	j.Append(rec) // want `discards the error from Journal.Append`
}

func Good(j *ctxdep.Journal, rec []byte) error {
	return j.Append(rec)
}
