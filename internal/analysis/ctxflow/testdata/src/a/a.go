// Fixture for the ctxflow context-threading and durability-error
// rules.
package a

import (
	"context"
	"os"
	"time"
)

func wait(ctx context.Context) {
	<-ctx.Done()
}

func good(ctx context.Context, d time.Duration) {
	c, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	wait(c)
}

func bad(ctx context.Context) {
	wait(context.Background()) // want `calls context.Background outside main, tests, or a //selfstab:ctx-root function`
}

func todo(ctx context.Context) {
	wait(context.TODO()) // want `calls context.TODO outside main, tests, or a //selfstab:ctx-root function`
}

func laundered(ctx context.Context, d time.Duration) {
	c, cancel := context.WithTimeout(context.Background(), d) // want `calls context.Background outside main, tests, or a //selfstab:ctx-root function`
	defer cancel()
	wait(c) // want `passes a context derived from context.Background/TODO instead of the incoming ctx parameter`
}

func rebound(ctx context.Context, k, v any) {
	ctx = context.WithValue(ctx, k, v)
	wait(ctx)
}

//selfstab:ctx-root
func root(d time.Duration) {
	c, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	wait(c)
}

type saver struct{ f *os.File }

//selfstab:journal
func (s *saver) append(rec []byte) error {
	if _, err := s.f.Write(rec); err != nil {
		return err
	}
	return s.f.Sync()
}

func (s *saver) dropSync() {
	s.f.Sync() // want `discards the error from File.Sync`
}

func (s *saver) blankAppend(rec []byte) {
	_ = s.append(rec) // want `blanks the error from saver.append`
}

func dropRename(a, b string) {
	os.Rename(a, b) // want `discards the error from os.Rename`
}

func okRename(a, b string) error {
	return os.Rename(a, b)
}
