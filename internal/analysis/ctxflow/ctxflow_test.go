package ctxflow_test

import (
	"path/filepath"
	"testing"

	"selfstab/internal/analysis/ctxflow"
	"selfstab/internal/analysis/linttest"
)

func TestCtxflow(t *testing.T) {
	a := ctxflow.New()
	if err := a.Flags.Set("pkgs", "all"); err != nil {
		t.Fatal(err)
	}
	linttest.Run(t, filepath.Join("testdata", "src", "a"), a)
}

// TestCtxflowFacts round-trips the //selfstab:journal durability
// obligation across a package boundary: ctxapp's obligation comes
// entirely from ctxdep's exported fact.
func TestCtxflowFacts(t *testing.T) {
	a := ctxflow.New()
	if err := a.Flags.Set("pkgs", "all"); err != nil {
		t.Fatal(err)
	}
	resolve := linttest.DirResolver(filepath.Join("testdata", "src"))
	linttest.RunPackages(t, resolve, []string{"ctxapp"}, a)
}

// TestCtxflowScope pins the scoping flag: outside the configured
// packages the analyzer is silent.
func TestCtxflowScope(t *testing.T) {
	a := ctxflow.New()
	if err := a.Flags.Set("pkgs", "selfstab/internal/service"); err != nil {
		t.Fatal(err)
	}
	resolve := linttest.DirResolver(filepath.Join("testdata", "src", "scoped"))
	linttest.RunPackages(t, resolve, []string{"b"}, a)
}
