// Package ctxflow enforces the context-propagation and
// durability-error discipline on the service's request paths and round
// loops:
//
//   - C1: context.Background() and context.TODO() are banned inside the
//     scoped packages, except in main functions, tests, and functions
//     annotated //selfstab:ctx-root — the explicit places where a
//     context tree legitimately starts. Everywhere else the caller's
//     ctx must be threaded, or cancellation and drain deadlines
//     silently stop propagating.
//   - C2: inside a function that takes a context.Context parameter, a
//     context value proven (on every path) to derive from
//     Background/TODO rather than the incoming parameter must not be
//     passed to a call — the laundering variant of C1, caught by a
//     forward must-dataflow over the CFG.
//   - C3: the error results of durability primitives — os.Rename,
//     (*os.File).Sync, (*os.File).Truncate, and any function annotated
//     //selfstab:journal — must be consumed. A dropped fsync or append
//     error turns a full disk into silent state divergence after the
//     next crash. C3 applies to the whole scoped package, ctx-roots
//     included.
//
// The scope is set by -ctxflow.pkgs (comma-separated package-path
// prefixes, 'all' for every package) and defaults to the service layer,
// the executors, and the daemon/load-generator mains. //selfstab:journal
// annotations cross package boundaries as a DurabilityFact object fact,
// so dropping an imported journal append's error is caught too.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"selfstab/internal/analysis/cfg"
	"selfstab/internal/analysis/lint"
)

// Directives recognized on function doc comments. DirJournal is shared
// grammar with the walorder analyzer: one annotation feeds both.
const (
	DirCtxRoot = "//selfstab:ctx-root"
	DirJournal = "//selfstab:journal"
)

// defaultPackages scopes the discipline to the packages with request
// paths and round loops: the service layer and executors (blocking
// calls must honor drain deadlines) and the daemon and load-generator
// mains.
const defaultPackages = "selfstab/internal/service,selfstab/internal/sim," +
	"selfstab/cmd/selfstabd,selfstab/cmd/stabload"

// DurabilityFact marks a function annotated //selfstab:journal: its
// error result must be consumed by every caller.
type DurabilityFact struct{}

// AFact marks DurabilityFact as a serializable analysis fact.
func (*DurabilityFact) AFact() {}

// New returns the ctxflow analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "ctxflow",
		Doc: "enforce context threading and durability-error handling on request paths\n\n" +
			"Bans context.Background/TODO outside main/test///selfstab:ctx-root\n" +
			"functions, flags contexts provably not derived from the incoming ctx\n" +
			"parameter, and requires the error results of fsync/rename/journal-append\n" +
			"durability calls to be consumed, inside the packages named by\n" +
			"-ctxflow.pkgs.",
	}
	pkgs := a.Flags.String("pkgs", defaultPackages,
		"comma-separated package-path prefixes the contract applies to ('all' = every package)")
	a.Run = func(pass *lint.Pass) (any, error) {
		run(pass, *pkgs)
		return nil, nil
	}
	return a
}

// Dataflow bits for C2. Must-analysis: a bit is set only when the
// provenance holds on every path.
const (
	bCtx uint8 = 1 << iota // derived from the incoming ctx parameter
	bBad                   // derived from context.Background/TODO
)

type analysis struct {
	pass *lint.Pass

	// journal marks locally annotated durability functions; order
	// preserves declaration order for deterministic fact export.
	journal      map[*types.Func]bool
	journalOrder []*types.Func
}

func run(pass *lint.Pass, pkgs string) {
	if !appliesTo(pass.Pkg.Path(), pkgs) {
		return
	}
	a := &analysis{pass: pass, journal: make(map[*types.Func]bool)}

	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if lint.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func); fn != nil {
					if hasDirective(d.Doc, DirJournal) {
						a.markJournal(fn)
					}
					if d.Body != nil {
						decls = append(decls, d)
					}
				}
			case *ast.GenDecl:
				a.collectInterfaces(d)
			}
		}
	}
	for _, fn := range a.journalOrder {
		pass.ExportObjectFact(fn, &DurabilityFact{})
	}

	for _, d := range decls {
		root := hasDirective(d.Doc, DirCtxRoot) ||
			(pass.Pkg.Name() == "main" && d.Recv == nil && d.Name.Name == "main")
		if !root {
			a.checkBackground(d)
			a.checkThreading(d)
		}
		a.checkDurabilityErrors(d)
	}
}

// --- C1: Background/TODO ban ---

// checkBackground reports every context.Background/TODO call anywhere
// in the declaration, closures included: a closure inherits its
// declaring function's entitlement, not a fresh one.
func (a *analysis) checkBackground(d *ast.FuncDecl) {
	ast.Inspect(d.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := a.backgroundName(call); ok {
			a.pass.Reportf(call.Pos(),
				"calls context.%s outside main, tests, or a %s function; thread the caller's ctx instead",
				name, DirCtxRoot)
		}
		return true
	})
}

// backgroundName reports whether call is context.Background or
// context.TODO, and which.
func (a *analysis) backgroundName(call *ast.CallExpr) (string, bool) {
	fn := a.callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// --- C2: ctx threading dataflow ---

// state maps local variables to provenance bits.
type state map[*types.Var]uint8

func cloneState(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func equalState(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func joinState(a, b state) state {
	out := make(state)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if m := va & vb; m != 0 {
				out[k] = m
			}
		}
	}
	return out
}

type ctxChecker struct {
	a    *analysis
	init state
}

type ctxProblem struct{ c *ctxChecker }

func (p ctxProblem) Init() state           { return cloneState(p.c.init) }
func (p ctxProblem) Join(a, b state) state { return joinState(a, b) }
func (p ctxProblem) Equal(a, b state) bool { return equalState(a, b) }
func (p ctxProblem) Transfer(b *cfg.Block, in state) state {
	st := cloneState(in)
	for _, n := range b.Nodes {
		p.c.step(n, st, false)
	}
	return st
}

// checkThreading runs the C2 must-dataflow over one declaration with a
// context.Context parameter. Closure bodies are skipped: a captured
// context's provenance is not visible to this per-function analysis.
func (a *analysis) checkThreading(d *ast.FuncDecl) {
	init := make(state)
	for _, field := range d.Type.Params.List {
		if t := a.pass.TypesInfo.Types[field.Type].Type; t == nil || !isCtxType(t) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
				init[v] = bCtx
			}
		}
	}
	if len(init) == 0 {
		return
	}
	c := &ctxChecker{a: a, init: init}
	g := cfg.New(d.Body)
	ins := cfg.Solve[state](g, ctxProblem{c})
	for i, b := range g.Blocks {
		st := cloneState(ins[i])
		for _, n := range b.Nodes {
			c.step(n, st, true)
		}
	}
}

// step applies one CFG node: check context-typed call arguments, then
// update bindings.
func (c *ctxChecker) step(n ast.Node, st state, report bool) {
	if report {
		c.checkCalls(n, st)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.assign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						bits := uint8(0)
						if i < len(vs.Values) {
							bits = c.class(st, vs.Values[i])
						}
						c.bind(name, bits, st)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := unparen(n.Key).(*ast.Ident); ok && n.Key != nil {
			c.bind(id, 0, st)
		}
		if id, ok := unparen(n.Value).(*ast.Ident); ok && n.Value != nil {
			c.bind(id, 0, st)
		}
	}
}

func (c *ctxChecker) assign(n *ast.AssignStmt, st state) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				c.bind(id, c.class(st, n.Rhs[i]), st)
			}
		}
		return
	}
	// Multi-value RHS: context.With* constructors return (ctx, cancel);
	// the first result inherits the parent's provenance.
	bits := uint8(0)
	if len(n.Rhs) == 1 {
		if call, ok := unparen(n.Rhs[0]).(*ast.CallExpr); ok && c.a.isCtxDerive(call) {
			if len(call.Args) > 0 {
				bits = c.class(st, call.Args[0])
			}
		}
	}
	for i, lhs := range n.Lhs {
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if i == 0 {
				c.bind(id, bits, st)
			} else {
				c.bind(id, 0, st)
			}
		}
	}
}

func (c *ctxChecker) bind(id *ast.Ident, bits uint8, st state) {
	if id == nil || id.Name == "_" {
		return
	}
	v, ok := c.a.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	if bits == 0 {
		delete(st, v)
		return
	}
	st[v] = bits
}

// class computes the provenance bits of a context-valued expression.
func (c *ctxChecker) class(st state, e ast.Expr) uint8 {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := c.a.pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			return st[v]
		}
	case *ast.CallExpr:
		if _, ok := c.a.backgroundName(e); ok {
			return bBad
		}
		if c.a.isCtxDerive(e) && len(e.Args) > 0 {
			return c.class(st, e.Args[0])
		}
	case *ast.SelectorExpr:
		// A context stored in a struct field is trusted wiring: the
		// field's writer is accountable for its provenance.
		if s, ok := c.a.pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal && isCtxType(s.Obj().Type()) {
			return bCtx
		}
	}
	return 0
}

// checkCalls flags context-typed arguments proven to derive from
// Background/TODO and not from the incoming ctx.
func (c *ctxChecker) checkCalls(n ast.Node, st state) {
	inspectNoLit(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		// Deriving a child context is how threading works; C2 judges the
		// derived value where it is used.
		if fn := c.a.callee(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			return
		}
		for _, arg := range call.Args {
			t := c.a.pass.TypesInfo.Types[arg].Type
			if t == nil || !isCtxType(t) {
				continue
			}
			// A literal Background()/TODO() argument is C1's report.
			if inner, ok := unparen(arg).(*ast.CallExpr); ok {
				if _, isBg := c.a.backgroundName(inner); isBg {
					continue
				}
			}
			cls := c.class(st, arg)
			if cls&bBad != 0 && cls&bCtx == 0 {
				c.a.pass.Reportf(arg.Pos(),
					"passes a context derived from context.Background/TODO instead of the incoming ctx parameter")
			}
		}
	})
}

// isCtxDerive reports whether call is a context.With* constructor.
func (a *analysis) isCtxDerive(call *ast.CallExpr) bool {
	fn := a.callee(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		strings.HasPrefix(fn.Name(), "With")
}

// --- C3: durability errors ---

// checkDurabilityErrors reports discarded error results of durability
// calls anywhere in the declaration, closures included.
func (a *analysis) checkDurabilityErrors(d *ast.FuncDecl) {
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := unparen(n.Rhs[0]).(*ast.CallExpr); ok && a.isDurabilityCall(call) {
					if idx := errResultIndex(a.pass.TypesInfo, call); idx >= 0 && idx < len(n.Lhs) {
						a.checkErrConsumed(d, call, unparen(n.Lhs[idx]))
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := unparen(n.X).(*ast.CallExpr); ok && a.isDurabilityCall(call) {
				if errResultIndex(a.pass.TypesInfo, call) >= 0 {
					a.checkErrConsumed(d, call, nil)
				}
			}
		case *ast.GoStmt:
			if a.isDurabilityCall(n.Call) {
				a.pass.Reportf(n.Call.Pos(),
					"spawns durability call %s with go, discarding its error", a.calleeName(n.Call))
			}
		case *ast.DeferStmt:
			if a.isDurabilityCall(n.Call) {
				a.pass.Reportf(n.Call.Pos(),
					"defers durability call %s, discarding its error", a.calleeName(n.Call))
			}
		}
		return true
	})
}

// checkErrConsumed reports an error result that is dropped, blanked, or
// bound to a variable that is never read again.
func (a *analysis) checkErrConsumed(d *ast.FuncDecl, call *ast.CallExpr, errExpr ast.Expr) {
	name := a.calleeName(call)
	switch e := errExpr.(type) {
	case nil:
		a.pass.Reportf(call.Pos(),
			"discards the error from %s; a dropped durability error corrupts crash recovery", name)
	case *ast.Ident:
		if e.Name == "_" {
			a.pass.Reportf(e.Pos(),
				"blanks the error from %s; a dropped durability error corrupts crash recovery", name)
			return
		}
		obj := a.pass.TypesInfo.ObjectOf(e)
		if obj != nil && !identUsedElsewhere(d.Body, a.pass.TypesInfo, obj, e) {
			a.pass.Reportf(e.Pos(),
				"error from %s is assigned to %s but never checked", name, e.Name)
		}
	}
}

// isDurabilityCall reports whether call invokes a durability primitive:
// os.Rename, (*os.File).Sync/Truncate, or a //selfstab:journal
// function (local or via fact).
func (a *analysis) isDurabilityCall(call *ast.CallExpr) bool {
	fn := a.callee(call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		if fn.Name() == "Rename" {
			return true
		}
		if (fn.Name() == "Sync" || fn.Name() == "Truncate") && recvNamed(fn) == "File" {
			return true
		}
	}
	orig := fn.Origin()
	if a.journal[orig] {
		return true
	}
	if orig.Pkg() != nil && orig.Pkg() != a.pass.Pkg {
		var fact DurabilityFact
		return a.pass.ImportObjectFact(orig, &fact)
	}
	return false
}

// markJournal records a locally annotated durability function, once.
func (a *analysis) markJournal(fn *types.Func) {
	if !a.journal[fn] {
		a.journal[fn] = true
		a.journalOrder = append(a.journalOrder, fn)
	}
}

// collectInterfaces picks up //selfstab:journal on interface methods,
// so calls through the interface carry the obligation too.
func (a *analysis) collectInterfaces(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			continue
		}
		for _, m := range it.Methods.List {
			if len(m.Names) != 1 {
				continue
			}
			if !hasDirective(m.Doc, DirJournal) && !hasDirective(m.Comment, DirJournal) {
				continue
			}
			if fn, ok := a.pass.TypesInfo.Defs[m.Names[0]].(*types.Func); ok {
				a.markJournal(fn)
			}
		}
	}
}

// --- shared helpers ---

func appliesTo(path, pkgs string) bool {
	if pkgs == "all" {
		return true
	}
	for _, p := range strings.Split(pkgs, ",") {
		if p == "" {
			continue
		}
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func hasDirective(cg *ast.CommentGroup, dir string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == dir || strings.HasPrefix(text, dir+" ") {
			return true
		}
	}
	return false
}

// callee resolves the static *types.Func a call invokes, or nil.
func (a *analysis) callee(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := a.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeName renders a call's target for diagnostics.
func (a *analysis) calleeName(call *ast.CallExpr) string {
	fn := a.callee(call)
	if fn == nil {
		return "the call"
	}
	if r := recvNamed(fn); r != "" {
		return r + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// recvNamed returns the named receiver type of a method, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// errResultIndex returns the index of the call's trailing error result,
// or -1 when it has none.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	if isErrorType(tv.Type) {
		return 0
	}
	if tup, ok := tv.Type.(*types.Tuple); ok && tup.Len() > 0 {
		if isErrorType(tup.At(tup.Len() - 1).Type()) {
			return tup.Len() - 1
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// identUsedElsewhere reports whether obj is referenced in body at any
// identifier other than def.
func identUsedElsewhere(body *ast.BlockStmt, info *types.Info, obj types.Object, def *ast.Ident) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if info.ObjectOf(id) == obj {
			used = true
		}
		return true
	})
	return used
}

// inspectNoLit walks n without descending into function literals.
func inspectNoLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil {
			f(x)
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
