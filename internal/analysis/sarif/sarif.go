// Package sarif renders lint diagnostics as SARIF 2.1.0, the static
// analysis interchange format GitHub code scanning ingests, so findings
// from the repository's analyzers annotate pull requests instead of
// living only in CI logs.
//
// The vet-tool driver runs once per compilation unit in separate
// processes, so a single report cannot be written directly: each unit
// with findings writes a small JSON fragment into a shared directory
// (WriteFragment), and a final merge step folds every fragment into one
// SARIF report (Merge). Clean units write nothing — absence from the
// fragment directory is the success case, which also makes the scheme
// immune to `go vet`'s per-package result caching: cached units are
// exactly the ones with no findings.
package sarif

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one diagnostic in driver-neutral form.
type Finding struct {
	// File is the path as the driver saw it (usually absolute).
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message is the diagnostic text.
	Message string `json:"message"`
	// Analyzer names the rule that fired.
	Analyzer string `json:"analyzer"`
}

// A Fragment is the findings of one compilation unit.
type Fragment struct {
	// ImportPath identifies the unit (also keys the fragment file name).
	ImportPath string `json:"importPath"`
	Findings   []Finding `json:"findings"`
}

// WriteFragment stores the unit's findings in dir, creating it if
// needed. The file name is a hash of the import path, so concurrent
// units never collide and re-analysis overwrites rather than duplicates.
func WriteFragment(dir string, frag Fragment) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	data, err := json.MarshalIndent(frag, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%x.json", sha256.Sum256([]byte(frag.ImportPath)))
	return os.WriteFile(filepath.Join(dir, name), data, 0o666)
}

// A Rule describes one analyzer for the report's tool metadata.
type Rule struct {
	ID  string
	Doc string // first line is used as the short description
}

// Report is a SARIF 2.1.0 document (the subset GitHub code scanning
// consumes).
type Report struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

type Tool struct {
	Driver Driver `json:"driver"`
}

type Driver struct {
	Name           string       `json:"name"`
	InformationURI string       `json:"informationUri,omitempty"`
	Rules          []ReportRule `json:"rules"`
}

type ReportRule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

type Message struct {
	Text string `json:"text"`
}

type Result struct {
	RuleID    string     `json:"ruleId"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

type ArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Merge reads every fragment in dir (which may be absent: an absent or
// empty directory is a clean run) and builds one report. File paths are
// rewritten relative to root so the report is portable; findings are
// sorted by file, line, column, and analyzer for byte-identical reports
// across runs.
func Merge(dir, root string, rules []Rule) (*Report, error) {
	var findings []Finding
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var frag Fragment
		if err := json.Unmarshal(data, &frag); err != nil {
			return nil, fmt.Errorf("sarif: corrupt fragment %s: %v", e.Name(), err)
		}
		findings = append(findings, frag.Findings...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	results := make([]Result, 0, len(findings))
	for _, f := range findings {
		uri := f.File
		if root != "" {
			if rel, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		results = append(results, Result{
			RuleID:  f.Analyzer,
			Level:   "error", // make lint treats any finding as failing
			Message: Message{Text: f.Message},
			Locations: []Location{{PhysicalLocation: PhysicalLocation{
				ArtifactLocation: ArtifactLocation{URI: filepath.ToSlash(uri), URIBaseID: "%SRCROOT%"},
				Region:           Region{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}

	rr := make([]ReportRule, 0, len(rules))
	for _, r := range rules {
		short := r.Doc
		if i := strings.IndexByte(short, '\n'); i >= 0 {
			short = short[:i]
		}
		rr = append(rr, ReportRule{ID: r.ID, ShortDescription: Message{Text: short}})
	}
	sort.Slice(rr, func(i, j int) bool { return rr[i].ID < rr[j].ID })

	return &Report{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []Run{{
			Tool:    Tool{Driver: Driver{Name: "selfstablint", Rules: rr}},
			Results: results,
		}},
	}, nil
}

// Write renders the report as indented JSON.
func (r *Report) Write(w interface{ Write([]byte) (int, error) }) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
