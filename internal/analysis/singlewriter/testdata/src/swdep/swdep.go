// Fixture dependency package: exports an owner-annotated field for the
// cross-package fact round-trip.
package swdep

import "sync"

type Worker struct {
	Mu sync.RWMutex

	//selfstab:owner Run
	State int
}

func (w *Worker) Run() {
	w.State++
}
