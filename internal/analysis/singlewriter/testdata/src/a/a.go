// Fixture for the singlewriter goroutine-ownership rules.
package a

import (
	"sync"
	"sync/atomic"
)

type loopT struct {
	mu sync.RWMutex

	//selfstab:owner loop
	seq int
	//selfstab:owner loop
	moves int

	//selfstab:owner loop
	hits atomic.Int64 // atomic: sanctioned lock-free, never reported

	quit chan struct{}
	c    chan int
}

//selfstab:ownedby loopT.loop
func newLoopT() *loopT {
	t := &loopT{quit: make(chan struct{}), c: make(chan int)}
	t.seq = 1
	go t.loop()
	return t
}

func (t *loopT) loop() {
	for {
		select {
		case v := <-t.c:
			t.step(v)
		case <-t.quit:
			return
		}
	}
}

// step is unexported and called only from the loop: owned by inference.
func (t *loopT) step(v int) {
	t.seq++
	t.moves += v
	t.hits.Add(1)
	t.flush()
}

func (t *loopT) flush() {
	defer func() {
		t.seq++ // deferred closure stays on the owning goroutine
	}()
	go func() {
		t.moves++ // want `write to owner field loopT.moves from outside its event loop loopT.loop`
	}()
}

// Poke is exported: callable from any goroutine.
func (t *loopT) Poke() {
	t.seq++ // want `write to owner field loopT.seq from outside its event loop loopT.loop`
}

// Peek reads lock-free from outside the loop's call graph.
func (t *loopT) Peek() int {
	return t.seq // want `lock-free read of owner field loopT.seq from outside its event loop loopT.loop`
}

// PeekLocked holds the sibling mutex: the sanctioned snapshot path.
func (t *loopT) PeekLocked() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seq + t.moves
}

// spin is unexported but go-launched: it runs on a fresh goroutine.
func (t *loopT) spin() {
	t.moves++ // want `write to owner field loopT.moves from outside its event loop loopT.loop`
}

func (t *loopT) Start() {
	go t.spin()
}

type badT struct {
	//selfstab:owner run
	x int // want `//selfstab:owner names loop "run" but type badT has no method run`
}
