// Fixture dependent package: the owner set arrives as a fact from
// swdep.
package swapp

import "swdep"

func Bad(w *swdep.Worker) {
	w.State = 1 // want `write to owner field Worker.State from outside its event loop Worker.Run`
}

func BadRead(w *swdep.Worker) int {
	return w.State // want `lock-free read of owner field Worker.State from outside its event loop Worker.Run`
}

func GoodRead(w *swdep.Worker) int {
	w.Mu.RLock()
	defer w.Mu.RUnlock()
	return w.State
}

// Init runs before the worker's loop goroutine is spawned.
//
//selfstab:ownedby Worker.Run
func Init(w *swdep.Worker) {
	w.State = 0
}
