package singlewriter_test

import (
	"path/filepath"
	"testing"

	"selfstab/internal/analysis/linttest"
	"selfstab/internal/analysis/singlewriter"
)

func TestSinglewriter(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "a"), singlewriter.New())
}

// TestSinglewriterFacts round-trips the owner set across a package
// boundary: swapp's obligations come entirely from swdep's package
// fact.
func TestSinglewriterFacts(t *testing.T) {
	resolve := linttest.DirResolver(filepath.Join("testdata", "src"))
	linttest.RunPackages(t, resolve, []string{"swapp"}, singlewriter.New())
}
