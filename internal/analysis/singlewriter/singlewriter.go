// Package singlewriter checks the goroutine-ownership discipline the
// service layer's per-tenant event loops rely on: fields annotated
//
//	//selfstab:owner <loop>
//
// may be touched only from the owning event-loop's call graph. A
// `// guarded by mu` comment documents the mutex discipline for
// lock-holding readers, but the event-loop writer deliberately mutates
// some fields lock-free between coarse critical sections — safe only
// while every mutation really does happen on the loop goroutine. This
// analyzer closes that gap statically.
//
// Ownership is computed as a greatest fixpoint over the package's call
// graph. For each annotated type T with loop method L, a function is
// owned by T.L when it is:
//
//   - the loop method L itself (the root), or
//   - annotated //selfstab:ownedby T.L — a trusted assertion for
//     pre-spawn code such as constructors and recovery that run before
//     `go t.L()` starts the loop, or
//   - an unexported function whose every call site is inside an owned
//     function, is not a `go` statement (a spawn starts a new
//     goroutine), and whose identifier never escapes as a value, or
//   - a function literal declared inside an owned function and not
//     launched with `go`.
//
// In non-owned code, a write to an owner field is reported, and a read
// is reported unless the function visibly locks a mutex field of the
// same struct (the sanctioned cross-goroutine snapshot path) — so
// lock-free reads outside the loop cannot slip in behind the comment.
// Fields of sync/atomic types are exempt: atomics are the sanctioned
// lock-free channel. Owner sets cross package boundaries as a package
// fact, so a dependent package mutating an imported owner field is held
// to the same rule.
package singlewriter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"selfstab/internal/analysis/lint"
)

// Directives recognized on field and function doc comments.
const (
	DirOwner   = "//selfstab:owner"
	DirOwnedBy = "//selfstab:ownedby"
)

// OwnersFact is the package fact mapping "Type.field" to the owning
// loop method name, so dependent packages inherit the ownership rule
// for imported fields.
type OwnersFact struct {
	Owners map[string]string
}

// AFact marks OwnersFact as a serializable analysis fact.
func (*OwnersFact) AFact() {}

// New returns the singlewriter analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "singlewriter",
		Doc:  "check that //selfstab:owner fields are touched only from the owning event-loop's call graph",
		Run:  run,
	}
}

// fnNode is one analyzed function: a declaration or a function literal.
type fnNode struct {
	decl       *ast.FuncDecl // nil for literals
	lit        *ast.FuncLit  // nil for declarations
	fn         *types.Func   // declarations only
	recv       string        // receiver type name, "" for functions
	enclosing  *fnNode       // literals only
	goLaunched bool          // literal spawned directly with go
	exported   bool

	ownedBy string // resolved "Type.loop" from //selfstab:ownedby, or ""

	locked   map[string]bool // struct type names whose mutex field is locked here
	accesses []access
}

// access is one touch of an owner field inside a function body.
type access struct {
	pos      token.Pos
	fieldKey string // "Type.field"
	ownerKey string // "Type.loop"
	typeName string
	loop     string
	write    bool
}

// callSite is one same-package call edge, caller side.
type callSite struct {
	caller *fnNode
	isGo   bool
}

type analysis struct {
	pass *lint.Pass

	nodes   []*fnNode
	declFor map[*types.Func]*fnNode

	// owners maps locally annotated fields to their loop name;
	// ownerList keeps "Type.field" keys in declaration order.
	owners    map[*types.Var]ownerField
	ownerList []ownerField

	callers map[*types.Func][]callSite
	escaped map[*types.Func]bool

	// importedOwners caches OwnersFact lookups per package path.
	importedOwners map[string]map[string]string
}

type ownerField struct {
	pos      token.Pos
	typeName string
	field    string
	loop     string
}

func run(pass *lint.Pass) (any, error) {
	a := &analysis{
		pass:           pass,
		declFor:        make(map[*types.Func]*fnNode),
		owners:         make(map[*types.Var]ownerField),
		callers:        make(map[*types.Func][]callSite),
		escaped:        make(map[*types.Func]bool),
		importedOwners: make(map[string]map[string]string),
	}

	// Pass 1: owner-field annotations and function declarations.
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if lint.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				a.collectOwners(d)
			case *ast.FuncDecl:
				if d.Body != nil {
					decls = append(decls, d)
				}
			}
		}
	}
	if len(a.ownerList) > 0 {
		fact := &OwnersFact{Owners: make(map[string]string, len(a.ownerList))}
		for _, of := range a.ownerList {
			fact.Owners[of.typeName+"."+of.field] = of.loop
		}
		pass.ExportPackageFact(fact)
	}

	// Pass 2: build fn nodes, call edges, escapes, and accesses.
	for _, d := range decls {
		fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
		if fn == nil {
			continue
		}
		n := &fnNode{
			decl:     d,
			fn:       fn,
			recv:     recvName(d),
			exported: ast.IsExported(d.Name.Name),
			locked:   make(map[string]bool),
		}
		n.ownedBy = a.resolveOwnedBy(d.Doc, n.recv, d.Pos())
		a.nodes = append(a.nodes, n)
		a.declFor[fn] = n
	}
	for _, n := range a.nodes {
		if n.decl != nil {
			a.scanBody(n, n.decl.Body)
		}
	}

	// Validate that every annotated loop method exists.
	for _, of := range a.ownerList {
		if !a.hasMethod(of.typeName, of.loop) {
			pass.Reportf(of.pos, "%s names loop %q but type %s has no method %s",
				DirOwner, of.loop, of.typeName, of.loop)
		}
	}

	// Pass 3: per-owner-key fixpoint, then report non-owned accesses.
	for _, key := range a.ownerKeys() {
		owned := a.solveOwned(key)
		for _, n := range a.nodes {
			if owned[n] {
				continue
			}
			for _, acc := range n.accesses {
				if acc.ownerKey != key {
					continue
				}
				if acc.write {
					pass.Reportf(acc.pos,
						"write to owner field %s from outside its event loop %s; route the mutation through the loop or annotate the function %s %s",
						acc.fieldKey, acc.ownerKey, DirOwnedBy, acc.ownerKey)
				} else if !n.locked[acc.typeName] {
					pass.Reportf(acc.pos,
						"lock-free read of owner field %s from outside its event loop %s; hold the guarding lock or take a snapshot copy inside the loop",
						acc.fieldKey, acc.ownerKey)
				}
			}
		}
	}
	return nil, nil
}

// ownerKeys returns every distinct "Type.loop" key seen in annotations
// or accesses, in first-appearance order.
func (a *analysis) ownerKeys() []string {
	var keys []string
	seen := make(map[string]bool)
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, of := range a.ownerList {
		add(of.typeName + "." + of.loop)
	}
	for _, n := range a.nodes {
		for _, acc := range n.accesses {
			add(acc.ownerKey)
		}
	}
	return keys
}

// solveOwned computes the owned set for one "Type.loop" key as a
// greatest fixpoint: start from every plausible node and remove nodes
// whose ownership evidence fails until stable.
func (a *analysis) solveOwned(key string) map[*fnNode]bool {
	typeName, loop, _ := strings.Cut(key, ".")
	pinned := make(map[*fnNode]bool) // roots and annotated: never removed
	owned := make(map[*fnNode]bool)
	for _, n := range a.nodes {
		switch {
		case n.decl != nil && n.recv == typeName && n.decl.Name.Name == loop:
			pinned[n] = true
			owned[n] = true
		case n.ownedBy == key:
			pinned[n] = true
			owned[n] = true
		case n.decl != nil:
			if !n.exported && !a.escaped[n.fn] && len(a.callers[n.fn]) > 0 {
				owned[n] = true
			}
		case n.lit != nil && !n.goLaunched:
			owned[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range a.nodes {
			if !owned[n] || pinned[n] {
				continue
			}
			if n.lit != nil {
				if !owned[n.enclosing] {
					delete(owned, n)
					changed = true
				}
				continue
			}
			for _, site := range a.callers[n.fn] {
				if !owned[site.caller] || site.isGo {
					delete(owned, n)
					changed = true
					break
				}
			}
		}
	}
	return owned
}

// --- collection ---

// collectOwners records //selfstab:owner annotations on struct fields,
// skipping fields of sync/atomic types (the sanctioned lock-free path).
func (a *analysis) collectOwners(d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, f := range st.Fields.List {
			loop, ok := directiveArg(f.Doc, DirOwner)
			if !ok {
				loop, ok = directiveArg(f.Comment, DirOwner)
			}
			if !ok {
				continue
			}
			if loop == "" {
				a.pass.Reportf(f.Pos(), "%s needs the owning loop method name", DirOwner)
				continue
			}
			for _, name := range f.Names {
				v, ok := a.pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if isAtomicType(v.Type()) {
					continue
				}
				of := ownerField{pos: name.Pos(), typeName: ts.Name.Name, field: name.Name, loop: loop}
				a.owners[v] = of
				a.ownerList = append(a.ownerList, of)
			}
		}
	}
}

// resolveOwnedBy parses //selfstab:ownedby into a "Type.loop" key,
// inferring the type from the receiver for the bare-loop form.
func (a *analysis) resolveOwnedBy(doc *ast.CommentGroup, recv string, pos token.Pos) string {
	arg, ok := directiveArg(doc, DirOwnedBy)
	if !ok {
		return ""
	}
	switch {
	case arg == "":
		a.pass.Reportf(pos, "%s needs a loop name (Type.loop, or the bare method name on a method)", DirOwnedBy)
		return ""
	case strings.Contains(arg, "."):
		return arg
	case recv != "":
		return recv + "." + arg
	default:
		a.pass.Reportf(pos, "%s %s on a function without a receiver must qualify the type as Type.%s", DirOwnedBy, arg, arg)
		return ""
	}
}

// scanBody walks one function body, recording call edges, escaping
// function values, visible lock acquisitions, and owner-field accesses.
// Function literals become nodes of their own and are scanned in their
// own context.
func (a *analysis) scanBody(n *fnNode, body *ast.BlockStmt) {
	goCall := make(map[*ast.CallExpr]bool)
	goLit := make(map[*ast.FuncLit]bool)
	asCallee := make(map[*ast.Ident]bool)
	writeSel := make(map[ast.Expr]bool)

	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := &fnNode{
				lit:        x,
				enclosing:  n,
				goLaunched: goLit[x],
				locked:     make(map[string]bool),
			}
			a.nodes = append(a.nodes, child)
			a.scanBody(child, x.Body)
			return false
		case *ast.GoStmt:
			goCall[x.Call] = true
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				goLit[lit] = true
			}
		case *ast.CallExpr:
			a.recordCall(n, x, goCall[x], asCallee)
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel := writeTarget(lhs); sel != nil {
					writeSel[sel] = true
					a.recordAccess(n, sel, true)
				}
			}
		case *ast.IncDecStmt:
			if sel := writeTarget(x.X); sel != nil {
				writeSel[sel] = true
				a.recordAccess(n, sel, true)
			}
		case *ast.UnaryExpr:
			// Taking a field's address hands out a mutable alias.
			if x.Op == token.AND {
				if sel := writeTarget(x.X); sel != nil {
					writeSel[sel] = true
					a.recordAccess(n, sel, true)
				}
			}
		case *ast.SelectorExpr:
			if !writeSel[x] {
				a.recordAccess(n, x, false)
			}
		case *ast.Ident:
			// A same-package function identifier outside call position
			// escapes as a value: its call sites are no longer visible.
			if asCallee[x] {
				return true
			}
			if fn, ok := a.pass.TypesInfo.Uses[x].(*types.Func); ok {
				if _, local := a.declFor[fn.Origin()]; local {
					a.escaped[fn.Origin()] = true
				}
			}
		}
		return true
	})
}

// recordCall resolves one call's static callee, recording same-package
// call edges and visible Lock/RLock acquisitions.
func (a *analysis) recordCall(n *fnNode, call *ast.CallExpr, isGo bool, asCallee map[*ast.Ident]bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		asCallee[fun] = true
		if fn, ok := a.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			a.addEdge(n, fn.Origin(), isGo)
		}
	case *ast.SelectorExpr:
		asCallee[fun.Sel] = true
		if fn, ok := a.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			a.addEdge(n, fn.Origin(), isGo)
		}
		// t.mu.Lock() / t.mu.RLock(): sanction reads of t's fields here.
		if fun.Sel.Name == "Lock" || fun.Sel.Name == "RLock" {
			if inner, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
				if s, ok := a.pass.TypesInfo.Selections[inner]; ok && s.Kind() == types.FieldVal {
					n.locked[recvTypeName(s.Recv())] = true
				}
			}
		}
	}
}

func (a *analysis) addEdge(caller *fnNode, fn *types.Func, isGo bool) {
	if _, local := a.declFor[fn]; local {
		a.callers[fn] = append(a.callers[fn], callSite{caller: caller, isGo: isGo})
	}
}

// recordAccess records sel as an owner-field access if its field is
// annotated locally or in the defining package's OwnersFact.
func (a *analysis) recordAccess(n *fnNode, sel *ast.SelectorExpr, write bool) {
	s, ok := a.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	typeName := recvTypeName(s.Recv())
	var loop string
	if of, ok := a.owners[field]; ok {
		loop = of.loop
		typeName = of.typeName
	} else if field.Pkg() != nil && field.Pkg() != a.pass.Pkg {
		loop = a.foreignOwners(field.Pkg().Path())[typeName+"."+field.Name()]
	}
	if loop == "" {
		return
	}
	n.accesses = append(n.accesses, access{
		pos:      sel.Pos(),
		fieldKey: typeName + "." + field.Name(),
		ownerKey: typeName + "." + loop,
		typeName: typeName,
		loop:     loop,
		write:    write,
	})
}

// foreignOwners returns the imported owner map of one package.
func (a *analysis) foreignOwners(path string) map[string]string {
	if m, ok := a.importedOwners[path]; ok {
		return m
	}
	m := map[string]string{}
	var fact OwnersFact
	if a.pass.ImportPackageFact(path, &fact) && fact.Owners != nil {
		m = fact.Owners
	}
	a.importedOwners[path] = m
	return m
}

// hasMethod reports whether the named local type has a method (any
// receiver form) with the given name.
func (a *analysis) hasMethod(typeName, method string) bool {
	obj := a.pass.Pkg.Scope().Lookup(typeName)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return false
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == method {
			return true
		}
	}
	return false
}

// --- small helpers ---

// writeTarget peels an assignment target down to the field selector
// being written: t.f, t.f[k], *t.f, (t.f).
func writeTarget(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// directiveArg extracts a directive's argument from a comment group:
// ("", false) when absent, (arg, true) when present.
func directiveArg(cg *ast.CommentGroup, dir string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == dir {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, dir+" "); ok {
			arg, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
			return arg, true
		}
	}
	return "", false
}

// isAtomicType reports whether t names a sync/atomic type.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

func recvName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func recvTypeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
