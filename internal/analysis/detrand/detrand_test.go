package detrand

import (
	"testing"

	"selfstab/internal/analysis/linttest"
)

func TestFixtures(t *testing.T) {
	a := New()
	if err := a.Flags.Set("pkgs", "all"); err != nil {
		t.Fatal(err)
	}
	linttest.Run(t, "testdata/src/a", a)
}

// TestScope checks that packages outside the deterministic list are not
// analyzed: the same fixture under the default package list yields no
// diagnostics, so `// want` expectations must fail.
func TestScope(t *testing.T) {
	if applies("selfstab/internal/viz", defaultPackages) {
		t.Errorf("viz should be outside the deterministic scope")
	}
	for _, p := range []string{
		"selfstab/internal/core", "selfstab/internal/harness",
		"selfstab/internal/modelcheck", "selfstab/internal/sim",
	} {
		if !applies(p, defaultPackages) {
			t.Errorf("%s should be inside the deterministic scope", p)
		}
	}
	if !applies("anything", "all") {
		t.Errorf("'all' should match every package")
	}
}
