// Package a is the detrand fixture: global randomness and wall-clock
// reads are violations; threaded generators and derived seeds are the
// fixed forms.
package a

import (
	"math/rand"
	"time"
)

// deriveSeed stands in for the repo's harness.DeriveSeed helper.
func deriveSeed(seed int64, stream string) int64 {
	return seed ^ int64(len(stream))
}

func globalDraws() int {
	n := rand.Intn(10)                 // want `global math/rand.Intn draws from the shared process-wide source`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand.Shuffle`
	return n
}

func clockRead() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func clockWait() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
}

func asValue() func(int) int {
	return rand.Intn // want `global math/rand.Intn`
}

func impureSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time.Now reads the wall clock` `rand.NewSource argument calls UnixNano`
}

// threaded is the fixed form: an explicit generator from an explicit
// seed, with all draws through its methods.
func threaded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// derived is the fixed form for per-cell streams: the seed is a pure
// function of run seed and coordinates.
func derived(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(seed, "cell/3")))
}

func suppressed() int {
	//lint:ignore detrand demo helper, reproducibility not required here
	return rand.Intn(3)
}
