// Package detrand defines an analyzer enforcing the repository's
// determinism contract on randomness and wall-clock time: inside the
// deterministic packages, every random draw must flow through an
// explicitly threaded *rand.Rand and every seed must come from the
// derived-seed helpers, so results are byte-identical for any worker
// count, scheduling order, or time of day.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"selfstab/internal/analysis/lint"
)

// defaultPackages lists the deterministic packages: the protocol core
// and rules, the executors, the model checker, and the experiment
// harness — everything whose outputs the determinism tests require to be
// reproducible bit-for-bit. CLI mains (which stamp wall-clock footers)
// and presentation packages are intentionally absent.
const defaultPackages = "selfstab/internal/core,selfstab/internal/protocols,selfstab/internal/rules," +
	"selfstab/internal/sim,selfstab/internal/modelcheck,selfstab/internal/harness," +
	"selfstab/internal/mobility,selfstab/internal/adversary," +
	"selfstab/internal/faults,selfstab/internal/soak"

// globalRandFuncs are the math/rand package-level functions that draw
// from the shared global source. rand.New, rand.NewSource, and
// rand.NewZipf are absent: constructing a threaded generator is exactly
// what the contract wants.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

// clockFuncs are the time functions that observe or wait on the wall
// clock. Pure constructors and conversions (time.Duration, time.Unix)
// are fine: they are functions of their arguments.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// New returns the detrand analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "detrand",
		Doc: "enforce threaded randomness and clock-free code in deterministic packages\n\n" +
			"Flags global math/rand functions, wall-clock time functions, and\n" +
			"rand.NewSource/rand.New arguments that call anything but derived-seed\n" +
			"helpers, inside the packages named by -detrand.pkgs.",
	}
	pkgs := a.Flags.String("pkgs", defaultPackages,
		"comma-separated package-path prefixes the contract applies to ('all' = every package)")
	seedfuncs := a.Flags.String("seedfuncs", "",
		"comma-separated extra function names allowed inside rand.NewSource arguments")
	a.Run = func(pass *lint.Pass) (any, error) {
		run(pass, *pkgs, *seedfuncs)
		return nil, nil
	}
	return a
}

func run(pass *lint.Pass, pkgs, seedfuncs string) {
	if !applies(pass.Pkg.Path(), pkgs) {
		return
	}
	extraSeed := map[string]bool{}
	for _, f := range strings.Split(seedfuncs, ",") {
		if f != "" {
			extraSeed[f] = true
		}
	}
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkIdent(pass, n)
			case *ast.CallExpr:
				checkSeedPurity(pass, n, extraSeed)
			}
			return true
		})
	}
}

func applies(path, pkgs string) bool {
	if pkgs == "all" {
		return true
	}
	for _, p := range strings.Split(pkgs, ",") {
		if p != "" && (path == p || strings.HasPrefix(path, p+"/")) {
			return true
		}
	}
	return false
}

// checkIdent flags any reference — call or not, so passing rand.Intn as
// a callback is caught too — to a global-source math/rand function or a
// wall-clock time function.
func checkIdent(pass *lint.Pass, id *ast.Ident) {
	fn := pkgLevelFunc(pass.TypesInfo.Uses[id])
	if fn == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			pass.Reportf(id.Pos(),
				"global math/rand.%s draws from the shared process-wide source; thread a *rand.Rand instead",
				fn.Name())
		}
	case "time":
		if clockFuncs[fn.Name()] {
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock in a deterministic package; timing belongs in CLI footers",
				fn.Name())
		}
	}
}

// pkgLevelFunc returns obj as a package-level *types.Func, or nil. The
// receiver check matters: (*rand.Rand).Intn shares its name with the
// forbidden global rand.Intn.
func pkgLevelFunc(obj types.Object) *types.Func {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// checkSeedPurity inspects rand.NewSource and rand.New(rand.NewSource(...))
// arguments: every call inside the seed expression must be a derived-seed
// helper (harness.DeriveSeed or anything whose name mentions a seed), so
// seeds are pure functions of the run seed and the cell coordinates.
func checkSeedPurity(pass *lint.Pass, call *ast.CallExpr, extraSeed map[string]bool) {
	callee := pkgLevelFunc(usedObject(pass, call.Fun))
	if callee == nil || callee.Name() != "NewSource" {
		return
	}
	if p := callee.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[inner.Fun]; ok && tv.IsType() {
				return true // conversion such as int64(x)
			}
			obj := usedObject(pass, inner.Fun)
			if obj == nil {
				return true // builtins (len, etc.) and indirect calls
			}
			name := obj.Name()
			if strings.Contains(strings.ToLower(name), "seed") || extraSeed[name] {
				return true
			}
			pass.Reportf(inner.Pos(),
				"rand.NewSource argument calls %s; seeds must come from derived-seed helpers (e.g. harness.DeriveSeed)",
				name)
			return false // one report per offending call chain
		})
	}
}

// usedObject resolves the object a call target refers to, looking
// through selectors and parens.
func usedObject(pass *lint.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
