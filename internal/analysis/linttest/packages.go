package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selfstab/internal/analysis/lint"
)

// DirResolver resolves fixture import paths to directories under root:
// the import path "a" maps to root/a. Paths with no such directory fall
// through to the standard library.
func DirResolver(root string) func(string) (string, bool) {
	return func(importPath string) (string, bool) {
		dir := filepath.Join(root, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
}

// ModuleResolver maps import paths under modPath to directories under
// modRoot, so analyzers can be run over the repository's real packages
// in tests (the purity regression pins every existing Move as pure).
func ModuleResolver(modPath, modRoot string) func(string) (string, bool) {
	return func(importPath string) (string, bool) {
		if importPath == modPath {
			return modRoot, true
		}
		rest, ok := strings.CutPrefix(importPath, modPath+"/")
		if !ok {
			return "", false
		}
		return filepath.Join(modRoot, filepath.FromSlash(rest)), true
	}
}

// RunPackages type-checks the root packages and every dependency the
// resolver can place, analyzes them in dependency order with facts
// threaded from dependencies to dependents — the same propagation the
// vet driver performs across compilation units — and matches the
// diagnostics of every resolved package against its `// want`
// expectations. Standard-library imports are type-checked from GOROOT
// source and not analyzed.
func RunPackages(t *testing.T, resolve func(string) (string, bool), roots []string, analyzers ...*lint.Analyzer) {
	t.Helper()

	ld := &loader{
		fset:    token.NewFileSet(),
		resolve: resolve,
		pkgs:    map[string]*loadedPkg{},
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	for _, root := range roots {
		if _, err := ld.load(root); err != nil {
			t.Fatalf("linttest: loading %s: %v", root, err)
		}
	}

	facts := lint.NewFactStore()
	var diags []lint.Diagnostic
	var files []*ast.File
	for _, path := range ld.order {
		p := ld.pkgs[path]
		ds, exported, err := lint.RunWithFacts(ld.fset, p.files, p.pkg, p.info, analyzers, facts)
		if err != nil {
			t.Fatalf("linttest: analyzing %s: %v", path, err)
		}
		facts = exported
		diags = append(diags, ds...)
		files = append(files, p.files...)
	}

	expects := collectExpectations(t, ld.fset, files)
	matchDiagnostics(t, ld.fset, diags, expects)
}

// loadedPkg is one resolved, type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks fixture packages recursively, recording a
// dependency-first order. It implements types.Importer so the
// type-checker drives dependency loading.
type loader struct {
	fset     *token.FileSet
	resolve  func(string) (string, bool)
	fallback types.Importer
	pkgs     map[string]*loadedPkg
	loading  map[string]bool
	order    []string
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p.pkg, nil
	}
	if _, ok := ld.resolve(path); ok {
		return ld.load(path)
	}
	return ld.fallback.Import(path)
}

func (ld *loader) load(path string) (*types.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p.pkg, nil
	}
	dir, ok := ld.resolve(path)
	if !ok {
		return nil, os.ErrNotExist
	}
	if ld.loading == nil {
		ld.loading = map[string]bool{}
	}
	if ld.loading[path] {
		return nil, &importCycleError{path: path}
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: ld}
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = &loadedPkg{pkg: pkg, files: files, info: info}
	// Dependencies complete their load before this append, so order is
	// dependency-first.
	ld.order = append(ld.order, path)
	return pkg, nil
}

type importCycleError struct{ path string }

func (e *importCycleError) Error() string { return "import cycle through " + e.path }
