// Package linttest runs lint analyzers over testdata fixture packages
// and checks their diagnostics against expectations embedded in the
// fixture source, in the style of go/analysis/analysistest.
//
// An expectation is a trailing comment of the form
//
//	// want "regexp"
//	// want "regexp" "second regexp"
//	// want `regexp with "quotes"`
//
// Each regexp must match the message of a distinct diagnostic reported
// on that line, and every diagnostic must be claimed by some
// expectation. Fixtures are type-checked from source with the standard
// library importer, so they may import anything in GOROOT but nothing
// else.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"selfstab/internal/analysis/lint"
)

// Run analyzes the fixture package in dir (a path relative to the test's
// working directory, conventionally "testdata/src/<name>") with the
// given analyzers and reports any mismatch between expected and actual
// diagnostics as test errors.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{
		// The source importer type-checks GOROOT packages from source:
		// no export data, module cache, or network involved.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkgPath := files[0].Name.Name
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-checking %s: %v", dir, err)
	}

	diags, err := lint.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	expects := collectExpectations(t, fset, files)
	matchDiagnostics(t, fset, diags, expects)
}

// expectation is one `// want` regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectExpectations parses every `// want` comment into expectations.
func collectExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, m := range ms {
					raw := m[2]
					if strings.HasPrefix(m[0], "`") {
						raw = m[1]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out
}

// matchDiagnostics pairs diagnostics with expectations one-to-one.
func matchDiagnostics(t *testing.T, fset *token.FileSet, diags []lint.Diagnostic, expects []*expectation) {
	t.Helper()
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, e := range expects {
			if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				e.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.raw)
		}
	}
}
