package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// runOnSource type-checks src (no imports) and runs one trivial
// analyzer that reports at every return statement.
func runOnSource(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}, Uses: map[*ast.Ident]types.Object{}}
	pkg, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{
		Name: "retflag",
		Doc:  "flags every return",
		Run: func(p *Pass) (any, error) {
			ast.Inspect(p.Files[0], func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					p.Reportf(r.Pos(), "return found")
				}
				return true
			})
			return nil, nil
		},
	}
	diags, err := Run(fset, []*ast.File{f}, pkg, info, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestSuppressionOnLineAndLineAbove(t *testing.T) {
	diags := runOnSource(t, `package x

func a() int {
	return 1 //lint:ignore retflag trailing-form suppression
}

func b() int {
	//lint:ignore retflag standalone-form suppression
	return 2
}

func c() int {
	return 3
}
`)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %+v, want exactly the one in c()", diags)
	}
	if got := diags[0].Analyzer; got != "retflag" {
		t.Fatalf("analyzer = %q", got)
	}
}

func TestWildcardAndOtherAnalyzerSuppression(t *testing.T) {
	diags := runOnSource(t, `package x

func a() int {
	//lint:ignore * wildcard silences everything
	return 1
}

func b() int {
	//lint:ignore otherpass directive for a different analyzer
	return 2
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "return found") {
		t.Fatalf("diagnostics = %+v, want only b()'s return", diags)
	}
}

// TestMultiAnalyzerListSuppression runs two analyzers against one
// directive carrying a comma-separated list: both named analyzers are
// silenced on the covered line, an unnamed third is not.
func TestMultiAnalyzerListSuppression(t *testing.T) {
	src := `package x

func a() int {
	//lint:ignore retflag,declflag both passes excused here
	var n int
	return n
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}, Uses: map[*ast.Ident]types.Object{}}
	pkg, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, match func(ast.Node) bool) *Analyzer {
		return &Analyzer{Name: name, Doc: name, Run: func(p *Pass) (any, error) {
			ast.Inspect(p.Files[0], func(n ast.Node) bool {
				if n != nil && match(n) {
					p.Reportf(n.Pos(), "%s found", name)
				}
				return true
			})
			return nil, nil
		}}
	}
	retflag := mk("retflag", func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	declflag := mk("declflag", func(n ast.Node) bool { _, ok := n.(*ast.DeclStmt); return ok })
	otherflag := mk("otherflag", func(n ast.Node) bool { _, ok := n.(*ast.DeclStmt); return ok })

	diags, err := Run(fset, []*ast.File{f}, pkg, info, []*Analyzer{retflag, declflag, otherflag})
	if err != nil {
		t.Fatal(err)
	}
	// declflag's finding (the var decl, directly under the directive) is
	// suppressed; otherflag's finding at the same position is not, and
	// retflag's return is two lines below the directive, out of range.
	var names []string
	for _, d := range diags {
		names = append(names, d.Analyzer)
	}
	if len(diags) != 2 || names[0] != "otherflag" || names[1] != "retflag" {
		t.Fatalf("diagnostics = %+v, want otherflag then retflag", diags)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	diags := runOnSource(t, `package x

func a() int {
	//lint:ignore retflag
	return 1
}
`)
	// The bare directive is ineffective AND reported: the return fires
	// plus the malformed-directive diagnostic.
	var gotMalformed, gotReturn bool
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed //lint:ignore") {
			gotMalformed = true
		}
		if strings.Contains(d.Message, "return found") {
			gotReturn = true
		}
	}
	if !gotMalformed || !gotReturn {
		t.Fatalf("diagnostics = %+v, want malformed-directive and return findings", diags)
	}
}

// TestNewAnalyzerNamesSuppression is the regression pin for the
// allocation/shard-isolation tier's suppression spellings: the driver
// must honor `//lint:ignore noalloc <reason>`, `//lint:ignore
// shardsafe <reason>`, and the combined `//lint:ignore
// noalloc,shardsafe <reason>` list exactly as it does for the older
// analyzers (stub analyzers stand in for the real ones, which cannot
// be imported here without a cycle; the real-analyzer suppressions are
// exercised by their fixture packages).
func TestNewAnalyzerNamesSuppression(t *testing.T) {
	src := `package x

func a() int {
	//lint:ignore noalloc caller pre-sizes the buffer
	return 1
}

func b() int {
	//lint:ignore shardsafe index proven owned by construction
	return 2
}

func c() int {
	//lint:ignore noalloc,shardsafe both tiers excused here
	return 3
}

func d() int {
	return 4
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}, Uses: map[*ast.Ident]types.Object{}}
	pkg, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Analyzer {
		return &Analyzer{Name: name, Doc: name, Run: func(p *Pass) (any, error) {
			ast.Inspect(p.Files[0], func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					p.Reportf(r.Pos(), "%s finding", name)
				}
				return true
			})
			return nil, nil
		}}
	}
	diags, err := Run(fset, []*ast.File{f}, pkg, info, []*Analyzer{mk("noalloc"), mk("shardsafe")})
	if err != nil {
		t.Fatal(err)
	}
	// a(): shardsafe survives; b(): noalloc survives; c(): both
	// silenced; d(): both survive.
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer)
	}
	want := []string{"shardsafe", "noalloc", "noalloc", "shardsafe"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %+v, want analyzers %v", diags, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostics = %+v, want analyzers %v", diags, want)
		}
	}
}
