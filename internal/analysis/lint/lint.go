// Package lint is a self-contained static-analysis framework modeled on
// golang.org/x/tools/go/analysis, rebuilt on the standard library so the
// repository's determinism and concurrency analyzers need no external
// module. The API mirrors go/analysis deliberately — Analyzer, Pass,
// Diagnostic carry the same fields with the same meanings — so the
// custom passes can migrate to the upstream framework verbatim if the
// dependency ever becomes available.
//
// Two drivers consume this package: internal/analysis/unit speaks the
// `go vet -vettool=` compilation-unit protocol for whole-repo runs, and
// internal/analysis/linttest type-checks testdata fixtures and matches
// diagnostics against `// want` expectations, in the style of
// go/analysis/analysistest.
//
// Suppression: a diagnostic is dropped when the offending line — or the
// line immediately above it — carries a directive comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// The analyzer list may be the wildcard "*".
package lint

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -<name>.<flag>
	// command-line flags, and //lint:ignore directives. It must be a
	// valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Flags holds analyzer-specific flags, registered by the driver as
	// -<name>.<flag>.
	Flags flag.FlagSet

	// Run applies the analyzer to a single package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers apply //lint:ignore
	// suppression after the run, so analyzers report unconditionally.
	Report func(Diagnostic)

	// imported holds facts of dependency packages; exported collects the
	// facts this unit produces (plus re-exported imports). Both are set
	// by RunWithFacts; under plain Run they are empty stores, so the
	// fact methods degrade to no-ops.
	imported, exported *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, attributed to the analyzer that produced
// it by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// Run executes every analyzer over one type-checked package, applies
// //lint:ignore suppression, and returns the surviving diagnostics in
// file/position order. Malformed directives (no reason) are appended as
// diagnostics attributed to the pseudo-analyzer "lint". Facts are
// collected and discarded; drivers that thread facts between packages
// use RunWithFacts.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	analyzers []*Analyzer) ([]Diagnostic, error) {

	diags, _, err := RunWithFacts(fset, files, pkg, info, analyzers, nil)
	return diags, err
}

// RunWithFacts is Run with cross-package fact threading: imported holds
// the facts of every dependency package (nil is an empty store), and the
// returned store holds the facts this package exports — its own new
// facts merged over the imported ones, so handing the result to the next
// unit propagates facts transitively.
func RunWithFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	analyzers []*Analyzer, imported *FactStore) ([]Diagnostic, *FactStore, error) {

	if imported == nil {
		imported = NewFactStore()
	}
	exported := NewFactStore()
	exported.Merge(imported)

	sup, bad := collectSuppressions(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
			imported:  imported,
			exported:  exported,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range diags {
			d.Analyzer = a.Name
			if !sup.suppressed(fset, d.Pos, a.Name) {
				out = append(out, d)
			}
		}
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, exported, nil
}

// suppressions maps "file:line" to the set of analyzer names ignored on
// that line ("*" matches all).
type suppressions map[string]map[string]bool

func (s suppressions) suppressed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	set := s[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
	return set != nil && (set[analyzer] || set["*"])
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions scans every comment for //lint:ignore directives.
// A directive covers its own line and the following line, so it works
// both as a trailing comment and as a standalone line above the code it
// excuses.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed //lint:ignore directive: need analyzer name(s) and a reason",
						Analyzer: "lint",
					})
					continue
				}
				p := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					for _, line := range []int{p.Line, p.Line + 1} {
						key := fmt.Sprintf("%s:%d", p.Filename, line)
						if sup[key] == nil {
							sup[key] = make(map[string]bool)
						}
						sup[key][name] = true
					}
				}
			}
		}
	}
	return sup, bad
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The determinism analyzers skip test files: tests are where seeded
// randomness and wall-clock timing are legitimately exercised, and the
// contract they enforce is about library code.
func IsTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}

// FuncFor returns the innermost function declaration or literal
// enclosing pos in file, or nil.
func FuncFor(file *ast.File, pos token.Pos) ast.Node {
	var fn ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == nil
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fn = n
		}
		return true
	})
	return fn
}
