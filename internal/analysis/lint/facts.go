package lint

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// A Fact is a serializable observation an analyzer attaches to a
// package-level object or to a package, visible when dependent packages
// are analyzed later. The AFact marker method mirrors go/analysis. Facts
// are encoded as JSON (not gob) so the fact files the driver threads
// between compilation units are inspectable and diffable.
type Fact interface{ AFact() }

// factVersion is bumped whenever the fact file format or any analyzer's
// fact schema changes incompatibly; a mismatch is reported as a stale
// fact file rather than decoded into garbage.
const factVersion = 1

// factTool guards against a foreign tool's fact files being handed to
// this driver.
const factTool = "selfstablint"

// pkgFactKey is the reserved object key under which a package-level fact
// is stored. It cannot collide with a real object: "package" is a Go
// keyword, so no declared identifier spells it.
const pkgFactKey = "package"

// A FactStore holds serialized facts for any number of packages, keyed
// package path → analyzer name → object key. It is both the import side
// (facts of dependencies, decoded from their fact files) and the export
// side (facts this unit computed, merged with the imported ones so
// downstream units see the transitive closure).
type FactStore struct {
	m map[string]map[string]map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[string]map[string]map[string]json.RawMessage{}}
}

func (s *FactStore) set(pkgPath, analyzer, key string, raw json.RawMessage) {
	byAnalyzer, ok := s.m[pkgPath]
	if !ok {
		byAnalyzer = map[string]map[string]json.RawMessage{}
		s.m[pkgPath] = byAnalyzer
	}
	byKey, ok := byAnalyzer[analyzer]
	if !ok {
		byKey = map[string]json.RawMessage{}
		byAnalyzer[analyzer] = byKey
	}
	byKey[key] = raw
}

func (s *FactStore) get(pkgPath, analyzer, key string) (json.RawMessage, bool) {
	raw, ok := s.m[pkgPath][analyzer][key]
	return raw, ok
}

// Merge copies every fact of other into s (other wins on conflicts).
func (s *FactStore) Merge(other *FactStore) {
	if other == nil {
		return
	}
	for pkgPath, byAnalyzer := range other.m {
		for analyzer, byKey := range byAnalyzer {
			for key, raw := range byKey {
				s.set(pkgPath, analyzer, key, raw)
			}
		}
	}
}

// Empty reports whether the store holds no facts at all.
func (s *FactStore) Empty() bool { return len(s.m) == 0 }

// factFile is the on-disk envelope of a fact store.
type factFile struct {
	Tool     string                                           `json:"tool"`
	Version  int                                              `json:"version"`
	Packages map[string]map[string]map[string]json.RawMessage `json:"packages"`
}

// Encode serializes the store with its version envelope. An empty store
// encodes to nil, matching the empty fact files fact-free units write.
func (s *FactStore) Encode() ([]byte, error) {
	if s == nil || len(s.m) == 0 {
		return nil, nil
	}
	return json.Marshal(factFile{Tool: factTool, Version: factVersion, Packages: s.m})
}

// DecodeFactStore parses a fact file. Zero-length input is a valid empty
// store (units without facts write empty files). Anything else that
// fails to parse, names a different tool, or carries a different version
// is rejected with a descriptive error — silent empty facts would
// quietly disable every cross-package check downstream.
func DecodeFactStore(data []byte) (*FactStore, error) {
	if len(data) == 0 {
		return NewFactStore(), nil
	}
	var f factFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("corrupt fact file: %v", err)
	}
	if f.Tool != factTool {
		return nil, fmt.Errorf("fact file written by %q, want %q", f.Tool, factTool)
	}
	if f.Version != factVersion {
		return nil, fmt.Errorf("stale fact file (format version %d, want %d); clear the vet cache and re-run", f.Version, factVersion)
	}
	s := NewFactStore()
	if f.Packages != nil {
		s.m = f.Packages
	}
	return s, nil
}

// objectKey returns the stable key identifying obj inside its package:
// the bare name for package-level objects, "Recv.Name" for methods.
// Facts may only be attached to objects of these two shapes — local
// variables and fields have no stable cross-package identity.
func objectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			// Generic receivers instantiate to *types.Named too; their
			// origin name is what downstream packages see.
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name(), true
			}
		}
	}
	return "", false
}

// ExportObjectFact attaches fact to obj, which must be a package-level
// object or method of the package under analysis. Unsupported objects
// are ignored (facts are an optimization for cross-package precision,
// never load-bearing for soundness).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	key, ok := objectKey(obj)
	if !ok || p.exported == nil {
		return
	}
	raw, err := json.Marshal(fact)
	if err != nil {
		return
	}
	p.exported.set(obj.Pkg().Path(), p.Analyzer.Name, key, raw)
}

// ImportObjectFact decodes the fact previously exported for obj — by
// this unit (same package) or by the unit that analyzed obj's package —
// into fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	key, ok := objectKey(obj)
	if !ok {
		return false
	}
	return p.importFact(obj.Pkg().Path(), key, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.exported == nil {
		return
	}
	raw, err := json.Marshal(fact)
	if err != nil {
		return
	}
	p.exported.set(p.Pkg.Path(), p.Analyzer.Name, pkgFactKey, raw)
}

// ImportPackageFact decodes the package-level fact of pkgPath into fact,
// reporting whether one was found.
func (p *Pass) ImportPackageFact(pkgPath string, fact Fact) bool {
	return p.importFact(pkgPath, pkgFactKey, fact)
}

func (p *Pass) importFact(pkgPath, key string, fact Fact) bool {
	for _, store := range []*FactStore{p.exported, p.imported} {
		if store == nil {
			continue
		}
		if raw, ok := store.get(pkgPath, p.Analyzer.Name, key); ok {
			return json.Unmarshal(raw, fact) == nil
		}
	}
	return false
}

// A PackageFact pairs a package path with its decoded package-level
// fact.
type PackageFact struct {
	Path string
	Fact Fact
}

// AllPackageFacts decodes every package-level fact of this analyzer
// visible to the unit — imported ones plus any the unit itself has
// already exported — allocating each instance with mk. Results are
// sorted by package path so iteration is deterministic.
func (p *Pass) AllPackageFacts(mk func() Fact) []PackageFact {
	seen := map[string]bool{}
	var out []PackageFact
	for _, store := range []*FactStore{p.exported, p.imported} {
		if store == nil {
			continue
		}
		for pkgPath, byAnalyzer := range store.m {
			if seen[pkgPath] {
				continue
			}
			raw, ok := byAnalyzer[p.Analyzer.Name][pkgFactKey]
			if !ok {
				continue
			}
			fact := mk()
			if json.Unmarshal(raw, fact) != nil {
				continue
			}
			seen[pkgPath] = true
			out = append(out, PackageFact{Path: pkgPath, Fact: fact})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
