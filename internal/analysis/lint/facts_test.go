package lint

import (
	"strings"
	"testing"
)

// TestFactStoreEncodeDecodeRoundTrip: facts written by one unit decode
// identically in the next, and the empty store encodes to the empty
// fact file fact-free units write.
func TestFactStoreEncodeDecodeRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.set("example.com/dep", "purity", "Bump", []byte(`{"MutatesParams":true}`))
	s.set("example.com/dep", "lockorder", "package", []byte(`{"Edges":[]}`))

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFactStore(data)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := got.get("example.com/dep", "purity", "Bump")
	if !ok || string(raw) != `{"MutatesParams":true}` {
		t.Fatalf("round-tripped fact = %s, %v", raw, ok)
	}

	empty, err := NewFactStore().Encode()
	if err != nil || empty != nil {
		t.Fatalf("empty store Encode = %q, %v, want nil, nil", empty, err)
	}
	if s, err := DecodeFactStore(nil); err != nil || !s.Empty() {
		t.Fatalf("DecodeFactStore(nil) = %+v, %v, want empty store", s, err)
	}
}

// TestDecodeFactStoreRejectsBadFiles: corrupt, foreign-tool, and
// stale-version fact files all fail loudly with descriptive errors —
// a silently-empty store would disable every cross-package check
// downstream without a trace.
func TestDecodeFactStoreRejectsBadFiles(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"corrupt", `{"tool": "selfstablint", "ver`, "corrupt fact file"},
		{"truncated binary", "\x00\x01\x02", "corrupt fact file"},
		{"foreign tool", `{"tool":"staticcheck","version":1}`, `written by "staticcheck"`},
		{"stale version", `{"tool":"selfstablint","version":99}`, "stale fact file (format version 99"},
		{"zero version", `{"tool":"selfstablint"}`, "stale fact file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := DecodeFactStore([]byte(tc.data))
			if err == nil {
				t.Fatalf("decoded %q into %+v, want error", tc.data, s)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}
