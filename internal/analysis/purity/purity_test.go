package purity_test

import (
	"path/filepath"
	"testing"

	"selfstab/internal/analysis/linttest"
	"selfstab/internal/analysis/purity"
)

func TestPurity(t *testing.T) {
	linttest.Run(t, "testdata/src/a", purity.New())
}

// TestPurityCrossPackageFacts proves the fact round-trip: dep's
// summaries are computed in its own analysis run and surface as
// diagnostics only when app is analyzed with dep's facts imported.
func TestPurityCrossPackageFacts(t *testing.T) {
	linttest.RunPackages(t, linttest.DirResolver("testdata/src"), []string{"app"}, purity.New())
}

// TestPurityAcceptsRepoProtocols is the regression pin: every Move the
// repository actually ships — core.SMM, core.SMI, the protocols
// package's randomized/refined/composed variants, and the rules engine
// — must pass the purity analyzer with zero diagnostics. A new
// diagnostic here means either a protocol gained a real impurity or the
// analyzer gained a false positive; both need a human.
func TestPurityAcceptsRepoProtocols(t *testing.T) {
	resolve := linttest.ModuleResolver("selfstab", filepath.Join("..", "..", ".."))
	linttest.RunPackages(t, resolve,
		[]string{
			"selfstab/internal/core",
			"selfstab/internal/rules",
			"selfstab/internal/protocols",
		},
		purity.New())
}
