// Package purity defines an analyzer enforcing the paper's core model
// assumption: a protocol move is a pure function of the node's local
// view. The self-stabilization proofs (and the repository's model
// checker, which memoizes configurations) are sound only if Move
// computes the next state from the View alone — no receiver mutation
// beyond per-node RNG draws, no package-level state, no I/O, no
// retention of the View past the call.
//
// The analyzer targets every method named Move whose single parameter
// is the protocol View type, the Random/OnNeighborLost companions on
// the same receiver types, and every function literal taking a View
// parameter (the Guard/Action closures of rule tables). Each target's
// body is checked with a flow-sensitive taint analysis over the
// control-flow graph of internal/analysis/cfg: values derived from the
// View or the receiver are tracked through local assignments, and a
// write is reported only when its access path crosses a reference
// boundary (pointer deref, slice or map indexing) into memory shared
// with the caller — plain writes to value copies, the paper's idiom
// `next := v.Self; next.Field = ...`, stay legal.
//
// Helpers are handled interprocedurally: every function in the package
// is summarized ({mutates receiver, mutates params, writes globals,
// performs I/O, retains params}) to a fixpoint, impure summaries are
// exported as facts through the driver's fact files, and call sites
// consult the callee's summary — same-package, cross-package via facts,
// or a built-in table for the standard library. The table encodes the
// sanctioned escape hatches: sync/atomic (rule-firing counters) and
// math/rand (per-node threaded generators) are pure by decree, while
// os/io/net/log/sync and the clock side of time are I/O, and
// sort/slices mutate their arguments.
//
// Indirect calls (func values, interface methods) are assumed pure:
// v.Peer and the composed inner protocols are exactly such calls, and
// their implementations are themselves analyzed wherever they are
// declared.
package purity

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"selfstab/internal/analysis/cfg"
	"selfstab/internal/analysis/lint"
)

// New returns the purity analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "purity",
		Doc: "protocol Move rules must be pure functions of the local View\n\n" +
			"Methods named Move taking the protocol View, their Random and\n" +
			"OnNeighborLost companions, and func literals taking a View are\n" +
			"checked for receiver/global/View mutation, I/O, channel and\n" +
			"goroutine operations, and View retention, using dataflow over the\n" +
			"function's CFG and cross-package function summaries.",
	}
	viewName := a.Flags.String("viewtype", "View",
		"name of the protocol view type whose consumers are checked")
	a.Run = func(pass *lint.Pass) (any, error) {
		run(pass, *viewName)
		return nil, nil
	}
	return a
}

// FnFact is the exported summary of one function: the ways it is not
// pure. A function with no fact (or a zero fact) is pure. Facts travel
// between compilation units through the driver's fact files, so a Move
// calling a helper in another package is checked against the helper's
// real behavior, not an assumption.
type FnFact struct {
	IO            bool `json:"io,omitempty"`            // I/O, sync, clock, channel, goroutine
	WritesGlobals bool `json:"writesGlobals,omitempty"` // writes package-level state
	MutatesRecv   bool `json:"mutatesRecv,omitempty"`   // writes memory reachable from receiver
	MutatesParams bool `json:"mutatesParams,omitempty"` // writes memory reachable from parameters
	RetainsParams bool `json:"retainsParams,omitempty"` // stores a parameter past the call
}

// AFact marks FnFact as a lint fact.
func (*FnFact) AFact() {}

func (f *FnFact) pure() bool { return !(f.IO || f.WritesGlobals || f.MutatesRecv || f.MutatesParams || f.RetainsParams) }

// Taint classes: which caller-visible root a value or access path is
// derived from.
const (
	cView   uint8 = 1 << iota // the View parameter of the checked function
	cRecv                     // the receiver
	cParam                    // another parameter
	cGlobal                   // package-level state
)

func nounOf(cls uint8) string {
	switch {
	case cls&cView != 0:
		return "the View"
	case cls&cRecv != 0:
		return "receiver state"
	case cls&cGlobal != 0:
		return "package-level state"
	default:
		return "a parameter"
	}
}

type vkind uint8

const (
	vMutate vkind = iota // write into caller-visible memory
	vIO                  // I/O, synchronization, channel, goroutine, clock
	vRetain              // stores a parameter into longer-lived memory
)

type violation struct {
	pos  token.Pos
	kind vkind
	cls  uint8
	msg  string
}

// analysis is the per-package run state.
type analysis struct {
	pass      *lint.Pass
	viewName  string
	summaries map[*types.Func]*FnFact
	// targetLits are func literals checked as standalone targets, so the
	// enclosing function's walk skips them instead of double-reporting.
	targetLits map[*ast.FuncLit]bool
	refMemo    map[types.Type]bool
}

func run(pass *lint.Pass, viewName string) {
	an := &analysis{
		pass:       pass,
		viewName:   viewName,
		summaries:  map[*types.Func]*FnFact{},
		targetLits: map[*ast.FuncLit]bool{},
		refMemo:    map[types.Type]bool{},
	}

	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}

	// Summarize every function to a fixpoint so same-package helpers —
	// including mutually recursive ones — carry accurate summaries
	// before any target is diagnosed. Flags only ever turn on, so the
	// iteration is monotone; the bound is a safety net.
	for iter := 0; iter < 12; iter++ {
		changed := false
		for _, d := range decls {
			fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			got := an.summarize(d)
			if old := an.summaries[fn]; old == nil || *old != *got {
				an.summaries[fn] = got
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Export impure summaries so dependent packages see them.
	for _, d := range decls {
		fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
		if !ok {
			continue
		}
		if fact := an.summaries[fn]; fact != nil && !fact.pure() {
			pass.ExportObjectFact(fn, fact)
		}
	}

	an.diagnoseTargets(decls)
}

// summarize computes the purity summary of one declared function.
func (an *analysis) summarize(d *ast.FuncDecl) *FnFact {
	fr := an.newFrame(d.Recv, d.Type.Params, nil, false)
	fr.analyze(d.Body)
	fact := &FnFact{}
	for _, v := range fr.viols {
		switch v.kind {
		case vIO:
			fact.IO = true
		case vMutate:
			if v.cls&cGlobal != 0 {
				fact.WritesGlobals = true
			}
			if v.cls&cRecv != 0 {
				fact.MutatesRecv = true
			}
			if v.cls&(cParam|cView) != 0 {
				fact.MutatesParams = true
			}
		case vRetain:
			if v.cls&(cParam|cView) != 0 {
				fact.RetainsParams = true
			}
		}
	}
	return fact
}

// diagnoseTargets finds the protocol-shaped functions and reports their
// violations.
func (an *analysis) diagnoseTargets(decls []*ast.FuncDecl) {
	type target struct {
		desc string
		decl *ast.FuncDecl
		lit  *ast.FuncLit
	}
	var targets []target

	// Move methods with a single View parameter, and the receiver types
	// that carry them.
	moveRecv := map[*types.TypeName]bool{}
	for _, d := range decls {
		if d.Recv == nil || d.Name.Name != "Move" {
			continue
		}
		fn, ok := an.pass.TypesInfo.Defs[d.Name].(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() != 1 || !an.isViewType(sig.Params().At(0).Type()) {
			continue
		}
		tn := recvTypeName(sig)
		if tn != nil {
			moveRecv[tn] = true
		}
		targets = append(targets, target{desc: methodDesc(tn, "Move"), decl: d})
	}
	// Random/OnNeighborLost companions on the same protocol types.
	for _, d := range decls {
		if d.Recv == nil || (d.Name.Name != "Random" && d.Name.Name != "OnNeighborLost") {
			continue
		}
		fn, ok := an.pass.TypesInfo.Defs[d.Name].(*types.Func)
		if !ok {
			continue
		}
		tn := recvTypeName(fn.Type().(*types.Signature))
		if tn == nil || !moveRecv[tn] {
			continue
		}
		targets = append(targets, target{desc: methodDesc(tn, d.Name.Name), decl: d})
	}
	// Func literals taking a View: the Guard/Action closures of rule
	// tables, wherever they appear.
	for _, file := range an.pass.Files {
		if lint.IsTestFile(an.pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, field := range lit.Type.Params.List {
				if t := an.pass.TypesInfo.TypeOf(field.Type); t != nil && an.isViewType(t) {
					an.targetLits[lit] = true
					targets = append(targets, target{desc: "protocol rule function", lit: lit})
					break
				}
			}
			return true
		})
	}

	for _, t := range targets {
		var fr *frame
		if t.decl != nil {
			fr = an.newFrame(t.decl.Recv, t.decl.Type.Params, t.decl, true)
			fr.analyze(t.decl.Body)
		} else {
			fr = an.newFrame(nil, t.lit.Type.Params, nil, true)
			fr.skipLit = t.lit
			fr.analyze(t.lit.Body)
		}
		for _, v := range fr.viols {
			switch v.kind {
			case vMutate:
				if v.cls&(cView|cRecv|cGlobal) == 0 {
					continue // plain parameter mutation: Random advancing its rng
				}
			case vRetain:
				if v.cls&cView == 0 {
					continue
				}
			case vIO:
				// Observable effects are violations regardless of which
				// value carried them.
			}
			an.pass.Reportf(v.pos, "%s must be a pure function of the local view: %s", t.desc, v.msg)
		}
	}
}

// newFrame prepares the per-function walk state. moveDecl, when
// non-nil, marks a Move target whose single parameter is classed as the
// View; otherwise View-typed parameters are classed cView and the rest
// cParam.
func (an *analysis) newFrame(recv *ast.FieldList, params *ast.FieldList, moveDecl *ast.FuncDecl, descend bool) *frame {
	fr := &frame{an: an, params: map[*types.Var]uint8{}, descendLits: descend}
	if recv != nil && len(recv.List) > 0 && len(recv.List[0].Names) > 0 {
		if v, ok := an.pass.TypesInfo.Defs[recv.List[0].Names[0]].(*types.Var); ok {
			fr.recv = v
		}
	}
	if params != nil {
		for _, field := range params.List {
			cls := cParam
			if t := an.pass.TypesInfo.TypeOf(field.Type); t != nil && an.isViewType(t) {
				cls = cView
			}
			for _, name := range field.Names {
				if v, ok := an.pass.TypesInfo.Defs[name].(*types.Var); ok {
					fr.params[v] = cls
				}
			}
		}
	}
	return fr
}

func (an *analysis) isViewType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == an.viewName
}

func recvTypeName(sig *types.Signature) *types.TypeName {
	if sig.Recv() == nil {
		return nil
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

func methodDesc(tn *types.TypeName, method string) string {
	if tn == nil {
		return method
	}
	return "(" + tn.Name() + ")." + method
}

// state maps tracked local variables to the taint classes of what they
// may reference. Receiver, parameters, and globals are classified
// structurally and never appear as keys.
type state = map[*types.Var]uint8

func cloneState(s state) state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// frame walks one function body: the taint problem's transfer function
// and the violation checks share its step method.
type frame struct {
	an          *analysis
	recv        *types.Var
	params      map[*types.Var]uint8
	descendLits bool
	skipLit     *ast.FuncLit // the target literal itself, when analyzing one
	viols       []violation
}

func (f *frame) emit(pos token.Pos, kind vkind, cls uint8, msg string) {
	f.viols = append(f.viols, violation{pos: pos, kind: kind, cls: cls, msg: msg})
}

func (f *frame) emitIO(pos token.Pos, msg string) { f.emit(pos, vIO, 0, msg) }

type taintProblem struct{ f *frame }

func (p taintProblem) Init() state { return state{} }

func (p taintProblem) Join(a, b state) state {
	u := cloneState(a)
	for k, v := range b {
		u[k] |= v
	}
	return u
}

func (p taintProblem) Equal(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (p taintProblem) Transfer(b *cfg.Block, in state) state {
	st := cloneState(in)
	for _, n := range b.Nodes {
		p.f.step(st, n, false)
	}
	return st
}

// analyze solves the taint problem over the body's CFG, then replays
// each block from its fixpoint IN state with checks enabled.
func (f *frame) analyze(body *ast.BlockStmt) {
	g := cfg.New(body)
	ins := cfg.Solve[state](g, taintProblem{f})
	for i, blk := range g.Blocks {
		st := cloneState(ins[i])
		for _, n := range blk.Nodes {
			f.step(st, n, true)
		}
	}
}

// step applies one CFG node to the taint state; with check set it also
// records violations.
func (f *frame) step(st state, n ast.Node, check bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		f.assign(st, n, check)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var taint uint8
					if i < len(vs.Values) {
						if check {
							f.checkExpr(st, vs.Values[i])
						}
						taint = f.taintOf(st, vs.Values[i])
					} else if len(vs.Values) == 1 {
						if check && i == 0 {
							f.checkExpr(st, vs.Values[0])
						}
						taint = f.taintOf(st, vs.Values[0])
					}
					f.bindLocal(st, name, taint, true)
				}
			}
		}
	case *ast.RangeStmt:
		// The range expression is a separate CFG node; here only the
		// per-iteration variables are (re)bound.
		cls := f.taintOf(st, n.X)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := f.objOf(id).(*types.Var); ok && f.baseClass(v) == 0 {
				if cls != 0 && f.an.refCarrying(v.Type()) {
					st[v] = cls
				} else {
					delete(st, v)
				}
			}
		}
	case *ast.IncDecStmt:
		if check {
			f.checkWrite(st, n.X, 0, n.Pos())
			f.checkExpr(st, n.X)
		}
	case *ast.SendStmt:
		if check {
			f.emitIO(n.Arrow, "sends on a channel")
			f.checkExpr(st, n.Chan)
			f.checkExpr(st, n.Value)
		}
	case *ast.GoStmt:
		if check {
			f.emitIO(n.Pos(), "starts a goroutine")
			f.checkExpr(st, n.Call)
		}
	case *ast.DeferStmt:
		if check {
			f.checkExpr(st, n.Call)
		}
	case *ast.ExprStmt:
		if check {
			f.checkExpr(st, n.X)
		}
	case *ast.ReturnStmt:
		if check {
			for _, r := range n.Results {
				f.checkExpr(st, r)
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	case ast.Expr:
		// Control expressions: conditions, switch tags, case lists,
		// range collections.
		if check {
			f.checkExpr(st, n)
		}
	}
}

// assign threads taints through an assignment and checks its writes.
func (f *frame) assign(st state, n *ast.AssignStmt, check bool) {
	if check {
		for _, r := range n.Rhs {
			f.checkExpr(st, r)
		}
		for _, l := range n.Lhs {
			f.checkExpr(st, l) // calls inside index expressions
		}
	}
	taints := make([]uint8, len(n.Lhs))
	if len(n.Rhs) == len(n.Lhs) {
		for i := range n.Rhs {
			taints[i] = f.taintOf(st, n.Rhs[i])
		}
	} else if len(n.Rhs) == 1 {
		t := f.taintOf(st, n.Rhs[0])
		for i := range taints {
			taints[i] = t
		}
	}
	for i, l := range n.Lhs {
		if check {
			f.checkWrite(st, l, taints[i], l.Pos())
		}
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
			f.bindLocal(st, id, taints[i], n.Tok == token.ASSIGN || n.Tok == token.DEFINE)
		}
	}
}

// bindLocal updates the taint of a plain local variable. replace
// distinguishes x = e (new referent) from x += e (accumulating).
func (f *frame) bindLocal(st state, id *ast.Ident, taint uint8, replace bool) {
	v, ok := f.objOf(id).(*types.Var)
	if !ok || f.baseClass(v) != 0 {
		return
	}
	if replace {
		st[v] = taint
	} else {
		st[v] |= taint
	}
	if st[v] == 0 {
		delete(st, v)
	}
}

// checkWrite reports an assignment whose target is caller-visible
// memory: any write rooted at a global, or a write whose access path
// crosses a reference boundary from the View, the receiver, a
// parameter, or a local tainted by one of them.
func (f *frame) checkWrite(st state, lhs ast.Expr, rhsTaint uint8, pos token.Pos) {
	root, crosses := f.pathRoot(lhs)
	cls := f.classifyObj(st, root)
	if cls == 0 {
		return
	}
	if cls&cGlobal == 0 && !crosses {
		return // writing a value copy: `next := v.Self; next.Field = ...`
	}
	msg := fmt.Sprintf("writes %s", nounOf(cls))
	if crosses {
		msg += " through shared memory"
	}
	f.emit(pos, vMutate, cls, msg)
	if rhsTaint&(cView|cParam) != 0 && cls&(cGlobal|cRecv) != 0 {
		f.emit(pos, vRetain, rhsTaint&(cView|cParam),
			fmt.Sprintf("stores %s into %s, retaining it past the call", nounOf(rhsTaint), nounOf(cls)))
	}
}

// checkExpr inspects an expression (descending into func literal bodies
// when enabled) for calls, channel operations, and — inside literals —
// writes.
func (f *frame) checkExpr(st state, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == f.skipLit {
				return true // the target literal's own body
			}
			if !f.descendLits || f.an.targetLits[n] {
				return false
			}
			return true
		case *ast.CallExpr:
			f.checkCall(st, n)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				f.emitIO(n.Pos(), "receives from a channel")
			}
		case *ast.SendStmt:
			f.emitIO(n.Arrow, "sends on a channel")
		case *ast.GoStmt:
			f.emitIO(n.Pos(), "starts a goroutine")
		case *ast.AssignStmt:
			// Reached only inside descended func literals; the taint
			// state is the enclosing function's (captured variables keep
			// their classes, literal-local variables are untracked).
			taints := make([]uint8, len(n.Lhs))
			if len(n.Rhs) == len(n.Lhs) {
				for i := range n.Rhs {
					taints[i] = f.taintOf(st, n.Rhs[i])
				}
			} else if len(n.Rhs) == 1 {
				t := f.taintOf(st, n.Rhs[0])
				for i := range taints {
					taints[i] = t
				}
			}
			for i, l := range n.Lhs {
				f.checkWrite(st, l, taints[i], l.Pos())
			}
		case *ast.IncDecStmt:
			f.checkWrite(st, n.X, 0, n.Pos())
		}
		return true
	})
}

// checkCall applies the callee's purity summary at a call site.
func (f *frame) checkCall(st state, call *ast.CallExpr) {
	if tv, ok := f.an.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: F[T](...).
	switch fx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(fx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(fx.X)
	}
	var obj types.Object
	var recvExpr ast.Expr
	switch fx := fun.(type) {
	case *ast.Ident:
		obj = f.objOf(fx)
	case *ast.SelectorExpr:
		obj = f.an.pass.TypesInfo.Uses[fx.Sel]
		if sel, ok := f.an.pass.TypesInfo.Selections[fx]; ok && sel.Kind() == types.MethodVal {
			recvExpr = fx.X
		}
	default:
		return // indirect call of a computed function value: assumed pure
	}
	switch o := obj.(type) {
	case *types.Builtin:
		f.builtinCall(st, o.Name(), call)
	case *types.Func:
		f.applySummary(st, o, call, recvExpr)
	}
}

func (f *frame) applySummary(st state, fn *types.Func, call *ast.CallExpr, recvExpr ast.Expr) {
	sum := f.an.summaryFor(fn.Origin())
	if sum == nil || sum.pure() {
		return
	}
	name := f.callName(fn)
	if sum.IO {
		f.emitIO(call.Pos(), fmt.Sprintf("calls %s, which performs I/O or blocks", name))
	}
	if sum.WritesGlobals {
		f.emit(call.Pos(), vMutate, cGlobal, fmt.Sprintf("calls %s, which writes package-level state", name))
	}
	if sum.MutatesRecv && recvExpr != nil {
		root, _ := f.pathRoot(recvExpr)
		if cls := f.classifyObj(st, root); cls != 0 {
			f.emit(call.Pos(), vMutate, cls,
				fmt.Sprintf("calls %s, which mutates state reachable from %s", name, nounOf(cls)))
		}
	}
	if sum.MutatesParams {
		for _, arg := range call.Args {
			// Function-typed arguments are callbacks (sort.Slice's less),
			// not the data the callee mutates.
			if t := f.typeOf(arg); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Signature); ok {
					continue
				}
			}
			if cls := f.taintOf(st, arg); cls != 0 {
				f.emit(arg.Pos(), vMutate, cls,
					fmt.Sprintf("passes %s to %s, which mutates its argument", nounOf(cls), name))
			}
		}
	}
	if sum.RetainsParams {
		for _, arg := range call.Args {
			if cls := f.taintOf(st, arg) & (cView | cRecv | cParam); cls != 0 {
				f.emit(arg.Pos(), vRetain, cls,
					fmt.Sprintf("passes %s to %s, which retains it past the call", nounOf(cls), name))
			}
		}
	}
}

func (f *frame) builtinCall(st state, name string, call *ast.CallExpr) {
	switch name {
	case "append", "copy", "delete", "clear":
		if len(call.Args) == 0 {
			return
		}
		if cls := f.taintOf(st, call.Args[0]); cls != 0 {
			verb := map[string]string{
				"append": "may write through the backing array of",
				"copy":   "writes into",
				"delete": "deletes from",
				"clear":  "clears",
			}[name]
			f.emit(call.Pos(), vMutate, cls, fmt.Sprintf("%s %s %s", name, verb, nounOf(cls)))
		}
	case "close":
		f.emitIO(call.Pos(), "closes a channel")
	case "print", "println":
		f.emitIO(call.Pos(), "calls builtin "+name)
	}
}

// callName renders a callee for diagnostics: pkg.Type.Method or
// pkg.Func, omitting the package when it is the one under analysis.
func (f *frame) callName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok {
		if tn := recvTypeName(sig); tn != nil {
			name = tn.Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != f.an.pass.Pkg {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// pathRoot peels an access path down to its root object, reporting
// whether the path crossed a reference boundary (pointer deref, slice
// or map index, reslice) — the line between mutating a private copy and
// mutating memory shared with the caller.
func (f *frame) pathRoot(e ast.Expr) (types.Object, bool) {
	crosses := false
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return f.objOf(x), crosses
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := f.objOf(id).(*types.PkgName); isPkg {
					return f.an.pass.TypesInfo.Uses[x.Sel], crosses
				}
			}
			if t := f.typeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					crosses = true
				}
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			if t := f.typeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					crosses = true
				}
			}
			e = ast.Unparen(x.X)
		case *ast.IndexListExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			crosses = true
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			crosses = true
			e = ast.Unparen(x.X)
		default:
			return nil, crosses
		}
	}
}

// classifyObj maps an object to its taint classes: the structural
// classes of the receiver, parameters, and globals, or the tracked
// taint of a local.
func (f *frame) classifyObj(st state, obj types.Object) uint8 {
	v, ok := obj.(*types.Var)
	if !ok {
		return 0
	}
	if cls := f.baseClass(v); cls != 0 {
		return cls
	}
	return st[v]
}

// baseClass is classifyObj without the local-taint lookup.
func (f *frame) baseClass(v *types.Var) uint8 {
	if f.recv != nil && v == f.recv {
		return cRecv
	}
	if cls, ok := f.params[v]; ok {
		return cls
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return cGlobal
	}
	return 0
}

// taintOf computes the taint classes an expression's value may carry.
// Only reference-carrying values propagate taint: copying v.Self (a
// value struct) launders it, copying v.Nbrs (a slice) does not.
func (f *frame) taintOf(st state, e ast.Expr) uint8 {
	e = ast.Unparen(e)
	t := f.typeOf(e)
	if t == nil || !f.an.refCarrying(t) {
		return 0
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if tv, ok := f.an.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return f.taintOf(st, call.Args[0]) // conversion preserves aliasing
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := f.objOf(id).(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				return f.taintOf(st, call.Args[0]) // append may share arg0's array
			}
		}
		return 0 // other call results: treated as fresh values
	}
	return f.mentions(st, e)
}

// mentions unions the classes of every variable referenced in e,
// including captures inside func literals (a closure over the View
// retains it).
func (f *frame) mentions(st state, e ast.Expr) uint8 {
	var cls uint8
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			cls |= f.classifyObj(st, f.objOf(id))
		}
		return true
	})
	return cls
}

func (f *frame) objOf(id *ast.Ident) types.Object {
	if o := f.an.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return f.an.pass.TypesInfo.Defs[id]
}

func (f *frame) typeOf(e ast.Expr) types.Type {
	return f.an.pass.TypesInfo.TypeOf(e)
}

// summaryFor resolves a callee's summary: same-package fixpoint result,
// imported fact, or the standard-library table. Absence means pure.
func (an *analysis) summaryFor(fn *types.Func) *FnFact {
	if s, ok := an.summaries[fn]; ok {
		return s
	}
	if fn.Pkg() == nil {
		return nil // error.Error and friends
	}
	if fn.Pkg() != an.pass.Pkg {
		var fact FnFact
		if an.pass.ImportObjectFact(fn, &fact) {
			return &fact
		}
	}
	return stdlibSummary(fn.Pkg().Path(), fn.Name())
}

// stdlibSummary encodes the purity contract of the standard library
// slices protocol code touches, including the two sanctioned impurities
// of the paper's model: sync/atomic (observability counters) and
// math/rand (per-node threaded generators, whose draws are the
// randomized protocols' coin flips).
func stdlibSummary(path, name string) *FnFact {
	switch path {
	case "sync/atomic", "math/rand", "math/rand/v2", "errors", "strings", "strconv", "math", "math/bits", "unicode", "unicode/utf8", "bytes", "cmp":
		return nil
	case "os", "io", "io/fs", "io/ioutil", "bufio", "net", "net/http", "net/url",
		"log", "log/slog", "os/exec", "os/signal", "syscall", "runtime",
		"runtime/pprof", "runtime/trace", "runtime/debug", "database/sql",
		"encoding/csv", "flag", "testing":
		return &FnFact{IO: true}
	case "sync":
		return &FnFact{IO: true} // Lock/Wait block; a Move must not
	case "time":
		switch name {
		case "Now", "Since", "Until", "Sleep", "Tick", "After", "AfterFunc", "NewTimer", "NewTicker":
			return &FnFact{IO: true}
		}
		return nil
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") ||
			strings.HasPrefix(name, "Sscan") {
			return &FnFact{IO: true}
		}
		return nil
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Ints", "Strings", "Float64s":
			return &FnFact{MutatesParams: true}
		}
		return nil
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc", "Reverse", "Compact", "CompactFunc",
			"Delete", "DeleteFunc", "Insert", "Replace":
			return &FnFact{MutatesParams: true}
		}
		return nil
	case "maps":
		switch name {
		case "Copy", "DeleteFunc", "Insert":
			return &FnFact{MutatesParams: true}
		}
		return nil
	case "container/heap", "container/list", "container/ring":
		return &FnFact{MutatesRecv: true, MutatesParams: true}
	}
	return nil
}

// refCarrying reports whether values of t can reference memory shared
// with other values: pointers, slices, maps, channels, funcs,
// interfaces, and aggregates containing them. Copying a non-carrying
// value severs all aliasing, which is what makes `next := v.Self` pure.
func (an *analysis) refCarrying(t types.Type) bool {
	if r, ok := an.refMemo[t]; ok {
		return r
	}
	an.refMemo[t] = false // cycle-breaker; real cycles go through pointers anyway
	r := refCarrying1(an, t)
	an.refMemo[t] = r
	return r
}

func refCarrying1(an *analysis, t types.Type) bool {
	tt := types.Unalias(t)
	// The protocols' state parameter S is constrained comparable and
	// instantiated with value structs; treating type parameters as
	// non-carrying is what lets `next := v.Self` stay pure generically.
	// Checked before Underlying, which for a type parameter is the
	// constraint interface. Documented approximation.
	if _, ok := tt.(*types.TypeParam); ok {
		return false
	}
	switch u := tt.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if an.refCarrying(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return an.refCarrying(u.Elem())
	default:
		return false
	}
}
