// Fixture for the purity analyzer: protocol-shaped functions (Move
// methods taking a View, their companions, and func literals taking a
// View) checked for mutation, I/O, and retention, plus the pure shapes
// the real protocols rely on that must stay diagnostic-free.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

type NodeID int

type State struct {
	Level int
	Up    bool
}

// View mirrors core.View: the node's local neighborhood snapshot.
type View struct {
	ID   NodeID
	Self State
	Nbrs []NodeID
	Peer func(NodeID) State
}

// ---------------------------------------------------------------------
// Pure shapes: none of these may produce diagnostics.

type Good struct {
	rngs    []*rand.Rand
	firings atomic.Int64
}

func (g *Good) Move(v View) (State, bool) {
	next := v.Self // value copy: mutating it is private
	next.Level = 0
	for _, j := range v.Nbrs {
		p := v.Peer(j) // indirect call through the View: allowed
		if p.Level > next.Level {
			next.Level = p.Level
		}
	}
	g.firings.Add(1)             // sync/atomic: sanctioned counter
	if g.rngs[v.ID].Intn(2) == 1 { // per-node threaded rng: sanctioned
		next.Up = !next.Up
	}
	cands := make([]NodeID, 0, len(v.Nbrs))
	cands = append(cands, v.Nbrs...) // reads the View, writes a local
	sort.Slice(cands, func(i, k int) bool { return cands[i] < cands[k] })
	return next, next.Level != v.Self.Level
}

func (g *Good) Random(id NodeID, nbrs []NodeID, rng *rand.Rand) State {
	return State{Level: rng.Intn(3), Up: rng.Intn(2) == 1} // mutating the rng param is the point
}

func (g *Good) OnNeighborLost(self NodeID, s State, lost NodeID) State {
	s.Level = 0 // value parameter: a private copy
	return s
}

// ---------------------------------------------------------------------
// Receiver mutation.

type BadRecv struct {
	count int
	cache map[NodeID]State
	kept  []NodeID
}

func (b *BadRecv) Move(v View) (State, bool) {
	b.count++                   // want `mutates receiver state|writes receiver state`
	b.cache[v.ID] = v.Self      // want `writes receiver state`
	b.kept = v.Nbrs             // want `writes receiver state` `retaining it past the call`
	return v.Self, false
}

// ---------------------------------------------------------------------
// View mutation, direct and via helpers.

type BadView struct{}

func (BadView) Move(v View) (State, bool) {
	v.Nbrs[0] = 0               // want `writes the View`
	sort.Slice(v.Nbrs, func(i, k int) bool { return v.Nbrs[i] < v.Nbrs[k] }) // want `passes the View to sort.Slice, which mutates its argument`
	nbrs := v.Nbrs              // taint flows through the local alias
	nbrs[0] = 1                 // want `writes the View`
	return v.Self, false
}

// ---------------------------------------------------------------------
// Globals and I/O.

var hits int

type BadGlobal struct{}

func (BadGlobal) Move(v View) (State, bool) {
	hits++                      // want `writes package-level state`
	fmt.Println(v.ID)           // want `calls fmt.Println, which performs I/O`
	return v.Self, false
}

// ---------------------------------------------------------------------
// Channels and goroutines.

type BadChan struct {
	updates chan State
}

func (b *BadChan) Move(v View) (State, bool) {
	b.updates <- v.Self         // want `sends on a channel`
	go func() { hits = 1 }()    // want `starts a goroutine` `writes package-level state`
	return v.Self, false
}

// ---------------------------------------------------------------------
// Interprocedural: impurity in a helper surfaces at the Move call site.

type BadHelper struct {
	n int
}

func (b *BadHelper) bump() { b.n++ }

func logged(s State) State {
	fmt.Println(s)
	return s
}

func (b *BadHelper) Move(v View) (State, bool) {
	b.bump()                    // want `calls BadHelper.bump, which mutates state reachable from receiver state`
	return logged(v.Self), false // want `calls logged, which performs I/O`
}

// A pure helper stays silent even across several hops.
func depth1(s State) State { return depth2(s) }
func depth2(s State) State { s.Level++; return s }

type GoodHelper struct{}

func (GoodHelper) Move(v View) (State, bool) {
	return depth1(v.Self), false
}

// ---------------------------------------------------------------------
// Rule-table closures: func literals taking a View are targets too.

type Rule struct {
	Name   string
	Guard  func(View) bool
	Action func(View) State
}

var rules = []Rule{
	{
		Name:  "ok",
		Guard: func(v View) bool { return v.Self.Up },
		Action: func(v View) State {
			next := v.Self
			next.Up = false
			return next
		},
	},
	{
		Name:  "dirty",
		Guard: func(v View) bool { hits++; return true }, // want `writes package-level state`
		Action: func(v View) State {
			v.Nbrs[0] = 9 // want `writes the View`
			return v.Self
		},
	},
}

// ---------------------------------------------------------------------
// Suppression: an impure Move excused with an explicit reason.

type Counted struct {
	calls int
}

func (c *Counted) Move(v View) (State, bool) {
	//lint:ignore purity instrumentation counter audited as benign
	c.calls++
	return v.Self, false
}
