// Fixture dependency package: its helpers' purity summaries are
// exported as facts and must be visible when the dependent package
// (testdata/src/app) is analyzed.
package dep

// State is the protocol state shared with the app fixture.
type State struct{ Level int }

// Bump mutates its pointer argument; dependents may only apply it to
// private copies.
func Bump(s *State) { s.Level++ }

// Pure transforms a value copy and is safe everywhere.
func Pure(s State) State { s.Level++; return s }

var total int

// Count writes package-level state.
func Count() { total++ }
