// Fixture dependent package: calls into dep, whose purity summaries
// arrive as imported facts — the diagnostics below exist only if the
// fact round-trip works.
package app

import "dep"

type NodeID int

type View struct {
	ID   NodeID
	Self dep.State
	Nbrs []NodeID
	Peer func(NodeID) dep.State
}

type P struct{}

func (P) Move(v View) (dep.State, bool) {
	next := dep.Pure(v.Self) // pure cross-package helper: no diagnostic
	dep.Bump(&next)          // mutates a private copy: no diagnostic
	dep.Bump(&v.Self)        // want `passes the View to dep.Bump, which mutates its argument`
	dep.Count()              // want `calls dep.Count, which writes package-level state`
	return next, false
}
