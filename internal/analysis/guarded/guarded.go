// Package guarded defines an analyzer enforcing `// guarded by <mu>`
// struct-field annotations: every access to an annotated field must
// occur in a function that visibly acquires the named sibling mutex, or
// — for fields annotated `// guarded by atomic` — through sync/atomic
// operations taking the field's address. It is a lightweight, syntactic
// cousin of Clang's thread-safety analysis, sized for this repo's
// concurrency surface (the sharded model-checker memo table and the
// experiment pools), and it turns what the race detector samples at
// runtime into a structural compile-time check.
package guarded

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"selfstab/internal/analysis/lint"
)

// directiveRE matches the annotation inside a field's comment:
// "guarded by mu", "guarded by atomic".
var directiveRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// New returns the guarded analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "guarded",
		Doc: "enforce `// guarded by <mu>` struct-field annotations\n\n" +
			"An access to an annotated field is reported unless the enclosing\n" +
			"function calls Lock/RLock on the named sibling mutex (or holds it by\n" +
			"construction: deferred unlocks count the same), or, for `guarded by\n" +
			"atomic`, unless the access is the address argument of a sync/atomic\n" +
			"call.",
	}
	a.Run = func(pass *lint.Pass) (any, error) {
		run(pass)
		return nil, nil
	}
	return a
}

// guard describes one annotated field.
type guard struct {
	field *types.Var // the annotated field object
	mutex string     // sibling mutex field name, or "atomic"
}

func run(pass *lint.Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			g, ok := guards[selection.Obj().(*types.Var)]
			if !ok {
				return true
			}
			checkAccess(pass, file, sel, g)
			return true
		})
	}
}

// collectGuards finds every `guarded by` annotation on a struct field
// declared in this package, validating that the named guard is a
// sibling field of a mutex-like type.
func collectGuards(pass *lint.Pass) map[*types.Var]guard {
	guards := map[*types.Var]guard{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				name := annotation(field)
				if name == "" {
					continue
				}
				if name != "atomic" && !hasMutexField(pass, st, name) {
					pass.Reportf(field.Pos(),
						"guarded by %s: no sibling sync.Mutex/sync.RWMutex field with that name", name)
					continue
				}
				for _, id := range field.Names {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						guards[v] = guard{field: v, mutex: name}
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotation extracts the guard name from a field's doc or trailing
// comment.
func annotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := directiveRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// hasMutexField reports whether the struct declares a field with the
// given name whose type is mutex-like.
func hasMutexField(pass *lint.Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name != name {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			for {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
					(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
					return true
				}
			}
		}
	}
	return false
}

// checkAccess validates one selector access against its guard.
func checkAccess(pass *lint.Pass, file *ast.File, sel *ast.SelectorExpr, g guard) {
	fn := lint.FuncFor(file, sel.Pos())
	if fn == nil {
		return // package-level var initializer: single-threaded init
	}
	if g.mutex == "atomic" {
		if atomicUse(pass, file, sel) {
			return
		}
		pass.Reportf(sel.Pos(),
			"field %s is guarded by atomic: access it through sync/atomic operations on its address", g.field.Name())
		return
	}
	if acquiresMutex(pass, fn, g.mutex) {
		return
	}
	pass.Reportf(sel.Pos(),
		"access to %s outside a function acquiring %s (annotated `guarded by %s`)",
		g.field.Name(), g.mutex, g.mutex)
}

// acquiresMutex reports whether fn contains a Lock or RLock call on a
// selector ending in the guard's mutex name. Lexical containment stands
// in for a true lockset: the repo's concurrency idiom is
// lock-at-function-entry with deferred unlock, which this matches.
func acquiresMutex(pass *lint.Pass, fn ast.Node, mutexName string) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if base, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if base.Sel.Name == mutexName {
				found = true
			}
		} else if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == mutexName {
			found = true
		}
		return !found
	})
	return found
}

// atomicUse reports whether the selector access is (part of) the
// address argument of a sync/atomic call, e.g.
// atomic.LoadInt32(&t.memo[i]).
func atomicUse(pass *lint.Pass, file *ast.File, sel *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if call.Pos() > sel.Pos() || call.End() < sel.End() {
			return true
		}
		callee, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[callee.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if arg.Pos() <= sel.Pos() && sel.End() <= arg.End() {
				if unary, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && unary.Op == token.AND {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
