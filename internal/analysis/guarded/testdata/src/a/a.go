// Package a is the guarded fixture: annotated fields accessed without
// their mutex (or outside atomic operations) are violations.
package a

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc is the fixed form: the guard is visibly acquired.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) racyRead() int {
	return c.n // want `access to n outside a function acquiring mu`
}

type rwBox struct {
	mu  sync.RWMutex
	val string // guarded by mu
}

// Get holds the read lock: RLock satisfies the guard.
func (b *rwBox) Get() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.val
}

func (b *rwBox) racyGet() string {
	return b.val // want `access to val outside a function acquiring mu`
}

type table struct {
	slots []int32 // guarded by atomic
}

// load is the fixed form: the slot is read through sync/atomic on its
// address.
func (t *table) load(i int) int32 {
	return atomic.LoadInt32(&t.slots[i])
}

func (t *table) store(i int, v int32) {
	atomic.StoreInt32(&t.slots[i], v)
}

func (t *table) racyLoad(i int) int32 {
	return t.slots[i] // want `field slots is guarded by atomic`
}

type bad struct {
	// guarded by missing
	x int // want `guarded by missing: no sibling sync.Mutex/sync.RWMutex field`
}

func scanAfterBarrier(t *table) int32 {
	//lint:ignore guarded single-threaded scan after all writers joined
	return t.slots[0]
}
