package guarded

import (
	"testing"

	"selfstab/internal/analysis/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/src/a", New())
}
