// Fixture dependent package: calls into dep, whose allocation
// summaries and interface contracts arrive as imported facts — the
// absence/presence of the diagnostics below proves the round-trip.
package app

import "dep"

//selfstab:noalloc
func Hot(xs []int) int {
	s := dep.Sum(xs)     // imported AllocFact: allocation-free, no diagnostic
	s = dep.Step(s)      // annotated + free: no diagnostic
	xs = dep.Grow(xs, s) // want `Hot is marked //selfstab:noalloc but calls dep.Grow, which is not known to be allocation-free`
	return s + len(xs)
}

//selfstab:noalloc
func Drive(k dep.Kernel, n int) int {
	return k.Tick(n) // imported ContractsFact: sanctioned, no diagnostic
}
