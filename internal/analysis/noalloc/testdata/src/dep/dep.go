// Fixture dependency package: allocation-free summaries and annotated
// interface contracts exported as facts, imported when testdata/src/app
// is analyzed.
package dep

// Step is annotated and allocation-free: exports an AllocFact.
//
//selfstab:noalloc
func Step(x int) int { return x + 1 }

// Sum is unannotated but allocation-free: the fact must still flow so
// downstream annotated callers are accepted.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Grow allocates; downstream annotated callers must be flagged.
func Grow(xs []int, v int) []int { return append(xs, v) }

// Kernel carries an annotated interface contract exported as a
// package fact.
type Kernel interface {
	//selfstab:noalloc
	Tick(n int) int
}
