// Fixture for the noalloc analyzer: each allocation class an annotated
// function can hit, the allocation-free shapes the real hot paths rely
// on, and the suppression forms.
package a

import (
	"math/bits"
	"sort"
)

type NodeID int32

type Sink interface{ Put(int) }

// ---------------------------------------------------------------------
// Clean shapes: none of these may produce diagnostics.

//selfstab:noalloc
func Clean(buf []int, n int) int {
	sum := 0
	for i := 0; i < n && i < len(buf); i++ {
		buf[i] = i
		sum += buf[i]
	}
	sum += bits.OnesCount64(uint64(n))
	return sum
}

// helper is not annotated but is allocation-free; Clean2 may call it.
func helper(x int) int { return x * 2 }

//selfstab:noalloc
func Clean2(x int) int {
	return helper(x) + helper(x+1)
}

// cycleA/cycleB: mutual recursion must converge to allocation-free.

//selfstab:noalloc
func cycleA(n int) int {
	if n <= 0 {
		return 0
	}
	return cycleB(n - 1)
}

func cycleB(n int) int { return cycleA(n - 1) }

//selfstab:noalloc
func CleanSearch(xs []int, v int) int {
	return sort.SearchInts(xs, v)
}

// Kernel's Tick is an annotated interface contract: calls through it
// are accepted, implementations are checked at their own declarations.
type Kernel interface {
	//selfstab:noalloc
	Tick(n int) int

	Slow() []int
}

//selfstab:noalloc
func Drive(k Kernel, n int) int {
	return k.Tick(n)
}

// ---------------------------------------------------------------------
// Allocating shapes: one want per class.

// alloc is transitively allocating: callers must be flagged.
func alloc(n int) []int { return make([]int, n) }

//selfstab:noalloc
func BadCall(n int) int {
	return len(alloc(n)) // want `BadCall is marked //selfstab:noalloc but calls a.alloc, which is not known to be allocation-free`
}

//selfstab:noalloc
func BadAppend(xs []int, v int) []int {
	return append(xs, v) // want `calls append, which may grow the backing array`
}

//selfstab:noalloc
func BadMake(n int) []int {
	return make([]int, n) // want `calls make, which allocates`
}

//selfstab:noalloc
func BadNew() *int {
	return new(int) // want `calls new, which allocates`
}

//selfstab:noalloc
func BadLit(n int) int {
	xs := []int{n, n + 1} // want `constructs a slice literal, which allocates its backing array`
	return xs[0]
}

type pair struct{ a, b int }

//selfstab:noalloc
func BadEscape(n int) *pair {
	return &pair{n, n + 1} // want `takes the address of a composite literal, which escapes to the heap`
}

//selfstab:noalloc
func BadMap(m map[int]int, k int) {
	m[k] = k // want `writes a map entry, which may allocate`
}

//selfstab:noalloc
func BadBox(s Sink, v int) {
	var x interface{} = v // want `converts int to an interface, which boxes the value on the heap`
	_ = x
}

//selfstab:noalloc
func BadString(s string) []byte {
	return []byte(s) // want `converts between string and byte/rune slice, which allocates`
}

//selfstab:noalloc
func BadConcat(a, b string) string {
	return a + b // want `concatenates strings, which allocates`
}

//selfstab:noalloc
func BadDefer(x int) {
	defer helper(x) // want `uses defer, which may allocate its frame`
}

//selfstab:noalloc
func BadClosure(n int) func() int {
	return func() int { return n } // want `defines a closure capturing n, which allocates`
}

//selfstab:noalloc
func BadFuncValue(f func(int) int, n int) int {
	return f(n) // want `calls through a function value, which cannot be proven allocation-free`
}

//selfstab:noalloc
func BadInterfaceCall(k Kernel) int {
	return len(k.Slow()) // want `calls Kernel.Slow, which is not known to be allocation-free`
}

// ---------------------------------------------------------------------
// Suppression forms: the driver must silence both the single-analyzer
// and the multi-analyzer-list spellings.

//selfstab:noalloc
func Suppressed(xs []int, v int) []int {
	//lint:ignore noalloc caller guarantees cap(xs) > len(xs)
	return append(xs, v)
}

//selfstab:noalloc
func SuppressedMulti(xs []int, v int) []int {
	//lint:ignore noalloc,shardsafe caller guarantees capacity
	return append(xs, v)
}

// Unannotated functions may allocate freely.
func Unchecked() []int { return make([]int, 8) }
