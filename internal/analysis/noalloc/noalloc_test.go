package noalloc_test

import (
	"path/filepath"
	"testing"

	"selfstab/internal/analysis/linttest"
	"selfstab/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	linttest.Run(t, "testdata/src/a", noalloc.New())
}

// TestNoallocCrossPackageFacts proves the fact round-trip: dep's
// allocation summaries (AllocFact) and annotated interface contracts
// (ContractsFact) are computed in dep's own analysis run and must be
// visible as imported facts when app is analyzed — dep.Sum and
// dep.Kernel.Tick are accepted, dep.Grow is flagged, only if the
// round-trip works.
func TestNoallocCrossPackageFacts(t *testing.T) {
	linttest.RunPackages(t, linttest.DirResolver("testdata/src"), []string{"app"}, noalloc.New())
}

// TestNoallocAcceptsHotPaths is the regression pin for the annotated
// zero-alloc hot paths: the frontier/CSR/partition layer, the batch and
// shard kernels, and the round loops must pass with zero diagnostics.
// A new diagnostic here means either a hot path gained a real
// allocation or the analyzer gained a false positive; both need a
// human before the pin moves.
func TestNoallocAcceptsHotPaths(t *testing.T) {
	resolve := linttest.ModuleResolver("selfstab", filepath.Join("..", "..", ".."))
	linttest.RunPackages(t, resolve,
		[]string{
			"selfstab/internal/graph",
			"selfstab/internal/core",
			"selfstab/internal/sim",
		},
		noalloc.New())
}
