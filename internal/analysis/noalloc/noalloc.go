// Package noalloc implements an interprocedural allocation/escape
// analyzer for functions annotated //selfstab:noalloc.
//
// The annotation is a machine-checked claim that a function's body
// performs no heap allocation on any path: no composite literals that
// escape, no append growth, no map or channel operations, no interface
// boxing, no closure captures, no string conversions or concatenation,
// no defer/go statements, and no calls to callees that are not
// themselves known allocation-free.
//
// Call resolution is interprocedural: within a package, summaries are
// computed to a fixpoint over the call graph; across packages, each
// bodied function whose summary is allocation-free exports an AllocFact
// through the unitchecker fact protocol, and interface methods
// annotated at their declaration site export a package-level
// ContractsFact so dynamic calls through annotated interfaces are
// accepted. A small stdlib table covers the leaf packages the hot
// paths use (math/bits, encoding/binary, sync/atomic, sort.Search,
// mutex lock/unlock).
//
// The analyzer is deliberately conservative in one direction only: a
// callee with no summary, no fact, and no stdlib entry is assumed to
// allocate. Channel sends and receives on existing channels are not
// flagged — they do not allocate — only make(chan) does.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"selfstab/internal/analysis/lint"
)

// Directive is the comment that marks a function as allocation-free.
const Directive = "//selfstab:noalloc"

// AllocFact is exported for every bodied package-level function or
// method whose body summary is allocation-free. Absence of a fact
// means the function may allocate.
type AllocFact struct {
	Free bool
}

// AFact marks AllocFact as a serializable analysis fact.
func (*AllocFact) AFact() {}

// ContractsFact is a package fact listing interface methods declared
// with the //selfstab:noalloc directive, keyed "Type.Method". A call
// through such a method is accepted as allocation-free; every concrete
// implementation that is itself annotated is checked independently.
type ContractsFact struct {
	NoAlloc []string
}

// AFact marks ContractsFact as a serializable analysis fact.
func (*ContractsFact) AFact() {}

// New returns the noalloc analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "noalloc",
		Doc:  "check that //selfstab:noalloc functions perform no heap allocation",
		Run:  run,
	}
}

type analysis struct {
	pass *lint.Pass

	// summaries[fn] == true means fn may allocate. Only functions
	// declared in this package appear here.
	summaries map[*types.Func]bool
	// declared marks bodied functions in this package, so the
	// fixpoint can be optimistic about not-yet-summarized callees.
	declared map[*types.Func]bool
	// annotatedFns marks functions carrying the directive: callers
	// trust the claim (violations surface at the annotated
	// declaration, where they are fixed or reasonedly suppressed).
	annotatedFns map[*types.Func]bool
	// contracts holds "Type.Method" keys for annotated interface
	// methods declared in this package.
	contracts map[string]bool
	// importedContracts caches per-package contract sets loaded from
	// package facts, keyed by import path.
	importedContracts map[string]map[string]bool
}

func run(pass *lint.Pass) (any, error) {
	a := &analysis{
		pass:              pass,
		summaries:         make(map[*types.Func]bool),
		declared:          make(map[*types.Func]bool),
		annotatedFns:      make(map[*types.Func]bool),
		contracts:         make(map[string]bool),
		importedContracts: make(map[string]map[string]bool),
	}

	var decls []*ast.FuncDecl
	annotated := make(map[*ast.FuncDecl]bool)
	for _, f := range pass.Files {
		if lint.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if d.Body == nil {
					// Assembly or linkname stubs: trust the
					// annotation if present, otherwise assume
					// the worst.
					a.summaries[fn] = !marked(d.Doc)
					continue
				}
				decls = append(decls, d)
				a.declared[fn] = true
				if marked(d.Doc) {
					annotated[d] = true
					a.annotatedFns[fn] = true
				}
			case *ast.GenDecl:
				a.collectContracts(d)
			}
		}
	}

	// Fixpoint: start optimistic (declared functions are assumed free
	// until their body proves otherwise) so that mutual recursion
	// converges; mayAllocate is monotone in the summaries, so flags
	// only ever turn on.
	for iter := 0; iter < 12; iter++ {
		changed := false
		for _, d := range decls {
			fn := pass.TypesInfo.Defs[d.Name].(*types.Func)
			may := a.mayAllocate(d)
			if a.summaries[fn] != may {
				a.summaries[fn] = may
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Export facts: allocation-free bodies and annotated interface
	// methods, for downstream packages.
	for _, d := range decls {
		fn := pass.TypesInfo.Defs[d.Name].(*types.Func)
		if !a.summaries[fn] || a.annotatedFns[fn] {
			pass.ExportObjectFact(fn, &AllocFact{Free: true})
		}
	}
	if len(a.contracts) > 0 {
		keys := make([]string, 0, len(a.contracts))
		for k := range a.contracts {
			keys = append(keys, k)
		}
		// Deterministic order for the fact file.
		sort.Strings(keys)
		pass.ExportPackageFact(&ContractsFact{NoAlloc: keys})
	}

	// Diagnose: replay the walk over each annotated body with
	// reporting enabled.
	for _, d := range decls {
		if !annotated[d] {
			continue
		}
		desc := funcDesc(d)
		a.walk(d, func(pos token.Pos, msg string) {
			pass.Reportf(pos, "%s is marked //selfstab:noalloc but %s", desc, msg)
		})
	}
	return nil, nil
}

// marked reports whether a comment group carries the noalloc directive
// on a line of its own.
func marked(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == Directive || strings.HasPrefix(text, Directive+" ") {
			return true
		}
	}
	return false
}

// collectContracts records annotated interface methods declared in a
// type declaration group.
func (a *analysis) collectContracts(d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok || it.Methods == nil {
			continue
		}
		for _, m := range it.Methods.List {
			if len(m.Names) != 1 {
				continue // embedded interface
			}
			if marked(m.Doc) || marked(m.Comment) {
				a.contracts[ts.Name.Name+"."+m.Names[0].Name] = true
			}
		}
	}
}

// mayAllocate computes the current summary for one body: true if any
// statement allocates under the present summaries.
func (a *analysis) mayAllocate(d *ast.FuncDecl) bool {
	may := false
	a.walk(d, func(token.Pos, string) { may = true })
	return may
}

// allocFree reports whether calling fn is known not to allocate.
func (a *analysis) allocFree(fn *types.Func) bool {
	fn = fn.Origin()
	if a.annotatedFns[fn] {
		return true
	}
	if may, ok := a.summaries[fn]; ok {
		return !may
	}
	if key := contractKey(fn); key != "" {
		if fn.Pkg() == a.pass.Pkg {
			if a.contracts[key] {
				return true
			}
		} else if fn.Pkg() != nil && a.contractSet(fn.Pkg().Path())[key] {
			return true
		}
	}
	if fn.Pkg() == nil {
		return false // error.Error and friends
	}
	if fn.Pkg() == a.pass.Pkg {
		// Same package, no summary yet: optimistic for declared
		// bodies (the fixpoint will flip it if needed), pessimistic
		// otherwise.
		return a.declared[fn]
	}
	var fact AllocFact
	if a.pass.ImportObjectFact(fn, &fact) {
		return fact.Free
	}
	return stdlibAllocFree(fn.Pkg().Path(), fn.Name())
}

// contractSet loads (once) the annotated-interface-method set exported
// by an imported package.
func (a *analysis) contractSet(path string) map[string]bool {
	if set, ok := a.importedContracts[path]; ok {
		return set
	}
	set := make(map[string]bool)
	var fact ContractsFact
	if a.pass.ImportPackageFact(path, &fact) {
		for _, k := range fact.NoAlloc {
			set[k] = true
		}
	}
	a.importedContracts[path] = set
	return set
}

// contractKey returns "Type.Method" for an interface method, or "" if
// fn is not a method on a named interface type.
func contractKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if _, ok := t.Underlying().(*types.Interface); !ok {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + fn.Name()
}

// stdlibAllocFree is the summary table for standard-library leaves the
// hot paths rely on. Everything not listed is assumed to allocate.
func stdlibAllocFree(path, name string) bool {
	switch path {
	case "math", "math/bits", "sync/atomic", "cmp":
		return true
	case "encoding/binary":
		switch name {
		case "Uint16", "Uint32", "Uint64",
			"PutUint16", "PutUint32", "PutUint64":
			return true
		}
	case "sync":
		switch name {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock",
			"Add", "Done", "Wait",
			"Load", "Store", "Swap", "CompareAndSwap":
			return true
		}
	case "sort":
		switch name {
		case "Search", "SearchInts", "SearchStrings", "SearchFloat64s":
			return true
		}
	}
	return false
}

// reporter receives one message per allocation site.
type reporter func(pos token.Pos, msg string)

// walk scans one function body and reports every allocation or escape
// site to report. It is used both for summary computation (report sets
// a flag) and for diagnosis (report emits a diagnostic).
func (a *analysis) walk(d *ast.FuncDecl, report reporter) {
	info := a.pass.TypesInfo

	// Pre-pass: function literals (for return-statement result-type
	// resolution) and the set of expressions used as call functions
	// (so `x.M()` is not also flagged as a bound-method value).
	var lits []*ast.FuncLit
	callFun := make(map[ast.Expr]bool)
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
		case *ast.CallExpr:
			callFun[unparen(n.Fun)] = true
		}
		return true
	})
	// resultsOf returns the result tuple of the innermost enclosing
	// function at pos (a nested literal or the declaration itself).
	resultsOf := func(pos token.Pos) *types.Tuple {
		var best *ast.FuncLit
		for _, l := range lits {
			if l.Body.Pos() <= pos && pos <= l.Body.End() {
				if best == nil || (best.Body.Pos() <= l.Body.Pos() && l.Body.End() <= best.Body.End()) {
					best = l
				}
			}
		}
		if best != nil {
			if sig, ok := info.Types[best].Type.(*types.Signature); ok {
				return sig.Results()
			}
			return nil
		}
		if fn, ok := info.Defs[d.Name].(*types.Func); ok {
			return fn.Type().(*types.Signature).Results()
		}
		return nil
	}

	handledLit := make(map[*ast.CompositeLit]bool)
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := unparen(n.X).(*ast.CompositeLit); ok {
					handledLit[cl] = true
					report(n.Pos(), "takes the address of a composite literal, which escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if handledLit[n] {
				return true
			}
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "constructs a slice literal, which allocates its backing array")
				case *types.Map:
					report(n.Pos(), "constructs a map literal, which allocates")
				}
			}
		case *ast.FuncLit:
			if v := capturedVar(info, n); v != "" {
				report(n.Pos(), fmt.Sprintf("defines a closure capturing %s, which allocates", v))
			}
		case *ast.DeferStmt:
			report(n.Pos(), "uses defer, which may allocate its frame")
		case *ast.GoStmt:
			report(n.Pos(), "starts a goroutine, which allocates a stack")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info, n.X) && info.Types[n].Value == nil {
				report(n.Pos(), "concatenates strings, which allocates")
			}
		case *ast.AssignStmt:
			a.checkAssign(n, resultsOf, report)
		case *ast.IncDecStmt:
			if idx, ok := unparen(n.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
				report(n.Pos(), "updates a map entry, which may allocate")
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				dst := info.Types[n.Type].Type
				for _, v := range n.Values {
					a.checkBox(dst, v, report)
				}
			}
		case *ast.ReturnStmt:
			if res := resultsOf(n.Pos()); res != nil && res.Len() == len(n.Results) {
				for i, r := range n.Results {
					a.checkBox(res.At(i).Type(), r, report)
				}
			}
		case *ast.CallExpr:
			a.checkCall(n, report)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !callFun[n] {
				report(n.Pos(), fmt.Sprintf("takes the bound method value %s, which allocates", n.Sel.Name))
			}
		}
		return true
	})
}

// checkAssign reports map writes, string concat-assign, and interface
// boxing introduced by an assignment.
func (a *analysis) checkAssign(n *ast.AssignStmt, resultsOf func(token.Pos) *types.Tuple, report reporter) {
	_ = resultsOf
	info := a.pass.TypesInfo
	for _, lhs := range n.Lhs {
		if idx, ok := unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
			report(lhs.Pos(), "writes a map entry, which may allocate")
		}
	}
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info, n.Lhs[0]) {
		report(n.Pos(), "concatenates strings, which allocates")
	}
	if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if tv, ok := info.Types[lhs]; ok {
				a.checkBox(tv.Type, n.Rhs[i], report)
			}
		}
	}
}

// checkBox reports when assigning src into a destination of interface
// type dst would box a non-pointer-shaped value.
func (a *analysis) checkBox(dst types.Type, src ast.Expr, report reporter) {
	if dst == nil {
		return
	}
	info := a.pass.TypesInfo
	if _, ok := dst.(*types.TypeParam); ok {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constants: small ints are interned, strings share backing
	}
	st := tv.Type
	if _, ok := st.(*types.TypeParam); ok {
		return
	}
	if st == types.Typ[types.UntypedNil] {
		return
	}
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map,
		*types.Signature:
		return // pointer-shaped: no boxing allocation
	case *types.Basic:
		if st.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	report(src.Pos(), fmt.Sprintf("converts %s to an interface, which boxes the value on the heap", types.TypeString(st, types.RelativeTo(a.pass.Pkg))))
}

// checkCall classifies one call expression.
func (a *analysis) checkCall(call *ast.CallExpr, report reporter) {
	info := a.pass.TypesInfo
	fun := unparen(call.Fun)

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) == 1 {
			src := call.Args[0]
			stv := info.Types[src]
			if stv.Value == nil && stv.Type != nil {
				if isStringByteConv(dst, stv.Type) {
					report(call.Pos(), "converts between string and byte/rune slice, which allocates")
					return
				}
			}
			a.checkBox(dst, src, report)
		}
		return
	}

	// Unwrap explicit generic instantiation. rt.fns[i](...) also
	// parses as IndexExpr; the resolved object below disambiguates.
	base := fun
	switch e := fun.(type) {
	case *ast.IndexExpr:
		base = unparen(e.X)
	case *ast.IndexListExpr:
		base = unparen(e.X)
	}

	var obj types.Object
	switch e := base.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		report(call.Pos(), "calls through a function value, which cannot be proven allocation-free")
		return
	}

	switch obj := obj.(type) {
	case *types.Builtin:
		a.builtinCall(obj.Name(), call, report)
		return
	case *types.Func:
		if !a.allocFree(obj) {
			report(call.Pos(), fmt.Sprintf("calls %s, which is not known to be allocation-free", callName(obj)))
		}
		a.checkCallArgs(call, report)
		return
	case *types.Var:
		// Function-typed variable (field, parameter, or slice
		// element): dynamic call with no summary. If the base was an
		// index into a function slice the same message applies.
		report(call.Pos(), "calls through a function value, which cannot be proven allocation-free")
		return
	case *types.TypeName:
		// Generic conversion form T[x](v) — treat like a conversion.
		return
	}
	report(call.Pos(), "calls through a function value, which cannot be proven allocation-free")
}

// checkCallArgs reports interface boxing at the call boundary.
func (a *analysis) checkCallArgs(call *ast.CallExpr, report reporter) {
	info := a.pass.TypesInfo
	tv, ok := info.Types[unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	if sig.Variadic() {
		if call.Ellipsis != token.NoPos {
			// f(xs...) reuses the slice.
			for i, arg := range call.Args {
				if i >= np-1 {
					break
				}
				a.checkBox(sig.Params().At(i).Type(), arg, report)
			}
			return
		}
		if len(call.Args) >= np {
			report(call.Pos(), "calls a variadic function, which allocates the argument slice")
		}
		for i, arg := range call.Args {
			if i < np-1 {
				a.checkBox(sig.Params().At(i).Type(), arg, report)
			} else {
				elem := sig.Params().At(np - 1).Type().(*types.Slice).Elem()
				a.checkBox(elem, arg, report)
			}
		}
		return
	}
	for i, arg := range call.Args {
		if i >= np {
			break
		}
		a.checkBox(sig.Params().At(i).Type(), arg, report)
	}
}

// builtinCall reports allocating builtins.
func (a *analysis) builtinCall(name string, call *ast.CallExpr, report reporter) {
	switch name {
	case "append":
		report(call.Pos(), "calls append, which may grow the backing array")
	case "make":
		report(call.Pos(), "calls make, which allocates")
	case "new":
		report(call.Pos(), "calls new, which allocates")
	case "print", "println":
		report(call.Pos(), "calls "+name+", which may allocate")
	case "panic":
		if len(call.Args) == 1 {
			a.checkBox(types.NewInterfaceType(nil, nil), call.Args[0], report)
		}
	}
}

// capturedVar returns the name of a variable the literal captures from
// an enclosing scope, or "".
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-scope variable: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	tv, ok := info.Types[idx.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isStringByteConv reports a string<->[]byte/[]rune conversion.
func isStringByteConv(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// funcDesc renders "F" or "(T).M" for diagnostics.
func funcDesc(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	name := "?"
	switch t := t.(type) {
	case *ast.Ident:
		name = t.Name
	case *ast.IndexExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			name = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	return "(" + name + ")." + d.Name.Name
}

// callName renders a callee for diagnostics.
func callName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return recvTypeName(sig.Recv().Type()) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
