package lockorder_test

import (
	"testing"

	"selfstab/internal/analysis/linttest"
	"selfstab/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/a", lockorder.New())
}

// TestLockOrderCrossPackageFacts proves the edge and acquire-set facts
// round-trip: lockapp's diagnostic depends on the order lockdep
// exported.
func TestLockOrderCrossPackageFacts(t *testing.T) {
	linttest.RunPackages(t, linttest.DirResolver("testdata/src"), []string{"lockapp"}, lockorder.New())
}
