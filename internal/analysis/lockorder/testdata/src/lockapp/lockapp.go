// Fixture dependent package: the cycle is only visible when lockdep's
// edge and acquire-set facts are imported.
package lockapp

import (
	"sync"

	"lockdep"
)

var local sync.Mutex

// ok nests lockdep.MuB under a local lock: a new edge, but no cycle.
func ok() {
	local.Lock()
	defer local.Unlock()
	lockdep.Acquire()
}

// bad holds MuB and calls LockAB, which acquires MuA (and MuB): the
// resulting MuB -> MuA edge reverses the dependency's MuA -> MuB.
func bad() {
	lockdep.MuB.Lock()
	defer lockdep.MuB.Unlock()
	lockdep.LockAB() // want `lock order cycle`
}
