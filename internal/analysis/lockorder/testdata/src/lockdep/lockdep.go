// Fixture dependency package: its acquisition edges and acquire-set
// summaries are exported as facts for the lockapp fixture.
package lockdep

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
)

// LockAB acquires A then B, establishing the exported order MuA -> MuB.
func LockAB() {
	MuA.Lock()
	defer MuA.Unlock()
	MuB.Lock()
	MuB.Unlock()
}

// Acquire takes only B; dependents may call it under their own locks.
func Acquire() {
	MuB.Lock()
	MuB.Unlock()
}
