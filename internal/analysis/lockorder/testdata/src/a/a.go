// Fixture for the lockorder analyzer: intra-package acquisition-order
// cycles, may-hold joins, interprocedural summaries, and the shapes
// that must stay silent.
package a

import "sync"

type S struct {
	mu sync.Mutex
	nu sync.Mutex
}

// ab and ba acquire in opposite orders: each side's inner acquisition
// closes the cycle, so both are reported.

func ab(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nu.Lock() // want `lock order cycle`
	s.nu.Unlock()
}

func ba(s *S) {
	s.nu.Lock()
	s.mu.Lock() // want `lock order cycle`
	s.mu.Unlock()
	s.nu.Unlock()
}

// sequential releases before acquiring: no nesting, no edge, no report.
func sequential(s *S) {
	s.mu.Lock()
	s.mu.Unlock()
	s.nu.Lock()
	s.nu.Unlock()
}

// Interprocedural: the nested acquisition happens inside a helper, so
// the edge comes from the helper's acquire-set summary.

type T struct {
	a sync.Mutex
	b sync.Mutex
}

func (t *T) lockB() {
	t.b.Lock()
	t.b.Unlock()
}

func (t *T) aThenB() {
	t.a.Lock()
	defer t.a.Unlock()
	t.lockB() // want `lock order cycle`
}

func (t *T) bThenA() {
	t.b.Lock()
	defer t.b.Unlock()
	t.a.Lock() // want `lock order cycle`
	t.a.Unlock()
}

// Package-level mutexes with a may-hold join: gmu is held on one branch
// only, so the edge gmu->hmu exists, but with no reverse order there is
// nothing to report.

var (
	gmu sync.Mutex
	hmu sync.RWMutex
)

func branches(x bool) {
	if x {
		gmu.Lock()
	}
	hmu.RLock()
	hmu.RUnlock()
	if x {
		gmu.Unlock()
	}
}

// Promoted embedded mutex: classified as a field of E, no edges here.

type E struct {
	sync.Mutex
	n int
}

func useE(e *E) {
	e.Lock()
	e.n++
	e.Unlock()
}
