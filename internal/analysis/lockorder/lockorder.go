// Package lockorder defines an analyzer that derives the program's
// lock-acquisition order and reports cycles in it. Two goroutines that
// acquire the same pair of mutexes in opposite orders can deadlock; the
// race detector cannot see it (no data race happens) and the soak
// harness only catches it when the interleaving fires. The analyzer
// turns the discipline into a static check: every "acquire B while
// holding A" site contributes an edge A→B, the edges of every package
// are exported as facts and merged transitively, and any local edge
// that closes a cycle in the merged graph is reported at its
// acquisition site.
//
// Lock identity is structural: a mutex is named by its owning struct
// field ("pkg.Type.field") or by its package-level variable
// ("pkg.var"). Mutexes held in local variables have no cross-function
// identity and are ignored. Held-lock sets are computed with a forward
// may-hold dataflow over the function's CFG: Lock/RLock adds the class,
// Unlock/RUnlock removes it, deferred unlocks release at return and so
// keep the lock held for the rest of the function, which is exactly the
// window in which nested acquisitions order themselves after it.
//
// Calls are handled interprocedurally: each function's set of possibly
// acquired classes is summarized (to a fixpoint within the package,
// through exported object facts across packages), and calling a
// function that acquires B while holding A records A→B — this is how an
// edge in internal/runtime orders itself against one in internal/soak.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"selfstab/internal/analysis/cfg"
	"selfstab/internal/analysis/lint"
)

// New returns the lockorder analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "lockorder",
		Doc: "report cycles in the cross-package mutex acquisition order\n\n" +
			"Acquiring a mutex while holding another records an order edge;\n" +
			"edges are exported as facts, merged across packages, and any local\n" +
			"acquisition that closes a cycle is reported.",
	}
	a.Run = func(pass *lint.Pass) (any, error) {
		run(pass)
		return nil, nil
	}
	return a
}

// AcquiresFact summarizes the lock classes a function may acquire,
// directly or through callees.
type AcquiresFact struct {
	Locks []string `json:"locks"`
}

// AFact marks AcquiresFact as a lint fact.
func (*AcquiresFact) AFact() {}

// EdgesFact is a package's contribution to the global acquisition-order
// graph.
type EdgesFact struct {
	Edges []Edge `json:"edges"`
}

// AFact marks EdgesFact as a lint fact.
func (*EdgesFact) AFact() {}

// Edge records that To was acquired while From was held, at At
// (file:line, for diagnostics in dependent packages).
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	At   string `json:"at"`
}

// localEdge is an edge observed in this package, with its real
// position.
type localEdge struct {
	from, to string
	pos      token.Pos
}

type analysis struct {
	pass     *lint.Pass
	acquires map[*types.Func][]string // same-package summaries
	edges    []localEdge
	edgeSeen map[string]bool
}

func run(pass *lint.Pass) {
	an := &analysis{pass: pass, acquires: map[*types.Func][]string{}, edgeSeen: map[string]bool{}}

	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}

	// Acquire-set summaries to a fixpoint (call chains within the
	// package; sets only grow, so iteration terminates).
	for iter := 0; iter < 12; iter++ {
		changed := false
		for _, d := range decls {
			fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			got := an.summarizeAcquires(d)
			if !equalStrings(an.acquires[fn], got) {
				an.acquires[fn] = got
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, d := range decls {
		fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
		if !ok {
			continue
		}
		if locks := an.acquires[fn]; len(locks) > 0 {
			pass.ExportObjectFact(fn, &AcquiresFact{Locks: locks})
		}
	}

	// Edge collection with the may-hold lockset dataflow.
	for _, d := range decls {
		an.collectEdges(d)
	}

	// Export this package's edges and merge with every dependency's.
	if len(an.edges) > 0 {
		fact := &EdgesFact{}
		for _, e := range an.edges {
			fact.Edges = append(fact.Edges, Edge{
				From: e.from, To: e.to, At: pass.Fset.Position(e.pos).String(),
			})
		}
		sort.Slice(fact.Edges, func(i, j int) bool {
			a, b := fact.Edges[i], fact.Edges[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.At < b.At
		})
		pass.ExportPackageFact(fact)
	}

	an.reportCycles()
}

// reportCycles builds the merged graph (imported package facts plus
// this package's edges) and reports every local edge whose reverse
// direction is already reachable.
func (an *analysis) reportCycles() {
	succs := map[string][]Edge{}
	addEdge := func(e Edge) {
		succs[e.From] = append(succs[e.From], e)
	}
	for _, pf := range an.pass.AllPackageFacts(func() lint.Fact { return &EdgesFact{} }) {
		for _, e := range pf.Fact.(*EdgesFact).Edges {
			addEdge(e)
		}
	}

	for _, le := range an.edges {
		if witness := findPath(succs, le.to, le.from); witness != nil {
			an.pass.Reportf(le.pos,
				"lock order cycle: acquires %s while holding %s, but %s is already ordered before %s (edge recorded at %s)",
				le.to, le.from, le.to, le.from, witness.At)
		}
	}
}

// findPath BFSes the edge graph from src to dst, returning the first
// edge of a path as the witness, or nil.
func findPath(succs map[string][]Edge, src, dst string) *Edge {
	type item struct {
		node  string
		first *Edge
	}
	seen := map[string]bool{src: true}
	queue := []item{{node: src}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for i := range succs[it.node] {
			e := &succs[it.node][i]
			first := it.first
			if first == nil {
				first = e
			}
			if e.To == dst {
				return first
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, item{node: e.To, first: first})
			}
		}
	}
	return nil
}

// summarizeAcquires computes the classes a function may acquire:
// flow-insensitive, since holding windows do not matter for the
// summary, only the set.
func (an *analysis) summarizeAcquires(d *ast.FuncDecl) []string {
	set := map[string]bool{}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cls, op := an.mutexOp(call); cls != "" && (op == opLock) {
			set[cls] = true
		} else if op == opNone {
			for _, a := range an.calleeAcquires(call) {
				set[a] = true
			}
		}
		return true
	})
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// collectEdges runs the may-hold dataflow over one function and records
// an order edge for every acquisition performed under held locks.
func (an *analysis) collectEdges(d *ast.FuncDecl) {
	g := cfg.New(d.Body)
	prob := locksetProblem{an: an}
	ins := cfg.Solve[lockset](g, prob)
	for i, blk := range g.Blocks {
		st := cloneSet(ins[i])
		for _, n := range blk.Nodes {
			an.step(st, n, true)
		}
	}
}

// lockset is the set of lock classes possibly held at a program point.
type lockset = map[string]bool

func cloneSet(s lockset) lockset {
	c := make(lockset, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type locksetProblem struct{ an *analysis }

func (p locksetProblem) Init() lockset { return lockset{} }

func (p locksetProblem) Join(a, b lockset) lockset {
	u := cloneSet(a)
	for k := range b {
		u[k] = true
	}
	return u
}

func (p locksetProblem) Equal(a, b lockset) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (p locksetProblem) Transfer(b *cfg.Block, in lockset) lockset {
	st := cloneSet(in)
	for _, n := range b.Nodes {
		p.an.step(st, n, false)
	}
	return st
}

// step applies one CFG node to the lockset; with emit set it records
// order edges.
func (an *analysis) step(st lockset, n ast.Node, emit bool) {
	deferred := false
	if ds, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		n = ds.Call
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false // closure bodies run later; not part of this window
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		cls, op := an.mutexOp(call)
		switch op {
		case opLock:
			if cls == "" {
				return true
			}
			if emit {
				held := make([]string, 0, len(st))
				for h := range st {
					if h != cls {
						held = append(held, h)
					}
				}
				sort.Strings(held)
				for _, h := range held {
					an.recordEdge(h, cls, call.Pos())
				}
			}
			st[cls] = true
		case opUnlock:
			// A deferred unlock releases at return: the lock stays held
			// through the rest of the function, which is the window the
			// edges must cover.
			if cls != "" && !deferred {
				delete(st, cls)
			}
		case opNone:
			for _, a := range an.calleeAcquires(call) {
				if emit {
					held := make([]string, 0, len(st))
					for h := range st {
						if h != a {
							held = append(held, h)
						}
					}
					sort.Strings(held)
					for _, h := range held {
						an.recordEdge(h, a, call.Pos())
					}
				}
			}
		}
		return true
	})
}

func (an *analysis) recordEdge(from, to string, pos token.Pos) {
	key := from + "\x00" + to
	if an.edgeSeen[key] {
		return
	}
	an.edgeSeen[key] = true
	an.edges = append(an.edges, localEdge{from: from, to: to, pos: pos})
}

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
)

// mutexOp classifies a call as a lock or unlock on an identifiable
// mutex class. Calls that are mutex operations on unidentifiable
// mutexes return ("", opLock/opUnlock) so they neither record edges nor
// fall through to summary handling.
func (an *analysis) mutexOp(call *ast.CallExpr) (string, mutexOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := an.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	recv := recvBase(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", opNone
	}
	var op mutexOpKind
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone // Locker interface helpers etc.
	}
	return an.mutexClass(sel), op
}

func recvBase(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// mutexClass names the mutex a Lock/Unlock selector operates on:
// "pkg.Type.field" for struct fields (including promoted embedded
// mutexes), "pkg.var" for package-level variables, "" when the mutex
// has no stable identity (locals, map elements).
func (an *analysis) mutexClass(sel *ast.SelectorExpr) string {
	// Promoted embedding: s.Lock() where s's struct embeds sync.Mutex.
	if s, ok := an.pass.TypesInfo.Selections[sel]; ok && len(s.Index()) > 1 {
		if named := namedOf(an.pass.TypesInfo.TypeOf(sel.X)); named != nil {
			if st, ok := named.Underlying().(*types.Struct); ok {
				f := st.Field(s.Index()[0])
				return typeClass(named) + "." + f.Name()
			}
		}
	}
	e := ast.Unparen(sel.X)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// pkg.Var?
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := an.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				if v, ok := an.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
					return varClass(v)
				}
				return ""
			}
		}
		// owner.field
		if named := namedOf(an.pass.TypesInfo.TypeOf(x.X)); named != nil {
			return typeClass(named) + "." + x.Sel.Name
		}
		return ""
	case *ast.Ident:
		if v, ok := an.objOf(x).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return varClass(v)
		}
		return ""
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

func typeClass(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func varClass(v *types.Var) string {
	if v.Pkg() == nil {
		return v.Name()
	}
	return v.Pkg().Path() + "." + v.Name()
}

// calleeAcquires resolves the acquire-set summary of a direct callee:
// same-package fixpoint result or imported fact. Indirect calls are
// assumed lock-free.
func (an *analysis) calleeAcquires(call *ast.CallExpr) []string {
	fun := ast.Unparen(call.Fun)
	switch fx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(fx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(fx.X)
	}
	var obj types.Object
	switch fx := fun.(type) {
	case *ast.Ident:
		obj = an.objOf(fx)
	case *ast.SelectorExpr:
		obj = an.pass.TypesInfo.Uses[fx.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	orig := fn.Origin()
	if locks, ok := an.acquires[orig]; ok {
		return locks
	}
	if orig.Pkg() != nil && orig.Pkg() != an.pass.Pkg {
		var fact AcquiresFact
		if an.pass.ImportObjectFact(orig, &fact) {
			return fact.Locks
		}
	}
	return nil
}

func (an *analysis) objOf(id *ast.Ident) types.Object {
	if o := an.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return an.pass.TypesInfo.Defs[id]
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders an edge for debugging.
func (e Edge) String() string {
	return fmt.Sprintf("%s -> %s @ %s", e.From, e.To, e.At)
}
